//! Property-based round-trip tests for the E-SQL surface syntax:
//! `parse(print(view)) == view` for randomly generated view ASTs.

use eve::esql::{
    parse_view, CondItem, EvolutionParams, FromItem, SelectItem, ViewDefinition, ViewExtent,
};
use eve::relational::expr::ArithOp;
use eve::relational::{AttrName, AttrRef, Clause, CompareOp, ScalarExpr, Value};
use proptest::prelude::*;

/// Words that must not be generated as identifiers (keywords of E-SQL or
/// the MISD format, parameter keys, and literal-like function names) —
/// all matched case-insensitively by the parser.
const FORBIDDEN: &[&str] = &[
    "select", "from", "where", "and", "as", "create", "view", "true", "false", "null", "ve", "ad",
    "ar", "cd", "cr", "rd", "rr", "on", "join", "relation", "funcof", "pc", "order", "by", "date",
    "today", "abs", "lower", "upper", "identity", "floor",
];

fn ident() -> impl Strategy<Value = String> {
    "[A-Z][a-z]{1,6}(-[A-Z][a-z]{1,4})?".prop_filter("not a keyword", |s| {
        !FORBIDDEN.iter().any(|k| s.eq_ignore_ascii_case(k))
    })
}

fn value() -> impl Strategy<Value = Value> {
    prop_oneof![
        (-999i64..999).prop_map(Value::Int),
        "[a-z ]{0,6}".prop_map(Value::from),
        any::<bool>().prop_map(Value::Bool),
        (0i64..40000).prop_map(Value::Date),
        Just(Value::Null),
    ]
}

fn attr_ref() -> impl Strategy<Value = AttrRef> {
    (ident(), ident()).prop_map(|(r, a)| AttrRef::new(r, a))
}

fn leaf_expr() -> impl Strategy<Value = ScalarExpr> {
    prop_oneof![
        attr_ref().prop_map(ScalarExpr::Attr),
        value().prop_map(ScalarExpr::Const),
        Just(ScalarExpr::call("today", vec![])),
    ]
}

fn expr() -> impl Strategy<Value = ScalarExpr> {
    let arith = prop_oneof![
        Just(ArithOp::Add),
        Just(ArithOp::Sub),
        Just(ArithOp::Mul),
        Just(ArithOp::Div),
    ];
    leaf_expr().prop_recursive(2, 8, 2, move |inner| {
        prop_oneof![
            (arith.clone(), inner.clone(), inner.clone())
                .prop_map(|(op, l, r)| ScalarExpr::binary(op, l, r)),
            inner.clone().prop_map(|e| ScalarExpr::call("abs", vec![e])),
        ]
    })
}

fn compare_op() -> impl Strategy<Value = CompareOp> {
    prop_oneof![
        Just(CompareOp::Eq),
        Just(CompareOp::Ne),
        Just(CompareOp::Lt),
        Just(CompareOp::Le),
        Just(CompareOp::Gt),
        Just(CompareOp::Ge),
    ]
}

fn params() -> impl Strategy<Value = EvolutionParams> {
    (any::<bool>(), any::<bool>()).prop_map(|(d, r)| EvolutionParams::new(d, r))
}

fn extent() -> impl Strategy<Value = ViewExtent> {
    prop_oneof![
        Just(ViewExtent::Equivalent),
        Just(ViewExtent::Superset),
        Just(ViewExtent::Subset),
        Just(ViewExtent::Any),
    ]
}

fn view() -> impl Strategy<Value = ViewDefinition> {
    let select_item =
        (expr(), proptest::option::of(ident()), params()).prop_map(|(expr, alias, params)| {
            SelectItem {
                expr,
                alias: alias.map(AttrName::new),
                params,
            }
        });
    let from_item = (ident(), params()).prop_map(|(rel, params)| FromItem {
        relation: rel.into(),
        alias: None,
        params,
    });
    let cond_item =
        (expr(), compare_op(), expr(), params()).prop_map(|(lhs, op, rhs, params)| CondItem {
            clause: Clause::new(lhs, op, rhs),
            params,
        });
    (
        ident(),
        extent(),
        proptest::collection::vec(select_item, 1..5),
        proptest::collection::vec(from_item, 1..4),
        proptest::collection::vec(cond_item, 0..4),
    )
        .prop_map(|(name, extent, select, from, conditions)| {
            let interface = None; // exercised separately below
            ViewDefinition {
                name,
                interface,
                extent,
                select,
                from,
                conditions,
            }
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// The canonical printer's output re-parses to the identical AST.
    #[test]
    fn print_parse_roundtrip(v in view()) {
        let printed = v.to_string();
        let reparsed = parse_view(&printed)
            .unwrap_or_else(|e| panic!("printed view failed to parse: {e}\n{printed}"));
        prop_assert_eq!(&reparsed, &v, "\nprinted:\n{}", printed);
    }

    /// Round trip with an explicit interface list.
    #[test]
    fn roundtrip_with_interface(v in view(), names in proptest::collection::vec(ident(), 1..5)) {
        let mut v = v;
        // interface arity must match SELECT arity for semantic use; the
        // syntax allows any arity — test the syntax.
        v.interface = Some(names.into_iter().map(AttrName::new).collect());
        let printed = v.to_string();
        let reparsed = parse_view(&printed)
            .unwrap_or_else(|e| panic!("printed view failed to parse: {e}\n{printed}"));
        prop_assert_eq!(&reparsed, &v, "\nprinted:\n{}", printed);
    }

    /// Printing is deterministic and stable under re-printing.
    #[test]
    fn print_is_idempotent(v in view()) {
        let once = v.to_string();
        let again = parse_view(&once).expect("parses").to_string();
        prop_assert_eq!(once, again);
    }

    /// The parser and lexer never panic on arbitrary input — they
    /// return errors.
    #[test]
    fn parser_never_panics(s in ".{0,200}") {
        let _ = parse_view(&s);
        let _ = eve::esql::parse_views(&s);
        let _ = eve::esql::lexer::tokenize(&s);
        let _ = eve::misd::parse_misd(&s);
        let _ = eve::misd::CapabilityChange::parse(&s);
    }

    /// Near-miss inputs around valid E-SQL also never panic.
    #[test]
    fn mutated_esql_never_panics(v in view(), cut in 0usize..400) {
        let printed = v.to_string();
        let truncated: String = printed.chars().take(cut % (printed.chars().count() + 1)).collect();
        let _ = parse_view(&truncated);
    }

    /// Substituting an attribute then printing still yields parseable
    /// E-SQL (the shape CVS outputs).
    #[test]
    fn substituted_views_stay_parseable(v in view(), target in attr_ref(), repl in leaf_expr()) {
        let mut v = v;
        for s in &mut v.select {
            s.expr = s.expr.substitute(&target, &repl);
        }
        for c in &mut v.conditions {
            c.clause = c.clause.substitute(&target, &repl);
        }
        let printed = v.to_string();
        parse_view(&printed)
            .unwrap_or_else(|e| panic!("substituted view failed to parse: {e}\n{printed}"));
    }
}
