//! Property: counting-based incremental maintenance tracks full
//! recomputation across arbitrary insert/delete sequences on either side
//! of a join view.

use eve::cvs::{evaluate_view, CountedView, Delta};
use eve::esql::parse_view;
use eve::relational::{
    AttributeDef, DataType, Database, FuncRegistry, RelName, Relation, Schema, Tuple, Value,
};
use proptest::prelude::*;
use std::collections::BTreeSet;

fn schema_r() -> Schema {
    Schema::of_relation(
        &RelName::new("R"),
        &[
            AttributeDef::new("k", DataType::Int),
            AttributeDef::new("v", DataType::Int),
        ],
    )
}

fn schema_s() -> Schema {
    Schema::of_relation(
        &RelName::new("S"),
        &[
            AttributeDef::new("k", DataType::Int),
            AttributeDef::new("w", DataType::Int),
        ],
    )
}

fn tup(a: i64, b: i64) -> Tuple {
    Tuple::new(vec![Value::Int(a), Value::Int(b)])
}

/// One step of the generated workload: which relation, insert-or-delete,
/// and the candidate tuple (coordinates in a tiny domain so collisions
/// and duplicate-derivations actually happen).
type Step = (bool, bool, i64, i64);

fn steps() -> impl Strategy<Value = Vec<Step>> {
    proptest::collection::vec((any::<bool>(), any::<bool>(), -3i64..3, -3i64..3), 1..25)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    #[test]
    fn maintenance_tracks_recompute(script in steps()) {
        let funcs = FuncRegistry::new();
        let view = parse_view(
            // Projection onto S.w collapses derivations — the case that
            // needs counting.
            "CREATE VIEW V AS SELECT S.w FROM R, S WHERE (R.k = S.k) AND (R.v >= 0)",
        ).expect("view parses");

        let mut db = Database::new();
        db.put("R", Relation::new(schema_r()));
        db.put("S", Relation::new(schema_s()));
        let mut cv = CountedView::new(view.clone(), &db, &funcs).expect("materialises");
        let mut r_rows: BTreeSet<Tuple> = BTreeSet::new();
        let mut s_rows: BTreeSet<Tuple> = BTreeSet::new();

        for (on_r, insert, a, b) in script {
            let t = tup(a, b);
            let (name, rows, schema) = if on_r {
                (RelName::new("R"), &mut r_rows, schema_r())
            } else {
                (RelName::new("S"), &mut s_rows, schema_s())
            };
            // Respect the delta contract: inserts must be new, deletes
            // must be present.
            let delta = if insert {
                if !rows.insert(t.clone()) {
                    continue;
                }
                Delta::inserts([t.clone()])
            } else {
                if !rows.remove(&t) {
                    continue;
                }
                Delta::deletes([t.clone()])
            };
            let rel = Relation::from_rows(schema, rows.iter().cloned()).expect("arity");
            db.put(name.clone(), rel);
            cv.apply_delta(&db, &name, &delta, &funcs).expect("maintains");

            let direct = evaluate_view(&view, &db, &funcs).expect("recomputes");
            let maintained = cv.extent().expect("extent");
            prop_assert_eq!(
                maintained.row_set(),
                direct.row_set(),
                "divergence after {:?} on {}", delta, name
            );
        }
    }
}
