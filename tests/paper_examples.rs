//! Golden tests pinning the reproduction of every figure and worked
//! example of the paper (see EXPERIMENTS.md for the full record).

use eve::cvs::CvsOptions;
use eve::misd::{evolve, CapabilityChange};
use eve::relational::{AttrRef, RelName};
use eve::workload::TravelFixture;
use eve_bench::support::cvs_dr;
use eve_bench::{examples, figures};

#[test]
fn fig2_mkb_regenerates() {
    let s = figures::fig2();
    // Every IS of Fig. 2.
    for is in ["IS1", "IS2", "IS3", "IS4", "IS5", "IS6", "IS7"] {
        assert!(s.contains(is), "missing {is}:\n{s}");
    }
    // All six join constraints and seven function-of constraints.
    for id in ["JC1", "JC2", "JC3", "JC4", "JC5", "JC6"] {
        assert!(s.contains(id), "missing {id}");
    }
    for id in ["F1", "F2", "F3", "F4", "F5", "F6", "F7"] {
        assert!(s.contains(id), "missing {id}");
    }
    // JC2's non-equijoin clause.
    assert!(s.contains("Customer.Age > 1"));
    // F3's arithmetic definition.
    assert!(s.contains("(today() - Accident-Ins.Birthday) / 365"));
}

#[test]
fn fig4_hypergraph_components_match_paper() {
    let f = figures::fig4();
    assert_eq!(f.components_before, 2, "H(MKB) has two components");
    assert_eq!(
        f.customer_component,
        [
            "Customer",
            "Tour",
            "Participant",
            "FlightRes",
            "Accident-Ins"
        ]
        .into_iter()
        .map(RelName::new)
        .collect(),
        "H_Customer(MKB) per Fig. 4 (left)"
    );
    assert_eq!(
        f.components_after, 3,
        "erasing Customer splits its component in two (Fig. 4 right)"
    );
}

#[test]
fn ex4_delete_attribute_matches_eq4() {
    let report = examples::ex4();
    // Eq. (4): Person joined in, Addr rerouted, join condition added.
    assert!(report.contains("Person.PAddr"));
    assert!(
        report.contains("Customer.Name = Person.Name")
            || report.contains("Person.Name = Customer.Name")
    );
    // P3 certified from PC constraint (iv).
    assert!(report.contains("P3 for VE = ⊇: satisfied"));
}

#[test]
fn ex5_10_delete_relation_matches_eq13() {
    let report = examples::ex5_10();
    // Ex. 8: the R-mapping.
    assert!(report.contains("Max(V_R) relations: Customer, FlightRes"));
    assert!(report.contains("Min(H_R) joins: JC1"));
    // Ex. 9: exactly the three covers of the paper; Participant rejected.
    for cover in ["FlightRes", "Accident-Ins", "Participant"] {
        assert!(report.contains(cover));
    }
    assert!(report.contains("no (disconnected)"));
    // Eq. (13): the Age attribute replaced through F3.
    assert!(report.contains("(today() - Accident-Ins.Birthday) / 365"));
}

#[test]
fn eq13_rewriting_has_paper_shape() {
    // Direct structural check (independent of report formatting).
    let fixture = TravelFixture::new();
    let mkb = fixture.mkb();
    let customer = RelName::new("Customer");
    let mkb2 = evolve(mkb, &CapabilityChange::DeleteRelation(customer.clone())).unwrap();
    let view = TravelFixture::customer_passengers_asia_eq5();
    let rewritings = cvs_dr(&view, &customer, mkb, &mkb2, &CvsOptions::default()).unwrap();

    let eq13 = rewritings
        .iter()
        .find(|r| {
            r.replacement
                .covers
                .get(&AttrRef::new("Customer", "Name"))
                .map(|c| c.funcof_id == "F2")
                .unwrap_or(false)
                && r.replacement.covers.len() == 2
        })
        .expect("Eq. (13) candidate exists");

    // FROM: Accident-Ins, FlightRes, Participant (paper Eq. 13).
    let mut rels: Vec<&str> = eq13.view.from.iter().map(|f| f.relation.as_str()).collect();
    rels.sort_unstable();
    assert_eq!(rels, ["Accident-Ins", "FlightRes", "Participant"]);

    // SELECT arity preserved (Name, Age, Participant, TourID).
    assert_eq!(eq13.view.select.len(), 4);

    // The JC6 join condition is present.
    let text = eq13.view.to_string();
    assert!(
        text.contains("FlightRes.PName = Accident-Ins.Holder")
            || text.contains("Accident-Ins.Holder = FlightRes.PName")
    );
}

#[test]
fn fig1_and_fig3_cover_the_taxonomies() {
    let f1 = figures::fig1();
    for kind in [
        "Type Integrity",
        "Order Integrity",
        "Join Constraint",
        "Function-of",
        "Partial/Complete",
    ] {
        assert!(f1.contains(kind), "missing {kind}");
    }
    let f3 = figures::fig3();
    for p in ["AD", "AR", "CD", "CR", "RD", "RR", "VE"] {
        assert!(f3.contains(p), "missing parameter {p}");
    }
}

#[test]
fn ex3_eq1_roundtrip() {
    let report = examples::ex3();
    assert!(report.contains("round-trip: parse(print(V)) == V ✓"));
}
