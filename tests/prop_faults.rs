//! Chaos property suite for the fault-isolation layer: random seeded
//! fault plans (panic / transient / delay / budget, addressed by view
//! scope + site + hit count) are injected into the synchronizer's
//! per-view fan-out and the containment contract is checked:
//!
//! * under [`FailurePolicy::Degrade`] no injected fault ever panics
//!   outward — the affected view lands as `ViewOutcome::Failed` (or
//!   recovers by retry) and `apply` returns normally;
//! * every view whose scope fired **no** fault produces an outcome
//!   byte-identical to the fault-free run — failures are isolated to
//!   the view whose task they hit, even though the tasks share a
//!   connection-tree cache;
//! * an installed-but-empty plan is indistinguishable from no plan at
//!   all, under the default fail-fast policy;
//! * transient faults retried under `Degrade` converge to the exact
//!   fault-free outcome;
//! * the same seed + plan replays to the identical [`ChangeOutcome`]
//!   (including retry `attempts`) across 1, 2 and 8 workers, because
//!   fault hits are counted per (view scope, site), not globally.

use eve::cvs::{ChangeOutcome, CvsOptions, FailurePolicy, Synchronizer, SynchronizerBuilder};
use eve::faults::FaultPlan;
use eve::workload::{
    random_view_fault_plan, random_views, views_touching, SynthConfig, SynthWorkload, Topology,
};
use proptest::prelude::*;
use std::collections::{BTreeMap, BTreeSet};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::time::Duration;

fn config() -> impl Strategy<Value = SynthConfig> {
    (
        6usize..20,
        prop_oneof![
            Just(Topology::Chain),
            Just(Topology::Star),
            (0usize..10).prop_map(|extra| Topology::Random { extra }),
        ],
        1usize..4,
        2usize..4,
    )
        .prop_map(
            |(n_relations, topology, cover_count, view_relations)| SynthConfig {
                n_relations,
                topology,
                cover_count,
                view_relations,
                ..SynthConfig::default()
            },
        )
}

/// Zero-backoff degrade policy so retry convergence is fast and
/// deterministic in tests.
fn degrade() -> FailurePolicy {
    FailurePolicy::Degrade {
        max_retries: 2,
        backoff: Duration::ZERO,
    }
}

/// Same mixed view population as `prop_parallel`, with an explicit
/// worker count and failure policy.
fn synchronizer(
    w: &SynthWorkload,
    seed: u64,
    threads: usize,
    policy: FailurePolicy,
) -> Synchronizer {
    let mut builder = SynchronizerBuilder::new(w.mkb.clone()).with_options(CvsOptions {
        parallelism: Some(threads),
        failure: policy,
        ..CvsOptions::default()
    });
    for v in views_touching(&w.mkb, &w.target, 6, 3, seed) {
        builder = builder.with_view(v).expect("fan-out view is valid");
    }
    for v in random_views(&w.mkb, 4, 2, seed.wrapping_add(1)) {
        builder = builder.with_view(v).expect("random view is valid");
    }
    builder.build()
}

/// The registered view names, in registration order — the scopes a
/// generated fault plan addresses.
fn view_names(w: &SynthWorkload, seed: u64) -> Vec<String> {
    views_touching(&w.mkb, &w.target, 6, 3, seed)
        .into_iter()
        .chain(random_views(&w.mkb, 4, 2, seed.wrapping_add(1)))
        .map(|v| v.name)
        .collect()
}

/// Install `plan`, run `f` with unwinds caught, uninstall, and return
/// the caught result together with the fault report. Callers hold
/// `eve::faults::serial_guard()` for the whole test body.
fn with_plan<R>(
    plan: FaultPlan,
    f: impl FnOnce() -> R,
) -> (std::thread::Result<R>, eve::faults::FaultReport) {
    let _ = eve::faults::uninstall();
    eve::faults::install(plan).expect("no competing plan while serialized");
    let result = catch_unwind(AssertUnwindSafe(f));
    let report = eve::faults::uninstall().expect("plan still installed");
    (result, report)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Properties (a) + (b): under `Degrade`, a random fault plan never
    /// panics outward, and every view in whose scope no fault fired is
    /// byte-identical to the fault-free run.
    #[test]
    fn degrade_contains_random_fault_plans(
        cfg in config(),
        seed in 0u64..300,
        plan_seed in 0u64..1000,
        threads in prop_oneof![Just(1usize), Just(2usize), Just(8usize)],
    ) {
        let _serial = eve::faults::serial_guard();
        let w = SynthWorkload::random(&cfg, seed);
        let change = w.delete_change();
        let baseline = synchronizer(&w, seed, threads, degrade())
            .apply(&change)
            .expect("target described");

        let names = view_names(&w, seed);
        let plan_text = random_view_fault_plan(plan_seed, &names);
        let plan = FaultPlan::parse(&plan_text).expect("generated plan parses");
        let (result, report) = with_plan(plan, || {
            synchronizer(&w, seed, threads, degrade())
                .apply(&change)
                .expect("target described")
        });

        // (a) Degrade never lets an injected fault escape `apply`.
        let outcome = match result {
            Ok(o) => o,
            Err(_) => return Err(TestCaseError::fail(format!(
                "plan {plan_text:?} panicked outward under Degrade"
            ))),
        };

        // (b) Views outside every fired scope match the fault-free run.
        let fired_scopes: BTreeSet<&str> =
            report.fired.iter().map(|f| f.scope.as_str()).collect();
        let expected: BTreeMap<&str, _> = baseline
            .views
            .iter()
            .map(|(n, o)| (n.as_str(), o))
            .collect();
        for (name, view_outcome) in &outcome.views {
            if fired_scopes.contains(name.as_str()) {
                continue;
            }
            prop_assert_eq!(
                Some(&view_outcome),
                expected.get(name.as_str()),
                "unaffected view {} diverged under plan {:?}",
                name,
                plan_text
            );
        }
    }

    /// Property (c): an installed plan with no fault specs is
    /// indistinguishable from running without any plan, under the
    /// default fail-fast policy.
    #[test]
    fn empty_plan_matches_fault_free_failfast(cfg in config(), seed in 0u64..300) {
        let _serial = eve::faults::serial_guard();
        let w = SynthWorkload::random(&cfg, seed);
        let change = w.delete_change();
        let baseline = synchronizer(&w, seed, 2, FailurePolicy::FailFast)
            .apply(&change)
            .expect("target described");

        let plan = FaultPlan::parse("seed=1").expect("empty plan parses");
        let (result, report) = with_plan(plan, || {
            synchronizer(&w, seed, 2, FailurePolicy::FailFast)
                .apply(&change)
                .expect("target described")
        });
        let outcome = result.expect("no faults to fire");
        prop_assert_eq!(report.injected, 0);
        prop_assert_eq!(&outcome, &baseline);
    }

    /// Property (d): a transient fault on a view's sync site, retried
    /// under `Degrade`, converges to the exact fault-free outcome.
    #[test]
    fn transient_retries_converge_to_fault_free(
        cfg in config(),
        seed in 0u64..300,
        threads in prop_oneof![Just(1usize), Just(2usize), Just(8usize)],
    ) {
        let _serial = eve::faults::serial_guard();
        let w = SynthWorkload::random(&cfg, seed);
        let change = w.delete_change();
        let baseline = synchronizer(&w, seed, threads, degrade())
            .apply(&change)
            .expect("target described");

        // The victim must actually reference the delete target — an
        // unaffected view early-returns before its sync site is reached.
        let touching: Vec<String> = views_touching(&w.mkb, &w.target, 6, 3, seed)
            .into_iter()
            .map(|v| v.name)
            .collect();
        if touching.is_empty() {
            return Err(TestCaseError::Reject("no affected views generated".into()));
        }
        let victim = &touching[seed as usize % touching.len()];
        let plan = FaultPlan::parse(&format!("seed=2;{victim}/view.sync#0=transient"))
            .expect("plan parses");
        let (result, report) = with_plan(plan, || {
            synchronizer(&w, seed, threads, degrade())
                .apply(&change)
                .expect("target described")
        });
        let outcome = result.expect("transient faults are contained");
        prop_assert_eq!(report.injected, 1, "fault fired exactly once");
        prop_assert_eq!(&outcome, &baseline, "retry converged to the fault-free outcome");
    }
}

/// Deterministic replay: the same seed + plan produces the identical
/// [`ChangeOutcome`] — including the per-view retry `attempts` — no
/// matter how many workers run the fan-out, because fault hits are
/// counted per (view scope, site) and retries run in registration
/// order on the applying thread.
#[test]
fn replay_is_deterministic_across_worker_counts() {
    let _serial = eve::faults::serial_guard();
    let cfg = SynthConfig {
        n_relations: 14,
        topology: Topology::Random { extra: 6 },
        cover_count: 2,
        view_relations: 3,
        ..SynthConfig::default()
    };
    let w = SynthWorkload::random(&cfg, 11);
    let change = w.delete_change();
    let names = view_names(&w, 11);
    let victim = names.first().expect("fan-out views exist").clone();
    // A persistent transient on the victim's sync site: the initial run
    // and both retries all fault, so the view lands as Failed after 3
    // deterministic attempts.
    let plan_text = format!("seed=5;{victim}/view.sync=transient");

    let mut runs: Vec<ChangeOutcome> = Vec::new();
    for threads in [1usize, 2, 8] {
        let plan = FaultPlan::parse(&plan_text).expect("plan parses");
        let (result, report) = with_plan(plan, || {
            synchronizer(&w, 11, threads, degrade())
                .apply(&change)
                .expect("target described")
        });
        let outcome = result.expect("transient faults are contained");
        assert_eq!(
            report.injected, 3,
            "initial attempt + 2 retries, threads={threads}"
        );
        runs.push(outcome);
    }

    let (_, victim_outcome) = runs[0]
        .views
        .iter()
        .find(|(n, _)| *n == victim)
        .expect("victim view is reported");
    match victim_outcome {
        eve::cvs::ViewOutcome::Failed { attempts, .. } => assert_eq!(*attempts, 3),
        other => panic!("victim should have failed, got {other:?}"),
    }
    assert_eq!(runs[0], runs[1], "1 worker vs 2 workers");
    assert_eq!(runs[0], runs[2], "1 worker vs 8 workers");
}
