//! Property-based tests for the hypergraph layer, checked against naive
//! reference implementations (brute-force union-find connectivity).

use eve::hypergraph::{ConnectionTree, Hypergraph};
use eve::misd::JoinConstraint;
use eve::relational::{AttrRef, Clause, Conjunction, RelName};
use proptest::prelude::*;
use std::collections::BTreeSet;

fn rel(i: usize) -> RelName {
    RelName::new(format!("R{i}"))
}

fn jc(id: usize, a: usize, b: usize) -> JoinConstraint {
    JoinConstraint::new(
        format!("J{id}"),
        rel(a),
        rel(b),
        Conjunction::new(vec![Clause::eq_attrs(
            AttrRef::new(rel(a), "k"),
            AttrRef::new(rel(b), "k"),
        )]),
    )
}

/// A random multigraph over `n` relations with the given edge list.
fn graph(n: usize, edges: &[(usize, usize)]) -> Hypergraph {
    let rels: BTreeSet<RelName> = (0..n).map(rel).collect();
    let joins = edges
        .iter()
        .enumerate()
        .map(|(i, (a, b))| jc(i, *a, *b))
        .collect();
    Hypergraph::from_parts(rels, joins)
}

/// Reference connectivity via union-find.
fn reference_components(n: usize, edges: &[(usize, usize)]) -> Vec<usize> {
    let mut parent: Vec<usize> = (0..n).collect();
    fn find(p: &mut Vec<usize>, i: usize) -> usize {
        if p[i] != i {
            let r = find(p, p[i]);
            p[i] = r;
        }
        p[i]
    }
    for (a, b) in edges {
        let (ra, rb) = (find(&mut parent, *a), find(&mut parent, *b));
        parent[ra] = rb;
    }
    (0..n).map(|i| find(&mut parent, i)).collect()
}

fn edges_strategy(n: usize) -> impl Strategy<Value = Vec<(usize, usize)>> {
    proptest::collection::vec((0..n, 0..n), 0..(2 * n)).prop_map(move |pairs| {
        pairs
            .into_iter()
            .filter(|(a, b)| a != b)
            .collect::<Vec<_>>()
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Component structure agrees with union-find.
    #[test]
    fn components_match_union_find(n in 2usize..12, seed_edges in edges_strategy(11)) {
        let edges: Vec<_> = seed_edges.into_iter().filter(|(a, b)| a < &n && b < &n).collect();
        let g = graph(n, &edges);
        let roots = reference_components(n, &edges);
        for i in 0..n {
            for j in 0..n {
                let connected = roots[i] == roots[j];
                let comp = g.component_relations(&rel(i)).expect("vertex exists");
                prop_assert_eq!(
                    comp.contains(&rel(j)),
                    connected,
                    "R{} vs R{} (edges {:?})", i, j, edges
                );
            }
        }
        // Component count matches the number of distinct roots.
        let distinct: BTreeSet<usize> = roots.iter().copied().collect();
        prop_assert_eq!(g.components().len(), distinct.len());
    }

    /// Every path returned by `join_path` is a valid chain from source to
    /// target, and exists iff the endpoints are connected.
    #[test]
    fn join_paths_are_valid_chains(n in 2usize..10, seed_edges in edges_strategy(9)) {
        let edges: Vec<_> = seed_edges.into_iter().filter(|(a, b)| a < &n && b < &n).collect();
        let g = graph(n, &edges);
        let roots = reference_components(n, &edges);
        for i in 0..n {
            for j in 0..n {
                let path = g.join_path(&rel(i), &rel(j));
                prop_assert_eq!(path.is_some(), roots[i] == roots[j]);
                if let Some(p) = path {
                    // The chain must start at i, end at j, and link up.
                    let mut cur = rel(i);
                    for step in &p {
                        let next = step.other(&cur);
                        prop_assert!(next.is_some(), "broken chain at {cur}");
                        cur = next.expect("checked").clone();
                    }
                    prop_assert_eq!(cur, rel(j));
                }
            }
        }
    }

    /// All simple paths are simple (no repeated relation) and within the
    /// edge budget; the set includes the shortest path.
    #[test]
    fn simple_paths_are_simple(n in 3usize..9, seed_edges in edges_strategy(8), budget in 1usize..6) {
        let edges: Vec<_> = seed_edges.into_iter().filter(|(a, b)| a < &n && b < &n).collect();
        let g = graph(n, &edges);
        let (a, b) = (rel(0), rel(n - 1));
        let paths = g.all_simple_paths(&a, &b, budget);
        for p in &paths {
            prop_assert!(p.len() <= budget);
            // Walk and collect visited relations.
            let mut visited: BTreeSet<RelName> = [a.clone()].into_iter().collect();
            let mut cur = a.clone();
            for step in p {
                cur = step.other(&cur).expect("chain links").clone();
                prop_assert!(visited.insert(cur.clone()), "revisited {cur}");
            }
            prop_assert_eq!(cur, b.clone());
        }
        if let Some(shortest) = g.join_path(&a, &b) {
            if shortest.len() <= budget {
                prop_assert!(
                    paths.iter().any(|p| p.len() == shortest.len()),
                    "shortest path missing from enumeration"
                );
            }
        }
    }

    /// A connection tree spans its terminals with exactly the joins it
    /// lists, and exists iff the terminals are mutually connected.
    #[test]
    fn connection_trees_span_terminals(
        n in 2usize..10,
        seed_edges in edges_strategy(9),
        picks in proptest::collection::btree_set(0usize..9, 1..4),
    ) {
        let edges: Vec<_> = seed_edges.into_iter().filter(|(a, b)| a < &n && b < &n).collect();
        let g = graph(n, &edges);
        let terminals: BTreeSet<RelName> =
            picks.into_iter().filter(|i| *i < n).map(rel).collect();
        if terminals.is_empty() {
            return Ok(());
        }
        let roots = reference_components(n, &edges);
        let idx = |r: &RelName| -> usize {
            r.as_str()[1..].parse().expect("generated name")
        };
        let all_connected = {
            let mut it = terminals.iter();
            let first = idx(it.next().expect("nonempty"));
            terminals.iter().all(|t| roots[idx(t)] == roots[first])
        };
        match ConnectionTree::connect(&g, &terminals) {
            Some(tree) => {
                prop_assert!(all_connected);
                for t in &terminals {
                    prop_assert!(tree.contains(t));
                }
                // The tree's own edges connect its relation set.
                let sub = Hypergraph::from_parts(tree.relations.clone(), tree.joins.clone());
                prop_assert!(sub.is_connected_set(&tree.relations));
            }
            None => prop_assert!(!all_connected),
        }
    }
}
