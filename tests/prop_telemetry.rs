//! Telemetry neutrality: instrumenting the sync pipeline must never
//! change its results. Whatever sinks are attached — none, an in-memory
//! collector, or a JSONL writer — [`eve::cvs::Synchronizer::apply`]
//! returns byte-identical [`eve::cvs::ChangeOutcome`]s (extending the
//! `prop_parallel` determinism suite to the observability axis).
//!
//! The telemetry pipeline is process-global, so every test run holds
//! [`eve::telemetry::serial_guard`] while installing/uninstalling.

use eve::cvs::{ChangeOutcome, CvsOptions, FailurePolicy, Synchronizer, SynchronizerBuilder};
use eve::telemetry::{Collector, JsonlSink, Sink};
use eve::workload::{random_views, views_touching, SynthConfig, SynthWorkload, Topology};
use proptest::prelude::*;
use std::sync::Arc;
use std::time::Duration;

fn config() -> impl Strategy<Value = SynthConfig> {
    (
        6usize..20,
        prop_oneof![
            Just(Topology::Chain),
            Just(Topology::Star),
            (0usize..10).prop_map(|extra| Topology::Random { extra }),
        ],
        1usize..4,
        2usize..4,
    )
        .prop_map(
            |(n_relations, topology, cover_count, view_relations)| SynthConfig {
                n_relations,
                topology,
                cover_count,
                view_relations,
                ..SynthConfig::default()
            },
        )
}

fn synchronizer(w: &SynthWorkload, seed: u64, threads: usize) -> Synchronizer {
    let mut builder = SynchronizerBuilder::new(w.mkb.clone()).with_options(CvsOptions {
        parallelism: Some(threads),
        ..CvsOptions::default()
    });
    for v in views_touching(&w.mkb, &w.target, 4, 3, seed) {
        builder = builder.with_view(v).expect("fan-out view is valid");
    }
    for v in random_views(&w.mkb, 3, 2, seed.wrapping_add(1)) {
        builder = builder.with_view(v).expect("random view is valid");
    }
    builder.build()
}

/// Apply the workload's delete change with the given sinks installed
/// (empty = enabled but unobserved), returning the outcome produced
/// while telemetry was live.
fn apply_with_sinks(
    w: &SynthWorkload,
    seed: u64,
    threads: usize,
    sinks: Vec<Arc<dyn Sink>>,
) -> ChangeOutcome {
    eve::telemetry::install(sinks).expect("no other pipeline installed");
    let mut sync = synchronizer(w, seed, threads);
    let result = sync.apply(&w.delete_change());
    eve::telemetry::uninstall();
    result.expect("target described")
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// The satellite invariant: outcomes are identical with telemetry
    /// disabled, enabled with no sinks, enabled with a collector, and
    /// enabled with a JSONL sink attached — sequentially and with a
    /// worker pool.
    #[test]
    fn outcomes_unaffected_by_telemetry(cfg in config(), seed in 0u64..200) {
        let w = SynthWorkload::random(&cfg, seed);
        let _serial = eve::telemetry::serial_guard();
        for threads in [1usize, 4] {
            let mut baseline_sync = synchronizer(&w, seed, threads);
            let baseline = baseline_sync.apply(&w.delete_change()).expect("target described");

            let unobserved = apply_with_sinks(&w, seed, threads, vec![]);
            prop_assert_eq!(&unobserved, &baseline, "no-sink run diverged (threads={})", threads);

            let collector = Collector::new();
            let collected = apply_with_sinks(&w, seed, threads, vec![collector.clone()]);
            prop_assert_eq!(&collected, &baseline, "collector run diverged (threads={})", threads);
            // The collector must actually have observed the pipeline —
            // otherwise this test is vacuous.
            let spans = collector.spans();
            prop_assert!(spans.iter().any(|s| s.name == "apply"), "no apply span recorded");

            let jsonl = JsonlSink::from_writer(Box::new(std::io::sink()));
            let traced = apply_with_sinks(&w, seed, threads, vec![Arc::new(jsonl)]);
            prop_assert_eq!(&traced, &baseline, "JSONL run diverged (threads={})", threads);
        }
    }

    /// Flight-recorder neutrality: arming the recorder (with a small
    /// capacity, so eviction happens) never changes sync outcomes.
    #[test]
    fn outcomes_unaffected_by_flight_recorder(cfg in config(), seed in 0u64..200) {
        let w = SynthWorkload::random(&cfg, seed);
        let _serial = eve::telemetry::serial_guard();
        for threads in [1usize, 4] {
            let baseline = apply_with_sinks(&w, seed, threads, vec![]);

            eve::telemetry::flight_install(32, None).expect("no other recorder installed");
            let recorded = apply_with_sinks(&w, seed, threads, vec![]);
            let stats = eve::telemetry::flight_stats().expect("recorder installed");
            eve::telemetry::flight_uninstall();

            prop_assert_eq!(&recorded, &baseline, "recorder run diverged (threads={})", threads);
            // The recorder must actually have observed the pipeline —
            // otherwise this test is vacuous.
            prop_assert!(stats.buffered > 0, "recorder captured nothing");
        }
    }
}

/// The per-thread rings never hold more than their capacity, no matter
/// how long the event stream runs; overflow is counted, not grown.
#[test]
fn flight_recorder_memory_is_bounded() {
    let _serial = eve::telemetry::serial_guard();
    eve::telemetry::install(vec![]).expect("no other pipeline installed");
    eve::telemetry::flight_install(64, None).expect("no other recorder installed");

    // A long seeded stream: real sync traffic plus a counter flood.
    let cfg = SynthConfig {
        n_relations: 12,
        topology: Topology::Chain,
        ..SynthConfig::default()
    };
    let w = SynthWorkload::random(&cfg, 42);
    let mut sync = synchronizer(&w, 42, 4);
    sync.apply(&w.delete_change()).expect("target described");
    for i in 0..10_000u64 {
        eve::telemetry::counter_add("flood", 1 + (i % 3));
        if i % 16 == 0 {
            let _s = eve::telemetry::span("flood-span");
        }
    }

    let stats = eve::telemetry::flight_stats().expect("recorder installed");
    assert!(stats.threads >= 1);
    assert!(
        stats.buffered <= stats.threads * stats.capacity,
        "{} events buffered across {} rings of capacity {}",
        stats.buffered,
        stats.threads,
        stats.capacity
    );
    assert!(stats.dropped > 0, "flood must overflow the rings");
    let dump = eve::telemetry::flight_dump().expect("recorder installed");
    assert_eq!(dump.lines().count(), stats.buffered);

    eve::telemetry::flight_uninstall().expect("recorder was installed");
    eve::telemetry::uninstall().expect("pipeline was installed");
}

/// Same pinned fault seed, same dump bytes — across 1, 2, and 8
/// workers. `Degrade` lands every affected view as failed (the plan
/// fires on every `view.sync` attempt), each failure triggers the
/// recorder, and the canonical dump excludes all scheduling-dependent
/// fields, so the merged windows must be byte-identical.
#[test]
fn flight_dump_is_byte_identical_across_worker_counts() {
    let _serial = eve::telemetry::serial_guard();
    let _faults = eve::faults::serial_guard();
    let cfg = SynthConfig {
        n_relations: 10,
        topology: Topology::Chain,
        ..SynthConfig::default()
    };
    let w = SynthWorkload::random(&cfg, 7);
    let change = w.delete_change();

    let run = |threads: usize| {
        eve::telemetry::install(vec![]).expect("no other pipeline installed");
        eve::telemetry::flight_install(8192, None).expect("no other recorder installed");
        let _ = eve::faults::uninstall();
        let plan = eve::faults::FaultPlan::parse("seed=7;view.sync=transient")
            .expect("pinned plan parses");
        eve::faults::install(plan).expect("no competing plan while serialized");

        let mut builder = SynchronizerBuilder::new(w.mkb.clone()).with_options(CvsOptions {
            parallelism: Some(threads),
            failure: FailurePolicy::Degrade {
                max_retries: 2,
                backoff: Duration::ZERO,
            },
            ..CvsOptions::default()
        });
        for v in views_touching(&w.mkb, &w.target, 4, 3, 7) {
            builder = builder.with_view(v).expect("fan-out view is valid");
        }
        let outcome = builder.build().apply(&change).expect("target described");
        assert!(
            outcome.views.iter().any(|(_, o)| !o.survived()),
            "the every-hit transient plan must fail affected views"
        );

        let dump = eve::telemetry::flight_last_dump().expect("a failure triggered a dump");
        eve::faults::uninstall().expect("plan still installed");
        let stats = eve::telemetry::flight_uninstall().expect("recorder was installed");
        eve::telemetry::uninstall().expect("pipeline was installed");
        assert_eq!(
            stats.dropped, 0,
            "windows must not overflow for byte-identity"
        );
        dump
    };

    let d1 = run(1);
    let d2 = run(2);
    let d8 = run(8);
    assert_eq!(d1, d2, "dump differs between 1 and 2 workers");
    assert_eq!(d1, d8, "dump differs between 1 and 8 workers");
    assert!(d1.starts_with("{\"type\":\"flight-dump\",\"reason\":\"view-failed\""));
    assert!(d1.contains("\"type\":\"fault\""));
    assert!(d1.contains("\"kind\":\"transient\""));
}
