//! Telemetry neutrality: instrumenting the sync pipeline must never
//! change its results. Whatever sinks are attached — none, an in-memory
//! collector, or a JSONL writer — [`eve::cvs::Synchronizer::apply`]
//! returns byte-identical [`eve::cvs::ChangeOutcome`]s (extending the
//! `prop_parallel` determinism suite to the observability axis).
//!
//! The telemetry pipeline is process-global, so every test run holds
//! [`eve::telemetry::serial_guard`] while installing/uninstalling.

use eve::cvs::{ChangeOutcome, CvsOptions, Synchronizer, SynchronizerBuilder};
use eve::telemetry::{Collector, JsonlSink, Sink};
use eve::workload::{random_views, views_touching, SynthConfig, SynthWorkload, Topology};
use proptest::prelude::*;
use std::sync::Arc;

fn config() -> impl Strategy<Value = SynthConfig> {
    (
        6usize..20,
        prop_oneof![
            Just(Topology::Chain),
            Just(Topology::Star),
            (0usize..10).prop_map(|extra| Topology::Random { extra }),
        ],
        1usize..4,
        2usize..4,
    )
        .prop_map(
            |(n_relations, topology, cover_count, view_relations)| SynthConfig {
                n_relations,
                topology,
                cover_count,
                view_relations,
                ..SynthConfig::default()
            },
        )
}

fn synchronizer(w: &SynthWorkload, seed: u64, threads: usize) -> Synchronizer {
    let mut builder = SynchronizerBuilder::new(w.mkb.clone()).with_options(CvsOptions {
        parallelism: Some(threads),
        ..CvsOptions::default()
    });
    for v in views_touching(&w.mkb, &w.target, 4, 3, seed) {
        builder = builder.with_view(v).expect("fan-out view is valid");
    }
    for v in random_views(&w.mkb, 3, 2, seed.wrapping_add(1)) {
        builder = builder.with_view(v).expect("random view is valid");
    }
    builder.build()
}

/// Apply the workload's delete change with the given sinks installed
/// (empty = enabled but unobserved), returning the outcome produced
/// while telemetry was live.
fn apply_with_sinks(
    w: &SynthWorkload,
    seed: u64,
    threads: usize,
    sinks: Vec<Arc<dyn Sink>>,
) -> ChangeOutcome {
    eve::telemetry::install(sinks).expect("no other pipeline installed");
    let mut sync = synchronizer(w, seed, threads);
    let result = sync.apply(&w.delete_change());
    eve::telemetry::uninstall();
    result.expect("target described")
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// The satellite invariant: outcomes are identical with telemetry
    /// disabled, enabled with no sinks, enabled with a collector, and
    /// enabled with a JSONL sink attached — sequentially and with a
    /// worker pool.
    #[test]
    fn outcomes_unaffected_by_telemetry(cfg in config(), seed in 0u64..200) {
        let w = SynthWorkload::random(&cfg, seed);
        let _serial = eve::telemetry::serial_guard();
        for threads in [1usize, 4] {
            let mut baseline_sync = synchronizer(&w, seed, threads);
            let baseline = baseline_sync.apply(&w.delete_change()).expect("target described");

            let unobserved = apply_with_sinks(&w, seed, threads, vec![]);
            prop_assert_eq!(&unobserved, &baseline, "no-sink run diverged (threads={})", threads);

            let collector = Collector::new();
            let collected = apply_with_sinks(&w, seed, threads, vec![collector.clone()]);
            prop_assert_eq!(&collected, &baseline, "collector run diverged (threads={})", threads);
            // The collector must actually have observed the pipeline —
            // otherwise this test is vacuous.
            let spans = collector.spans();
            prop_assert!(spans.iter().any(|s| s.name == "apply"), "no apply span recorded");

            let jsonl = JsonlSink::from_writer(Box::new(std::io::sink()));
            let traced = apply_with_sinks(&w, seed, threads, vec![Arc::new(jsonl)]);
            prop_assert_eq!(&traced, &baseline, "JSONL run diverged (threads={})", threads);
        }
    }
}
