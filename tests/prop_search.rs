//! Property-based tests of the streaming, budgeted rewriting search
//! ([`eve::cvs::cvs_delete_relation_searched`]): with every bound at its
//! unlimited setting the lazy pipeline must reproduce the legacy
//! materialize-then-rank results exactly, `top_k = 1` must return the
//! head of the full ranking, budget-truncated runs must be ordered
//! subsequences of the exhaustive ranking with truncation reported in
//! [`eve::cvs::SearchStats`], and the parallel per-view fan-out must
//! stay byte-identical to the sequential run when budgets are active.

use eve::cvs::{
    cvs_delete_relation_indexed, cvs_delete_relation_searched, rank_by_cost, CostModel, CvsOptions,
    MkbIndex, SearchBudget, Synchronizer, SynchronizerBuilder,
};
use eve::misd::evolve;
use eve::workload::{random_views, views_touching, SynthConfig, SynthWorkload, Topology};
use proptest::prelude::*;

fn config() -> impl Strategy<Value = SynthConfig> {
    (
        6usize..24,
        prop_oneof![
            Just(Topology::Chain),
            Just(Topology::Star),
            (0usize..12).prop_map(|extra| Topology::Random { extra }),
        ],
        1usize..4,
        2usize..4,
    )
        .prop_map(
            |(n_relations, topology, cover_count, view_relations)| SynthConfig {
                n_relations,
                topology,
                cover_count,
                view_relations,
                ..SynthConfig::default()
            },
        )
}

/// A synchronizer over a mixed population (fan-out views touching the
/// delete target plus random bystanders) with an explicit worker count
/// and search budget.
fn synchronizer(
    w: &SynthWorkload,
    seed: u64,
    threads: usize,
    budget: SearchBudget,
) -> Synchronizer {
    let mut builder = SynchronizerBuilder::new(w.mkb.clone()).with_options(CvsOptions {
        parallelism: Some(threads),
        budget,
        ..CvsOptions::default()
    });
    for v in views_touching(&w.mkb, &w.target, 6, 3, seed) {
        builder = builder.with_view(v).expect("fan-out view is valid");
    }
    for v in random_views(&w.mkb, 4, 2, seed.wrapping_add(1)) {
        builder = builder.with_view(v).expect("random view is valid");
    }
    builder.build()
}

/// Is `sub` an ordered subsequence of `full`?
fn is_subsequence<T: PartialEq>(sub: &[T], full: &[T]) -> bool {
    let mut it = full.iter();
    sub.iter().all(|s| it.any(|f| f == s))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Unbudgeted streaming search with a cost model equals the legacy
    /// pipeline: full structural enumeration followed by
    /// [`rank_by_cost`]. This is the byte-identity acceptance criterion
    /// for the lazy refactor.
    #[test]
    fn unbudgeted_search_matches_legacy_rank(cfg in config(), seed in 0u64..500) {
        let w = SynthWorkload::random(&cfg, seed);
        let mkb2 = evolve(&w.mkb, &w.delete_change()).expect("target described");
        let opts = CvsOptions::default();
        let index = MkbIndex::new(&w.mkb, &mkb2, &opts);
        let model = CostModel::default();
        let legacy = cvs_delete_relation_indexed(&w.view, &w.target, &index, &opts);
        let searched =
            cvs_delete_relation_searched(&w.view, &w.target, &index, &opts, false, Some(&model));
        match (legacy, searched) {
            (Ok(mut legacy), Ok(searched)) => {
                rank_by_cost(&model, &w.view, &mut legacy);
                prop_assert_eq!(&searched.rewritings, &legacy);
                prop_assert_eq!(searched.stats.kept, legacy.len());
                prop_assert!(!searched.stats.budget_exhausted);
            }
            (Err(a), Err(b)) => prop_assert_eq!(a, b),
            (a, b) => prop_assert!(false, "divergent outcomes: {:?} vs {:?}", a, b),
        }
    }

    /// `top_k = 1` returns exactly the head of the full ranking — in
    /// both structural mode (no cost model) and cost mode.
    #[test]
    fn top1_is_head_of_full_ranking(cfg in config(), seed in 0u64..500) {
        let w = SynthWorkload::random(&cfg, seed);
        let mkb2 = evolve(&w.mkb, &w.delete_change()).expect("target described");
        let model = CostModel::default();
        for cost_model in [None, Some(&model)] {
            let opts = CvsOptions::default();
            let index = MkbIndex::new(&w.mkb, &mkb2, &opts);
            let full = cvs_delete_relation_searched(
                &w.view, &w.target, &index, &opts, false, cost_model,
            );
            let top1_opts = CvsOptions {
                budget: SearchBudget::top_k(1),
                ..CvsOptions::default()
            };
            let index1 = MkbIndex::new(&w.mkb, &mkb2, &top1_opts);
            let top1 = cvs_delete_relation_searched(
                &w.view, &w.target, &index1, &top1_opts, false, cost_model,
            );
            match (full, top1) {
                (Ok(full), Ok(top1)) => {
                    prop_assert_eq!(top1.rewritings.len(), 1);
                    prop_assert_eq!(&top1.rewritings[0], &full.rewritings[0]);
                    // Pruning may skip work but never changes the winner.
                    prop_assert!(top1.stats.generated <= full.stats.generated);
                }
                (Err(a), Err(b)) => prop_assert_eq!(a, b),
                (a, b) => prop_assert!(false, "divergent outcomes: {:?} vs {:?}", a, b),
            }
        }
    }

    /// A candidate-capped run keeps an ordered subsequence of the
    /// exhaustive ranking, generates no more than the cap, and reports
    /// truncation (`budget_exhausted`) whenever it saw fewer candidates
    /// than the exhaustive run.
    #[test]
    fn capped_run_is_ordered_subsequence(
        cfg in config(),
        seed in 0u64..500,
        cap in 1usize..6,
    ) {
        let w = SynthWorkload::random(&cfg, seed);
        let mkb2 = evolve(&w.mkb, &w.delete_change()).expect("target described");
        let opts = CvsOptions::default();
        let index = MkbIndex::new(&w.mkb, &mkb2, &opts);
        let full = cvs_delete_relation_searched(&w.view, &w.target, &index, &opts, false, None);
        let capped_opts = CvsOptions {
            budget: SearchBudget {
                max_candidates: cap,
                ..SearchBudget::default()
            },
            ..CvsOptions::default()
        };
        let capped_index = MkbIndex::new(&w.mkb, &mkb2, &capped_opts);
        let capped = cvs_delete_relation_searched(
            &w.view, &w.target, &capped_index, &capped_opts, false, None,
        );
        if let (Ok(full), Ok(capped)) = (full, capped) {
            prop_assert!(capped.stats.generated <= cap);
            prop_assert!(
                is_subsequence(&capped.rewritings, &full.rewritings),
                "{:?} not a subsequence of {:?}",
                capped.rewritings,
                full.rewritings
            );
            if capped.stats.generated < full.stats.generated {
                prop_assert!(capped.stats.budget_exhausted);
            } else {
                prop_assert_eq!(&capped.rewritings, &full.rewritings);
                prop_assert!(!capped.stats.budget_exhausted);
            }
        }
    }

    /// The parallel fan-out stays byte-identical to the sequential run
    /// when a budget is active: per-view `SearchStats` and truncation
    /// flags are deterministic, so worker count must not show through.
    #[test]
    fn parallel_matches_sequential_under_budget(cfg in config(), seed in 0u64..500) {
        let w = SynthWorkload::random(&cfg, seed);
        let change = w.delete_change();
        let budget = SearchBudget {
            top_k: 2,
            max_candidates: 8,
            ..SearchBudget::default()
        };
        let mut baseline = synchronizer(&w, seed, 1, budget);
        let expected = baseline.apply(&change).expect("target described");
        for threads in [2usize, 8] {
            let mut sync = synchronizer(&w, seed, threads, budget);
            let outcome = sync.apply(&change).expect("target described");
            prop_assert_eq!(&outcome, &expected, "threads={}", threads);
        }
    }
}
