//! Cross-crate integration tests: the full EVE pipeline — MISD text →
//! MKB → hypergraph → CVS → rewritten E-SQL → evaluation over generated
//! IS states.

use eve::cvs::{empirical_extent, evaluate_view, CvsOptions, SynchronizerBuilder, ViewOutcome};
use eve::esql::parse_view;
use eve::misd::CapabilityChange;
use eve::relational::{AttrRef, FuncRegistry, RelName};
use eve::workload::{scenario::travel_scenario, SynthConfig, SynthWorkload, TravelFixture};

/// The headline behaviour: a change that would disable the view under
/// classical view technology produces a working, evaluable rewriting.
#[test]
fn rewritten_view_evaluates_on_real_data() {
    let fixture = TravelFixture::new();
    // Eq. (5) with the extra conditions marked dispensable so the §4
    // well-formedness assumption (distinguished ⊆ preserved) holds for
    // registration; CVS behaviour is identical.
    let view = parse_view(
        "CREATE VIEW Customer-Passengers-Asia AS
         SELECT C.Name (false, true), C.Age (true, true), F.PName (true, true),
                P.Participant (true, true), P.TourID (true, true)
         FROM Customer C (true, true), FlightRes F (true, true), Participant P (true, true)
         WHERE (C.Name = F.PName) (false, true) AND (F.Dest = 'Asia') (CD = true)
           AND (P.StartDate = F.Date) (CD = true) AND (P.Loc = 'Asia') (CD = true)",
    )
    .expect("view parses");
    let mut sync = SynchronizerBuilder::new(fixture.mkb().clone())
        .with_view(view)
        .unwrap_or_else(|e| panic!("{e}"))
        .build();

    let outcome = sync
        .apply(&CapabilityChange::DeleteRelation(RelName::new("Customer")))
        .expect("MKB evolves");
    let (_, view_outcome) = &outcome.views[0];
    let chosen = match view_outcome {
        ViewOutcome::Rewritten { chosen, .. } => chosen,
        other => panic!("expected rewriting, got {other:?}"),
    };

    // Evaluate the rewriting on a generated state — it must run without
    // touching the deleted relation.
    let db = fixture.database(5, 80);
    let funcs = FuncRegistry::new();
    let result = evaluate_view(&chosen.view, &db, &funcs).expect("evolved view evaluates");
    assert!(!result.is_empty(), "workload guarantees Asia passengers");
}

/// The adopted rewriting's extent relationship holds empirically across
/// many generated states.
#[test]
fn adopted_rewriting_extent_holds_across_states() {
    let fixture = TravelFixture::new();
    let view = TravelFixture::customer_passengers_asia_eq5();
    let customer = RelName::new("Customer");
    let mkb2 = eve::misd::evolve(
        fixture.mkb(),
        &CapabilityChange::DeleteRelation(customer.clone()),
    )
    .expect("evolves");
    let rewritings = eve_bench::support::cvs_dr(
        &view,
        &customer,
        fixture.mkb(),
        &mkb2,
        &CvsOptions::default(),
    )
    .expect("curable");
    let funcs = FuncRegistry::new();

    // The first rewriting is verdict-⊇ (pure swap through F1); verify on
    // 10 states.
    let best = &rewritings[0];
    assert!(best.verdict == eve::cvs::ExtentVerdict::Superset || !best.satisfies_p3);
    for seed in 0..10 {
        let db = fixture.database(seed, 50);
        let obs = empirical_extent(&best.view, &view, &db, &funcs).expect("evaluates");
        if best.verdict == eve::cvs::ExtentVerdict::Superset {
            assert!(obs.is_superset(), "seed {seed}: observed {obs}");
        }
    }
}

/// Multi-change lifecycle keeps every view alive and every intermediate
/// state well-formed.
#[test]
fn travel_scenario_preserves_all_views() {
    let (sync, report) = travel_scenario()
        .replay(CvsOptions::default())
        .expect("replay succeeds");
    assert_eq!(report.disabled(), 0);
    // Every surviving view re-parses from its printed form (the system's
    // output is valid E-SQL).
    for v in sync.views() {
        let printed = v.to_string();
        parse_view(&printed).unwrap_or_else(|e| panic!("unparseable evolved view: {e}\n{printed}"));
    }
}

/// A cascade: delete two relations in sequence; the view is rewritten
/// twice, the second time over the MKB evolved by the first change.
#[test]
fn cascaded_deletions() {
    let w = SynthWorkload::chain(1, true);
    // chain(1): T joined with W; Cov covers T. First delete T (rewrites
    // onto Cov), then rename Cov — the rename must reach the already
    // rewritten view.
    let mut sync = SynchronizerBuilder::new(w.mkb.clone())
        .with_view(w.view.clone())
        .unwrap_or_else(|e| panic!("{e}"))
        .build();
    let o1 = sync.apply(&w.delete_change()).expect("evolves");
    assert!(matches!(o1.views[0].1, ViewOutcome::Rewritten { .. }));
    let o2 = sync
        .apply(&CapabilityChange::RenameRelation {
            from: RelName::new("Cov"),
            to: RelName::new("Coverage"),
        })
        .expect("evolves");
    assert!(matches!(o2.views[0].1, ViewOutcome::Rewritten { .. }));
    let v = sync.view("ChainView").expect("alive");
    assert!(v.uses_relation(&RelName::new("Coverage")));
    assert!(!v.uses_relation(&RelName::new("Cov")));
}

/// Deleting an attribute that only dispensable components use leaves the
/// view running with a narrower interface.
#[test]
fn dispensable_attribute_shrinks_interface() {
    let fixture = TravelFixture::new();
    let mut sync = SynchronizerBuilder::new(fixture.mkb().clone())
        .with_view(
            parse_view(
                "CREATE VIEW PhoneBook AS
                 SELECT C.Name, C.Phone (AD = true, AR = false) FROM Customer C",
            )
            .unwrap(),
        )
        .unwrap_or_else(|e| panic!("{e}"))
        .build();
    let outcome = sync
        .apply(&CapabilityChange::DeleteAttribute(AttrRef::new(
            "Customer", "Phone",
        )))
        .expect("evolves");
    assert!(outcome.views[0].1.survived());
    let v = sync.view("PhoneBook").unwrap();
    assert_eq!(v.select.len(), 1);

    let db = fixture.database(1, 10);
    let funcs = FuncRegistry::new();
    let rel = evaluate_view(v, &db, &funcs).expect("evaluates");
    assert_eq!(rel.len(), 10);
}

/// Full disable/revive lifecycle: a view with no legal rewriting is
/// disabled by `delete-relation`, survives unrelated changes while
/// disabled, and returns — definition intact — once a later
/// `add-relation` restores every element it references.
#[test]
fn disabled_view_revived_by_add_relation() {
    use eve::misd::RelationDescription;
    use eve::relational::{AttributeDef, DataType};

    let fixture = TravelFixture::new();
    // Every component indispensable and non-replaceable through covers
    // of Phone — deleting Customer cannot be cured.
    let frozen_src = "CREATE VIEW Frozen AS
         SELECT C.Name (AD = false, AR = false), C.Phone (AD = false, AR = false)
         FROM Customer C";
    let mut sync = SynchronizerBuilder::new(fixture.mkb().clone())
        .with_view(parse_view(frozen_src).unwrap())
        .unwrap_or_else(|e| panic!("{e}"))
        .build();
    let original = sync.view("Frozen").expect("registered").to_string();

    let o1 = sync
        .apply(&CapabilityChange::DeleteRelation(RelName::new("Customer")))
        .expect("evolves");
    assert!(
        matches!(o1.views[0].1, ViewOutcome::Disabled { .. }),
        "{o1}"
    );
    assert!(sync.view("Frozen").is_none());

    // An unrelated add: the view must stay disabled (Name and Phone are
    // still gone).
    let o2 = sync
        .apply(&CapabilityChange::AddRelation(RelationDescription::new(
            "IS9",
            "Unrelated",
            vec![AttributeDef::new("X", DataType::Str)],
        )))
        .expect("evolves");
    assert!(o2.views.iter().all(|(n, _)| n != "Frozen"));
    assert_eq!(sync.disabled_views().count(), 1);

    // Re-adding Customer with every referenced attribute revives the
    // view with its last known definition.
    let o3 = sync
        .apply(&CapabilityChange::AddRelation(RelationDescription::new(
            "IS1",
            "Customer",
            vec![
                AttributeDef::new("Name", DataType::Str),
                AttributeDef::new("Phone", DataType::Str),
            ],
        )))
        .expect("evolves");
    assert!(
        o3.views
            .iter()
            .any(|(n, o)| n == "Frozen" && matches!(o, ViewOutcome::Revived)),
        "{o3}"
    );
    assert_eq!(sync.disabled_views().count(), 0);
    let revived = sync.view("Frozen").expect("revived");
    assert_eq!(revived.to_string(), original);

    // And it evaluates against a state of the restored schema.
    use eve::relational::{Database, Relation, Schema, Tuple, Value};
    let customer = RelName::new("Customer");
    let attrs = vec![
        AttributeDef::new("Name", DataType::Str),
        AttributeDef::new("Phone", DataType::Str),
    ];
    let mut rel = Relation::new(Schema::of_relation(&customer, &attrs));
    rel.insert(Tuple::new(vec![Value::str("Ann"), Value::str("555")]))
        .expect("arity");
    let mut db = Database::new();
    db.put(customer, rel);
    let funcs = FuncRegistry::new();
    let out = evaluate_view(revived, &db, &funcs).expect("revived view evaluates");
    assert_eq!(out.len(), 1);
}

/// Synthetic end-to-end: random workloads synchronize and their
/// rewritings evaluate.
#[test]
fn synthetic_workloads_end_to_end() {
    let funcs = FuncRegistry::new();
    for seed in 0..10u64 {
        let cfg = SynthConfig {
            n_relations: 12,
            ..SynthConfig::default()
        };
        let w = SynthWorkload::random(&cfg, seed);
        let mut sync = SynchronizerBuilder::new(w.mkb.clone())
            .with_view(w.view.clone())
            .unwrap_or_else(|e| panic!("{e}"))
            .build();
        let outcome = sync.apply(&w.delete_change()).expect("evolves");
        if let ViewOutcome::Rewritten { chosen, .. } = &outcome.views[0].1 {
            let db = w.database(seed, 40, 0.6);
            evaluate_view(&chosen.view, &db, &funcs)
                .unwrap_or_else(|e| panic!("seed {seed}: evolved view fails to evaluate: {e}"));
        }
    }
}
