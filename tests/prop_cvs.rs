//! Property-based tests of the CVS pipeline's invariants over synthetic
//! workloads: every produced rewriting is *legal* (Def. 1), prints to
//! valid E-SQL, and its symbolic extent verdict never contradicts the
//! empirically observed extent.

use eve::cvs::{
    cvs_delete_relation_indexed, empirical_extent, svs_delete_relation_indexed, CvsError,
    CvsOptions, ExtentVerdict, LegalRewriting, MkbIndex,
};
use eve::esql::{parse_view, ViewDefinition};
use eve::misd::{evolve, MetaKnowledgeBase};
use eve::relational::{FuncRegistry, RelName};
use eve::workload::{SynthConfig, SynthWorkload, Topology};
use proptest::prelude::*;

/// Run CVS delete-relation the way [`eve::cvs::Synchronizer::apply`]
/// does: build one [`MkbIndex`] for the change, then synchronize.
fn cvs_dr(
    view: &ViewDefinition,
    target: &RelName,
    mkb: &MetaKnowledgeBase,
    mkb_prime: &MetaKnowledgeBase,
    opts: &CvsOptions,
) -> Result<Vec<LegalRewriting>, CvsError> {
    let index = MkbIndex::new(mkb, mkb_prime, opts);
    cvs_delete_relation_indexed(view, target, &index, opts)
}

/// The SVS baseline over a fresh per-change index.
fn svs_dr(
    view: &ViewDefinition,
    target: &RelName,
    mkb: &MetaKnowledgeBase,
    mkb_prime: &MetaKnowledgeBase,
) -> Result<Vec<LegalRewriting>, CvsError> {
    let opts = CvsOptions::default();
    let index = MkbIndex::new(mkb, mkb_prime, &opts);
    svs_delete_relation_indexed(view, target, &index, &opts)
}

fn config() -> impl Strategy<Value = SynthConfig> {
    (
        4usize..24,
        prop_oneof![
            Just(Topology::Chain),
            Just(Topology::Star),
            Just(Topology::Ring),
            (0usize..12).prop_map(|extra| Topology::Random { extra }),
        ],
        1usize..4,
        0.0f64..=1.0,
        2usize..4,
    )
        .prop_map(
            |(n_relations, topology, cover_count, pc_fraction, view_relations)| SynthConfig {
                n_relations,
                topology,
                cover_count,
                pc_fraction,
                view_relations,
                ..SynthConfig::default()
            },
        )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Def. 1 legality (P1, P2, P4) holds for every rewriting CVS emits,
    /// on every workload where it succeeds.
    #[test]
    fn rewritings_are_legal(cfg in config(), seed in 0u64..1000) {
        let w = SynthWorkload::random(&cfg, seed);
        let change = w.delete_change();
        let mkb2 = evolve(&w.mkb, &change).expect("target described");
        let Ok(rewritings) =
            cvs_dr(&w.view, &w.target, &w.mkb, &mkb2, &CvsOptions::default())
        else {
            return Ok(()); // some random MKBs are genuinely incurable
        };
        prop_assert!(!rewritings.is_empty());
        for r in &rewritings {
            prop_assert!(r.check_p1(&change), "P1 violated:\n{}", r.view);
            prop_assert!(r.check_p2(&mkb2), "P2 violated:\n{}", r.view);
            prop_assert!(r.check_p4(&w.view), "P4 violated:\n{}", r.view);
            // Def. 3 (II): the target never reappears.
            prop_assert!(!r.view.uses_relation(&w.target));
            // The WHERE clause is consistent.
            prop_assert!(r.view.where_conjunction().is_consistent());
            // The output is valid E-SQL text.
            let printed = r.view.to_string();
            parse_view(&printed)
                .unwrap_or_else(|e| panic!("unparseable rewriting: {e}\n{printed}"));
        }
    }

    /// SVS (one-step-away) never succeeds where CVS fails, and any SVS
    /// rewriting is also in spirit a CVS rewriting (CVS finds at least as
    /// many candidates).
    #[test]
    fn cvs_dominates_svs(cfg in config(), seed in 0u64..1000) {
        let w = SynthWorkload::random(&cfg, seed);
        let mkb2 = evolve(&w.mkb, &w.delete_change()).expect("target described");
        let cvs = cvs_dr(&w.view, &w.target, &w.mkb, &mkb2, &CvsOptions::default());
        let svs = svs_dr(&w.view, &w.target, &w.mkb, &mkb2);
        if let Ok(svs_rw) = &svs {
            let cvs_rw = cvs.as_ref().unwrap_or_else(|e| {
                panic!("SVS succeeded but CVS failed ({e})")
            });
            prop_assert!(cvs_rw.len() >= svs_rw.len());
        }
    }

    /// The symbolic extent verdict is sound: a certified relationship is
    /// observed empirically on constraint-respecting states.
    #[test]
    fn extent_verdicts_sound(seed in 0u64..500, distance in 1usize..4, with_pc in any::<bool>()) {
        let w = SynthWorkload::chain(distance, with_pc);
        let mkb2 = evolve(&w.mkb, &w.delete_change()).expect("target described");
        let Ok(rewritings) =
            cvs_dr(&w.view, &w.target, &w.mkb, &mkb2, &CvsOptions::default())
        else {
            return Ok(());
        };
        let funcs = FuncRegistry::new();
        let db = w.database(seed, 40, 0.6);
        for r in rewritings.iter().take(2) {
            let observed = empirical_extent(&r.view, &w.view, &db, &funcs)
                .expect("both views evaluate");
            let ok = match r.verdict {
                ExtentVerdict::Equivalent => observed.is_equivalent(),
                ExtentVerdict::Superset => observed.is_superset(),
                ExtentVerdict::Subset => observed.is_subset(),
                ExtentVerdict::Unknown => true,
            };
            prop_assert!(
                ok,
                "verdict {} contradicted by observation {} (seed {seed}, d {distance}):\n{}",
                r.verdict, observed, r.view
            );
        }
    }

    /// Determinism: the same workload always yields the same rewritings
    /// in the same order.
    #[test]
    fn cvs_is_deterministic(cfg in config(), seed in 0u64..1000) {
        let w = SynthWorkload::random(&cfg, seed);
        let mkb2 = evolve(&w.mkb, &w.delete_change()).expect("target described");
        let a = cvs_dr(&w.view, &w.target, &w.mkb, &mkb2, &CvsOptions::default());
        let b = cvs_dr(&w.view, &w.target, &w.mkb, &mkb2, &CvsOptions::default());
        match (a, b) {
            (Ok(x), Ok(y)) => {
                let xs: Vec<String> = x.iter().map(|r| r.view.to_string()).collect();
                let ys: Vec<String> = y.iter().map(|r| r.view.to_string()).collect();
                prop_assert_eq!(xs, ys);
            }
            (Err(x), Err(y)) => prop_assert_eq!(x.to_string(), y.to_string()),
            (x, y) => prop_assert!(false, "nondeterministic outcome: {x:?} vs {y:?}"),
        }
    }
}

/// An independent reimplementation of the Def. 1–3 curability predicate,
/// written directly from the paper (not sharing code with the CVS
/// pipeline): a view is curable under `delete-relation R` iff
///
/// * no indispensable, non-replaceable component references `R`;
/// * every attribute of `R` used by an indispensable (replaceable)
///   component has a cover whose source survives; and
/// * the surviving `Min` relations plus one choice of covers are
///   mutually connected in `H'(MKB')`.
mod oracle {
    use eve::esql::ViewDefinition;
    use eve::hypergraph::Hypergraph;
    use eve::misd::MetaKnowledgeBase;
    use eve::relational::{AttrRef, RelName};
    use std::collections::{BTreeMap, BTreeSet};

    pub fn curable(
        view: &ViewDefinition,
        target: &RelName,
        mkb: &MetaKnowledgeBase,
        mkb_prime: &MetaKnowledgeBase,
    ) -> bool {
        // Classify target attributes per component annotations.
        let mut required: BTreeSet<AttrRef> = BTreeSet::new();
        for item in &view.select {
            for a in item
                .expr
                .attrs()
                .into_iter()
                .filter(|a| &a.relation == target)
            {
                if !item.params.dispensable && !item.params.replaceable {
                    return false; // frozen
                }
                if !item.params.dispensable {
                    required.insert(a);
                }
            }
        }
        for cond in &view.conditions {
            for a in cond
                .clause
                .attrs()
                .into_iter()
                .filter(|a| &a.relation == target)
            {
                if !cond.params.dispensable && !cond.params.replaceable {
                    return false;
                }
                if !cond.params.dispensable {
                    required.insert(a);
                }
            }
        }

        let h_prime = Hypergraph::build(mkb_prime);
        // Covers per required attribute (usable sources only).
        let mut options: BTreeMap<AttrRef, Vec<RelName>> = BTreeMap::new();
        for a in &required {
            let sources: Vec<RelName> = mkb
                .covers_of(a)
                .filter_map(|f| f.source_relation())
                .filter(|s| s != target && h_prime.contains(s))
                .collect();
            if sources.is_empty() {
                return false;
            }
            options.insert(a.clone(), sources);
        }

        // Survivors of Min(H_R): recompute via the public R-mapping.
        let opts = eve::cvs::CvsOptions::default();
        let index = eve::cvs::MkbIndex::new(mkb, mkb, &opts);
        let rm = eve::cvs::r_mapping_with_index(view, target, &index, &opts);
        let survivors = rm.surviving_relations();

        // Some combination of covers must connect with the survivors.
        // (Cartesian search; the generated MKBs keep this tiny.)
        fn search(
            h: &Hypergraph,
            base: &BTreeSet<RelName>,
            attrs: &[(&AttrRef, &Vec<RelName>)],
        ) -> bool {
            match attrs.split_first() {
                None => {
                    if base.is_empty() {
                        return true;
                    }
                    h.is_connected_set(base)
                }
                Some(((_, sources), rest)) => sources.iter().any(|s| {
                    let mut next = base.clone();
                    next.insert(s.clone());
                    search(h, &next, rest)
                }),
            }
        }
        let attrs: Vec<(&AttrRef, &Vec<RelName>)> = options.iter().collect();
        search(&h_prime, &survivors, &attrs)
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// CVS succeeds exactly when the independently implemented paper
    /// predicate says a legal rewriting exists.
    #[test]
    fn cvs_matches_independent_oracle(cfg in config(), seed in 0u64..1000) {
        let w = SynthWorkload::random(&cfg, seed);
        let mkb2 = evolve(&w.mkb, &w.delete_change()).expect("target described");
        let expected = oracle::curable(&w.view, &w.target, &w.mkb, &mkb2);
        let got = cvs_dr(&w.view, &w.target, &w.mkb, &mkb2, &CvsOptions::default());
        prop_assert_eq!(
            got.is_ok(),
            expected,
            "oracle disagrees with CVS: {:?}",
            got.err().map(|e| e.to_string())
        );
    }
}
