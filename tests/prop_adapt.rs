//! Property: materialization adaptation always agrees with full
//! recomputation, whatever strategy it picks.

use eve::cvs::{adapt_materialization, evaluate_view, AdaptationStrategy, MaterializedView};
use eve::esql::{parse_view, ViewDefinition};
use eve::relational::{
    AttributeDef, DataType, Database, FuncRegistry, RelName, Relation, Schema, Tuple, Value,
};
use proptest::prelude::*;

fn db(rows: &[(i64, i64, i64)]) -> Database {
    let mut db = Database::new();
    let name = RelName::new("R");
    let schema = Schema::of_relation(
        &name,
        &[
            AttributeDef::new("a", DataType::Int),
            AttributeDef::new("b", DataType::Int),
            AttributeDef::new("c", DataType::Int),
        ],
    );
    let rel = Relation::from_rows(
        schema,
        rows.iter()
            .map(|(a, b, c)| Tuple::new(vec![Value::Int(*a), Value::Int(*b), Value::Int(*c)])),
    )
    .expect("arity");
    db.put(name, rel);
    db
}

/// Views over R with a configurable column subset and bound conditions.
fn view(cols: &[&str], lo: Option<i64>, hi: Option<i64>) -> ViewDefinition {
    let select: Vec<String> = cols.iter().map(|c| format!("R.{c}")).collect();
    let mut conds = Vec::new();
    if let Some(l) = lo {
        conds.push(format!("(R.a >= {l})"));
    }
    if let Some(h) = hi {
        conds.push(format!("(R.a < {h}) (CD = true)"));
    }
    let where_clause = if conds.is_empty() {
        String::new()
    } else {
        format!("WHERE {}", conds.join(" AND "))
    };
    parse_view(&format!(
        "CREATE VIEW V AS SELECT {} FROM R {}",
        select.join(", "),
        where_clause
    ))
    .expect("constructed view parses")
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Any old/new definition pair from this family adapts to exactly
    /// the recomputed extent.
    #[test]
    fn adaptation_agrees_with_recompute(
        rows in proptest::collection::vec((-5i64..5, -5i64..5, -5i64..5), 0..25),
        old_cols in proptest::sample::subsequence(vec!["a", "b", "c"], 1..=3),
        new_cols in proptest::sample::subsequence(vec!["a", "b", "c"], 1..=3),
        old_lo in proptest::option::of(-4i64..4),
        new_lo in proptest::option::of(-4i64..4),
        old_hi in proptest::option::of(-4i64..4),
        new_hi in proptest::option::of(-4i64..4),
    ) {
        let database = db(&rows);
        let funcs = FuncRegistry::new();
        let old_def = view(&old_cols, old_lo, old_hi);
        let new_def = view(&new_cols, new_lo, new_hi);
        let mv = MaterializedView::new(old_def, &database, &funcs).expect("materialises");
        let (adapted, report) =
            adapt_materialization(&mv, &new_def, &database, &funcs).expect("adapts");
        let full = evaluate_view(&new_def, &database, &funcs).expect("recomputes");
        prop_assert_eq!(
            adapted.row_set(),
            full.row_set(),
            "strategy {} diverged", report.strategy
        );
    }

    /// Pure column narrowing never touches base relations.
    #[test]
    fn narrowing_is_base_free(
        rows in proptest::collection::vec((-5i64..5, -5i64..5, -5i64..5), 1..20),
        keep in proptest::sample::subsequence(vec!["a", "b", "c"], 1..=2),
    ) {
        let database = db(&rows);
        let funcs = FuncRegistry::new();
        let mv = MaterializedView::new(view(&["a", "b", "c"], None, None), &database, &funcs)
            .expect("materialises");
        let new_def = view(&keep, None, None);
        let (_, report) =
            adapt_materialization(&mv, &new_def, &database, &funcs).expect("adapts");
        prop_assert_eq!(report.strategy, AdaptationStrategy::ProjectOld);
        prop_assert_eq!(report.tuples_computed, 0);
    }
}
