//! Integration tests for the `eve-cli` binary, exercising the fixture
//! files under `fixtures/`.

use std::process::Command;

fn cli(args: &[&str]) -> (bool, String, String) {
    let out = Command::new(env!("CARGO_BIN_EXE_eve-cli"))
        .args(args)
        .current_dir(env!("CARGO_MANIFEST_DIR"))
        .output()
        .expect("binary runs");
    (
        out.status.success(),
        String::from_utf8_lossy(&out.stdout).into_owned(),
        String::from_utf8_lossy(&out.stderr).into_owned(),
    )
}

#[test]
fn mkb_summary() {
    let (ok, stdout, stderr) = cli(&["mkb", "fixtures/travel.misd"]);
    assert!(ok, "{stderr}");
    assert!(stdout.contains("8 relations"), "{stdout}");
    assert!(stdout.contains("7 join constraints"), "{stdout}");
    assert!(stdout.contains("type check: ok"), "{stdout}");
    assert!(stdout.contains("component 2"), "{stdout}");
}

#[test]
fn dot_output() {
    let (ok, stdout, _) = cli(&["dot", "fixtures/travel.misd"]);
    assert!(ok);
    assert!(stdout.starts_with("graph H {"));
    assert!(stdout.contains("cluster_Customer"));
}

#[test]
fn views_validate() {
    let (ok, stdout, stderr) = cli(&[
        "views",
        "fixtures/travel_views.esql",
        "--mkb",
        "fixtures/travel.misd",
    ]);
    assert!(ok, "{stderr}");
    assert!(stdout.contains("Asia-Customer: ok"), "{stdout}");
    assert!(stdout.contains("Tour-Catalog: ok"), "{stdout}");
}

#[test]
fn sync_delete_relation() {
    let (ok, stdout, _) = cli(&[
        "sync",
        "--mkb",
        "fixtures/travel.misd",
        "--views",
        "fixtures/travel_views.esql",
        "--change",
        "delete-relation Customer",
        "--cost",
    ]);
    // Customer-Passengers-Asia is rewritten onto Accident-Ins/FlightRes.
    assert!(
        stdout.contains("Customer-Passengers-Asia: rewritten"),
        "{stdout}"
    );
    assert!(stdout.contains("Accident-Ins.Holder"), "{stdout}");
    // Asia-Customer is genuinely incurable here: its indispensable Addr
    // is covered only by Person, which is unreachable from FlightRes in
    // H'(MKB') — so the run reports a disabled view (non-zero exit).
    assert!(stdout.contains("Asia-Customer: DISABLED"), "{stdout}");
    assert!(!ok);
}

#[test]
fn sync_rename_is_transparent() {
    let (ok, stdout, _) = cli(&[
        "sync",
        "--mkb",
        "fixtures/travel.misd",
        "--views",
        "fixtures/travel_views.esql",
        "--change",
        "rename-relation Tour -> Excursion",
    ]);
    assert!(ok);
    assert!(stdout.contains("Excursion.TourName"), "{stdout}");
}

#[test]
fn sync_reports_disabled_views_with_nonzero_exit() {
    // Deleting Addr first reroutes Asia-Customer through Person; deleting
    // Customer afterwards strands Person from FlightRes — incurable.
    let (ok, stdout, stderr) = cli(&[
        "sync",
        "--mkb",
        "fixtures/travel.misd",
        "--views",
        "fixtures/travel_views.esql",
        "--change",
        "delete-attribute Customer.Addr",
        "--change",
        "delete-relation Customer",
    ]);
    assert!(!ok);
    assert!(stdout.contains("DISABLED"), "{stdout}");
    assert!(stderr.contains("disabled"), "{stderr}");
}

#[test]
fn library_fixture_certified_rewrite() {
    let (ok, stdout, stderr) = cli(&[
        "sync",
        "--mkb",
        "fixtures/library.misd",
        "--views",
        "fixtures/library_views.esql",
        "--change",
        "delete-relation Book",
        "--explain",
    ]);
    assert!(ok, "stdout:\n{stdout}\nstderr:\n{stderr}");
    // Cited-Books rerouted through Publication with the PC certificate.
    assert!(
        stdout.contains("Cited-Books: rewritten (V' ⊇ V"),
        "{stdout}"
    );
    assert!(stdout.contains("Publication.PubTitle"), "{stdout}");
    assert!(
        stdout.contains("satisfies the view-extent parameter"),
        "{stdout}"
    );
    assert!(stdout.contains("explanation for Cited-Books"), "{stdout}");
}

#[test]
fn snapshot_sync_infers_changes() {
    let (_, stdout, _) = cli(&[
        "sync",
        "--mkb",
        "fixtures/travel.misd",
        "--views",
        "fixtures/travel_views.esql",
        "--snapshot",
        "fixtures/travel_v2.misd",
    ]);
    assert!(
        stdout.contains("change: delete-relation Customer"),
        "{stdout}"
    );
    assert!(
        stdout.contains("change: add-relation CruiseLine"),
        "{stdout}"
    );
    assert!(
        stdout.contains("Customer-Passengers-Asia: rewritten"),
        "{stdout}"
    );
}

/// Pin the `--trace` phase-tree format: structure, span names, labels,
/// field values and sibling order are golden; only the timing column is
/// normalized (durations vary run to run). Runs sequentially via
/// `EVE_PARALLELISM=1` so span ordering is deterministic.
#[test]
fn trace_tree_format_is_pinned() {
    let out = Command::new(env!("CARGO_BIN_EXE_eve-cli"))
        .args([
            "sync",
            "--mkb",
            "fixtures/travel.misd",
            "--views",
            "fixtures/travel_views.esql",
            "--change",
            "delete-relation Customer",
            "--trace",
        ])
        .env("EVE_PARALLELISM", "1")
        .current_dir(env!("CARGO_MANIFEST_DIR"))
        .output()
        .expect("binary runs");
    let stdout = String::from_utf8_lossy(&out.stdout);
    let tree_start = stdout.find("trace:\n").expect("trace section present") + "trace:\n".len();
    let tree_end = stdout.find("metrics:\n").expect("metrics section present");
    // Replace each line's right-aligned duration column with a fixed
    // token so the golden file pins everything except the timings.
    let normalized: String = stdout[tree_start..tree_end]
        .lines()
        .map(|line| {
            let structure = line
                .trim_end()
                .rsplit_once(char::is_whitespace)
                .map(|(s, _)| s);
            format!("{} <DUR>\n", structure.unwrap_or(line).trim_end())
        })
        .collect();

    let golden =
        std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/golden/trace_tree.txt");
    if std::env::var("UPDATE_GOLDEN").is_ok() {
        std::fs::write(&golden, &normalized).expect("write golden");
        return;
    }
    let expected = std::fs::read_to_string(&golden).unwrap_or_else(|e| {
        panic!(
            "missing golden file {} ({e}); run UPDATE_GOLDEN=1 cargo test -p eve --test cli",
            golden.display()
        )
    });
    assert_eq!(
        expected, normalized,
        "trace tree drifted; if intentional, regenerate with UPDATE_GOLDEN=1"
    );
}

/// `--trace-out` writes one JSON object per line, covering spans for
/// every pipeline phase plus the final counter/histogram read-outs.
#[test]
fn trace_out_emits_jsonl_spans_and_metrics() {
    let dir = std::env::temp_dir().join(format!("eve-cli-trace-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("temp dir");
    let path = dir.join("trace.jsonl");
    let out = Command::new(env!("CARGO_BIN_EXE_eve-cli"))
        .args([
            "sync",
            "--mkb",
            "fixtures/travel.misd",
            "--views",
            "fixtures/travel_views.esql",
            "--change",
            "delete-relation Customer",
            "--trace-out",
            path.to_str().expect("utf-8 temp path"),
        ])
        .current_dir(env!("CARGO_MANIFEST_DIR"))
        .output()
        .expect("binary runs");
    assert!(!out.status.success(), "run reports the disabled view");
    let text = std::fs::read_to_string(&path).expect("trace file written");
    std::fs::remove_dir_all(&dir).ok();
    let mut span_names = Vec::new();
    let mut counter_names = Vec::new();
    let mut gauge_names = Vec::new();
    for line in text.lines() {
        // Every line is a JSON object with "type" and "name" keys.
        assert!(line.starts_with('{') && line.ends_with('}'), "{line}");
        let field = |key: &str| {
            let tag = format!("\"{key}\":\"");
            line.split_once(tag.as_str())
                .and_then(|(_, rest)| rest.split_once('"'))
                .map(|(v, _)| v.to_string())
        };
        let name = field("name").expect("line has a name");
        match field("type").expect("line has a type").as_str() {
            "span" => {
                assert!(line.contains("\"dur_ns\":"), "{line}");
                span_names.push(name);
            }
            "counter" => counter_names.push(name),
            "gauge" => gauge_names.push(name),
            "histogram" => {}
            other => panic!("unexpected record type {other}: {line}"),
        }
    }
    for phase in [
        "apply",
        "view-sync",
        "index-from-cores",
        "tree-enumeration",
        "ranking",
    ] {
        assert!(
            span_names.iter().any(|n| n == phase),
            "no {phase} span in {span_names:?}"
        );
    }
    assert!(counter_names.iter().any(|n| n == "index.cache.hits"));
    assert!(counter_names
        .iter()
        .any(|n| n == "search.candidates_generated"));
    assert!(gauge_names.iter().any(|n| n == "sync.views_active"));
}

#[test]
fn history_renders_version_chain_with_deltas() {
    let (ok, stdout, stderr) = cli(&[
        "history",
        "--mkb",
        "fixtures/travel.misd",
        "--views",
        "fixtures/travel_views.esql",
        "--change",
        "delete-attribute Customer.Addr",
        "--change",
        "delete-relation Customer",
    ]);
    assert!(ok, "{stderr}");
    assert!(stdout.contains("version chain (head v2):"), "{stdout}");
    assert!(stdout.contains("v0: initial (8 relations"), "{stdout}");
    assert!(
        stdout.contains("v1: delete-attribute Customer.Addr"),
        "{stdout}"
    );
    assert!(stdout.contains("v2: delete-relation Customer"), "{stdout}");
    // Every non-initial version carries an incremental-maintenance delta
    // summary (the index is delta-maintained by default).
    assert!(stdout.contains("delta delete-attribute:"), "{stdout}");
    assert!(stdout.contains("delta delete-relation:"), "{stdout}");
    assert!(stdout.contains("join(s)"), "{stdout}");
}

#[test]
fn history_requires_a_change() {
    let (ok, _, stderr) = cli(&[
        "history",
        "--mkb",
        "fixtures/travel.misd",
        "--views",
        "fixtures/travel_views.esql",
    ]);
    assert!(!ok);
    assert!(stderr.contains("--change"), "{stderr}");
}

#[test]
fn sync_at_version_time_travels() {
    // After deleting Addr then Customer, version 1 still has the
    // Addr-less rewriting of Asia-Customer routed through Person.
    let (_, stdout, _) = cli(&[
        "sync",
        "--mkb",
        "fixtures/travel.misd",
        "--views",
        "fixtures/travel_views.esql",
        "--change",
        "delete-attribute Customer.Addr",
        "--change",
        "delete-relation Customer",
        "--at-version",
        "1",
    ]);
    assert!(
        stdout.contains("views at version 1 (after delete-attribute Customer.Addr):"),
        "{stdout}"
    );
    assert!(stdout.contains("Person.PAddr"), "{stdout}");
    // The final state (Customer deleted) is not what gets printed.
    assert!(!stdout.contains("surviving views:"), "{stdout}");
}

#[test]
fn sync_at_version_zero_is_initial_state() {
    let (ok, stdout, _) = cli(&[
        "sync",
        "--mkb",
        "fixtures/travel.misd",
        "--views",
        "fixtures/travel_views.esql",
        "--change",
        "rename-relation Tour -> Excursion",
        "--at-version",
        "0",
    ]);
    assert!(ok);
    assert!(
        stdout.contains("views at version 0 (initial state):"),
        "{stdout}"
    );
    assert!(stdout.contains("Tour.TourName"), "{stdout}");
    assert!(!stdout.contains("Excursion.TourName"), "{stdout}");
}

#[test]
fn sync_at_version_out_of_range_rejected() {
    let (ok, _, stderr) = cli(&[
        "sync",
        "--mkb",
        "fixtures/travel.misd",
        "--views",
        "fixtures/travel_views.esql",
        "--change",
        "rename-relation Tour -> Excursion",
        "--at-version",
        "9",
    ]);
    assert!(!ok);
    assert!(stderr.contains("out of range"), "{stderr}");
}

#[test]
fn bad_change_rejected() {
    let (ok, _, stderr) = cli(&[
        "sync",
        "--mkb",
        "fixtures/travel.misd",
        "--views",
        "fixtures/travel_views.esql",
        "--change",
        "obliterate-everything Now",
    ]);
    assert!(!ok);
    assert!(stderr.contains("--change"), "{stderr}");
}

#[test]
fn missing_file_rejected() {
    let (ok, _, stderr) = cli(&["mkb", "no-such-file.misd"]);
    assert!(!ok);
    assert!(stderr.contains("cannot read"), "{stderr}");
}

#[test]
fn usage_on_no_args() {
    let (ok, _, stderr) = cli(&[]);
    assert!(!ok);
    assert!(stderr.contains("usage"), "{stderr}");
}

/// A pinned-seed injected `SyncPanic` leaves a flight-recorder dump
/// that is byte-identical across reruns and worker counts.
#[test]
fn flight_recorder_dump_is_deterministic_across_workers() {
    let dir = std::env::temp_dir().join(format!("eve-cli-flight-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("temp dir");
    let run = |parallelism: &str, dump: &std::path::Path| {
        let out = Command::new(env!("CARGO_BIN_EXE_eve-cli"))
            .args([
                "sync",
                "--mkb",
                "fixtures/travel.misd",
                "--views",
                "fixtures/travel_views.esql",
                "--change",
                "delete-relation Customer",
                "--faults",
                "seed=7;view.sync#0=panic",
                "--fail-fast",
                "--flight-recorder",
                dump.to_str().expect("utf-8 temp path"),
            ])
            .env("EVE_PARALLELISM", parallelism)
            .current_dir(env!("CARGO_MANIFEST_DIR"))
            .output()
            .expect("binary runs");
        assert!(
            !out.status.success(),
            "fail-fast run aborts on the SyncPanic"
        );
        std::fs::read_to_string(dump).expect("flight dump written")
    };
    let d1 = run("1", &dir.join("d1.jsonl"));
    let d2 = run("4", &dir.join("d2.jsonl"));
    let d3 = run("1", &dir.join("d3.jsonl"));
    std::fs::remove_dir_all(&dir).ok();
    assert_eq!(d1, d2, "dump differs across worker counts");
    assert_eq!(d1, d3, "dump differs across reruns");
    let header = d1.lines().next().expect("dump has a header");
    assert!(header.contains("\"type\":\"flight-dump\""), "{header}");
    assert!(header.contains("\"reason\":\"sync-panic\""), "{header}");
    assert!(header.contains("\"dropped\":0"), "{header}");
    assert!(d1.contains("\"type\":\"fault\""), "{d1}");
    assert!(d1.contains("\"kind\":\"panic\""), "{d1}");
    // canonical dump carries no scheduling-dependent timing
    assert!(!d1.contains("dur_ns"), "{d1}");
}

/// `metrics-serve` exposes `/metrics`, `/snapshot`, and `/health` over
/// plain HTTP after running the fixture workload.
#[test]
fn metrics_serve_answers_scrapes() {
    use std::io::{BufRead as _, BufReader, Read as _, Write as _};
    let mut child = Command::new(env!("CARGO_BIN_EXE_eve-cli"))
        .args([
            "metrics-serve",
            "--addr",
            "127.0.0.1:0",
            "--requests",
            "3",
            "--mkb",
            "fixtures/travel.misd",
            "--views",
            "fixtures/travel_views.esql",
            "--change",
            "delete-attribute Customer.Addr",
        ])
        .current_dir(env!("CARGO_MANIFEST_DIR"))
        .stdout(std::process::Stdio::piped())
        .spawn()
        .expect("binary runs");
    let mut line = String::new();
    BufReader::new(child.stdout.take().expect("stdout piped"))
        .read_line(&mut line)
        .expect("listening line");
    let addr = line
        .trim()
        .rsplit_once("http://")
        .map(|(_, a)| a.to_string())
        .unwrap_or_else(|| panic!("no address in {line:?}"));
    let get = |path: &str| {
        let mut stream = std::net::TcpStream::connect(&addr).expect("connect");
        write!(stream, "GET {path} HTTP/1.1\r\nHost: localhost\r\n\r\n").unwrap();
        let mut response = String::new();
        stream.read_to_string(&mut response).unwrap();
        response
    };
    let health = get("/health");
    let metrics = get("/metrics");
    let snapshot = get("/snapshot");
    assert!(child.wait().expect("child exits").success());
    assert!(health.starts_with("HTTP/1.1 200 OK\r\n"), "{health}");
    assert!(
        metrics.contains("# TYPE eve_sync_changes_total counter"),
        "{metrics}"
    );
    assert!(metrics.contains("eve_sync_changes_total 1"), "{metrics}");
    assert!(
        metrics.contains("# TYPE eve_sync_views_active gauge"),
        "{metrics}"
    );
    assert!(
        metrics.contains("eve_span_apply_ns_bucket{le=\"+Inf\"} 1"),
        "{metrics}"
    );
    let body = snapshot.split("\r\n\r\n").nth(1).expect("snapshot body");
    assert!(body.starts_with("{\"counters\":{"), "{body}");
    assert!(body.contains("\"gauges\":{"), "{body}");
    assert!(body.contains("\"sync.changes\":1"), "{body}");
}
