//! Integration tests for the `eve-cli` binary, exercising the fixture
//! files under `fixtures/`.

use std::process::Command;

fn cli(args: &[&str]) -> (bool, String, String) {
    let out = Command::new(env!("CARGO_BIN_EXE_eve-cli"))
        .args(args)
        .current_dir(env!("CARGO_MANIFEST_DIR"))
        .output()
        .expect("binary runs");
    (
        out.status.success(),
        String::from_utf8_lossy(&out.stdout).into_owned(),
        String::from_utf8_lossy(&out.stderr).into_owned(),
    )
}

#[test]
fn mkb_summary() {
    let (ok, stdout, stderr) = cli(&["mkb", "fixtures/travel.misd"]);
    assert!(ok, "{stderr}");
    assert!(stdout.contains("8 relations"), "{stdout}");
    assert!(stdout.contains("7 join constraints"), "{stdout}");
    assert!(stdout.contains("type check: ok"), "{stdout}");
    assert!(stdout.contains("component 2"), "{stdout}");
}

#[test]
fn dot_output() {
    let (ok, stdout, _) = cli(&["dot", "fixtures/travel.misd"]);
    assert!(ok);
    assert!(stdout.starts_with("graph H {"));
    assert!(stdout.contains("cluster_Customer"));
}

#[test]
fn views_validate() {
    let (ok, stdout, stderr) = cli(&[
        "views",
        "fixtures/travel_views.esql",
        "--mkb",
        "fixtures/travel.misd",
    ]);
    assert!(ok, "{stderr}");
    assert!(stdout.contains("Asia-Customer: ok"), "{stdout}");
    assert!(stdout.contains("Tour-Catalog: ok"), "{stdout}");
}

#[test]
fn sync_delete_relation() {
    let (ok, stdout, _) = cli(&[
        "sync",
        "--mkb",
        "fixtures/travel.misd",
        "--views",
        "fixtures/travel_views.esql",
        "--change",
        "delete-relation Customer",
        "--cost",
    ]);
    // Customer-Passengers-Asia is rewritten onto Accident-Ins/FlightRes.
    assert!(
        stdout.contains("Customer-Passengers-Asia: rewritten"),
        "{stdout}"
    );
    assert!(stdout.contains("Accident-Ins.Holder"), "{stdout}");
    // Asia-Customer is genuinely incurable here: its indispensable Addr
    // is covered only by Person, which is unreachable from FlightRes in
    // H'(MKB') — so the run reports a disabled view (non-zero exit).
    assert!(stdout.contains("Asia-Customer: DISABLED"), "{stdout}");
    assert!(!ok);
}

#[test]
fn sync_rename_is_transparent() {
    let (ok, stdout, _) = cli(&[
        "sync",
        "--mkb",
        "fixtures/travel.misd",
        "--views",
        "fixtures/travel_views.esql",
        "--change",
        "rename-relation Tour -> Excursion",
    ]);
    assert!(ok);
    assert!(stdout.contains("Excursion.TourName"), "{stdout}");
}

#[test]
fn sync_reports_disabled_views_with_nonzero_exit() {
    // Deleting Addr first reroutes Asia-Customer through Person; deleting
    // Customer afterwards strands Person from FlightRes — incurable.
    let (ok, stdout, stderr) = cli(&[
        "sync",
        "--mkb",
        "fixtures/travel.misd",
        "--views",
        "fixtures/travel_views.esql",
        "--change",
        "delete-attribute Customer.Addr",
        "--change",
        "delete-relation Customer",
    ]);
    assert!(!ok);
    assert!(stdout.contains("DISABLED"), "{stdout}");
    assert!(stderr.contains("disabled"), "{stderr}");
}

#[test]
fn library_fixture_certified_rewrite() {
    let (ok, stdout, stderr) = cli(&[
        "sync",
        "--mkb",
        "fixtures/library.misd",
        "--views",
        "fixtures/library_views.esql",
        "--change",
        "delete-relation Book",
        "--explain",
    ]);
    assert!(ok, "stdout:\n{stdout}\nstderr:\n{stderr}");
    // Cited-Books rerouted through Publication with the PC certificate.
    assert!(
        stdout.contains("Cited-Books: rewritten (V' ⊇ V"),
        "{stdout}"
    );
    assert!(stdout.contains("Publication.PubTitle"), "{stdout}");
    assert!(
        stdout.contains("satisfies the view-extent parameter"),
        "{stdout}"
    );
    assert!(stdout.contains("explanation for Cited-Books"), "{stdout}");
}

#[test]
fn snapshot_sync_infers_changes() {
    let (_, stdout, _) = cli(&[
        "sync",
        "--mkb",
        "fixtures/travel.misd",
        "--views",
        "fixtures/travel_views.esql",
        "--snapshot",
        "fixtures/travel_v2.misd",
    ]);
    assert!(
        stdout.contains("change: delete-relation Customer"),
        "{stdout}"
    );
    assert!(
        stdout.contains("change: add-relation CruiseLine"),
        "{stdout}"
    );
    assert!(
        stdout.contains("Customer-Passengers-Asia: rewritten"),
        "{stdout}"
    );
}

#[test]
fn bad_change_rejected() {
    let (ok, _, stderr) = cli(&[
        "sync",
        "--mkb",
        "fixtures/travel.misd",
        "--views",
        "fixtures/travel_views.esql",
        "--change",
        "obliterate-everything Now",
    ]);
    assert!(!ok);
    assert!(stderr.contains("--change"), "{stderr}");
}

#[test]
fn missing_file_rejected() {
    let (ok, _, stderr) = cli(&["mkb", "no-such-file.misd"]);
    assert!(!ok);
    assert!(stderr.contains("cannot read"), "{stderr}");
}

#[test]
fn usage_on_no_args() {
    let (ok, _, stderr) = cli(&[]);
    assert!(!ok);
    assert!(stderr.contains("usage"), "{stderr}");
}
