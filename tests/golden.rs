//! Snapshot tests: the deterministic experiment reports are pinned as
//! golden files under `tests/golden/`. Any behavioural drift in the
//! paper reproductions shows up as a diff here.
//!
//! Regenerate intentionally with:
//!
//! ```text
//! UPDATE_GOLDEN=1 cargo test -p eve --test golden
//! ```

use eve_bench::{cost_rank, examples, figures};
use std::path::PathBuf;

fn golden_dir() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("tests/golden")
}

fn check(name: &str, actual: &str) {
    let path = golden_dir().join(format!("{name}.txt"));
    if std::env::var("UPDATE_GOLDEN").is_ok() {
        std::fs::create_dir_all(golden_dir()).expect("create golden dir");
        std::fs::write(&path, actual).expect("write golden");
        return;
    }
    let expected = std::fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!(
            "missing golden file {} ({e}); run UPDATE_GOLDEN=1 cargo test -p eve --test golden",
            path.display()
        )
    });
    assert_eq!(
        expected, actual,
        "golden mismatch for {name}; \
         if intentional, regenerate with UPDATE_GOLDEN=1"
    );
}

#[test]
fn golden_fig1() {
    check("fig1", &figures::fig1());
}

#[test]
fn golden_fig2() {
    check("fig2", &figures::fig2());
}

#[test]
fn golden_fig3() {
    check("fig3", &figures::fig3());
}

#[test]
fn golden_fig4_summary() {
    check("fig4_summary", &figures::fig4().summary);
}

#[test]
fn golden_fig4_dot() {
    check("fig4_h", &figures::fig4().dot_h);
}

#[test]
fn golden_ex3() {
    check("ex3", &examples::ex3());
}

#[test]
fn golden_ex4() {
    check("ex4", &examples::ex4());
}

#[test]
fn golden_ex5_10() {
    check("ex5_10", &examples::ex5_10());
}

#[test]
fn golden_cost_rank() {
    check("cost_rank", &cost_rank::cost_rank());
}

#[test]
fn golden_sweep_chain() {
    check(
        "sweep_chain_d6",
        &eve_bench::sweeps::render_chain(&eve_bench::sweeps::sweep_chain(6)),
    );
}

#[test]
fn golden_sweep_extent() {
    check(
        "sweep_extent_s5",
        &eve_bench::sweeps::render_extent(&eve_bench::sweeps::sweep_extent(5)),
    );
}

#[test]
fn golden_sweep_covers() {
    check(
        "sweep_covers_c4",
        &eve_bench::sweeps::render_covers(&eve_bench::sweeps::sweep_covers(4, 5)),
    );
}

/// The administrator-facing explanation of a chosen rewriting including
/// the search summary ([`eve::cvs::SearchStats`]) from the engine — pins
/// both the narrative and the candidates-generated/pruned/kept counters
/// the streaming search reports.
#[test]
fn golden_explain_with_search_stats() {
    use eve::cvs::{explain_rewriting_with_stats, CvsOptions, SynchronizerBuilder, ViewOutcome};
    use eve::esql::parse_view;
    use eve::misd::CapabilityChange;
    use eve::relational::RelName;
    use eve::workload::TravelFixture;

    let fixture = TravelFixture::new();
    let view = parse_view(
        "CREATE VIEW Customer-Passengers-Asia AS
         SELECT C.Name (false, true), C.Age (true, true), F.PName (true, true),
                P.Participant (true, true), P.TourID (true, true)
         FROM Customer C (true, true), FlightRes F (true, true), Participant P (true, true)
         WHERE (C.Name = F.PName) (false, true) AND (F.Dest = 'Asia') (CD = true)
           AND (P.StartDate = F.Date) (CD = true) AND (P.Loc = 'Asia') (CD = true)",
    )
    .expect("view parses");
    let original = view.clone();
    let mut sync = SynchronizerBuilder::new(fixture.mkb().clone())
        .with_options(CvsOptions::default())
        .with_view(view)
        .unwrap_or_else(|e| panic!("{e}"))
        .build();
    let outcome = sync
        .apply(&CapabilityChange::DeleteRelation(RelName::new("Customer")))
        .expect("MKB evolves");
    let (_, view_outcome) = &outcome.views[0];
    let ViewOutcome::Rewritten { chosen, stats, .. } = view_outcome else {
        panic!("expected rewriting, got {view_outcome:?}");
    };
    check(
        "explain_search_stats",
        &explain_rewriting_with_stats(&original, chosen, Some(stats)),
    );
}
