//! Soak tests, driven through the deterministic simulator.
//!
//! Historically this file carried its own random-change generator and
//! step-by-step invariant assertions; both now live in `eve-sim`
//! (`eve_workload::ChangeSource` and the harness's continuous checks),
//! so the soak is a thin driver: run seeded schedules under the mixed
//! and destructive profiles and require that no invariant — MKB
//! round-trip/type-check, view round-trip/evaluation, delta ≡ rebuild,
//! version-chain replay, revival eligibility — is violated.

use eve::cvs::clock::serial_guard;
use eve::sim::{run, Profile, SimConfig};

#[test]
fn soak_mixed_change_sequences() {
    let _serial = serial_guard();
    for seed in 0..4u64 {
        let mut config = SimConfig::new(seed, 60);
        config.profile = Profile::Standard;
        let report = run(&config);
        assert!(
            report.violation.is_none(),
            "seed {seed}: {}",
            report.violation.unwrap()
        );
        assert!(report.stats.changes > 0, "seed {seed}: no changes applied");
        assert!(
            report.stats.full_checks > 0,
            "seed {seed}: no full invariant sweeps ran"
        );
    }
}

#[test]
fn soak_destructive_only() {
    // Delete relations and attributes until the schema runs dry; the
    // synchronizer must never panic, never keep a stale view, and the
    // rebuild shadow must agree at every step.
    let _serial = serial_guard();
    for seed in 0..4u64 {
        let mut config = SimConfig::new(seed, 200);
        config.profile = Profile::Standard;
        config.destructive = true;
        let report = run(&config);
        assert!(
            report.violation.is_none(),
            "seed {seed}: {}",
            report.violation.unwrap()
        );
        assert!(
            report.steps_executed < 200,
            "seed {seed}: destructive schedule never exhausted the schema"
        );
    }
}
