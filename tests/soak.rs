//! Soak test: long random sequences of *mixed* capability changes
//! replayed through the synchronizer, asserting global invariants after
//! every step:
//!
//! * the MKB stays internally consistent (renders/parses, type-checks);
//! * every active view is evaluable against the current MKB and prints
//!   to parseable E-SQL;
//! * every active view actually evaluates on a generated database for
//!   the current MKB.

use eve::cvs::{evaluate_view, SynchronizerBuilder};
use eve::esql::parse_view;
use eve::misd::{check_mkb, parse_misd, render_misd, CapabilityChange, MetaKnowledgeBase};
use eve::relational::{
    AttrName, AttrRef, AttributeDef, DataType, Database, FuncRegistry, RelName, Relation, Schema,
    Tuple, Value,
};
use eve::workload::{random_views, SynthConfig, SynthWorkload, Topology};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Produce a random valid change against the current MKB state.
fn random_change(mkb: &MetaKnowledgeBase, rng: &mut StdRng, fresh: &mut usize) -> CapabilityChange {
    let relations: Vec<_> = mkb.relation_names().cloned().collect();
    let pick_rel = |rng: &mut StdRng| relations[rng.gen_range(0..relations.len())].clone();
    loop {
        match rng.gen_range(0..6) {
            0 if relations.len() > 2 => {
                return CapabilityChange::DeleteRelation(pick_rel(rng));
            }
            1 => {
                let rel = pick_rel(rng);
                let desc = mkb.relation(&rel).expect("picked from names");
                if desc.attrs.len() > 1 {
                    let a = &desc.attrs[rng.gen_range(0..desc.attrs.len())];
                    return CapabilityChange::DeleteAttribute(AttrRef::new(rel, a.name.clone()));
                }
            }
            2 => {
                *fresh += 1;
                return CapabilityChange::RenameRelation {
                    from: pick_rel(rng),
                    to: RelName::new(format!("Renamed{fresh}")),
                };
            }
            3 => {
                let rel = pick_rel(rng);
                let desc = mkb.relation(&rel).expect("picked from names");
                if !desc.attrs.is_empty() {
                    *fresh += 1;
                    let a = &desc.attrs[rng.gen_range(0..desc.attrs.len())];
                    return CapabilityChange::RenameAttribute {
                        from: AttrRef::new(rel, a.name.clone()),
                        to: AttrName::new(format!("renamed{fresh}")),
                    };
                }
            }
            4 => {
                *fresh += 1;
                return CapabilityChange::AddAttribute {
                    relation: pick_rel(rng),
                    attr: AttributeDef::new(format!("added{fresh}"), DataType::Int),
                };
            }
            _ => {
                *fresh += 1;
                return CapabilityChange::AddRelation(eve::misd::RelationDescription::new(
                    "SoakIS",
                    format!("Added{fresh}"),
                    vec![
                        AttributeDef::new("k", DataType::Int),
                        AttributeDef::new("v0", DataType::Int),
                    ],
                ));
            }
        }
    }
}

/// A tiny database matching whatever the MKB currently describes.
fn db_for(mkb: &MetaKnowledgeBase) -> Database {
    let mut db = Database::new();
    for desc in mkb.relations() {
        let schema = Schema::of_relation(&desc.name, &desc.attrs);
        let mut rel = Relation::new(schema);
        for k in 0..5i64 {
            let vals: Vec<Value> = desc
                .attrs
                .iter()
                .enumerate()
                .map(|(j, a)| match a.ty {
                    DataType::Int => Value::Int(k * 10 + j as i64),
                    DataType::Float => Value::float(k as f64),
                    DataType::Str => Value::str(format!("s{k}")),
                    DataType::Bool => Value::Bool(k % 2 == 0),
                    DataType::Date => Value::Date(1000 + k),
                })
                .collect();
            rel.insert(Tuple::new(vals)).expect("arity");
        }
        db.put(desc.name.clone(), rel);
    }
    db
}

#[test]
fn soak_mixed_change_sequences() {
    let funcs = FuncRegistry::new();
    for seed in 0..8u64 {
        let cfg = SynthConfig {
            n_relations: 10,
            cover_count: 3,
            topology: Topology::Random { extra: 6 },
            global_cover_prob: 0.5,
            ..SynthConfig::default()
        };
        let w = SynthWorkload::random(&cfg, seed);
        let views = random_views(&w.mkb, 4, 3, seed);
        let mut builder = SynchronizerBuilder::new(w.mkb.clone());
        for v in views {
            builder = builder.with_view(v).expect("generated views valid");
        }
        let mut sync = builder.build();

        let mut rng = StdRng::seed_from_u64(seed.wrapping_mul(31) + 7);
        let mut fresh = 0usize;
        for step in 0..20 {
            let change = random_change(sync.mkb(), &mut rng, &mut fresh);
            let outcome = sync
                .apply(&change)
                .unwrap_or_else(|e| panic!("seed {seed} step {step} ({change}): {e}"));
            let _ = outcome;

            // Invariant 1: MKB renders, re-parses, and type-checks.
            let rendered = render_misd(sync.mkb());
            let back = parse_misd(&rendered).unwrap_or_else(|e| {
                panic!("seed {seed} step {step}: MKB render broken: {e}\n{rendered}")
            });
            assert_eq!(&back, sync.mkb(), "seed {seed} step {step}");
            let type_errors = check_mkb(sync.mkb());
            assert!(
                type_errors.is_empty(),
                "seed {seed} step {step}: {type_errors:?}"
            );

            // Invariant 2+3: every active view prints, parses, and
            // evaluates on a database generated for the current MKB.
            let db = db_for(sync.mkb());
            for v in sync.views() {
                let printed = v.to_string();
                parse_view(&printed).unwrap_or_else(|e| {
                    panic!("seed {seed} step {step}: view unparseable: {e}\n{printed}")
                });
                evaluate_view(v, &db, &funcs).unwrap_or_else(|e| {
                    panic!("seed {seed} step {step}: view fails to evaluate: {e}\n{v}")
                });
            }
        }
    }
}

#[test]
fn soak_destructive_only() {
    // Delete relations until almost nothing is left; the synchronizer
    // must never panic and never keep a stale view.
    for seed in 0..8u64 {
        let cfg = SynthConfig {
            n_relations: 12,
            cover_count: 4,
            global_cover_prob: 0.8,
            topology: Topology::Random { extra: 8 },
            ..SynthConfig::default()
        };
        let w = SynthWorkload::random(&cfg, seed);
        let views = random_views(&w.mkb, 5, 3, seed);
        let mut builder = SynchronizerBuilder::new(w.mkb.clone());
        for v in views {
            builder = builder.with_view(v).expect("generated views valid");
        }
        let mut sync = builder.build();

        let mut rng = StdRng::seed_from_u64(seed + 99);
        for _ in 0..9 {
            let names: Vec<_> = sync.mkb().relation_names().cloned().collect();
            if names.len() <= 2 {
                break;
            }
            let victim = names[rng.gen_range(0..names.len())].clone();
            sync.apply(&CapabilityChange::DeleteRelation(victim.clone()))
                .expect("evolution succeeds");
            for v in sync.views() {
                assert!(
                    !v.uses_relation(&victim),
                    "stale reference to {victim} in {v}"
                );
            }
        }
    }
}
