//! Property-based tests for the MISD layer: textual round-trips and
//! algebraic properties of MKB evolution.

use eve::misd::{evolve, infer_changes, parse_misd, render_misd, CapabilityChange};
use eve::relational::{AttrName, AttrRef, RelName};
use eve::workload::{SynthConfig, SynthWorkload, Topology};
use proptest::prelude::*;

fn config() -> impl Strategy<Value = SynthConfig> {
    (3usize..20, 0usize..10, 1usize..4, 0.0f64..=1.0).prop_map(
        |(n_relations, extra, cover_count, pc_fraction)| SynthConfig {
            n_relations,
            topology: Topology::Random { extra },
            cover_count,
            pc_fraction,
            ..SynthConfig::default()
        },
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// `parse(render(mkb)) == mkb` for arbitrary synthetic MKBs.
    #[test]
    fn misd_roundtrip(cfg in config(), seed in 0u64..1000) {
        let w = SynthWorkload::random(&cfg, seed);
        let text = render_misd(&w.mkb);
        let back = parse_misd(&text)
            .unwrap_or_else(|e| panic!("rendered MISD failed to parse: {e}\n{text}"));
        prop_assert_eq!(back, w.mkb);
    }

    /// Deleting a relation removes every trace of it from MKB'.
    #[test]
    fn delete_relation_leaves_no_trace(cfg in config(), seed in 0u64..1000) {
        let w = SynthWorkload::random(&cfg, seed);
        let target = w.target.clone();
        let mkb2 = evolve(&w.mkb, &CapabilityChange::DeleteRelation(target.clone()))
            .expect("target described");
        prop_assert!(!mkb2.contains_relation(&target));
        prop_assert!(mkb2.joins().iter().all(|j| !j.touches(&target)));
        prop_assert!(mkb2.function_ofs().iter().all(|f| !f.touches(&target)));
        prop_assert!(mkb2.pcs().iter().all(|p| !p.touches(&target)));
        // And the result still round-trips through the textual format.
        let text = render_misd(&mkb2);
        prop_assert_eq!(parse_misd(&text).expect("MKB' renders validly"), mkb2);
    }

    /// Rename is invertible: renaming A→B then B→A restores the MKB.
    #[test]
    fn rename_relation_invertible(cfg in config(), seed in 0u64..1000) {
        let w = SynthWorkload::random(&cfg, seed);
        let from = w.target.clone();
        let to = RelName::new("Zz-Renamed");
        let fwd = evolve(&w.mkb, &CapabilityChange::RenameRelation {
            from: from.clone(),
            to: to.clone(),
        }).expect("rename ok");
        let back = evolve(&fwd, &CapabilityChange::RenameRelation {
            from: to,
            to: from,
        }).expect("rename back ok");
        prop_assert_eq!(back, w.mkb);
    }

    /// Rename-attribute is invertible too.
    #[test]
    fn rename_attribute_invertible(cfg in config(), seed in 0u64..1000) {
        let w = SynthWorkload::random(&cfg, seed);
        let attr = AttrRef::new(w.target.clone(), "v0");
        let tmp = AttrName::new("zzTmp");
        let fwd = evolve(&w.mkb, &CapabilityChange::RenameAttribute {
            from: attr.clone(),
            to: tmp.clone(),
        }).expect("rename ok");
        let back = evolve(&fwd, &CapabilityChange::RenameAttribute {
            from: AttrRef::new(w.target.clone(), tmp),
            to: attr.attr.clone(),
        }).expect("rename back ok");
        prop_assert_eq!(back, w.mkb);
    }

    /// Delete-attribute only ever shrinks constraint sets, and evolution
    /// never leaves dangling references.
    #[test]
    fn delete_attribute_shrinks(cfg in config(), seed in 0u64..1000) {
        let w = SynthWorkload::random(&cfg, seed);
        let attr = AttrRef::new(w.target.clone(), "k");
        let mkb2 = evolve(&w.mkb, &CapabilityChange::DeleteAttribute(attr.clone()))
            .expect("attribute exists");
        prop_assert!(!mkb2.has_attr(&attr));
        prop_assert!(mkb2.joins().len() <= w.mkb.joins().len());
        prop_assert!(mkb2.function_ofs().len() <= w.mkb.function_ofs().len());
        prop_assert!(mkb2.pcs().len() <= w.mkb.pcs().len());
        // No surviving constraint mentions the deleted attribute.
        prop_assert!(mkb2.joins().iter().all(|j| !j.attrs().contains(&attr)));
        prop_assert!(mkb2
            .function_ofs()
            .iter()
            .all(|f| f.target != attr && !f.source_attrs().contains(&attr)));
    }

    /// Diffing an MKB against an evolved version of itself yields a
    /// change log that converges the schemas again.
    #[test]
    fn diff_roundtrips_evolution(cfg in config(), seed in 0u64..1000, drop_attr in any::<bool>()) {
        let w = SynthWorkload::random(&cfg, seed);
        // Evolve by a destructive change.
        let ch = if drop_attr {
            CapabilityChange::DeleteAttribute(AttrRef::new(w.target.clone(), "v0"))
        } else {
            CapabilityChange::DeleteRelation(w.target.clone())
        };
        let evolved = evolve(&w.mkb, &ch).expect("valid change");
        let diff = infer_changes(&w.mkb, &evolved);
        // Replaying the inferred changes reaches the same schema.
        let mut replayed = w.mkb.clone();
        for c in &diff.changes {
            replayed = evolve(&replayed, c).expect("inferred change applies");
        }
        prop_assert!(infer_changes(&replayed, &evolved).changes.is_empty());
        // The evolved MKB lost constraints, never gained: no missing ids.
        prop_assert!(diff.missing_constraints.is_empty());
    }

    /// Evolution is pure: applying a change never mutates the input MKB.
    #[test]
    fn evolve_is_pure(cfg in config(), seed in 0u64..1000) {
        let w = SynthWorkload::random(&cfg, seed);
        let snapshot = w.mkb.clone();
        let _ = evolve(&w.mkb, &CapabilityChange::DeleteRelation(w.target.clone()));
        prop_assert_eq!(snapshot, w.mkb);
    }
}
