//! Rollback must erase a faulted change *completely*: a change that
//! lands views as `ViewOutcome::Failed` under injected faults and is
//! then rolled back leaves the synchronizer — version chain, active
//! views, disabled set, memo carry — byte-identical to a control that
//! never applied the change at all. Every subsequent change must
//! produce identical outcomes on both.
//!
//! Also: previewing a change while a fault plan is installed is
//! side-effect-free on the trunk, even when the previewed views fail.

use eve::cvs::clock::serial_guard;
use eve::cvs::{is_affected, CvsOptions, FailurePolicy, SynchronizerBuilder, ViewOutcome};
use eve::faults::FaultPlan;
use eve::misd::{render_misd, CapabilityChange, MetaKnowledgeBase};
use eve::workload::{random_views, ChangeSource, SynthConfig, SynthWorkload, Topology};
use std::time::Duration;

fn build_pair(
    seed: u64,
) -> (
    eve::cvs::Synchronizer,
    eve::cvs::Synchronizer,
    MetaKnowledgeBase,
) {
    let cfg = SynthConfig {
        n_relations: 10,
        cover_count: 3,
        topology: Topology::Random { extra: 5 },
        global_cover_prob: 0.5,
        ..SynthConfig::default()
    };
    let w = SynthWorkload::random(&cfg, seed);
    let views = random_views(&w.mkb, 4, 3, seed);
    let opts = CvsOptions {
        failure: FailurePolicy::Degrade {
            max_retries: 2,
            backoff: Duration::from_millis(1),
        },
        ..CvsOptions::default()
    };
    let mut subject = SynchronizerBuilder::new(w.mkb.clone()).with_options(opts);
    let mut control = SynchronizerBuilder::new(w.mkb.clone()).with_options(opts);
    for v in views {
        subject = subject.with_view(v.clone()).expect("generated views valid");
        control = control.with_view(v).expect("generated views valid");
    }
    (subject.build(), control.build(), w.mkb)
}

/// Full observable state of a synchronizer, rendered to strings.
fn state_of(
    sync: &eve::cvs::Synchronizer,
) -> (usize, String, Vec<String>, Vec<String>, Vec<String>) {
    (
        sync.version(),
        render_misd(sync.mkb()),
        sync.views().map(|v| v.to_string()).collect(),
        sync.disabled_views()
            .map(|(n, v)| format!("{n}: {v}"))
            .collect(),
        sync.chain()
            .iter()
            .map(|e| format!("{}: {:?}", e.version, e.change().map(|c| c.to_string())))
            .collect(),
    )
}

/// Draw the next change that affects at least one active view.
fn next_affecting(source: &mut ChangeSource, sync: &eve::cvs::Synchronizer) -> CapabilityChange {
    loop {
        let change = source.next(sync.mkb()).expect("schema affords changes");
        if sync.views().any(|v| is_affected(v, &change)) {
            return change;
        }
    }
}

#[test]
fn faulted_then_rolled_back_equals_never_applied() {
    let _serial = serial_guard();
    for seed in [3u64, 19, 27] {
        let (mut subject, mut control, _mkb) = build_pair(seed);
        let mut source = ChangeSource::new(seed ^ 0xFA);
        let faulted_change = next_affecting(&mut source, &subject);
        let before = subject.version();

        // Subject: apply under a plan that panics every affected
        // view's first sync attempt — Degrade contains each panic and
        // lands the view as Failed.
        let plan = FaultPlan::parse(&format!("seed={seed};view.sync#0=panic")).expect("grammar");
        eve::faults::install(plan).expect("no plan active");
        let outcome = subject.apply(&faulted_change).expect("evolution succeeds");
        let report = eve::faults::uninstall().expect("plan installed");
        assert!(report.injected > 0, "seed {seed}: fault plan never fired");
        assert!(
            outcome
                .views
                .iter()
                .any(|(_, o)| matches!(o, ViewOutcome::Failed { .. })),
            "seed {seed}: no view landed Failed under {faulted_change}: {outcome}"
        );

        // Roll the faulted change back; control never saw it.
        assert!(subject.rollback_to(before), "rollback must be in range");
        assert_eq!(
            state_of(&subject),
            state_of(&control),
            "seed {seed}: rollback left residue of the faulted change"
        );

        // Every subsequent change behaves identically on both — the
        // memo carry must not remember the rolled-back version either.
        for step in 0..6 {
            let change = source.next(subject.mkb()).expect("schema affords changes");
            let a = subject.apply(&change).expect("subject evolves");
            let b = control.apply(&change).expect("control evolves");
            assert_eq!(
                a, b,
                "seed {seed} step {step}: outcomes diverge after rollback for {change}"
            );
            assert_eq!(
                state_of(&subject),
                state_of(&control),
                "seed {seed} step {step}: state diverges after rollback"
            );
        }
    }
}

#[test]
fn preview_under_faults_leaves_trunk_untouched() {
    let _serial = serial_guard();
    let seed = 7u64;
    let (subject, _control, _mkb) = build_pair(seed);
    let mut source = ChangeSource::new(seed ^ 0xAB);
    let change = next_affecting(&mut source, &subject);
    let before = state_of(&subject);

    let plan = FaultPlan::parse(&format!("seed={seed};view.sync#0=panic")).expect("grammar");
    eve::faults::install(plan).expect("no plan active");
    let outcome = subject.preview(&change).expect("evolution succeeds");
    let report = eve::faults::uninstall().expect("plan installed");

    assert!(report.injected > 0, "fault plan never fired during preview");
    assert!(
        outcome
            .views
            .iter()
            .any(|(_, o)| matches!(o, ViewOutcome::Failed { .. })),
        "previewed change failed no view: {outcome}"
    );
    assert_eq!(
        state_of(&subject),
        before,
        "preview under faults mutated the trunk"
    );
}
