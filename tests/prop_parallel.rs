//! Property-based tests of the parallel per-view fan-out in
//! [`eve::cvs::Synchronizer::apply`]: whatever the worker count, the
//! outcome must be byte-identical to the sequential run (results are
//! merged in view registration order), and the enumeration cache inside
//! [`eve::cvs::MkbIndex`] must be invisible to results — warm and cold
//! lookups return the same rewritings.

use eve::cvs::{
    cvs_delete_relation_indexed, CvsOptions, MkbIndex, Synchronizer, SynchronizerBuilder,
};
use eve::misd::evolve;
use eve::workload::{random_views, views_touching, SynthConfig, SynthWorkload, Topology};
use proptest::prelude::*;

fn config() -> impl Strategy<Value = SynthConfig> {
    (
        6usize..24,
        prop_oneof![
            Just(Topology::Chain),
            Just(Topology::Star),
            (0usize..12).prop_map(|extra| Topology::Random { extra }),
        ],
        1usize..4,
        2usize..4,
    )
        .prop_map(
            |(n_relations, topology, cover_count, view_relations)| SynthConfig {
                n_relations,
                topology,
                cover_count,
                view_relations,
                ..SynthConfig::default()
            },
        )
}

/// A synchronizer over a mixed population: fan-out views that all
/// reference the delete target plus random views that may or may not be
/// affected, with an explicit worker count.
fn synchronizer(w: &SynthWorkload, seed: u64, threads: usize) -> Synchronizer {
    let mut builder = SynchronizerBuilder::new(w.mkb.clone()).with_options(CvsOptions {
        parallelism: Some(threads),
        ..CvsOptions::default()
    });
    for v in views_touching(&w.mkb, &w.target, 6, 3, seed) {
        builder = builder.with_view(v).expect("fan-out view is valid");
    }
    for v in random_views(&w.mkb, 4, 2, seed.wrapping_add(1)) {
        builder = builder.with_view(v).expect("random view is valid");
    }
    builder.build()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// The tentpole invariant: `apply` with 2 or 8 workers produces the
    /// exact same [`ChangeOutcome`] — and leaves the synchronizer with
    /// the exact same view definitions — as the sequential run.
    #[test]
    fn parallel_apply_matches_sequential(cfg in config(), seed in 0u64..500) {
        let w = SynthWorkload::random(&cfg, seed);
        let change = w.delete_change();
        let mut baseline = synchronizer(&w, seed, 1);
        let expected = baseline.apply(&change).expect("target described");
        for threads in [2usize, 8] {
            let mut sync = synchronizer(&w, seed, threads);
            let outcome = sync.apply(&change).expect("target described");
            prop_assert_eq!(&outcome, &expected, "threads={}", threads);
            prop_assert_eq!(
                sync.views().collect::<Vec<_>>(),
                baseline.views().collect::<Vec<_>>(),
                "threads={}",
                threads
            );
        }
    }

    /// `preview` must agree with `apply` regardless of worker count —
    /// it is documented as a non-mutating dry run of the same pipeline.
    #[test]
    fn preview_matches_apply_across_threads(cfg in config(), seed in 0u64..500) {
        let w = SynthWorkload::random(&cfg, seed);
        let change = w.delete_change();
        let previewed = synchronizer(&w, seed, 8).preview(&change).expect("target described");
        let applied = synchronizer(&w, seed, 1).apply(&change).expect("target described");
        prop_assert_eq!(previewed, applied);
    }

    /// Warm-vs-cold determinism: the first (cold, cache-filling) call on
    /// a shared index and every subsequent (warm, cache-hitting) call
    /// return identical rewriting lists, which also match a cache-free
    /// index.
    #[test]
    fn warm_cache_matches_cold(cfg in config(), seed in 0u64..500) {
        let w = SynthWorkload::random(&cfg, seed);
        let mkb2 = evolve(&w.mkb, &w.delete_change()).expect("target described");
        let opts = CvsOptions::default();
        let index = MkbIndex::new(&w.mkb, &mkb2, &opts);
        let cold = cvs_delete_relation_indexed(&w.view, &w.target, &index, &opts);
        let warm = cvs_delete_relation_indexed(&w.view, &w.target, &index, &opts);
        prop_assert_eq!(&cold, &warm);
        let uncached = index.without_cache();
        let fresh = cvs_delete_relation_indexed(&w.view, &w.target, &uncached, &opts);
        prop_assert_eq!(&cold, &fresh);
    }
}
