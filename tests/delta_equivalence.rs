//! Property-based equivalence of incremental index maintenance and
//! from-scratch rebuilds.
//!
//! The contract of `IndexCore::apply_delta` + `MkbIndex::from_cores` is
//! *rebuild equivalence*: a synchronizer that maintains its index by
//! typed deltas (the default `IndexMaintenance::Incremental`, and the
//! carry-free `IncrementalFresh`) must produce **byte-identical
//! outcomes** — rewritings, search statistics, disabled sets, evolved
//! MKBs — to one that rebuilds the index from scratch on every change
//! (`IndexMaintenance::Rebuild`, whose index path is the original
//! `MkbIndex::new`). The streams come from
//! [`eve::workload::change_stream`], which mixes all six capability
//! change operators, and equivalence is asserted after **every prefix**
//! of the stream, not just at the end.
//!
//! The version chain rides the same harness: `at_version(v)` on the
//! delta-maintained synchronizer must reproduce exactly the state the
//! rebuild-mode synchronizer passed through at prefix `v`.

use eve::cvs::{CvsOptions, IndexMaintenance, Synchronizer, SynchronizerBuilder};
use eve::misd::MetaKnowledgeBase;
use eve::workload::{change_stream, random_views, SynthConfig, SynthWorkload, Topology};
use proptest::prelude::*;

fn build(mkb: &MetaKnowledgeBase, mode: IndexMaintenance, seed: u64) -> Synchronizer {
    let mut b = SynchronizerBuilder::new(mkb.clone()).with_options(CvsOptions {
        index_maintenance: mode,
        ..CvsOptions::default()
    });
    for v in random_views(mkb, 3, 3, seed) {
        b = b.with_view(v).expect("synthetic view is valid");
    }
    b.build()
}

/// Observable synchronizer state, for prefix-by-prefix comparison.
fn observe(s: &Synchronizer) -> (MetaKnowledgeBase, Vec<String>, Vec<String>) {
    (
        s.mkb().clone(),
        s.views().map(|v| v.to_string()).collect(),
        s.disabled_views().map(|(n, _)| n.to_string()).collect(),
    )
}

fn config() -> impl Strategy<Value = SynthConfig> {
    (
        6usize..14,
        prop_oneof![
            Just(Topology::Chain),
            Just(Topology::Ring),
            (0usize..8).prop_map(|extra| Topology::Random { extra }),
        ],
        1usize..4,
    )
        .prop_map(|(n_relations, topology, cover_count)| SynthConfig {
            n_relations,
            topology,
            cover_count,
            view_relations: 3,
            ..SynthConfig::default()
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// After every prefix of a random change stream, all three index
    /// maintenance modes agree on the full `ChangeOutcome` (rewritings,
    /// per-view search stats, disabled sets) and on the evolved state.
    #[test]
    fn all_maintenance_modes_agree_on_every_prefix(
        cfg in config(),
        seed in 0u64..500,
        len in 4usize..14,
    ) {
        let w = SynthWorkload::random(&cfg, seed);
        let stream = change_stream(&w.mkb, len, seed);
        let mut rebuild = build(&w.mkb, IndexMaintenance::Rebuild, seed);
        let mut inc = build(&w.mkb, IndexMaintenance::Incremental, seed);
        let mut fresh = build(&w.mkb, IndexMaintenance::IncrementalFresh, seed);
        for (i, c) in stream.iter().enumerate() {
            let a = rebuild.apply(c);
            let b = inc.apply(c);
            let f = fresh.apply(c);
            prop_assert!(a.is_ok(), "prefix {i} ({c}): rebuild rejected: {a:?}");
            let (a, b, f) = (a.unwrap(), b.unwrap(), f.unwrap());
            // ChangeOutcome equality covers every view's outcome,
            // including byte-identical SearchStats (cache counters are
            // deliberately excluded from its PartialEq).
            prop_assert_eq!(&a, &b, "prefix {} ({}): incremental diverged", i, c);
            prop_assert_eq!(&a, &f, "prefix {} ({}): incremental-fresh diverged", i, c);
            prop_assert_eq!(
                observe(&rebuild),
                observe(&inc),
                "prefix {} ({}): state diverged",
                i,
                c
            );
            prop_assert_eq!(observe(&rebuild), observe(&fresh));
        }
    }

    /// `at_version(v)` on the delta-maintained synchronizer reproduces,
    /// for every `v`, exactly the state an independent rebuild-mode
    /// synchronizer passed through after the same `v`-change prefix.
    #[test]
    fn at_version_reproduces_rebuild_history(
        cfg in config(),
        seed in 0u64..500,
        len in 3usize..10,
    ) {
        let w = SynthWorkload::random(&cfg, seed);
        let stream = change_stream(&w.mkb, len, seed);
        let mut rebuild = build(&w.mkb, IndexMaintenance::Rebuild, seed);
        let mut inc = build(&w.mkb, IndexMaintenance::Incremental, seed);
        let mut trail = vec![observe(&rebuild)];
        for c in &stream {
            rebuild.apply(c).expect("stream change applies");
            inc.apply(c).expect("stream change applies");
            trail.push(observe(&rebuild));
        }
        prop_assert_eq!(inc.version(), stream.len());
        for (v, expected) in trail.iter().enumerate() {
            let fork = inc.at_version(v).expect("recorded version");
            prop_assert_eq!(&observe(&fork), expected, "version {} drifted", v);
            // The fork is a live synchronizer at that version.
            prop_assert_eq!(fork.version(), v);
        }
    }
}

/// One long seeded stream (the shape the nightly randomized CI job
/// runs): 64 changes over a redundant information space, all three
/// modes, prefix-by-prefix.
#[test]
fn long_stream_smoke() {
    let cfg = SynthConfig {
        n_relations: 16,
        topology: Topology::Random { extra: 8 },
        cover_count: 3,
        global_cover_prob: 0.5,
        ..SynthConfig::default()
    };
    let w = SynthWorkload::random(&cfg, 7);
    let stream = change_stream(&w.mkb, 64, 7);
    let mut rebuild = build(&w.mkb, IndexMaintenance::Rebuild, 7);
    let mut inc = build(&w.mkb, IndexMaintenance::Incremental, 7);
    for (i, c) in stream.iter().enumerate() {
        let a = rebuild.apply(c).expect("stream change applies");
        let b = inc.apply(c).expect("stream change applies");
        assert_eq!(a, b, "prefix {i} ({c}) diverged");
    }
    assert_eq!(observe(&rebuild), observe(&inc));
}
