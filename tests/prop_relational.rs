//! Property-based tests for the relational substrate: algebraic laws,
//! total-order coherence of values, and the soundness of the symbolic
//! clause machinery (implication, consistency) against evaluation.

use eve::relational::expr::ArithOp;
use eve::relational::{
    compare_extents, select, theta_join, AttrRef, AttributeDef, Clause, CompareOp, Conjunction,
    DataType, ExtentRelation, FuncRegistry, RelName, Relation, ScalarExpr, Schema, Tuple, Value,
};
use proptest::prelude::*;

fn value_strategy() -> impl Strategy<Value = Value> {
    prop_oneof![
        Just(Value::Null),
        any::<bool>().prop_map(Value::Bool),
        (-100i64..100).prop_map(Value::Int),
        (-100i64..100).prop_map(|i| Value::float(i as f64 / 4.0)),
        "[a-d]{0,3}".prop_map(Value::from),
        (-50i64..50).prop_map(Value::Date),
    ]
}

fn int_relation(rows: Vec<(i64, i64)>) -> Relation {
    let schema = Schema::of_relation(
        &RelName::new("R"),
        &[
            AttributeDef::new("x", DataType::Int),
            AttributeDef::new("y", DataType::Int),
        ],
    );
    Relation::from_rows(
        schema,
        rows.into_iter()
            .map(|(x, y)| Tuple::new(vec![Value::Int(x), Value::Int(y)])),
    )
    .expect("arity 2")
}

fn clause_x(op: CompareOp, c: i64) -> Clause {
    Clause::new(ScalarExpr::attr("R", "x"), op, ScalarExpr::lit(c))
}

fn op_strategy() -> impl Strategy<Value = CompareOp> {
    prop_oneof![
        Just(CompareOp::Eq),
        Just(CompareOp::Ne),
        Just(CompareOp::Lt),
        Just(CompareOp::Le),
        Just(CompareOp::Gt),
        Just(CompareOp::Ge),
    ]
}

proptest! {
    /// Value ordering is a total order consistent with equality.
    #[test]
    fn value_total_order(a in value_strategy(), b in value_strategy(), c in value_strategy()) {
        // antisymmetry + transitivity through sort stability
        let mut v = [a.clone(), b.clone(), c.clone()];
        v.sort();
        prop_assert!(v.windows(2).all(|w| w[0] <= w[1]));
        // Eq ↔ Ordering::Equal
        prop_assert_eq!(a == b, a.cmp(&b) == std::cmp::Ordering::Equal);
    }

    /// `sql_cmp` agrees with the comparison operators' `test`.
    #[test]
    fn sql_cmp_and_ops_agree(a in -20i64..20, b in -20i64..20, op in op_strategy()) {
        let (va, vb) = (Value::Int(a), Value::Int(b));
        let ord = va.sql_cmp(&vb).expect("ints comparable");
        let expected = match op {
            CompareOp::Eq => a == b,
            CompareOp::Ne => a != b,
            CompareOp::Lt => a < b,
            CompareOp::Le => a <= b,
            CompareOp::Gt => a > b,
            CompareOp::Ge => a >= b,
        };
        prop_assert_eq!(op.test(ord), expected);
    }

    /// Selection composes: σ_c2(σ_c1(R)) = σ_{c1 ∧ c2}(R).
    #[test]
    fn select_composes(
        rows in proptest::collection::vec((-10i64..10, -10i64..10), 0..30),
        op1 in op_strategy(), c1 in -10i64..10,
        op2 in op_strategy(), c2 in -10i64..10,
    ) {
        let funcs = FuncRegistry::new();
        let r = int_relation(rows);
        let k1 = Conjunction::new(vec![clause_x(op1, c1)]);
        let k2 = Conjunction::new(vec![clause_x(op2, c2)]);
        let both = k1.and(&k2);
        let seq = select(&select(&r, &k1, &funcs).unwrap(), &k2, &funcs).unwrap();
        let conj = select(&r, &both, &funcs).unwrap();
        prop_assert_eq!(seq.row_set(), conj.row_set());
    }

    /// Selection is monotone: σ(R) ⊆ R.
    #[test]
    fn select_shrinks(
        rows in proptest::collection::vec((-10i64..10, -10i64..10), 0..30),
        op in op_strategy(), c in -10i64..10,
    ) {
        let funcs = FuncRegistry::new();
        let r = int_relation(rows);
        let filtered = select(&r, &Conjunction::new(vec![clause_x(op, c)]), &funcs).unwrap();
        prop_assert!(filtered.row_set().is_subset(r.row_set()));
    }

    /// Join row multiplicity: |R ⋈_true S| = |R|·|S| (cross product),
    /// and any condition shrinks it.
    #[test]
    fn join_cross_and_filtered(
        left in proptest::collection::vec((-5i64..5, -5i64..5), 0..12),
        right in proptest::collection::vec(-5i64..5, 0..12),
    ) {
        let funcs = FuncRegistry::new();
        let l = int_relation(left);
        let schema = Schema::of_relation(
            &RelName::new("S"),
            &[AttributeDef::new("z", DataType::Int)],
        );
        let r = Relation::from_rows(
            schema,
            right.into_iter().map(|z| Tuple::new(vec![Value::Int(z)])),
        ).unwrap();
        let cross = theta_join(&l, &r, &Conjunction::empty(), &funcs).unwrap();
        prop_assert_eq!(cross.len(), l.len() * r.len());
        let cond = Conjunction::new(vec![Clause::eq_attrs(
            AttrRef::new("R", "x"),
            AttrRef::new("S", "z"),
        )]);
        let joined = theta_join(&l, &r, &cond, &funcs).unwrap();
        prop_assert!(joined.len() <= cross.len());
    }

    /// Clause implication is sound: if `a` implies `b`, then every tuple
    /// satisfying `a` satisfies `b`.
    #[test]
    fn implication_sound(
        op1 in op_strategy(), c1 in -10i64..10,
        op2 in op_strategy(), c2 in -10i64..10,
        xs in proptest::collection::vec(-15i64..15, 0..40),
    ) {
        let a = clause_x(op1, c1);
        let b = clause_x(op2, c2);
        if a.implies(&b) {
            let funcs = FuncRegistry::new();
            let r = int_relation(xs.into_iter().map(|x| (x, 0)).collect());
            let schema = r.schema().clone();
            for t in r.rows() {
                if a.eval(&schema, t, &funcs).unwrap() {
                    prop_assert!(b.eval(&schema, t, &funcs).unwrap(),
                        "{a:?} claimed to imply {b:?} but {t} is a counterexample");
                }
            }
        }
    }

    /// Consistency is sound: a satisfiable conjunction is never declared
    /// inconsistent.
    #[test]
    fn consistency_sound(
        ops in proptest::collection::vec((op_strategy(), -8i64..8), 1..5),
        x in -10i64..10,
    ) {
        let conj: Conjunction = ops.iter().map(|(op, c)| clause_x(*op, *c)).collect();
        let funcs = FuncRegistry::new();
        let r = int_relation(vec![(x, 0)]);
        let schema = r.schema().clone();
        let t = r.rows().next().unwrap();
        if conj.eval(&schema, t, &funcs).unwrap() {
            // witness exists → must not be declared inconsistent
            prop_assert!(conj.is_consistent(),
                "satisfiable conjunction declared inconsistent: {conj}");
        }
    }

    /// Extent comparison matches raw subset computations.
    #[test]
    fn extent_comparison_correct(
        xs in proptest::collection::vec(-6i64..6, 0..15),
        ys in proptest::collection::vec(-6i64..6, 0..15),
    ) {
        let a = int_relation(xs.into_iter().map(|x| (x, 0)).collect());
        let b = int_relation(ys.into_iter().map(|y| (y, 0)).collect());
        let rel = compare_extents(&a, &b);
        let sub = a.row_set().is_subset(b.row_set());
        let sup = b.row_set().is_subset(a.row_set());
        let expected = match (sub, sup) {
            (true, true) => ExtentRelation::Equivalent,
            (true, false) => ExtentRelation::ProperSubset,
            (false, true) => ExtentRelation::ProperSuperset,
            (false, false) => ExtentRelation::Incomparable,
        };
        prop_assert_eq!(rel, expected);
    }

    /// Arithmetic evaluation: substitution commutes with evaluation for
    /// attribute-for-expression substitution (the CVS Step 4 operation).
    #[test]
    fn substitution_commutes_with_eval(x in -20i64..20, y in -20i64..20) {
        let funcs = FuncRegistry::new();
        // e = R.x + 3, substitute R.x -> (R.y * 2)
        let e = ScalarExpr::binary(
            ArithOp::Add,
            ScalarExpr::attr("R", "x"),
            ScalarExpr::lit(3i64),
        );
        let replacement = ScalarExpr::binary(
            ArithOp::Mul,
            ScalarExpr::attr("R", "y"),
            ScalarExpr::lit(2i64),
        );
        let substituted = e.substitute(&AttrRef::new("R", "x"), &replacement);
        let r = int_relation(vec![(x, y)]);
        let schema = r.schema().clone();
        let t = r.rows().next().unwrap();
        let direct = substituted.eval(&schema, t, &funcs).unwrap();
        prop_assert_eq!(direct, Value::Int(y * 2 + 3));
    }
}
