//! Property-based equivalence of the indexed CVS paths and their legacy
//! unindexed wrappers: a [`MkbIndex`](eve::cvs::MkbIndex) built once per
//! change must produce *identical* results to the per-call
//! reconstruction it replaced, across random synthetic workloads.

use eve::cvs::{
    cvs_delete_relation, cvs_delete_relation_indexed, r_mapping_from_mkb, r_mapping_with_index,
    svs_delete_relation, svs_delete_relation_indexed, CvsOptions, MkbIndex,
};
use eve::hypergraph::Hypergraph;
use eve::misd::evolve;
use eve::workload::{SynthConfig, SynthWorkload, Topology};
use proptest::prelude::*;

fn config() -> impl Strategy<Value = SynthConfig> {
    (
        4usize..24,
        prop_oneof![
            Just(Topology::Chain),
            Just(Topology::Star),
            Just(Topology::Ring),
            (0usize..12).prop_map(|extra| Topology::Random { extra }),
        ],
        1usize..4,
        0.0f64..=1.0,
        2usize..4,
    )
        .prop_map(
            |(n_relations, topology, cover_count, pc_fraction, view_relations)| SynthConfig {
                n_relations,
                topology,
                cover_count,
                pc_fraction,
                view_relations,
                ..SynthConfig::default()
            },
        )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The R-mapping computed against a shared index equals the one the
    /// legacy wrapper computes by rebuilding the hypergraph per call.
    #[test]
    fn r_mapping_indexed_matches_legacy(cfg in config(), seed in 0u64..1000) {
        let w = SynthWorkload::random(&cfg, seed);
        let opts = CvsOptions::default();
        let legacy = r_mapping_from_mkb(&w.view, &w.target, &w.mkb, &opts);
        let index = MkbIndex::new(&w.mkb, &w.mkb, &opts);
        let indexed = r_mapping_with_index(&w.view, &w.target, &index, &opts);
        prop_assert_eq!(legacy, indexed);
    }

    /// Full CVS synchronization through one shared index agrees with the
    /// legacy per-call path — same rewritings in the same order on
    /// success, same error on failure.
    #[test]
    fn cvs_indexed_matches_legacy(cfg in config(), seed in 0u64..1000) {
        let w = SynthWorkload::random(&cfg, seed);
        let mkb2 = evolve(&w.mkb, &w.delete_change()).expect("target described");
        let opts = CvsOptions::default();
        let legacy = cvs_delete_relation(&w.view, &w.target, &w.mkb, &mkb2, &opts);
        let index = MkbIndex::new(&w.mkb, &mkb2, &opts);
        let indexed = cvs_delete_relation_indexed(&w.view, &w.target, &index, &opts);
        match (legacy, indexed) {
            (Ok(a), Ok(b)) => prop_assert_eq!(a, b),
            (Err(a), Err(b)) => prop_assert_eq!(a.to_string(), b.to_string()),
            (a, b) => prop_assert!(false, "paths diverge: {a:?} vs {b:?}"),
        }
    }

    /// The SVS baseline behaves identically whether it clamps the radius
    /// itself (legacy) or reuses a full-radius index (indexed).
    #[test]
    fn svs_indexed_matches_legacy(cfg in config(), seed in 0u64..1000) {
        let w = SynthWorkload::random(&cfg, seed);
        let mkb2 = evolve(&w.mkb, &w.delete_change()).expect("target described");
        let opts = CvsOptions::default();
        let legacy = svs_delete_relation(&w.view, &w.target, &w.mkb, &mkb2);
        let index = MkbIndex::new(&w.mkb, &mkb2, &opts);
        let indexed = svs_delete_relation_indexed(&w.view, &w.target, &index, &opts);
        match (legacy, indexed) {
            (Ok(a), Ok(b)) => prop_assert_eq!(a, b),
            (Err(a), Err(b)) => prop_assert_eq!(a.to_string(), b.to_string()),
            (a, b) => prop_assert!(false, "paths diverge: {a:?} vs {b:?}"),
        }
    }

    /// `Hypergraph::build_filtered` (the index's one-pass construction
    /// of H'(MKB')) equals the legacy build-then-erase loop.
    #[test]
    fn build_filtered_matches_erase_loop(cfg in config(), seed in 0u64..1000) {
        let w = SynthWorkload::random(&cfg, seed);
        let filtered = Hypergraph::build_filtered(&w.mkb, |desc| desc.capabilities.join);
        let mut erased = Hypergraph::build(&w.mkb);
        for desc in w.mkb.relations() {
            if !desc.capabilities.join {
                erased = erased.without_relation(&desc.name);
            }
        }
        prop_assert_eq!(filtered, erased);
    }

    /// The index's cover and PC lookups agree with direct MKB scans for
    /// every attribute and relation pair the workload mentions.
    #[test]
    fn index_lookups_match_mkb_scans(cfg in config(), seed in 0u64..1000) {
        let w = SynthWorkload::random(&cfg, seed);
        let opts = CvsOptions::default();
        let index = MkbIndex::new(&w.mkb, &w.mkb, &opts);
        for f in w.mkb.function_ofs() {
            if f.source_relation().is_none() {
                continue;
            }
            prop_assert!(
                index.covers_of(&f.target).iter().any(|c| c.funcof_id == f.id),
                "cover {} missing from index", f.id
            );
        }
        let mut bucketed = 0usize;
        for a in w.mkb.relations() {
            for b in w.mkb.relations().filter(|b| a.name <= b.name) {
                bucketed += index.pcs_between(&a.name, &b.name).len();
            }
        }
        prop_assert_eq!(bucketed, w.mkb.pcs().len());
    }
}
