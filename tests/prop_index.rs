//! Property-based equivalence of the cached and uncached index paths: a
//! [`MkbIndex`](eve::cvs::MkbIndex) memoizing connection-tree
//! enumerations, cover lookups and survival sets must produce results
//! *identical* to one with the cache disabled
//! ([`MkbIndex::without_cache`](eve::cvs::MkbIndex::without_cache)),
//! across random synthetic workloads — the memo tables are a pure
//! throughput optimisation.

use eve::cvs::{
    cvs_delete_relation_indexed, r_mapping_with_index, svs_delete_relation_indexed, CvsOptions,
    MkbIndex,
};
use eve::hypergraph::Hypergraph;
use eve::misd::evolve;
use eve::workload::{SynthConfig, SynthWorkload, Topology};
use proptest::prelude::*;

fn config() -> impl Strategy<Value = SynthConfig> {
    (
        4usize..24,
        prop_oneof![
            Just(Topology::Chain),
            Just(Topology::Star),
            Just(Topology::Ring),
            (0usize..12).prop_map(|extra| Topology::Random { extra }),
        ],
        1usize..4,
        0.0f64..=1.0,
        2usize..4,
    )
        .prop_map(
            |(n_relations, topology, cover_count, pc_fraction, view_relations)| SynthConfig {
                n_relations,
                topology,
                cover_count,
                pc_fraction,
                view_relations,
                ..SynthConfig::default()
            },
        )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The R-mapping computed through the enumeration cache equals the
    /// one computed with the cache disabled.
    #[test]
    fn r_mapping_cached_matches_uncached(cfg in config(), seed in 0u64..1000) {
        let w = SynthWorkload::random(&cfg, seed);
        let opts = CvsOptions::default();
        let cached = MkbIndex::new(&w.mkb, &w.mkb, &opts);
        let uncached = MkbIndex::new(&w.mkb, &w.mkb, &opts).without_cache();
        prop_assert_eq!(
            r_mapping_with_index(&w.view, &w.target, &cached, &opts),
            r_mapping_with_index(&w.view, &w.target, &uncached, &opts)
        );
    }

    /// Full CVS synchronization through a caching index agrees with the
    /// cache-disabled path, and a second (warm-cache) run through the
    /// same index returns the same thing again.
    #[test]
    fn cvs_cached_matches_uncached(cfg in config(), seed in 0u64..1000) {
        let w = SynthWorkload::random(&cfg, seed);
        let mkb2 = evolve(&w.mkb, &w.delete_change()).expect("target described");
        let opts = CvsOptions::default();
        let cached = MkbIndex::new(&w.mkb, &mkb2, &opts);
        let uncached = MkbIndex::new(&w.mkb, &mkb2, &opts).without_cache();
        let cold = cvs_delete_relation_indexed(&w.view, &w.target, &cached, &opts);
        let warm = cvs_delete_relation_indexed(&w.view, &w.target, &cached, &opts);
        let plain = cvs_delete_relation_indexed(&w.view, &w.target, &uncached, &opts);
        prop_assert_eq!(&cold, &warm, "cold vs warm cache");
        prop_assert_eq!(&cold, &plain, "cached vs uncached");
    }

    /// The SVS baseline behaves identically whether it reuses a shared
    /// full-radius index or a fresh index built at the clamped radius.
    #[test]
    fn svs_shared_index_matches_fresh(cfg in config(), seed in 0u64..1000) {
        let w = SynthWorkload::random(&cfg, seed);
        let mkb2 = evolve(&w.mkb, &w.delete_change()).expect("target described");
        let opts = CvsOptions::default();
        let shared = MkbIndex::new(&w.mkb, &mkb2, &opts);
        let via_shared = svs_delete_relation_indexed(&w.view, &w.target, &shared, &opts);
        let svs_opts = CvsOptions::svs_baseline();
        let fresh = MkbIndex::new(&w.mkb, &mkb2, &svs_opts);
        let via_fresh = cvs_delete_relation_indexed(&w.view, &w.target, &fresh, &svs_opts);
        match (via_shared, via_fresh) {
            (Ok(a), Ok(b)) => prop_assert_eq!(a, b),
            (Err(a), Err(b)) => prop_assert_eq!(a.to_string(), b.to_string()),
            (a, b) => prop_assert!(false, "paths diverge: {a:?} vs {b:?}"),
        }
    }

    /// `Hypergraph::build_filtered` (the index's one-pass construction
    /// of H'(MKB')) equals the legacy build-then-erase loop.
    #[test]
    fn build_filtered_matches_erase_loop(cfg in config(), seed in 0u64..1000) {
        let w = SynthWorkload::random(&cfg, seed);
        let filtered = Hypergraph::build_filtered(&w.mkb, |desc| desc.capabilities.join);
        let mut erased = Hypergraph::build(&w.mkb);
        for desc in w.mkb.relations() {
            if !desc.capabilities.join {
                erased = erased.without_relation(&desc.name);
            }
        }
        prop_assert_eq!(filtered, erased);
    }

    /// The index's cover and PC lookups agree with direct MKB scans for
    /// every attribute and relation pair the workload mentions.
    #[test]
    fn index_lookups_match_mkb_scans(cfg in config(), seed in 0u64..1000) {
        let w = SynthWorkload::random(&cfg, seed);
        let opts = CvsOptions::default();
        let index = MkbIndex::new(&w.mkb, &w.mkb, &opts);
        for f in w.mkb.function_ofs() {
            if f.source_relation().is_none() {
                continue;
            }
            prop_assert!(
                index.covers_of(&f.target).iter().any(|c| c.funcof_id == f.id),
                "cover {} missing from index", f.id
            );
        }
        let mut bucketed = 0usize;
        for a in w.mkb.relations() {
            for b in w.mkb.relations().filter(|b| a.name <= b.name) {
                bucketed += index.pcs_between(&a.name, &b.name).len();
            }
        }
        prop_assert_eq!(bucketed, w.mkb.pcs().len());
    }
}
