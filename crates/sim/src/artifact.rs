//! Self-contained repro artifacts.
//!
//! When a run violates an invariant, everything needed to reproduce it
//! is rendered to one plain-text document: the config (seed, profile,
//! flags), the violated invariant, the concrete schedule (one
//! [`Action`] per line), and optionally a flight-recorder dump for
//! post-mortem context. [`parse_artifact`] reverses the rendering, so
//! `eve-cli simulate --replay <file>` re-executes the exact schedule.
//!
//! The format is line-oriented: `key = value` headers, then a `trace:`
//! section, then an optional `flight:` section holding opaque dump
//! lines (ignored on replay).

use crate::action::{Action, ActionParseError};
use crate::harness::{Profile, SimConfig, Violation};

/// A parsed repro artifact: the replay config, the schedule, and the
/// violation it reproduces.
#[derive(Debug, Clone)]
pub struct Artifact {
    /// Config to construct the workload with (record stays on).
    pub config: SimConfig,
    /// The schedule to replay.
    pub trace: Vec<Action>,
    /// The violation the original run reported.
    pub violation: Violation,
}

/// Render a repro artifact.
///
/// `flight` carries flight-recorder dump lines (context only — not
/// replayed); pass an empty slice when the recorder was off.
pub fn render_artifact(
    config: &SimConfig,
    trace: &[Action],
    violation: &Violation,
    flight: &[String],
) -> String {
    let mut out = String::new();
    out.push_str("# eve-sim repro artifact\n");
    out.push_str(&format!("seed = {}\n", config.seed));
    out.push_str(&format!("steps = {}\n", config.steps));
    out.push_str(&format!("profile = {}\n", config.profile.name()));
    out.push_str(&format!("destructive = {}\n", config.destructive));
    if let Some(canary) = config.canary {
        out.push_str(&format!("canary = {canary}\n"));
    }
    out.push_str(&format!("invariant = {}\n", violation.invariant));
    out.push_str(&format!("step = {}\n", violation.step));
    for line in violation.detail.lines() {
        out.push_str(&format!("detail = {line}\n"));
    }
    out.push_str("trace:\n");
    for action in trace {
        out.push_str("  ");
        out.push_str(&action.render());
        out.push('\n');
    }
    if !flight.is_empty() {
        out.push_str("flight:\n");
        for line in flight {
            out.push_str("  ");
            out.push_str(line);
            out.push('\n');
        }
    }
    out
}

/// Error from [`parse_artifact`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ArtifactParseError(pub String);

impl std::fmt::Display for ArtifactParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "invalid artifact: {}", self.0)
    }
}

impl std::error::Error for ArtifactParseError {}

impl From<ActionParseError> for ArtifactParseError {
    fn from(e: ActionParseError) -> Self {
        ArtifactParseError(e.to_string())
    }
}

/// Parse a rendered artifact back into a replayable form.
pub fn parse_artifact(text: &str) -> Result<Artifact, ArtifactParseError> {
    let err = |msg: String| ArtifactParseError(msg);
    let mut config = SimConfig::new(0, 0);
    let mut invariant = None;
    let mut step = 0usize;
    let mut detail = Vec::new();
    let mut trace = Vec::new();
    let mut section = "header";
    let mut seen_seed = false;
    for raw in text.lines() {
        let line = raw.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        match line {
            "trace:" => {
                section = "trace";
                continue;
            }
            "flight:" => {
                section = "flight";
                continue;
            }
            _ => {}
        }
        match section {
            "header" => {
                let (key, value) = line
                    .split_once('=')
                    .ok_or_else(|| err(format!("header line without '=': {line:?}")))?;
                let (key, value) = (key.trim(), value.trim());
                match key {
                    "seed" => {
                        config.seed = value
                            .parse()
                            .map_err(|_| err(format!("bad seed: {value:?}")))?;
                        seen_seed = true;
                    }
                    "steps" => {
                        config.steps = value
                            .parse()
                            .map_err(|_| err(format!("bad steps: {value:?}")))?;
                    }
                    "profile" => {
                        config.profile = Profile::parse(value)
                            .ok_or_else(|| err(format!("unknown profile: {value:?}")))?;
                    }
                    "destructive" => {
                        config.destructive = value
                            .parse()
                            .map_err(|_| err(format!("bad destructive flag: {value:?}")))?;
                    }
                    "canary" => {
                        config.canary = Some(
                            value
                                .parse()
                                .map_err(|_| err(format!("bad canary: {value:?}")))?,
                        );
                    }
                    "invariant" => invariant = Some(value.to_string()),
                    "step" => {
                        step = value
                            .parse()
                            .map_err(|_| err(format!("bad step: {value:?}")))?;
                    }
                    "detail" => detail.push(value.to_string()),
                    _ => return Err(err(format!("unknown header key: {key:?}"))),
                }
            }
            "trace" => trace.push(Action::parse(line)?),
            _ => {} // flight dump lines are context, not input
        }
    }
    if !seen_seed {
        return Err(err("missing seed".to_string()));
    }
    let invariant = invariant.ok_or_else(|| err("missing invariant".to_string()))?;
    Ok(Artifact {
        config,
        trace,
        violation: Violation {
            step,
            invariant,
            detail: detail.join("\n"),
        },
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn artifact_round_trips() {
        let mut config = SimConfig::new(42, 500);
        config.profile = Profile::Smoke;
        config.canary = Some(7);
        let trace = vec![
            Action::parse("change delete-relation R4").unwrap(),
            Action::parse("rollback 1").unwrap(),
            Action::parse("check-full").unwrap(),
        ];
        let violation = Violation {
            step: 2,
            invariant: "canary".to_string(),
            detail: "line one\nline two".to_string(),
        };
        let text = render_artifact(&config, &trace, &violation, &["dump A".to_string()]);
        let back = parse_artifact(&text).unwrap_or_else(|e| panic!("{e}"));
        assert_eq!(back.config.seed, 42);
        assert_eq!(back.config.steps, 500);
        assert_eq!(back.config.profile, Profile::Smoke);
        assert_eq!(back.config.canary, Some(7));
        assert!(!back.config.destructive);
        assert_eq!(back.trace, trace);
        assert_eq!(back.violation, violation);
    }

    #[test]
    fn parse_rejects_malformed_headers() {
        assert!(parse_artifact("nonsense\ntrace:\n").is_err());
        assert!(parse_artifact("steps = 5\ntrace:\n").is_err()); // no seed
        assert!(parse_artifact("seed = 1\ntrace:\n").is_err()); // no invariant
    }
}
