//! # eve-sim — deterministic whole-system simulation
//!
//! A DST (deterministic simulation testing) harness for the EVE stack:
//! a seeded scheduler interleaves capability changes, view queries,
//! historical previews, rollbacks, virtual-clock ticks, and injected
//! fault episodes against a [`eve_core::SharedSynchronizer`], checking
//! system-level invariants continuously — and, on violation, producing
//! a self-contained repro artifact plus a delta-debugged minimal
//! schedule.
//!
//! The moving parts:
//!
//! * [`action`] — the concrete, textual action vocabulary (what makes
//!   schedules replayable and shrinkable);
//! * [`harness`] — [`harness::run`] / [`harness::run_trace`], the
//!   executor, the invariants, and the virtual-clock/fault-registry
//!   lifecycle;
//! * [`shrink`] — ddmin over failing schedules;
//! * [`artifact`] — the repro-artifact text format.
//!
//! Entry points: `eve-cli simulate` for the command line, or
//!
//! ```
//! use eve_sim::{run, SimConfig};
//!
//! let report = run(&SimConfig::new(7, 40));
//! assert!(report.violation.is_none(), "{:?}", report.violation);
//! // Same config ⇒ byte-identical digest, whatever EVE_PARALLELISM is.
//! assert_eq!(report.digest, run(&SimConfig::new(7, 40)).digest);
//! ```
//!
//! The simulator owns two process-global registries while running (the
//! virtual clock and the fault-injection plan), so concurrent
//! simulations in one process serialize via
//! [`eve_core::clock::serial_guard`] — `run` itself reports a
//! violation rather than clobbering a registry that is already busy.

pub mod action;
pub mod artifact;
pub mod harness;
pub mod shrink;

pub use action::{render_change, Action, ActionParseError};
pub use artifact::{parse_artifact, render_artifact, Artifact, ArtifactParseError};
pub use harness::{
    db_for, run, run_trace, Executor, Profile, Session, SimConfig, SimReport, SimStats, Violation,
};
pub use shrink::{shrink, ShrinkResult};
