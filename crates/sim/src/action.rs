//! The simulator's action vocabulary, with a textual round-trip.
//!
//! A schedule is a sequence of **concrete** actions — the change that
//! was applied, the rollback depth, the installed fault plan — not RNG
//! decisions. That concreteness is what makes schedules *shrinkable*:
//! deleting an action from a recorded trace leaves every other action
//! meaningful (an RNG-driven schedule would reinterpret all later
//! draws), so delta debugging can search subsequences directly.
//!
//! Each action renders to one line and parses back ([`Action::render`]
//! / [`Action::parse`]), which is how repro artifacts carry schedules.

use eve_misd::CapabilityChange;

/// One step of a simulation schedule.
#[derive(Debug, Clone, PartialEq)]
pub enum Action {
    /// Apply a capability change through the shared synchronizer (and
    /// the rebuild-mode shadow).
    Change(CapabilityChange),
    /// Register a new view at runtime on both synchronizers. The E-SQL
    /// text is carried whitespace-collapsed onto one line; registration
    /// that fails validation (name clash after a replayed prefix was
    /// shrunk, reference to a since-deleted relation) is skipped, not a
    /// violation.
    Register {
        /// Single-line E-SQL `CREATE VIEW` text.
        view: String,
    },
    /// Evaluate one active view (by index, modulo the active count)
    /// against a database generated for the current MKB.
    Query {
        /// Index into the active-view list at execution time.
        view: usize,
    },
    /// What-if against history: dry-run `change` as if applied `back`
    /// versions ago (`preview_at`).
    Preview {
        /// How many versions before the head to fork at.
        back: usize,
        /// The change to dry-run there.
        change: CapabilityChange,
    },
    /// Roll the synchronizer (and shadow) back `back` versions.
    Rollback {
        /// How many versions to rewind (saturating at version 0).
        back: usize,
    },
    /// A fault episode: install `plan`, apply `change` under the given
    /// failure policy, uninstall, and cross-check against the shadow
    /// under an identical fresh plan install.
    Fault {
        /// `true` → `FailurePolicy::FailFast`, `false` → `Degrade`.
        fail_fast: bool,
        /// Textual `eve_faults::FaultPlan` to install for this change.
        plan: String,
        /// The change to apply under the plan.
        change: CapabilityChange,
    },
    /// Advance the virtual clock.
    Tick {
        /// Milliseconds of virtual time to add.
        millis: u64,
    },
    /// Invariant: re-applying the recorded changes of the last `back`
    /// versions on a fork reconstructs the head state.
    CheckReplay {
        /// How many versions of history to replay (bounded by the
        /// fault fence — see the harness docs).
        back: usize,
    },
    /// Full invariant sweep: MKB render/parse/type-check, every active
    /// view prints/parses/evaluates, delta-maintained state is
    /// byte-identical to the rebuild shadow.
    CheckFull,
}

/// Error from [`Action::parse`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ActionParseError(pub String);

impl std::fmt::Display for ActionParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "invalid action line: {}", self.0)
    }
}

impl std::error::Error for ActionParseError {}

/// Render a change in the grammar `CapabilityChange::parse` accepts.
/// `CapabilityChange`'s own `Display` is not a full round-trip —
/// `add-relation` prints only the relation name — so the schedule
/// format spells the whole description out.
pub fn render_change(change: &CapabilityChange) -> String {
    match change {
        CapabilityChange::AddRelation(d) => {
            let attrs: Vec<String> = d
                .attrs
                .iter()
                .map(|a| format!("{}: {}", a.name, a.ty))
                .collect();
            format!(
                "add-relation {} {} ({})",
                d.source,
                d.name,
                attrs.join(", ")
            )
        }
        other => other.to_string(),
    }
}

// The `::` separator keeps fault-plan text (which contains `;`, `/`,
// `#`, `%`, `=`) unambiguous next to a change; neither plans nor the
// change grammar ever produce a bare `::` token.
const SEP: &str = " :: ";

impl Action {
    /// One-line textual form; parses back via [`Action::parse`].
    pub fn render(&self) -> String {
        match self {
            Action::Change(c) => format!("change {}", render_change(c)),
            Action::Register { view } => format!(
                "register {}",
                view.split_whitespace().collect::<Vec<_>>().join(" ")
            ),
            Action::Query { view } => format!("query {view}"),
            Action::Preview { back, change } => {
                format!("preview {back}{SEP}{}", render_change(change))
            }
            Action::Rollback { back } => format!("rollback {back}"),
            Action::Fault {
                fail_fast,
                plan,
                change,
            } => format!(
                "fault {} {plan}{SEP}{}",
                if *fail_fast { "failfast" } else { "degrade" },
                render_change(change)
            ),
            Action::Tick { millis } => format!("tick {millis}"),
            Action::CheckReplay { back } => format!("check-replay {back}"),
            Action::CheckFull => "check-full".to_string(),
        }
    }

    /// Parse one rendered line.
    pub fn parse(line: &str) -> Result<Action, ActionParseError> {
        let line = line.trim();
        let err = |msg: &str| ActionParseError(format!("{line:?}: {msg}"));
        let (head, rest) = match line.split_once(' ') {
            Some((h, r)) => (h, r.trim()),
            None => (line, ""),
        };
        let parse_change = |text: &str| {
            CapabilityChange::parse(text)
                .map_err(|e| ActionParseError(format!("{line:?}: bad change: {e}")))
        };
        let parse_usize = |text: &str, what: &str| {
            text.parse::<usize>()
                .map_err(|_| err(&format!("bad {what}")))
        };
        match head {
            "change" => Ok(Action::Change(parse_change(rest)?)),
            "register" => {
                if rest.is_empty() {
                    return Err(err("missing view text"));
                }
                Ok(Action::Register {
                    view: rest.to_string(),
                })
            }
            "query" => Ok(Action::Query {
                view: parse_usize(rest, "view index")?,
            }),
            "preview" => {
                let (back, change) = rest.split_once(SEP).ok_or_else(|| err("missing '::'"))?;
                Ok(Action::Preview {
                    back: parse_usize(back.trim(), "back count")?,
                    change: parse_change(change.trim())?,
                })
            }
            "rollback" => Ok(Action::Rollback {
                back: parse_usize(rest, "back count")?,
            }),
            "fault" => {
                let (policy, rest) = rest.split_once(' ').ok_or_else(|| err("missing policy"))?;
                let fail_fast = match policy {
                    "failfast" => true,
                    "degrade" => false,
                    _ => return Err(err("policy must be failfast|degrade")),
                };
                let (plan, change) = rest.split_once(SEP).ok_or_else(|| err("missing '::'"))?;
                Ok(Action::Fault {
                    fail_fast,
                    plan: plan.trim().to_string(),
                    change: parse_change(change.trim())?,
                })
            }
            "tick" => Ok(Action::Tick {
                millis: rest.parse().map_err(|_| err("bad millis"))?,
            }),
            "check-replay" => Ok(Action::CheckReplay {
                back: parse_usize(rest, "back count")?,
            }),
            "check-full" => Ok(Action::CheckFull),
            _ => Err(err("unknown action")),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use eve_misd::RelationDescription;
    use eve_relational::{AttrName, AttrRef, AttributeDef, DataType, RelName};

    fn samples() -> Vec<Action> {
        vec![
            Action::Change(CapabilityChange::AddRelation(RelationDescription::new(
                "IS_A7",
                "A7",
                vec![
                    AttributeDef::new("k", DataType::Int),
                    AttributeDef::new("v0", DataType::Str),
                ],
            ))),
            Action::Change(CapabilityChange::RenameAttribute {
                from: AttrRef::new("R", "a"),
                to: AttrName::new("ar1"),
            }),
            Action::Register {
                view: "CREATE VIEW V9 (VE = superset) AS SELECT O.id (true, true) \
                       FROM orders O (true, true) WHERE (O.id = O.id) (false, true)"
                    .split_whitespace()
                    .collect::<Vec<_>>()
                    .join(" "),
            },
            Action::Query { view: 3 },
            Action::Preview {
                back: 2,
                change: CapabilityChange::DeleteRelation(RelName::new("Customer")),
            },
            Action::Rollback { back: 1 },
            Action::Fault {
                fail_fast: true,
                plan: "seed=9;V0/view.sync#0=panic".to_string(),
                change: CapabilityChange::DeleteAttribute(AttrRef::new("R", "b")),
            },
            Action::Tick { millis: 250 },
            Action::CheckReplay { back: 4 },
            Action::CheckFull,
        ]
    }

    #[test]
    fn render_parse_round_trips() {
        for action in samples() {
            let line = action.render();
            let back = Action::parse(&line).unwrap_or_else(|e| panic!("{e}"));
            assert_eq!(back, action, "line: {line}");
        }
    }

    #[test]
    fn parse_rejects_garbage() {
        assert!(Action::parse("explode now").is_err());
        assert!(Action::parse("query x").is_err());
        assert!(Action::parse("register").is_err());
        assert!(Action::parse("fault maybe p :: delete-relation R").is_err());
        assert!(Action::parse("preview 1 delete-relation R").is_err());
    }
}
