//! Schedule shrinking: reduce a failing trace to a (locally) minimal
//! subsequence that still violates the *same* invariant.
//!
//! Classic delta debugging (ddmin) over the action sequence, preceded
//! by truncation to the failing prefix — the violation carries the step
//! index, so everything after it is noise by construction. The oracle
//! re-runs the candidate schedule via [`crate::harness::run_trace`]
//! (actions whose preconditions were shrunk away are skipped, so every
//! subsequence is executable) and accepts it only when the reported
//! violation names the same invariant — shrinking must not wander onto
//! a *different* bug.
//!
//! Oracle runs are bounded: shrinking is a debugging aid, not a proof,
//! and a stubborn schedule is returned as-is once the budget runs out.

use crate::action::Action;
use crate::harness::{run_trace, SimConfig, Violation};

/// Outcome of [`shrink`].
#[derive(Debug, Clone)]
pub struct ShrinkResult {
    /// The minimized schedule (still failing, possibly the input).
    pub trace: Vec<Action>,
    /// The violation the minimized schedule raises.
    pub violation: Violation,
    /// Oracle runs spent.
    pub runs: usize,
}

fn oracle(config: &SimConfig, trace: &[Action], invariant: &str) -> Option<Violation> {
    run_trace(config, trace)
        .violation
        .filter(|v| v.invariant == invariant)
}

/// Shrink `trace` (which raises `violation` under `config`) to a
/// 1-minimal failing subsequence, spending at most `max_runs` oracle
/// executions.
///
/// Precondition: replaying `trace` under `config` reproduces a
/// violation of the same invariant. If it does not (a nondeterministic
/// failure — itself a finding), the input is returned unshrunk with
/// `runs == 1`.
pub fn shrink(
    config: &SimConfig,
    trace: &[Action],
    violation: &Violation,
    max_runs: usize,
) -> ShrinkResult {
    let mut runs = 0usize;
    let mut budget = |trace: &[Action]| -> Option<Option<Violation>> {
        if runs >= max_runs {
            return None; // budget exhausted
        }
        runs += 1;
        Some(oracle(config, trace, &violation.invariant))
    };

    // Truncate to the failing prefix: the violation fired at
    // `violation.step`, so later actions never executed.
    let mut current: Vec<Action> = trace
        .iter()
        .take(violation.step.saturating_add(1).min(trace.len()))
        .cloned()
        .collect();
    let mut current_violation = match budget(&current) {
        Some(Some(v)) => v,
        _ => {
            // Prefix does not reproduce (or no budget): fall back to
            // the full input, verifying it once if we still can.
            return match budget(trace) {
                Some(Some(v)) => ShrinkResult {
                    trace: trace.to_vec(),
                    violation: v,
                    runs,
                },
                _ => ShrinkResult {
                    trace: trace.to_vec(),
                    violation: violation.clone(),
                    runs,
                },
            };
        }
    };

    // ddmin: try removing chunks at ever finer granularity until
    // removing any single action breaks reproduction (1-minimal).
    let mut n = 2usize;
    while current.len() >= 2 {
        let chunk = current.len().div_ceil(n);
        let mut reduced = false;
        let mut start = 0usize;
        while start < current.len() {
            let end = (start + chunk).min(current.len());
            let mut candidate = Vec::with_capacity(current.len() - (end - start));
            candidate.extend_from_slice(&current[..start]);
            candidate.extend_from_slice(&current[end..]);
            if candidate.is_empty() {
                start = end;
                continue;
            }
            match budget(&candidate) {
                None => {
                    return ShrinkResult {
                        trace: current,
                        violation: current_violation,
                        runs,
                    }
                }
                Some(Some(v)) => {
                    current = candidate;
                    current_violation = v;
                    reduced = true;
                    // Keep granularity; retry from the same offset
                    // (the chunk that used to start here is gone).
                }
                Some(None) => {
                    start = end;
                }
            }
        }
        if !reduced {
            if chunk == 1 {
                break; // 1-minimal
            }
            n = (n * 2).min(current.len());
        } else {
            n = n.max(2).min(current.len().max(2));
        }
    }

    ShrinkResult {
        trace: current,
        violation: current_violation,
        runs,
    }
}
