//! The deterministic whole-system simulator.
//!
//! [`run`] drives a seeded scheduler that interleaves capability
//! changes, reader queries, historical previews, rollbacks, virtual
//! clock ticks, and fault episodes over a synthetic workload — checking
//! invariants continuously (see [`Executor::execute`]). Every executed
//! action is recorded as a concrete [`Action`], so a failing schedule
//! can be replayed verbatim with [`run_trace`] and shrunk with
//! [`crate::shrink`].
//!
//! Determinism contract: with the same [`SimConfig`], two runs produce
//! byte-identical outcome digests — across reruns *and* across
//! `EVE_PARALLELISM` settings, because every digested observation
//! (change outcomes, view texts, MKB renders, fault firings) is
//! schedule-independent by construction. The two wall-clock sinks in
//! the engine (`SearchBudget::deadline`, `Degrade` backoff) run on an
//! installed [`VirtualClock`] for the duration of the run.
//!
//! Two synchronizers run in lockstep: the **main** one under
//! delta-maintained indexes (`IndexMaintenance::Incremental`, wrapped
//! in a [`SharedSynchronizer`] so queries read real snapshots), and a
//! **shadow** under `IndexMaintenance::Rebuild`. Every committed change
//! is applied to both and the outcomes compared — the paper-level
//! "delta ≡ rebuild" equivalence enforced per prefix, not just per
//! pinned scenario. Fault episodes replay the *same* plan against the
//! shadow under a fresh install, so both sides see identical injected
//! faults (hit counters are per `(scope, site)` and therefore
//! mode-independent for the sites the generator uses).

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::Arc;
use std::time::Duration;

use eve_core::clock::{self, VirtualClock};
use eve_core::{
    evaluate_view, is_affected, CvsOptions, FailurePolicy, IndexMaintenance, SearchBudget,
    SharedSynchronizer, Synchronizer, SynchronizerBuilder, ViewOutcome,
};
use eve_esql::parse_view;
use eve_misd::{check_mkb, parse_misd, render_misd, MetaKnowledgeBase};
use eve_relational::{DataType, Database, FuncRegistry, Relation, Schema, Tuple, Value};
use eve_workload::{random_views, ChangeSource, SynthConfig, SynthWorkload, Topology};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::action::Action;

/// Workload size / action mix presets.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Profile {
    /// Small schema, frequent full checks — CI smoke runs.
    Smoke,
    /// The default: medium schema, balanced mix.
    Standard,
    /// Larger schema, sparser full checks — long nightly runs.
    Soak,
}

impl Profile {
    /// Parse a CLI profile name.
    pub fn parse(name: &str) -> Option<Profile> {
        match name {
            "smoke" => Some(Profile::Smoke),
            "standard" => Some(Profile::Standard),
            "soak" => Some(Profile::Soak),
            _ => None,
        }
    }

    /// The profile's name (CLI form).
    pub fn name(&self) -> &'static str {
        match self {
            Profile::Smoke => "smoke",
            Profile::Standard => "standard",
            Profile::Soak => "soak",
        }
    }

    fn synth_config(&self) -> SynthConfig {
        match self {
            Profile::Smoke => SynthConfig {
                n_relations: 8,
                cover_count: 3,
                topology: Topology::Random { extra: 4 },
                global_cover_prob: 0.5,
                ..SynthConfig::default()
            },
            Profile::Standard => SynthConfig {
                n_relations: 12,
                cover_count: 3,
                topology: Topology::Random { extra: 6 },
                global_cover_prob: 0.5,
                ..SynthConfig::default()
            },
            Profile::Soak => SynthConfig {
                n_relations: 16,
                cover_count: 4,
                topology: Topology::Random { extra: 8 },
                global_cover_prob: 0.6,
                ..SynthConfig::default()
            },
        }
    }

    fn view_count(&self) -> usize {
        match self {
            Profile::Smoke => 3,
            Profile::Standard => 5,
            Profile::Soak => 6,
        }
    }
}

/// Configuration of one simulation run.
#[derive(Debug, Clone)]
pub struct SimConfig {
    /// Master seed: workload, views, schedule, and fault plans all
    /// derive from it.
    pub seed: u64,
    /// Number of schedule steps to plan.
    pub steps: usize,
    /// Workload size / action mix preset.
    pub profile: Profile,
    /// Draw only destructive changes (the schema-consuming soak
    /// regime); the run ends early when the schema runs dry.
    pub destructive: bool,
    /// Raise an artificial invariant violation once this many changes
    /// have committed — the self-test hook for the repro-artifact +
    /// shrinker pipeline (a violation whose minimal schedule is exactly
    /// `canary` change actions).
    pub canary: Option<u64>,
    /// Record the executed schedule in the report (on by default; the
    /// memory probe turns it off so the trace itself doesn't read as
    /// monotonic growth).
    pub record: bool,
}

impl SimConfig {
    /// A standard-profile config with recording on.
    pub fn new(seed: u64, steps: usize) -> Self {
        SimConfig {
            seed,
            steps,
            profile: Profile::Standard,
            destructive: false,
            canary: None,
            record: true,
        }
    }
}

/// An invariant violation: which step of the schedule, which invariant,
/// and what was observed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Violation {
    /// Index into the executed schedule.
    pub step: usize,
    /// Invariant name (stable across replays — the shrinker matches on
    /// it so it never shrinks onto a *different* failure).
    pub invariant: String,
    /// Human-readable observation.
    pub detail: String,
}

impl std::fmt::Display for Violation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "step {}: [{}] {}",
            self.step, self.invariant, self.detail
        )
    }
}

/// Counters of what a run actually did.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct SimStats {
    /// Changes committed (including fault-episode commits).
    pub changes: u64,
    /// Views registered at runtime.
    pub registrations: u64,
    /// Reader queries evaluated.
    pub queries: u64,
    /// Historical previews.
    pub previews: u64,
    /// Rollbacks performed.
    pub rollbacks: u64,
    /// Fault episodes executed.
    pub fault_episodes: u64,
    /// Faults that actually fired across episodes.
    pub faults_fired: u64,
    /// Replay invariant checks.
    pub replays: u64,
    /// Full invariant sweeps.
    pub full_checks: u64,
    /// Actions skipped during trace replay (inapplicable after
    /// shrinking: inadmissible change, empty view list, zero rollback).
    pub skipped: u64,
}

/// The result of a run: digest, violation (if any), recorded schedule.
#[derive(Debug, Clone)]
pub struct SimReport {
    /// The config's seed, echoed for replay.
    pub seed: u64,
    /// Steps actually executed (may be short of the plan if the
    /// schedule ran dry or a violation stopped it).
    pub steps_executed: usize,
    /// Running FNV-1a digest over every schedule-independent
    /// observation; byte-identical for identical configs.
    pub digest: u64,
    /// The first invariant violation, if any (execution stops there).
    pub violation: Option<Violation>,
    /// The executed schedule (empty when `record` is off).
    pub trace: Vec<Action>,
    /// Activity counters.
    pub stats: SimStats,
}

impl SimReport {
    /// The digest as printed by `eve-cli simulate` (16 hex digits).
    pub fn digest_hex(&self) -> String {
        format!("{:016x}", self.digest)
    }
}

/// Uninstalls the virtual clock and any leftover fault plan even when
/// execution unwinds, so one failed run cannot wedge the process-global
/// registries for the next.
struct RegistryGuard;

impl Drop for RegistryGuard {
    fn drop(&mut self) {
        let _ = clock::uninstall();
        let _ = eve_faults::uninstall();
    }
}

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

fn fnv1a(mut hash: u64, bytes: &[u8]) -> u64 {
    for &b in bytes {
        hash = (hash ^ b as u64).wrapping_mul(FNV_PRIME);
    }
    hash
}

/// A tiny database matching whatever the MKB currently describes
/// (five rows per relation, values a fixed function of row and column).
pub fn db_for(mkb: &MetaKnowledgeBase) -> Database {
    let mut db = Database::new();
    for desc in mkb.relations() {
        let schema = Schema::of_relation(&desc.name, &desc.attrs);
        let mut rel = Relation::new(schema);
        for k in 0..5i64 {
            let vals: Vec<Value> = desc
                .attrs
                .iter()
                .enumerate()
                .map(|(j, a)| match a.ty {
                    DataType::Int => Value::Int(k * 10 + j as i64),
                    DataType::Float => Value::float(k as f64),
                    DataType::Str => Value::str(format!("s{k}")),
                    DataType::Bool => Value::Bool(k % 2 == 0),
                    DataType::Date => Value::Date(1000 + k),
                })
                .collect();
            rel.insert(Tuple::new(vals)).expect("arity");
        }
        db.put(desc.name.clone(), rel);
    }
    db
}

fn degrade_policy() -> FailurePolicy {
    FailurePolicy::Degrade {
        max_retries: 2,
        backoff: Duration::from_millis(100),
    }
}

fn sim_options(maintenance: IndexMaintenance) -> CvsOptions {
    CvsOptions {
        index_maintenance: maintenance,
        failure: degrade_policy(),
        budget: SearchBudget {
            // One virtual hour: enough that bounded backoff advances
            // can never trip it mid-search, while proving that *wall*
            // time does not govern truncation (a slow machine cannot
            // change outcomes).
            deadline: Some(Duration::from_secs(3600)),
            ..SearchBudget::default()
        },
        // Parallelism stays None → EVE_PARALLELISM decides, which is
        // exactly what the cross-parallelism digest comparison varies.
        ..CvsOptions::default()
    }
}

/// The simulator state: both synchronizers, the clock, and the running
/// digest. Executes one [`Action`] at a time; construction and the
/// schedule planner live in [`run`] / [`run_trace`].
pub struct Executor {
    shared: SharedSynchronizer,
    shadow: Synchronizer,
    clock: Arc<VirtualClock>,
    funcs: FuncRegistry,
    /// Replay checks must not cross a version whose recorded outcome
    /// depended on an installed fault plan (the plan is gone at replay
    /// time, so the fork would legitimately diverge), nor a runtime
    /// view registration (not a chain version, so an earlier fork
    /// lacks the view). The fence is the highest such version, clamped
    /// down by rollbacks.
    fault_fence: usize,
    /// Descriptions of relations the schedule has deleted (latest wins
    /// per name). The scheduler occasionally re-adds one — the only way
    /// a dead relation name can come back, which is what keeps disabled
    /// views revivable (and the revival path exercised) over long runs.
    graveyard: Vec<eve_misd::RelationDescription>,
    changes_applied: u64,
    canary: Option<u64>,
    digest: u64,
    stats: SimStats,
}

impl Executor {
    fn new(config: &SimConfig, clock: Arc<VirtualClock>) -> Executor {
        let workload = SynthWorkload::random(&config.profile.synth_config(), config.seed);
        let views = random_views(
            &workload.mkb,
            config.profile.view_count(),
            3,
            config.seed ^ 0x51ED,
        );
        let mut main = SynchronizerBuilder::new(workload.mkb.clone())
            .with_options(sim_options(IndexMaintenance::Incremental));
        let mut shadow = SynchronizerBuilder::new(workload.mkb.clone())
            .with_options(sim_options(IndexMaintenance::Rebuild));
        for v in views {
            main = main.with_view(v.clone()).expect("generated views valid");
            shadow = shadow.with_view(v).expect("generated views valid");
        }
        Executor {
            shared: SharedSynchronizer::new(main.build()),
            shadow: shadow.build(),
            clock,
            funcs: FuncRegistry::new(),
            fault_fence: 0,
            graveyard: Vec::new(),
            changes_applied: 0,
            canary: config.canary,
            digest: FNV_OFFSET,
            stats: SimStats::default(),
        }
    }

    /// The current MKB snapshot (what changes are drawn against).
    pub fn mkb(&self) -> Arc<MetaKnowledgeBase> {
        self.shared.mkb()
    }

    /// Active view names, in registration order.
    pub fn view_names(&self) -> Vec<String> {
        self.shared
            .read(|s| s.views().map(|v| v.name.clone()).collect())
    }

    /// Whether `change` would put at least one active view through
    /// synchronization (the precondition for a fault plan to fire).
    pub fn affects_active_view(&self, change: &eve_misd::CapabilityChange) -> bool {
        self.shared
            .read(|s| s.views().any(|v| is_affected(v, change)))
    }

    fn note(&mut self, event: &str) {
        self.digest = fnv1a(self.digest, event.as_bytes());
        self.digest = fnv1a(self.digest, b"\n");
    }

    fn violation(step: usize, invariant: &str, detail: String) -> Violation {
        Violation {
            step,
            invariant: invariant.to_string(),
            detail,
        }
    }

    fn canary_check(&mut self, step: usize) -> Result<(), Violation> {
        if Some(self.changes_applied) == self.canary {
            return Err(Self::violation(
                step,
                "canary",
                format!(
                    "intentional canary violation after {} committed changes",
                    self.changes_applied
                ),
            ));
        }
        Ok(())
    }

    /// A graveyard entry whose relation name is currently free, if any
    /// (`pick` rotates through the candidates deterministically).
    fn revivable_relation(&self, pick: usize) -> Option<eve_misd::RelationDescription> {
        let mkb = self.mkb();
        let dead: Vec<&eve_misd::RelationDescription> = self
            .graveyard
            .iter()
            .filter(|d| !mkb.contains_relation(&d.name))
            .collect();
        if dead.is_empty() {
            None
        } else {
            Some(dead[pick % dead.len()].clone())
        }
    }

    /// Remember the full description of a relation a change is about to
    /// delete, so the scheduler can re-add it later.
    fn stash_deleted(&mut self, change: &eve_misd::CapabilityChange) {
        if let eve_misd::CapabilityChange::DeleteRelation(name) = change {
            if let Some(desc) = self.mkb().relation(name) {
                self.graveyard.retain(|d| &d.name != name);
                self.graveyard.push(desc.clone());
            }
        }
    }

    /// Apply `change` to the shared synchronizer and the shadow,
    /// comparing outcomes. `context` tags digest entries.
    fn apply_both(
        &mut self,
        step: usize,
        change: &eve_misd::CapabilityChange,
        context: &str,
    ) -> Result<bool, Violation> {
        self.stash_deleted(change);
        let outcome = match self.shared.apply(change) {
            Ok(o) => o,
            Err(_) => {
                // Inadmissible in the current state — possible when a
                // shrunk trace dropped the change's prerequisites.
                self.stats.skipped += 1;
                self.note(&format!("{context}-skip: {change}"));
                return Ok(false);
            }
        };
        let shadow_outcome = match self.shadow.apply(change) {
            Ok(o) => o,
            Err(e) => {
                return Err(Self::violation(
                    step,
                    "delta-rebuild-divergence",
                    format!("shadow rejected a change the main path committed: {change}: {e}"),
                ))
            }
        };
        if outcome != shadow_outcome {
            return Err(Self::violation(
                step,
                "delta-rebuild-divergence",
                format!(
                    "outcomes diverge for {change}\n-- incremental --\n{outcome}\n-- rebuild --\n{shadow_outcome}"
                ),
            ));
        }
        // Failed and disabled views must stay revival-eligible: the
        // synchronizer keeps them (with their last definition) in the
        // disabled set, where a later change's revival pass can find
        // them.
        let non_survivors: Vec<&str> = outcome
            .views
            .iter()
            .filter(|(_, o)| !o.survived())
            .map(|(n, _)| n.as_str())
            .collect();
        if !non_survivors.is_empty() {
            let missing: Vec<&str> = self.shared.read(|s| {
                let disabled: Vec<String> =
                    s.disabled_views().map(|(n, _)| n.to_string()).collect();
                non_survivors
                    .iter()
                    .filter(|n| !disabled.iter().any(|d| d == *n))
                    .copied()
                    .collect()
            });
            if !missing.is_empty() {
                return Err(Self::violation(
                    step,
                    "failed-view-not-revivable",
                    format!(
                        "views {missing:?} left the active set but are not tracked as disabled"
                    ),
                ));
            }
            if outcome
                .views
                .iter()
                .any(|(_, o)| matches!(o, ViewOutcome::Failed { .. }))
            {
                self.fault_fence = self.shared.version();
            }
        }
        self.note(&format!("{context}:\n{outcome}"));
        self.stats.changes += 1;
        self.changes_applied += 1;
        self.canary_check(step)?;
        Ok(true)
    }

    /// Execute one action, checking its invariants. `Err` carries the
    /// first violated invariant; execution stops there.
    pub fn execute(&mut self, step: usize, action: &Action) -> Result<(), Violation> {
        match action {
            Action::Change(change) => {
                self.apply_both(step, change, "apply")?;
            }
            Action::Register { view } => {
                // Registration against the *current* state can be
                // legitimately inapplicable after shrinking (the name
                // now clashes, or a referenced relation was deleted by
                // a since-removed step) — skip, don't fail. The view
                // must register identically on both synchronizers,
                // though: a main/shadow split is a divergence.
                let parsed = match parse_view(view) {
                    Ok(v) => v,
                    Err(e) => {
                        self.stats.skipped += 1;
                        self.note(&format!("register-skip-parse:{e}"));
                        return Ok(());
                    }
                };
                let name = parsed.name.clone();
                match self.shared.register_view(parsed.clone()) {
                    Ok(()) => {
                        if let Err(e) = self.shadow.register_view(parsed) {
                            return Err(Self::violation(
                                step,
                                "delta-rebuild-divergence",
                                format!(
                                    "shadow rejected view {name} the main path registered: {e}"
                                ),
                            ));
                        }
                        // Registration is not a chain version, so a
                        // replay fork from an earlier version would
                        // legitimately lack the new view — fence
                        // replays at the current version, as for fault
                        // episodes.
                        self.fault_fence = self.shared.version();
                        self.note(&format!("register:{name}"));
                        self.stats.registrations += 1;
                    }
                    Err(reason) => {
                        if self.shadow.register_view(parsed).is_ok() {
                            return Err(Self::violation(
                                step,
                                "delta-rebuild-divergence",
                                format!(
                                    "main path rejected view {name} the shadow accepted: {reason}"
                                ),
                            ));
                        }
                        self.stats.skipped += 1;
                        self.note(&format!("register-skip:{name}"));
                    }
                }
            }
            Action::Query { view } => {
                let views = self.shared.views();
                if views.is_empty() {
                    self.stats.skipped += 1;
                    return Ok(());
                }
                let view = &views[view % views.len()];
                let db = db_for(&self.shared.mkb());
                match evaluate_view(view, &db, &self.funcs) {
                    Ok(rows) => {
                        self.note(&format!("query:{}:{}", view.name, rows.len()));
                        self.stats.queries += 1;
                    }
                    Err(e) => {
                        return Err(Self::violation(
                            step,
                            "active-view-evaluates",
                            format!("view {} failed to evaluate: {e}\n{view}", view.name),
                        ))
                    }
                }
            }
            Action::Preview { back, change } => {
                let version = self.shared.version();
                let target = version - (*back).min(version);
                match self.shared.preview_at(target, change) {
                    Some(Ok(outcome)) => self.note(&format!("preview@{target}:\n{outcome}")),
                    Some(Err(e)) => self.note(&format!("preview@{target}-err:{e}")),
                    None => {
                        return Err(Self::violation(
                            step,
                            "preview-at-range",
                            format!("preview_at({target}) out of range at version {version}"),
                        ))
                    }
                }
                let after = self.shared.version();
                if after != version {
                    return Err(Self::violation(
                        step,
                        "preview-mutates",
                        format!("preview_at moved the version: {version} -> {after}"),
                    ));
                }
                self.stats.previews += 1;
            }
            Action::Rollback { back } => {
                let version = self.shared.version();
                let depth = (*back).min(version);
                if depth == 0 {
                    self.stats.skipped += 1;
                    return Ok(());
                }
                let target = version - depth;
                if !self.shared.rollback_to(target) || !self.shadow.rollback_to(target) {
                    return Err(Self::violation(
                        step,
                        "rollback-range",
                        format!("rollback_to({target}) rejected at version {version}"),
                    ));
                }
                self.fault_fence = self.fault_fence.min(target);
                self.note(&format!("rollback:{version}->{target}"));
                self.stats.rollbacks += 1;
            }
            Action::Fault {
                fail_fast,
                plan,
                change,
            } => {
                self.fault_episode(step, *fail_fast, plan, change)?;
            }
            Action::Tick { millis } => {
                self.clock.advance(Duration::from_millis(*millis));
                self.note(&format!("tick:{millis}"));
            }
            Action::CheckReplay { back } => {
                self.check_replay(step, *back)?;
            }
            Action::CheckFull => {
                self.check_full(step)?;
            }
        }
        Ok(())
    }

    fn fault_episode(
        &mut self,
        step: usize,
        fail_fast: bool,
        plan_text: &str,
        change: &eve_misd::CapabilityChange,
    ) -> Result<(), Violation> {
        let plan = match eve_faults::FaultPlan::parse(plan_text) {
            Ok(p) => p,
            Err(e) => {
                return Err(Self::violation(
                    step,
                    "fault-plan-parse",
                    format!("{plan_text:?}: {e}"),
                ))
            }
        };
        self.stats.fault_episodes += 1;
        self.stash_deleted(change);
        let version_before = self.shared.version();
        if fail_fast {
            self.shared.set_failure_policy(FailurePolicy::FailFast);
        }
        if eve_faults::install(plan.clone()).is_err() {
            self.shared.set_failure_policy(degrade_policy());
            return Err(Self::violation(
                step,
                "fault-registry-busy",
                "another fault plan is already installed".to_string(),
            ));
        }
        let result = catch_unwind(AssertUnwindSafe(|| self.shared.apply(change)));
        let report = eve_faults::uninstall().expect("plan installed above");
        self.shared.set_failure_policy(degrade_policy());
        self.stats.faults_fired += report.fired.len() as u64;
        match result {
            Err(_payload) => {
                if !fail_fast {
                    return Err(Self::violation(
                        step,
                        "degrade-containment",
                        format!("plan {plan_text:?} panicked outward under Degrade for {change}"),
                    ));
                }
                // FailFast: the panic must have aborted the change
                // before any commit, with its identity recorded.
                let version_after = self.shared.version();
                if version_after != version_before {
                    return Err(Self::violation(
                        step,
                        "failfast-partial-commit",
                        format!("version moved {version_before} -> {version_after} across a failed apply"),
                    ));
                }
                if self.shared.last_failure().is_none() {
                    return Err(Self::violation(
                        step,
                        "failfast-identity-lost",
                        "no FailedChange recorded after a FailFast panic".to_string(),
                    ));
                }
                self.note(&format!(
                    "failfast-panic:{}:{}",
                    report.injected,
                    report.fired.len()
                ));
            }
            Ok(apply_result) => {
                let outcome = match apply_result {
                    Ok(o) => o,
                    Err(_) => {
                        // Inadmissible change (shrunk trace) — nothing
                        // was installed long enough to matter.
                        self.stats.skipped += 1;
                        self.note(&format!("fault-skip: {change}"));
                        return Ok(());
                    }
                };
                // Re-install the same plan fresh so the shadow sees the
                // identical fault schedule (per-(scope,site) hit
                // counters restart from zero).
                if eve_faults::install(plan).is_err() {
                    return Err(Self::violation(
                        step,
                        "fault-registry-busy",
                        "could not re-install plan for the shadow".to_string(),
                    ));
                }
                let shadow_result = catch_unwind(AssertUnwindSafe(|| self.shadow.apply(change)));
                let _ = eve_faults::uninstall();
                let shadow_outcome = match shadow_result {
                    Ok(Ok(o)) => o,
                    other => {
                        return Err(Self::violation(
                            step,
                            "delta-rebuild-divergence",
                            format!(
                                "shadow diverged under plan {plan_text:?} for {change}: {}",
                                match other {
                                    Ok(Err(e)) => format!("rejected: {e}"),
                                    _ => "panicked".to_string(),
                                }
                            ),
                        ))
                    }
                };
                if outcome != shadow_outcome {
                    return Err(Self::violation(
                        step,
                        "delta-rebuild-divergence",
                        format!(
                            "outcomes diverge under plan {plan_text:?} for {change}\n-- incremental --\n{outcome}\n-- rebuild --\n{shadow_outcome}"
                        ),
                    ));
                }
                // Views the episode failed or disabled must stay
                // revival-eligible (tracked in the disabled set), and
                // replay checks are fenced off the faulted window: the
                // plan is gone at replay time, so a fork across it
                // would legitimately diverge.
                let non_survivors: Vec<String> = outcome
                    .views
                    .iter()
                    .filter(|(_, o)| !o.survived())
                    .map(|(n, _)| n.clone())
                    .collect();
                if !non_survivors.is_empty() {
                    let missing: Vec<String> = self.shared.read(|s| {
                        let disabled: Vec<String> =
                            s.disabled_views().map(|(n, _)| n.to_string()).collect();
                        non_survivors
                            .iter()
                            .filter(|n| !disabled.contains(n))
                            .cloned()
                            .collect()
                    });
                    if !missing.is_empty() {
                        return Err(Self::violation(
                            step,
                            "failed-view-not-revivable",
                            format!(
                                "views {missing:?} left the active set under plan {plan_text:?} but are not tracked as disabled"
                            ),
                        ));
                    }
                }
                if report.fired.iter().any(|f| f.kind != "delay") {
                    self.fault_fence = self.shared.version();
                }
                self.note(&format!(
                    "fault-apply:{}:fired={}:unfired={}:\n{outcome}",
                    if fail_fast { "failfast" } else { "degrade" },
                    report.fired.len(),
                    report.unfired.len(),
                ));
                self.stats.changes += 1;
                self.changes_applied += 1;
                self.canary_check(step)?;
            }
        }
        Ok(())
    }

    fn check_replay(&mut self, step: usize, back: usize) -> Result<(), Violation> {
        let version = self.shared.version();
        let start = self.fault_fence.max(version - back.max(1).min(version));
        if start >= version {
            self.stats.skipped += 1;
            return Ok(());
        }
        let changes: Vec<eve_misd::CapabilityChange> = self.shared.read(|s| {
            s.chain()[start + 1..=version]
                .iter()
                .map(|e| e.change().expect("non-initial entry").clone())
                .collect()
        });
        let mut fork = self
            .shared
            .at_version(start)
            .expect("start is a live version");
        for change in &changes {
            if fork.apply(change).is_err() {
                return Err(Self::violation(
                    step,
                    "replay-reconstruction",
                    format!("recorded change {change} failed to replay from version {start}"),
                ));
            }
        }
        let fork_mkb = render_misd(fork.mkb());
        let live_mkb = render_misd(&self.shared.mkb());
        let fork_views: Vec<String> = fork.views().map(|v| v.to_string()).collect();
        let live_views = self
            .shared
            .read(|s| s.views().map(|v| v.to_string()).collect::<Vec<_>>());
        let fork_disabled: Vec<String> =
            fork.disabled_views().map(|(n, _)| n.to_string()).collect();
        let live_disabled = self.shared.read(|s| {
            s.disabled_views()
                .map(|(n, _)| n.to_string())
                .collect::<Vec<_>>()
        });
        if fork_mkb != live_mkb || fork_views != live_views || fork_disabled != live_disabled {
            return Err(Self::violation(
                step,
                "replay-reconstruction",
                format!(
                    "replaying versions {}..={version} from {start} did not reconstruct the head",
                    start + 1
                ),
            ));
        }
        self.note(&format!("replay:{start}..{version}:ok"));
        self.stats.replays += 1;
        Ok(())
    }

    fn check_full(&mut self, step: usize) -> Result<(), Violation> {
        let mkb = self.shared.mkb();
        // MKB renders, re-parses to an equal MKB, and type-checks.
        let rendered = render_misd(&mkb);
        match parse_misd(&rendered) {
            Ok(back) if back == *mkb => {}
            Ok(_) => {
                return Err(Self::violation(
                    step,
                    "mkb-round-trip",
                    "re-parsed MKB differs from the live one".to_string(),
                ))
            }
            Err(e) => {
                return Err(Self::violation(
                    step,
                    "mkb-round-trip",
                    format!("rendered MKB failed to parse: {e}"),
                ))
            }
        }
        let type_errors = check_mkb(&mkb);
        if !type_errors.is_empty() {
            return Err(Self::violation(
                step,
                "mkb-type-check",
                format!("{type_errors:?}"),
            ));
        }
        // Every active view prints, parses, references only described
        // relations, and evaluates.
        let db = db_for(&mkb);
        for view in self.shared.views() {
            let printed = view.to_string();
            if let Err(e) = parse_view(&printed) {
                return Err(Self::violation(
                    step,
                    "view-round-trip",
                    format!("view {} unparseable: {e}\n{printed}", view.name),
                ));
            }
            if let Some(stale) = view
                .relations()
                .into_iter()
                .find(|r| !mkb.contains_relation(r))
            {
                return Err(Self::violation(
                    step,
                    "stale-view-reference",
                    format!(
                        "active view {} references dropped relation {stale}",
                        view.name
                    ),
                ));
            }
            if let Err(e) = evaluate_view(&view, &db, &self.funcs) {
                return Err(Self::violation(
                    step,
                    "active-view-evaluates",
                    format!("view {} failed to evaluate: {e}\n{view}", view.name),
                ));
            }
        }
        // Delta-maintained state ≡ rebuild shadow, byte for byte.
        let shadow_mkb = render_misd(self.shadow.mkb());
        if rendered != shadow_mkb {
            return Err(Self::violation(
                step,
                "delta-rebuild-divergence",
                "MKB renders diverge between incremental and rebuild".to_string(),
            ));
        }
        let main_views = self
            .shared
            .read(|s| s.views().map(|v| v.to_string()).collect::<Vec<_>>());
        let shadow_views: Vec<String> = self.shadow.views().map(|v| v.to_string()).collect();
        if main_views != shadow_views {
            return Err(Self::violation(
                step,
                "delta-rebuild-divergence",
                "active view sets diverge between incremental and rebuild".to_string(),
            ));
        }
        self.note(&format!(
            "full:{:016x}",
            fnv1a(FNV_OFFSET, rendered.as_bytes())
        ));
        self.stats.full_checks += 1;
        Ok(())
    }
}

/// The seeded scheduler: plans one concrete action against the current
/// state. Returns `None` when the change source runs dry (destructive
/// profiles consume the schema).
fn plan_action(
    rng: &mut StdRng,
    source: &mut ChangeSource,
    exec: &Executor,
    config: &SimConfig,
    step: usize,
) -> Option<Action> {
    let roll: u32 = rng.gen_range(0..100);
    if config.destructive {
        // Destructive mix: mostly deletes, with rollbacks and checks.
        return match roll {
            0..=69 => source.next(&exec.mkb()).map(Action::Change),
            70..=76 => Some(Action::Rollback {
                back: 1 + rng.gen_range(0..2usize),
            }),
            77..=87 => Some(Action::CheckReplay {
                back: 1 + rng.gen_range(0..4usize),
            }),
            _ => Some(Action::CheckFull),
        };
    }
    match roll {
        0..=37 => source.next(&exec.mkb()).map(Action::Change),
        38..=44 => {
            // Re-add a deleted relation: the only move that brings a
            // dead name back, so disabled views that referenced it can
            // revive. Falls back to an ordinary change while nothing
            // is dead.
            let pick = rng.gen_range(0..16usize);
            match exec.revivable_relation(pick) {
                Some(desc) => Some(Action::Change(eve_misd::CapabilityChange::AddRelation(
                    desc,
                ))),
                None => source.next(&exec.mkb()).map(Action::Change),
            }
        }
        45..=56 => {
            // Mostly reader queries, with a slice reserved for runtime
            // view registration. The slice widens to the whole band
            // while the active set is thin (changes disable views
            // permanently unless registration replenishes them — an
            // empty set starves queries and fault episodes for the
            // rest of the run).
            let active = exec.view_names().len();
            let thin = active * 2 < config.profile.view_count();
            if roll <= 48 || thin {
                if let Some(action) = plan_register(exec, config, step) {
                    return Some(action);
                }
            }
            Some(Action::Query {
                view: rng.gen_range(0..64),
            })
        }
        57..=64 => {
            let change = source.next(&exec.mkb())?;
            Some(Action::Preview {
                back: rng.gen_range(0..4),
                change,
            })
        }
        65..=70 => Some(Action::Rollback {
            back: 1 + rng.gen_range(0..3usize),
        }),
        71..=76 => {
            let scopes = exec.view_names();
            if scopes.is_empty() {
                return source.next(&exec.mkb()).map(Action::Change);
            }
            // Bias the episode toward a change that actually puts a
            // view through synchronization — an unaffecting change
            // makes the whole plan dead on arrival. Bounded redraw,
            // all from the seeded source, so still deterministic.
            let mut change = source.next(&exec.mkb())?;
            for _ in 0..7 {
                if exec.affects_active_view(&change) {
                    break;
                }
                change = source.next(&exec.mkb())?;
            }
            let fail_fast = rng.gen_range(0..10) < 3;
            let plan = plan_for(rng, config.seed ^ step as u64, &scopes, fail_fast);
            Some(Action::Fault {
                fail_fast,
                plan,
                change,
            })
        }
        77..=81 => Some(Action::Tick {
            millis: 1 + rng.gen_range(0..1000u64),
        }),
        82..=89 => Some(Action::CheckReplay {
            back: 1 + rng.gen_range(0..6usize),
        }),
        _ => Some(Action::CheckFull),
    }
}

/// Plan a runtime view registration: generate one fresh view over the
/// current MKB's join structure and rename it `SimV{step}` so it never
/// clashes with the initial `View{i}` set or earlier registrations.
/// The action carries the whitespace-collapsed E-SQL text — concrete,
/// so a shrunk trace replays the exact same view. Returns `None` when
/// the MKB affords no view (no relations left).
fn plan_register(exec: &Executor, config: &SimConfig, step: usize) -> Option<Action> {
    let mkb = exec.mkb();
    let seed = config.seed ^ (step as u64).wrapping_mul(0x9e37_79b9_7f4a_7c15);
    let mut view = random_views(&mkb, 1, 3, seed).into_iter().next()?;
    view.name = format!("SimV{step}");
    let text = view
        .to_string()
        .split_whitespace()
        .collect::<Vec<_>>()
        .join(" ");
    Some(Action::Register { view: text })
}

/// Generate a fault plan whose firing schedule is independent of both
/// worker count and index-maintenance mode: view-scoped `view.sync`
/// hits are per synchronization attempt, `search.candidate` hits are
/// per candidate pull — both identical across `EVE_PARALLELISM`
/// settings and across incremental/rebuild maintenance (unlike, say,
/// `hypergraph.tree-iter`, whose hit sequence depends on memo-cache
/// warmth). FailFast episodes get a single panic spec so at most one
/// fault fires before the unwind.
fn plan_for(rng: &mut StdRng, seed: u64, scopes: &[String], fail_fast: bool) -> String {
    if fail_fast {
        // Unscoped: fires for whichever affected view syncs first (hit
        // counters are per (scope = view name, site), so "first" is
        // per-view, not a racy global) — guaranteed to fire whenever
        // the change touches any view at all.
        return format!("seed={seed};view.sync#0=panic");
    }
    let mut entries = vec![format!("seed={seed}")];
    for _ in 0..rng.gen_range(1..3u32) {
        // Half the specs are scoped to a random registered view —
        // those frequently never fire (the view may not be affected),
        // which exercises dead-entry reporting; the other half are
        // unscoped and hit every affected view's own counter.
        let scope = if rng.gen_bool(0.5) {
            format!("{}/", scopes[rng.gen_range(0..scopes.len())])
        } else {
            String::new()
        };
        let entry = if rng.gen_bool(0.5) {
            let kind = ["panic", "transient", "delay:1"][rng.gen_range(0..3usize)];
            format!("{scope}view.sync#{}={kind}", rng.gen_range(0..2usize))
        } else {
            let kind = ["budget", "delay:1"][rng.gen_range(0..2usize)];
            format!(
                "{scope}search.candidate#{}={kind}",
                rng.gen_range(0..3usize)
            )
        };
        entries.push(entry);
    }
    entries.join(";")
}

fn start_registries() -> Result<(Arc<VirtualClock>, RegistryGuard), Violation> {
    if eve_faults::active() {
        return Err(Violation {
            step: 0,
            invariant: "fault-registry-busy".to_string(),
            detail: "a fault plan (EVE_FAULTS?) is installed; the simulator owns fault injection"
                .to_string(),
        });
    }
    let clock = VirtualClock::new();
    if clock::install(Arc::clone(&clock)).is_err() {
        return Err(Violation {
            step: 0,
            invariant: "clock-registry-busy".to_string(),
            detail: "a virtual clock is already installed".to_string(),
        });
    }
    Ok((clock, RegistryGuard))
}

/// A simulation held open for external stepping: the executor plus the
/// registry guard keeping the virtual clock installed. [`run`] and
/// [`run_trace`] cover the common cases; a `Session` is for callers
/// that need to observe state *between* actions (the memory-plateau
/// probe samples the counting allocator at cycle boundaries).
pub struct Session {
    exec: Executor,
    _guard: RegistryGuard,
}

impl Session {
    /// Open a session: install the virtual clock and build the seeded
    /// workload. Fails (as a [`Violation`]) when a fault plan or clock
    /// is already installed process-wide.
    pub fn start(config: &SimConfig) -> Result<Session, Violation> {
        let (clock, guard) = start_registries()?;
        Ok(Session {
            exec: Executor::new(config, clock),
            _guard: guard,
        })
    }

    /// Execute one action (`step` tags any violation).
    pub fn execute(&mut self, step: usize, action: &Action) -> Result<(), Violation> {
        self.exec.execute(step, action)
    }

    /// The running outcome digest.
    pub fn digest(&self) -> u64 {
        self.exec.digest
    }

    /// The current MKB snapshot (to draw further changes against).
    pub fn mkb(&self) -> Arc<MetaKnowledgeBase> {
        self.exec.mkb()
    }

    /// The current version of the main synchronizer.
    pub fn version(&self) -> usize {
        self.exec.shared.version()
    }

    /// Activity counters so far.
    pub fn stats(&self) -> &SimStats {
        &self.exec.stats
    }
}

/// Run a seeded simulation: generate and execute `config.steps`
/// actions, recording the schedule and stopping at the first invariant
/// violation.
///
/// Installs a [`VirtualClock`] (and, during fault episodes, fault
/// plans) process-globally for the duration — concurrent tests in the
/// same binary must serialize via [`eve_core::clock::serial_guard`].
pub fn run(config: &SimConfig) -> SimReport {
    let (clock, _guard) = match start_registries() {
        Ok(pair) => pair,
        Err(violation) => {
            return SimReport {
                seed: config.seed,
                steps_executed: 0,
                digest: 0,
                violation: Some(violation),
                trace: Vec::new(),
                stats: SimStats::default(),
            }
        }
    };
    let mut exec = Executor::new(config, clock);
    let mut rng = StdRng::seed_from_u64(config.seed ^ 0x51AB_51AB_51AB_51AB);
    let mut source = if config.destructive {
        ChangeSource::destructive(config.seed)
    } else {
        ChangeSource::new(config.seed)
    };
    let mut trace = Vec::new();
    let mut violation = None;
    let mut executed = 0usize;
    for step in 0..config.steps {
        let Some(action) = plan_action(&mut rng, &mut source, &exec, config, step) else {
            break; // schema ran dry (destructive profile)
        };
        if config.record {
            trace.push(action.clone());
        }
        executed += 1;
        if let Err(v) = exec.execute(step, &action) {
            violation = Some(v);
            break;
        }
    }
    SimReport {
        seed: config.seed,
        steps_executed: executed,
        digest: exec.digest,
        violation,
        trace,
        stats: exec.stats,
    }
}

/// Replay an explicit schedule (a recorded — possibly shrunk — trace)
/// under `config`'s workload. Inapplicable actions are skipped and
/// counted, so any subsequence of a recorded trace is executable —
/// the property the shrinker relies on.
pub fn run_trace(config: &SimConfig, trace: &[Action]) -> SimReport {
    let (clock, _guard) = match start_registries() {
        Ok(pair) => pair,
        Err(violation) => {
            return SimReport {
                seed: config.seed,
                steps_executed: 0,
                digest: 0,
                violation: Some(violation),
                trace: Vec::new(),
                stats: SimStats::default(),
            }
        }
    };
    let mut exec = Executor::new(config, clock);
    let mut violation = None;
    let mut executed = 0usize;
    for (step, action) in trace.iter().enumerate() {
        executed += 1;
        if let Err(v) = exec.execute(step, action) {
            violation = Some(v);
            break;
        }
    }
    SimReport {
        seed: config.seed,
        steps_executed: executed,
        digest: exec.digest,
        violation,
        trace: if config.record {
            trace[..executed].to_vec()
        } else {
            Vec::new()
        },
        stats: exec.stats,
    }
}
