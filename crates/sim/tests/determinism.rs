//! Determinism of the simulator: identical configs produce
//! byte-identical digests — across reruns, across `EVE_PARALLELISM`
//! settings, and when replaying the recorded schedule through
//! [`run_trace`].
//!
//! Every test holds [`eve_core::clock::serial_guard`] for its whole
//! body: the simulator owns two process-global registries (virtual
//! clock, fault plan), and the parallelism test additionally mutates a
//! process-global environment variable.

use eve_core::clock::serial_guard;
use eve_sim::{run, run_trace, Profile, SimConfig};

fn smoke(seed: u64, steps: usize) -> SimConfig {
    let mut config = SimConfig::new(seed, steps);
    config.profile = Profile::Smoke;
    config
}

#[test]
fn same_seed_same_digest() {
    let _serial = serial_guard();
    let config = smoke(11, 150);
    let a = run(&config);
    let b = run(&config);
    assert!(
        a.violation.is_none(),
        "clean seed violated: {:?}",
        a.violation
    );
    assert_eq!(a.digest, b.digest, "digests diverge across reruns");
    assert_eq!(a.trace, b.trace, "schedules diverge across reruns");
    assert_eq!(a.stats, b.stats, "stats diverge across reruns");
    assert!(a.stats.changes > 0, "schedule applied no changes");
    assert!(a.stats.full_checks > 0, "schedule ran no full sweeps");
    assert!(a.stats.replays > 0, "schedule ran no replay checks");
    assert!(a.stats.fault_episodes > 0, "schedule ran no fault episodes");
    assert!(a.stats.faults_fired > 0, "no injected fault ever fired");
}

#[test]
fn digest_stable_across_parallelism() {
    let _serial = serial_guard();
    let config = smoke(23, 120);
    let mut digests = Vec::new();
    for workers in ["1", "2", "8"] {
        std::env::set_var("EVE_PARALLELISM", workers);
        let report = run(&config);
        assert!(
            report.violation.is_none(),
            "violated under EVE_PARALLELISM={workers}: {:?}",
            report.violation
        );
        digests.push((workers, report.digest));
    }
    std::env::remove_var("EVE_PARALLELISM");
    let baseline = digests[0].1;
    for (workers, digest) in &digests {
        assert_eq!(
            *digest, baseline,
            "digest diverges at EVE_PARALLELISM={workers}"
        );
    }
}

#[test]
fn recorded_trace_replays_to_the_same_digest() {
    let _serial = serial_guard();
    let config = smoke(37, 120);
    let live = run(&config);
    assert!(live.violation.is_none(), "{:?}", live.violation);
    assert_eq!(live.trace.len(), live.steps_executed);
    let replay = run_trace(&config, &live.trace);
    assert!(replay.violation.is_none(), "{:?}", replay.violation);
    assert_eq!(
        replay.digest, live.digest,
        "replaying the recorded schedule produced a different digest"
    );
    assert_eq!(replay.stats, live.stats);
}

#[test]
fn different_seeds_diverge() {
    // Not a determinism requirement per se, but a guard against the
    // digest degenerating into a constant.
    let _serial = serial_guard();
    let a = run(&smoke(41, 60));
    let b = run(&smoke(42, 60));
    assert_ne!(a.digest, b.digest, "digest ignores the seed");
}

#[test]
fn destructive_profile_runs_dry_cleanly() {
    let _serial = serial_guard();
    let mut config = smoke(53, 400);
    config.destructive = true;
    let report = run(&config);
    assert!(report.violation.is_none(), "{:?}", report.violation);
    assert!(
        report.steps_executed < 400,
        "destructive schedule should exhaust the schema before 400 steps, ran {}",
        report.steps_executed
    );
    assert!(report.stats.changes > 0);
    // And it is just as deterministic as the mixed profile.
    assert_eq!(run(&config).digest, report.digest);
}
