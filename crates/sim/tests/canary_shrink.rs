//! The repro pipeline, exercised end to end via an intentionally seeded
//! violation: the `canary` config raises an artificial invariant
//! violation after the N-th committed change, standing in for a real
//! bug whose minimal trigger is a specific number of commits. The
//! pipeline must (1) report it, (2) render a self-contained artifact
//! that parses back, (3) shrink the schedule to a small still-failing
//! core.

use eve_core::clock::serial_guard;
use eve_sim::{parse_artifact, render_artifact, run, run_trace, shrink, Profile, SimConfig};

fn canary_config() -> SimConfig {
    let mut config = SimConfig::new(77, 400);
    config.profile = Profile::Smoke;
    config.canary = Some(8);
    config
}

#[test]
fn canary_violation_shrinks_to_a_small_failing_schedule() {
    let _serial = serial_guard();
    let config = canary_config();
    let report = run(&config);
    let violation = report.violation.clone().expect("canary must fire");
    assert_eq!(violation.invariant, "canary");
    assert!(
        !report.trace.is_empty(),
        "violating run must record its schedule"
    );

    // The artifact round-trips to a replayable schedule…
    let text = render_artifact(&config, &report.trace, &violation, &[]);
    let artifact = parse_artifact(&text).unwrap_or_else(|e| panic!("{e}"));
    assert_eq!(artifact.trace, report.trace);

    // …and that schedule reproduces the violation.
    let replay = run_trace(&artifact.config, &artifact.trace);
    assert_eq!(
        replay.violation.as_ref().map(|v| v.invariant.as_str()),
        Some("canary"),
        "artifact replay lost the violation: {:?}",
        replay.violation
    );

    // Shrinking yields a strictly smaller schedule that still fails
    // with the same invariant.
    let shrunk = shrink(&config, &report.trace, &violation, 400);
    assert_eq!(shrunk.violation.invariant, "canary");
    let confirm = run_trace(&config, &shrunk.trace);
    assert_eq!(
        confirm.violation.as_ref().map(|v| v.invariant.as_str()),
        Some("canary"),
        "shrunk schedule does not fail on its own: {:?}",
        confirm.violation
    );
    assert!(
        shrunk.trace.len() < report.trace.len(),
        "shrinker removed nothing ({} actions)",
        report.trace.len()
    );
    // The canary needs exactly 8 committed changes; everything else is
    // noise the shrinker must strip. Allow a little slack for changes
    // whose admissibility depends on a retained neighbour.
    assert!(
        shrunk.trace.len() <= 12,
        "shrunk schedule still has {} actions: {:#?}",
        shrunk.trace.len(),
        shrunk.trace
    );
    // The acceptance bar: ≤ 25% of the original planned step count.
    assert!(
        shrunk.trace.len() * 4 <= config.steps,
        "shrunk schedule ({} actions) is not ≤ 25% of {} steps",
        shrunk.trace.len(),
        config.steps
    );
}

#[test]
fn shrink_respects_its_oracle_budget() {
    let _serial = serial_guard();
    let config = canary_config();
    let report = run(&config);
    let violation = report.violation.clone().expect("canary must fire");
    let shrunk = shrink(&config, &report.trace, &violation, 3);
    assert!(
        shrunk.runs <= 3,
        "spent {} oracle runs on a budget of 3",
        shrunk.runs
    );
    // Whatever came back must still fail.
    let confirm = run_trace(&config, &shrunk.trace);
    assert_eq!(
        confirm.violation.map(|v| v.invariant),
        Some("canary".to_string())
    );
}
