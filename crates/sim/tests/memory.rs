//! Memory-plateau probe: repeated cycles of capability changes followed
//! by a rollback to the base version must not grow the process's net
//! heap usage cycle over cycle — the version chain, memo carry, and
//! per-change index state all have to be reclaimed by `rollback_to`.
//!
//! Lives in its own test binary because `#[global_allocator]` is
//! process-global (same reasoning as `crates/bench/tests/alloc_probe`,
//! but counting **net bytes** rather than allocation events: a plateau
//! claim is about retained memory, not allocator traffic).

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicI64, Ordering};

use eve_core::clock::serial_guard;
use eve_misd::evolve;
use eve_sim::{Action, Profile, Session, SimConfig};
use eve_workload::ChangeSource;

struct NetBytes;

static NET: AtomicI64 = AtomicI64::new(0);

unsafe impl GlobalAlloc for NetBytes {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        NET.fetch_add(layout.size() as i64, Ordering::Relaxed);
        System.alloc(layout)
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        NET.fetch_add(layout.size() as i64, Ordering::Relaxed);
        System.alloc_zeroed(layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        NET.fetch_add(new_size as i64 - layout.size() as i64, Ordering::Relaxed);
        System.realloc(ptr, layout, new_size)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        NET.fetch_sub(layout.size() as i64, Ordering::Relaxed);
        System.dealloc(ptr, layout)
    }
}

#[global_allocator]
static COUNTER: NetBytes = NetBytes;

#[test]
fn change_rollback_cycles_plateau() {
    let _serial = serial_guard();
    let mut config = SimConfig::new(5, 0);
    config.profile = Profile::Smoke;
    config.record = false; // the probe measures the engine, not a growing trace

    let mut session = Session::start(&config).unwrap_or_else(|v| panic!("{v}"));

    // Draw one cycle of changes valid against the *base* MKB: after
    // each cycle's rollback the synchronizer is back at version 0, so
    // the same changes stay admissible every time around.
    let mut source = ChangeSource::new(config.seed);
    let mut scratch = (*session.mkb()).clone();
    let mut cycle = Vec::new();
    for _ in 0..3 {
        let change = source.next(&scratch).expect("base MKB affords changes");
        scratch = evolve(&scratch, &change).expect("source only yields valid changes");
        cycle.push(Action::Change(change));
    }
    let depth = cycle.len();
    cycle.push(Action::CheckFull);
    cycle.push(Action::Rollback { back: depth });

    let run_cycle = |session: &mut Session, base: usize| {
        for (i, action) in cycle.iter().enumerate() {
            session
                .execute(base + i, action)
                .unwrap_or_else(|v| panic!("{v}"));
        }
        assert_eq!(
            session.version(),
            0,
            "cycle must return to the base version"
        );
    };

    // Warm-up: first cycles populate one-time state (lazy registries,
    // thread pools, interners, high-water marks of reused buffers).
    const WARMUP: usize = 4;
    const MEASURED: usize = 12;
    for c in 0..WARMUP {
        run_cycle(&mut session, c * cycle.len());
    }
    let warm = NET.load(Ordering::SeqCst);

    for c in 0..MEASURED {
        run_cycle(&mut session, (WARMUP + c) * cycle.len());
    }
    let end = NET.load(Ordering::SeqCst);

    // A real leak compounds per cycle; a plateau stays flat. Allow a
    // generous fixed allowance for stragglers (allocator bookkeeping,
    // late thread-local growth) — what matters is that 12 further
    // cycles don't add 12 × (per-cycle state).
    let growth = end - warm;
    assert!(
        growth < 256 * 1024,
        "net heap grew {growth} bytes over {MEASURED} change+rollback cycles"
    );
}
