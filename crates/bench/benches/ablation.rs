//! Ablation benchmarks for the design choices called out in DESIGN.md:
//! clause-implication strength, consistency checking, and the
//! connection-tree variant budget.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use eve_bench::support::cvs_dr;
use eve_core::{CvsOptions, ImplicationMode};
use eve_misd::evolve;
use eve_workload::{SynthConfig, SynthWorkload, Topology};

fn workload() -> (SynthWorkload, eve_misd::MetaKnowledgeBase) {
    let cfg = SynthConfig {
        n_relations: 64,
        topology: Topology::Random { extra: 32 },
        cover_count: 4,
        view_relations: 4,
        ..SynthConfig::default()
    };
    let w = SynthWorkload::random(&cfg, 11);
    let mkb2 = evolve(&w.mkb, &w.delete_change()).expect("target described");
    (w, mkb2)
}

fn bench_implication_mode(c: &mut Criterion) {
    let (w, mkb2) = workload();
    let mut group = c.benchmark_group("ablation/implication");
    for (label, mode) in [
        ("syntactic", ImplicationMode::Syntactic),
        ("interval", ImplicationMode::Interval),
    ] {
        let opts = CvsOptions {
            implication: mode,
            ..CvsOptions::default()
        };
        group.bench_with_input(BenchmarkId::from_parameter(label), &opts, |b, opts| {
            b.iter(|| cvs_dr(&w.view, &w.target, &w.mkb, &mkb2, opts))
        });
    }
    group.finish();
}

fn bench_consistency_check(c: &mut Criterion) {
    let (w, mkb2) = workload();
    let mut group = c.benchmark_group("ablation/consistency");
    for (label, check) in [("on", true), ("off", false)] {
        let opts = CvsOptions {
            check_consistency: check,
            ..CvsOptions::default()
        };
        group.bench_with_input(BenchmarkId::from_parameter(label), &opts, |b, opts| {
            b.iter(|| cvs_dr(&w.view, &w.target, &w.mkb, &mkb2, opts))
        });
    }
    group.finish();
}

fn bench_tree_budget(c: &mut Criterion) {
    let (w, mkb2) = workload();
    let mut group = c.benchmark_group("ablation/tree_budget");
    for &budget in &[1usize, 4, 16] {
        let opts = CvsOptions {
            max_trees_per_combination: budget,
            ..CvsOptions::default()
        };
        group.bench_with_input(BenchmarkId::from_parameter(budget), &opts, |b, opts| {
            b.iter(|| cvs_dr(&w.view, &w.target, &w.mkb, &mkb2, opts))
        });
    }
    group.finish();
}

/// Shared criterion config: short but stable runs so the full workspace
/// bench suite completes in minutes.
fn config() -> Criterion {
    Criterion::default()
        .sample_size(20)
        .warm_up_time(std::time::Duration::from_millis(300))
        .measurement_time(std::time::Duration::from_millis(900))
}

criterion_group! {
    name = benches;
    config = config();
    targets = bench_implication_mode, bench_consistency_check, bench_tree_budget
}
criterion_main!(benches);
