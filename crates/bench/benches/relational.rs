//! Relational-engine microbenchmarks: view evaluation and empirical
//! extent comparison over generated IS states.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use eve_bench::support::cvs_dr;
use eve_core::{empirical_extent, evaluate_view, CvsOptions};
use eve_misd::{evolve, CapabilityChange};
use eve_relational::{FuncRegistry, RelName};
use eve_workload::TravelFixture;

fn bench_evaluate_view(c: &mut Criterion) {
    let fixture = TravelFixture::new();
    let view = TravelFixture::customer_passengers_asia_eq5();
    let funcs = FuncRegistry::new();
    let mut group = c.benchmark_group("relational/evaluate_eq5");
    for &n in &[50usize, 200, 500] {
        let db = fixture.database(1, n);
        group.bench_with_input(BenchmarkId::from_parameter(n), &db, |b, db| {
            b.iter(|| evaluate_view(&view, db, &funcs).expect("evaluates"))
        });
    }
    group.finish();
}

fn bench_empirical_extent(c: &mut Criterion) {
    let fixture = TravelFixture::new();
    let mkb = fixture.mkb();
    let customer = RelName::new("Customer");
    let mkb2 = evolve(mkb, &CapabilityChange::DeleteRelation(customer.clone()))
        .expect("Customer described");
    let view = TravelFixture::customer_passengers_asia_eq5();
    let rewritten = cvs_dr(&view, &customer, mkb, &mkb2, &CvsOptions::default())
        .expect("curable")
        .remove(0)
        .view;
    let funcs = FuncRegistry::new();
    let db = fixture.database(1, 200);
    c.bench_function("relational/empirical_extent_200", |b| {
        b.iter(|| empirical_extent(&rewritten, &view, &db, &funcs).expect("evaluates"))
    });
}

/// Shared criterion config: short but stable runs so the full workspace
/// bench suite completes in minutes.
fn config() -> Criterion {
    Criterion::default()
        .sample_size(20)
        .warm_up_time(std::time::Duration::from_millis(300))
        .measurement_time(std::time::Duration::from_millis(900))
}

criterion_group! {
    name = benches;
    config = config();
    targets = bench_evaluate_view, bench_empirical_extent
}
criterion_main!(benches);
