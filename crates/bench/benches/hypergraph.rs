//! Hypergraph microbenchmarks: building `H(MKB)`, extracting connected
//! components (`H_R`), and connection-tree search.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use eve_hypergraph::{ConnectionTree, Hypergraph};
use eve_relational::RelName;
use eve_workload::{SynthConfig, SynthWorkload, Topology};
use std::collections::BTreeSet;

fn workload(n: usize) -> SynthWorkload {
    SynthWorkload::random(
        &SynthConfig {
            n_relations: n,
            topology: Topology::Random { extra: n / 2 },
            ..SynthConfig::default()
        },
        5,
    )
}

fn bench_build(c: &mut Criterion) {
    let mut group = c.benchmark_group("hypergraph/build");
    for &n in &[16usize, 64, 256, 1024] {
        let w = workload(n);
        group.bench_with_input(BenchmarkId::from_parameter(n), &w, |b, w| {
            b.iter(|| Hypergraph::build(&w.mkb))
        });
    }
    group.finish();
}

fn bench_component(c: &mut Criterion) {
    let mut group = c.benchmark_group("hypergraph/component_of");
    for &n in &[64usize, 256, 1024] {
        let w = workload(n);
        let h = Hypergraph::build(&w.mkb);
        group.bench_with_input(BenchmarkId::from_parameter(n), &h, |b, h| {
            b.iter(|| h.component_of(&RelName::new("R0")).expect("R0 exists"))
        });
    }
    group.finish();
}

fn bench_connection_tree(c: &mut Criterion) {
    let mut group = c.benchmark_group("hypergraph/connection_tree");
    for &n in &[64usize, 256] {
        let w = workload(n);
        let h = Hypergraph::build(&w.mkb);
        // Terminals spread across the index range.
        let terminals: BTreeSet<RelName> = [0, n / 3, 2 * n / 3, n - 1]
            .into_iter()
            .map(|i| RelName::new(format!("R{i}")))
            .collect();
        group.bench_with_input(
            BenchmarkId::from_parameter(n),
            &(h, terminals),
            |b, (h, t)| b.iter(|| ConnectionTree::connect(h, t).expect("connected topology")),
        );
    }
    group.finish();
}

/// Shared criterion config: short but stable runs so the full workspace
/// bench suite completes in minutes.
fn config() -> Criterion {
    Criterion::default()
        .sample_size(20)
        .warm_up_time(std::time::Duration::from_millis(300))
        .measurement_time(std::time::Duration::from_millis(900))
}

criterion_group! {
    name = benches;
    config = config();
    targets = bench_build, bench_component, bench_connection_tree
}
criterion_main!(benches);
