//! Adaptation vs recomputation: the payoff of reusing the old
//! materialization (the Gupta et al. [3] baseline implemented in
//! `eve-core::adapt`) after a definition change.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use eve_core::{adapt_materialization, evaluate_view, MaterializedView};
use eve_esql::parse_view;
use eve_relational::FuncRegistry;
use eve_workload::TravelFixture;

fn bench_adapt_vs_recompute(c: &mut Criterion) {
    let fixture = TravelFixture::new();
    let funcs = FuncRegistry::new();
    let old_def =
        parse_view("CREATE VIEW V AS SELECT C.Name, C.Addr, C.Phone, C.Age FROM Customer C")
            .expect("parses");
    // Column narrowing: adaptation is a pure projection of the old extent.
    let new_def =
        parse_view("CREATE VIEW V AS SELECT C.Name, C.Age FROM Customer C").expect("parses");

    let mut group = c.benchmark_group("adapt/narrow_columns");
    for &n in &[100usize, 500, 2000] {
        let db = fixture.database(3, n);
        let mv = MaterializedView::new(old_def.clone(), &db, &funcs).expect("materialises");
        group.bench_with_input(BenchmarkId::new("adapt", n), &(mv, db), |b, (mv, db)| {
            b.iter(|| adapt_materialization(mv, &new_def, db, &funcs).expect("adapts"))
        });
        let db = fixture.database(3, n);
        group.bench_with_input(BenchmarkId::new("recompute", n), &db, |b, db| {
            b.iter(|| evaluate_view(&new_def, db, &funcs).expect("recomputes"))
        });
    }
    group.finish();
}

fn bench_incremental_maintenance(c: &mut Criterion) {
    use eve_core::{CountedView, Delta};
    use eve_relational::{RelName, Tuple, Value};

    let fixture = TravelFixture::new();
    let funcs = FuncRegistry::new();
    let view = parse_view(
        "CREATE VIEW V AS SELECT C.Name, F.Dest FROM Customer C, FlightRes F
         WHERE (C.Name = F.PName) AND (F.Dest = 'Asia')",
    )
    .expect("parses");
    let fr = RelName::new("FlightRes");
    let today = eve_relational::func::DEFAULT_TODAY;

    let mut group = c.benchmark_group("maintain/insert_5_reservations");
    for &n in &[100usize, 500] {
        let mut db = fixture.database(3, n);
        let cv = CountedView::new(view.clone(), &db, &funcs).expect("materialises");
        // Five fresh reservations for existing customers.
        let new_rows: Vec<Tuple> = (0..5)
            .map(|i| {
                Tuple::new(vec![
                    Value::str(format!("cust{i:04}")),
                    Value::str("NW"),
                    Value::Int(9000 + i),
                    Value::str("Detroit"),
                    Value::str("Asia"),
                    Value::Date(today + 400 + i),
                ])
            })
            .collect();
        let mut fr_rel = db.get(&fr).expect("FlightRes").clone();
        for t in &new_rows {
            fr_rel.insert(t.clone()).expect("arity");
        }
        db.put(fr.clone(), fr_rel);
        let delta = Delta::inserts(new_rows);

        group.bench_with_input(
            BenchmarkId::new("incremental", n),
            &(cv, db.clone(), delta),
            |b, (cv, db, delta)| {
                b.iter(|| {
                    let mut cv = cv.clone();
                    cv.apply_delta(db, &fr, delta, &funcs).expect("maintains");
                    cv
                })
            },
        );
        group.bench_with_input(BenchmarkId::new("recompute", n), &db, |b, db| {
            b.iter(|| evaluate_view(&view, db, &funcs).expect("recomputes"))
        });
    }
    group.finish();
}

/// Shared criterion config: short but stable runs so the full workspace
/// bench suite completes in minutes.
fn config() -> Criterion {
    Criterion::default()
        .sample_size(20)
        .warm_up_time(std::time::Duration::from_millis(300))
        .measurement_time(std::time::Duration::from_millis(900))
}

criterion_group! {
    name = benches;
    config = config();
    targets = bench_adapt_vs_recompute, bench_incremental_maintenance
}
criterion_main!(benches);
