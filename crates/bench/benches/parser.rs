//! Language-layer microbenchmarks: E-SQL parsing/printing and MISD
//! parsing/rendering.

use criterion::{criterion_group, criterion_main, Criterion};
use eve_esql::parse_view;
use eve_misd::{parse_misd, render_misd};
use eve_workload::travel::{FIG2_MISD, PERSON_EXTENSION};
use eve_workload::TravelFixture;

const EQ5: &str = "CREATE VIEW Customer-Passengers-Asia AS
SELECT C.Name (false, true), C.Age (true, true),
       P.Participant (true, true), P.TourID (true, true)
FROM Customer C (true, true), FlightRes F (true, true), Participant P (true, true)
WHERE (C.Name = F.PName) (false, true) AND (F.Dest = 'Asia')
  AND (P.StartDate = F.Date) AND (P.Loc = 'Asia')";

fn bench_esql(c: &mut Criterion) {
    c.bench_function("esql/parse_eq5", |b| {
        b.iter(|| parse_view(EQ5).expect("Eq. 5 parses"))
    });
    let view = parse_view(EQ5).expect("Eq. 5 parses");
    c.bench_function("esql/print_eq5", |b| b.iter(|| view.to_string()));
    let printed = view.to_string();
    c.bench_function("esql/roundtrip_eq5", |b| {
        b.iter(|| parse_view(&printed).expect("canonical form parses"))
    });
}

fn bench_misd(c: &mut Criterion) {
    let full = format!("{FIG2_MISD}{PERSON_EXTENSION}");
    c.bench_function("misd/parse_fig2", |b| {
        b.iter(|| parse_misd(&full).expect("Fig. 2 parses"))
    });
    let mkb = TravelFixture::with_person().mkb().clone();
    c.bench_function("misd/render_fig2", |b| b.iter(|| render_misd(&mkb)));
}

/// Shared criterion config: short but stable runs so the full workspace
/// bench suite completes in minutes.
fn config() -> Criterion {
    Criterion::default()
        .sample_size(20)
        .warm_up_time(std::time::Duration::from_millis(300))
        .measurement_time(std::time::Duration::from_millis(900))
}

criterion_group! {
    name = benches;
    config = config();
    targets = bench_esql, bench_misd
}
criterion_main!(benches);
