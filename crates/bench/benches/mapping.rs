//! Microbenchmarks of the CVS phases: R-mapping (Def. 2) and
//! R-replacement enumeration (Def. 3), isolated from each other.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use eve_core::{compute_r_mapping, r_mapping_with_index, CvsOptions, MkbIndex};
use eve_hypergraph::Hypergraph;
use eve_misd::evolve;
use eve_relational::RelName;
use eve_workload::{SynthConfig, SynthWorkload, Topology, TravelFixture};

fn bench_r_mapping_travel(c: &mut Criterion) {
    let fixture = TravelFixture::new();
    let mkb = fixture.mkb().clone();
    let view = TravelFixture::customer_passengers_asia_eq5();
    let customer = RelName::new("Customer");
    let h = Hypergraph::build(&mkb);
    let h_r = h.component_of(&customer).expect("Customer described");
    let opts = CvsOptions::default();
    c.bench_function("r_mapping/travel_eq5", |b| {
        b.iter(|| compute_r_mapping(&view, &customer, &h_r, &opts))
    });
}

fn bench_r_mapping_synthetic(c: &mut Criterion) {
    let mut group = c.benchmark_group("r_mapping/synthetic");
    for &n in &[16usize, 64, 256] {
        let cfg = SynthConfig {
            n_relations: n,
            topology: Topology::Random { extra: n / 4 },
            view_relations: 4,
            ..SynthConfig::default()
        };
        let w = SynthWorkload::random(&cfg, 3);
        let opts = CvsOptions::default();
        // Fresh-index path: the per-change MkbIndex is rebuilt inside
        // the timing loop (index construction is part of the cost).
        group.bench_with_input(BenchmarkId::new("fresh_index", n), &w, |b, w| {
            b.iter(|| {
                let index = MkbIndex::new(&w.mkb, &w.mkb, &opts);
                r_mapping_with_index(&w.view, &w.target, &index, &opts)
            })
        });
        // Indexed path: the per-change MkbIndex is built once (outside
        // the timing loop, as the Synchronizer does per change) and the
        // mapping query itself is measured.
        let index = MkbIndex::new(&w.mkb, &w.mkb, &opts);
        group.bench_with_input(BenchmarkId::new("indexed", n), &w, |b, w| {
            b.iter(|| r_mapping_with_index(&w.view, &w.target, &index, &opts))
        });
    }
    group.finish();
}

fn bench_replacement(c: &mut Criterion) {
    let mut group = c.benchmark_group("r_replacement");
    for &covers in &[1usize, 4, 8] {
        let cfg = SynthConfig {
            n_relations: 32,
            topology: Topology::Random { extra: 16 },
            cover_count: covers,
            ..SynthConfig::default()
        };
        let w = SynthWorkload::random(&cfg, 3);
        let mkb2 = evolve(&w.mkb, &w.delete_change()).expect("target described");
        let opts = CvsOptions::default();
        group.bench_with_input(
            BenchmarkId::new("covers", covers),
            &(w, mkb2),
            |b, (w, mkb2)| {
                b.iter(|| {
                    eve_bench::support::cvs_dr(&w.view, &w.target, &w.mkb, mkb2, &opts)
                        .expect("synchronizable")
                })
            },
        );
    }
    group.finish();
}

/// Shared criterion config: short but stable runs so the full workspace
/// bench suite completes in minutes.
fn config() -> Criterion {
    Criterion::default()
        .sample_size(20)
        .warm_up_time(std::time::Duration::from_millis(300))
        .measurement_time(std::time::Duration::from_millis(900))
}

criterion_group! {
    name = benches;
    config = config();
    targets = bench_r_mapping_travel, bench_r_mapping_synthetic, bench_replacement
}
criterion_main!(benches);
