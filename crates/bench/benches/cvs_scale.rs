//! `sweep-scale` as a rigorous criterion benchmark: end-to-end CVS
//! synchronization latency versus MKB size and join-constraint density.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use eve_core::{cvs_delete_relation, cvs_delete_relation_indexed, CvsOptions, MkbIndex};
use eve_misd::evolve;
use eve_workload::{SynthConfig, SynthWorkload, Topology};

fn bench_cvs_scale(c: &mut Criterion) {
    let mut group = c.benchmark_group("cvs_delete_relation");
    for &n in &[16usize, 64, 256] {
        for (density, extra) in [("sparse", n / 8), ("dense", n / 2)] {
            let cfg = SynthConfig {
                n_relations: n,
                topology: Topology::Random { extra },
                cover_count: 3,
                view_relations: 3,
                ..SynthConfig::default()
            };
            let w = SynthWorkload::random(&cfg, 7);
            let mkb2 = evolve(&w.mkb, &w.delete_change()).expect("target described");
            let opts = CvsOptions::default();
            group.bench_with_input(BenchmarkId::new(density, n), &(w, mkb2), |b, (w, mkb2)| {
                b.iter(|| {
                    cvs_delete_relation(&w.view, &w.target, &w.mkb, mkb2, &opts)
                        .expect("workload is synchronizable")
                })
            });
        }
    }
    group.finish();
}

/// One capability change, many affected views: the scenario the
/// per-change [`MkbIndex`] targets. The legacy path rebuilds the
/// hypergraph/components/cover tables once per view; the indexed path
/// builds the index once (inside the timing loop — it is part of the
/// per-change cost) and synchronizes all views against it.
fn bench_index_reuse(c: &mut Criterion) {
    const VIEWS: usize = 8;
    let mut group = c.benchmark_group("cvs_index_reuse_8_views");
    for &n in &[64usize, 256] {
        let cfg = SynthConfig {
            n_relations: n,
            topology: Topology::Random { extra: n / 4 },
            cover_count: 3,
            view_relations: 3,
            ..SynthConfig::default()
        };
        let w = SynthWorkload::random(&cfg, 7);
        let mkb2 = evolve(&w.mkb, &w.delete_change()).expect("target described");
        let opts = CvsOptions::default();
        group.bench_with_input(
            BenchmarkId::new("legacy", n),
            &(w.clone(), mkb2.clone()),
            |b, (w, mkb2)| {
                b.iter(|| {
                    for _ in 0..VIEWS {
                        cvs_delete_relation(&w.view, &w.target, &w.mkb, mkb2, &opts)
                            .expect("workload is synchronizable");
                    }
                })
            },
        );
        group.bench_with_input(
            BenchmarkId::new("indexed", n),
            &(w, mkb2),
            |b, (w, mkb2)| {
                b.iter(|| {
                    let index = MkbIndex::new(&w.mkb, mkb2, &opts);
                    for _ in 0..VIEWS {
                        cvs_delete_relation_indexed(&w.view, &w.target, &index, &opts)
                            .expect("workload is synchronizable");
                    }
                })
            },
        );
    }
    group.finish();
}

fn bench_mkb_evolution(c: &mut Criterion) {
    let mut group = c.benchmark_group("mkb_evolve_delete_relation");
    for &n in &[16usize, 64, 256, 1024] {
        let cfg = SynthConfig {
            n_relations: n,
            topology: Topology::Random { extra: n / 4 },
            ..SynthConfig::default()
        };
        let w = SynthWorkload::random(&cfg, 7);
        let change = w.delete_change();
        group.bench_with_input(
            BenchmarkId::from_parameter(n),
            &(w, change),
            |b, (w, ch)| b.iter(|| evolve(&w.mkb, ch).expect("target described")),
        );
    }
    group.finish();
}

/// Shared criterion config: short but stable runs so the full workspace
/// bench suite completes in minutes.
fn config() -> Criterion {
    Criterion::default()
        .sample_size(20)
        .warm_up_time(std::time::Duration::from_millis(300))
        .measurement_time(std::time::Duration::from_millis(900))
}

criterion_group! {
    name = benches;
    config = config();
    targets = bench_cvs_scale, bench_index_reuse, bench_mkb_evolution
}
criterion_main!(benches);
