//! `sweep-scale` as a rigorous criterion benchmark: end-to-end CVS
//! synchronization latency versus MKB size and join-constraint density,
//! plus the levers this crate adds on top of the per-change index —
//! the enumeration cache inside [`MkbIndex`], the parallel per-view
//! fan-out of [`Synchronizer::apply`], and the budgeted top-k rewriting
//! search on a wide-MKB/high-fanout workload.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use eve_core::{
    cvs_delete_relation_indexed, cvs_delete_relation_searched, CvsOptions, MkbIndex, SearchBudget,
    Synchronizer, SynchronizerBuilder,
};
use eve_misd::evolve;
use eve_workload::{views_touching, SynthConfig, SynthWorkload, Topology};

fn bench_cvs_scale(c: &mut Criterion) {
    let mut group = c.benchmark_group("cvs_delete_relation");
    for &n in &[16usize, 64, 256] {
        for (density, extra) in [("sparse", n / 8), ("dense", n / 2)] {
            let cfg = SynthConfig {
                n_relations: n,
                topology: Topology::Random { extra },
                cover_count: 3,
                view_relations: 3,
                ..SynthConfig::default()
            };
            let w = SynthWorkload::random(&cfg, 7);
            let mkb2 = evolve(&w.mkb, &w.delete_change()).expect("target described");
            let opts = CvsOptions::default();
            group.bench_with_input(BenchmarkId::new(density, n), &(w, mkb2), |b, (w, mkb2)| {
                b.iter(|| {
                    eve_bench::support::cvs_dr(&w.view, &w.target, &w.mkb, mkb2, &opts)
                        .expect("workload is synchronizable")
                })
            });
        }
    }
    group.finish();
}

/// One capability change, many affected views sharing terminals: the
/// scenario the per-index enumeration cache targets. Both variants build
/// the index once (inside the timing loop — it is part of the per-change
/// cost) and synchronize all views against it; they differ only in
/// whether the connection-tree / cover / survival-set memo tables are
/// live.
fn bench_index_reuse(c: &mut Criterion) {
    const VIEWS: usize = 8;
    let mut group = c.benchmark_group("cvs_index_reuse_8_views");
    for &n in &[64usize, 256] {
        let cfg = SynthConfig {
            n_relations: n,
            topology: Topology::Random { extra: n / 4 },
            cover_count: 3,
            view_relations: 3,
            ..SynthConfig::default()
        };
        let w = SynthWorkload::random(&cfg, 7);
        let mkb2 = evolve(&w.mkb, &w.delete_change()).expect("target described");
        let opts = CvsOptions::default();
        group.bench_with_input(
            BenchmarkId::new("uncached", n),
            &(w.clone(), mkb2.clone()),
            |b, (w, mkb2)| {
                b.iter(|| {
                    let index = MkbIndex::new(&w.mkb, mkb2, &opts).without_cache();
                    for _ in 0..VIEWS {
                        cvs_delete_relation_indexed(&w.view, &w.target, &index, &opts)
                            .expect("workload is synchronizable");
                    }
                })
            },
        );
        group.bench_with_input(BenchmarkId::new("cached", n), &(w, mkb2), |b, (w, mkb2)| {
            b.iter(|| {
                let index = MkbIndex::new(&w.mkb, mkb2, &opts);
                for _ in 0..VIEWS {
                    cvs_delete_relation_indexed(&w.view, &w.target, &index, &opts)
                        .expect("workload is synchronizable");
                }
            })
        });
    }
    group.finish();
}

/// Build a synchronizer holding 64 distinct views that all reference
/// the delete target (all affected by the change), with an explicit
/// worker count.
fn synchronizer_with_views(w: &SynthWorkload, views: usize, threads: usize) -> Synchronizer {
    let mut builder = SynchronizerBuilder::new(w.mkb.clone()).with_options(CvsOptions {
        parallelism: Some(threads),
        ..CvsOptions::default()
    });
    for v in views_touching(&w.mkb, &w.target, views, 3, 11) {
        builder = builder.with_view(v).expect("synthetic view is valid");
    }
    builder.build()
}

/// The tentpole scenario: one change fanning 64 affected views out
/// across the worker pool, sweeping the thread count. `preview` clones
/// the synchronizer (cheap `Arc` copies) so every iteration applies the
/// change to identical state. Thread counts above the host's available
/// cores cannot speed anything up, so read this sweep on a multicore
/// machine.
fn bench_parallel_sync(c: &mut Criterion) {
    const VIEWS: usize = 64;
    let cfg = SynthConfig {
        n_relations: 64,
        topology: Topology::Random { extra: 16 },
        cover_count: 3,
        view_relations: 3,
        ..SynthConfig::default()
    };
    let w = SynthWorkload::random(&cfg, 7);
    let change = w.delete_change();
    let mut group = c.benchmark_group("cvs_parallel_sync_64_views");
    for &threads in &[1usize, 2, 4, 8] {
        let sync = synchronizer_with_views(&w, VIEWS, threads);
        group.bench_with_input(BenchmarkId::from_parameter(threads), &sync, |b, sync| {
            b.iter(|| sync.preview(&change).expect("change applies"))
        });
    }
    group.finish();
}

/// The budgeted-search ablation: a wide MKB whose deleted relation has
/// one shallow cover combination and `fanout` deep ones behind
/// `depth`-long join-constraint chains. Exhaustive search enumerates
/// connection trees for every combination; `top_k = 1` prunes every
/// deep combination on its admissible lower bound before any of its
/// trees are enumerated, so latency tracks the shallow combination
/// alone as the fanout grows.
fn bench_budgeted_search(c: &mut Criterion) {
    let mut group = c.benchmark_group("cvs_wide_mkb_search");
    for &fanout in &[2usize, 4, 8] {
        let w = SynthWorkload::wide_mkb(fanout, 3);
        let mkb2 = evolve(&w.mkb, &w.delete_change()).expect("target described");
        for (label, budget) in [
            ("exhaustive", SearchBudget::unlimited()),
            ("budgeted_top1", SearchBudget::top_k(1)),
        ] {
            let opts = CvsOptions {
                budget,
                ..CvsOptions::default()
            };
            group.bench_with_input(
                BenchmarkId::new(label, fanout),
                &(w.clone(), mkb2.clone()),
                |b, (w, mkb2)| {
                    b.iter(|| {
                        let index = MkbIndex::new(&w.mkb, mkb2, &opts);
                        cvs_delete_relation_searched(&w.view, &w.target, &index, &opts, false, None)
                            .expect("wide workload is synchronizable")
                    })
                },
            );
        }
    }
    group.finish();
}

fn bench_mkb_evolution(c: &mut Criterion) {
    let mut group = c.benchmark_group("mkb_evolve_delete_relation");
    for &n in &[16usize, 64, 256, 1024] {
        let cfg = SynthConfig {
            n_relations: n,
            topology: Topology::Random { extra: n / 4 },
            ..SynthConfig::default()
        };
        let w = SynthWorkload::random(&cfg, 7);
        let change = w.delete_change();
        group.bench_with_input(
            BenchmarkId::from_parameter(n),
            &(w, change),
            |b, (w, ch)| b.iter(|| evolve(&w.mkb, ch).expect("target described")),
        );
    }
    group.finish();
}

/// Shared criterion config: short but stable runs so the full workspace
/// bench suite completes in minutes.
fn config() -> Criterion {
    Criterion::default()
        .sample_size(20)
        .warm_up_time(std::time::Duration::from_millis(300))
        .measurement_time(std::time::Duration::from_millis(900))
}

criterion_group! {
    name = benches;
    config = config();
    targets = bench_cvs_scale, bench_index_reuse, bench_parallel_sync, bench_budgeted_search, bench_mkb_evolution
}
criterion_main!(benches);
