//! `sweep-scale` as a rigorous criterion benchmark: end-to-end CVS
//! synchronization latency versus MKB size and join-constraint density.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use eve_core::{cvs_delete_relation, CvsOptions};
use eve_misd::evolve;
use eve_workload::{SynthConfig, SynthWorkload, Topology};

fn bench_cvs_scale(c: &mut Criterion) {
    let mut group = c.benchmark_group("cvs_delete_relation");
    for &n in &[16usize, 64, 256] {
        for (density, extra) in [("sparse", n / 8), ("dense", n / 2)] {
            let cfg = SynthConfig {
                n_relations: n,
                topology: Topology::Random { extra },
                cover_count: 3,
                view_relations: 3,
                ..SynthConfig::default()
            };
            let w = SynthWorkload::random(&cfg, 7);
            let mkb2 = evolve(&w.mkb, &w.delete_change()).expect("target described");
            let opts = CvsOptions::default();
            group.bench_with_input(
                BenchmarkId::new(density, n),
                &(w, mkb2),
                |b, (w, mkb2)| {
                    b.iter(|| {
                        cvs_delete_relation(&w.view, &w.target, &w.mkb, mkb2, &opts)
                            .expect("workload is synchronizable")
                    })
                },
            );
        }
    }
    group.finish();
}

fn bench_mkb_evolution(c: &mut Criterion) {
    let mut group = c.benchmark_group("mkb_evolve_delete_relation");
    for &n in &[16usize, 64, 256, 1024] {
        let cfg = SynthConfig {
            n_relations: n,
            topology: Topology::Random { extra: n / 4 },
            ..SynthConfig::default()
        };
        let w = SynthWorkload::random(&cfg, 7);
        let change = w.delete_change();
        group.bench_with_input(BenchmarkId::from_parameter(n), &(w, change), |b, (w, ch)| {
            b.iter(|| evolve(&w.mkb, ch).expect("target described"))
        });
    }
    group.finish();
}


/// Shared criterion config: short but stable runs so the full workspace
/// bench suite completes in minutes.
fn config() -> Criterion {
    Criterion::default()
        .sample_size(20)
        .warm_up_time(std::time::Duration::from_millis(300))
        .measurement_time(std::time::Duration::from_millis(900))
}

criterion_group! {
    name = benches;
    config = config();
    targets = bench_cvs_scale, bench_mkb_evolution
}
criterion_main!(benches);
