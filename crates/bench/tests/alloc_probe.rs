//! Allocation probe for the id-level enumeration core.
//!
//! Lives in its own test binary because `#[global_allocator]` is
//! process-global: a counting allocator here would skew every other
//! test's timing, and another binary's allocator would skew this one.
//!
//! The tentpole claim under test: `TreeCursor::advance` allocates
//! nothing in the steady state. Concretely —
//!
//! * the greedy/swap arm (≥ 3 terminals) is *strictly* zero-allocation
//!   per advance once the cursor is built: emitting a swap variant is
//!   pure index arithmetic into scratch buffers sized at construction;
//! * the two-terminal best-first arm reuses fixed-width `IdPartial`s
//!   (inline arrays + inline bitset for ≤ 256 relations) and only
//!   touches the heap when the frontier `BinaryHeap` outgrows its
//!   capacity — so once the frontier passes its high-water mark, every
//!   later advance is allocation-free.
//!
//! `ConnectionTreeIter::next` = `advance` + `materialize`; the
//! materialization boundary allocates the owned string-keyed tree by
//! design, which is why the probe pins the id-level core.

use eve_hypergraph::Hypergraph;
use eve_misd::{JoinConstraint, MetaKnowledgeBase};
use eve_relational::{AttrRef, AttributeDef, Clause, Conjunction, DataType, RelName};
use std::alloc::{GlobalAlloc, Layout, System};
use std::collections::BTreeSet;
use std::sync::atomic::{AtomicU64, Ordering};

struct CountingAlloc;

static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.alloc(layout)
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.alloc_zeroed(layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.realloc(ptr, layout, new_size)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }
}

#[global_allocator]
static COUNTER: CountingAlloc = CountingAlloc;

/// Allocations performed while running `f`.
fn allocations_in<R>(f: impl FnOnce() -> R) -> (u64, R) {
    let before = ALLOCATIONS.load(Ordering::SeqCst);
    let out = f();
    (ALLOCATIONS.load(Ordering::SeqCst) - before, out)
}

fn rel(n: &str) -> RelName {
    RelName::new(n)
}

fn describe(name: &str) -> eve_misd::RelationDescription {
    eve_misd::RelationDescription::new(
        format!("IS_{name}"),
        rel(name),
        vec![AttributeDef::new("k", DataType::Int)],
    )
}

fn jc(id: &str, l: &str, r: &str) -> JoinConstraint {
    JoinConstraint::new(
        id,
        l,
        r,
        Conjunction::new(vec![Clause::eq_attrs(
            AttrRef::new(l, "k"),
            AttrRef::new(r, "k"),
        )]),
    )
}

/// Star with parallel edges: HUB joined to A, B, C, with two alternative
/// join constraints on each spoke. Three terminals {A, B, C} put the
/// cursor on the greedy/swap arm; 2×2×2 = 8 trees stream out (base +
/// single-swap variants + the remaining alternative combinations).
fn star_with_alternatives() -> MetaKnowledgeBase {
    let mut mkb = MetaKnowledgeBase::new();
    for name in ["HUB", "A", "B", "C"] {
        mkb.add_relation(describe(name)).expect("fresh relation");
    }
    for (i, spoke) in ["A", "B", "C"].iter().enumerate() {
        mkb.add_join(jc(&format!("j{i}a"), "HUB", spoke))
            .expect("fresh join");
        mkb.add_join(jc(&format!("j{i}b"), "HUB", spoke))
            .expect("fresh join");
    }
    mkb
}

/// The greedy/swap arm: after construction, every `advance` (including
/// the first) performs zero heap allocations — the only allocating step
/// is the one-time growth of the scratch edge list, which construction
/// pre-sizes.
#[test]
fn greedy_arm_advance_is_allocation_free() {
    let mkb = star_with_alternatives();
    let h = Hypergraph::build(&mkb);
    let terminals: BTreeSet<RelName> = ["A", "B", "C"].into_iter().map(rel).collect();

    let mut cursor = h.tree_cursor(&terminals, 8);
    // Warm-up advance: first scratch write may grow the edge Vec from
    // its initial empty capacity.
    assert!(cursor.advance(), "base greedy tree exists");

    let mut yields = 0u32;
    loop {
        let (allocs, more) = allocations_in(|| cursor.advance());
        if !more {
            break;
        }
        yields += 1;
        assert_eq!(
            allocs, 0,
            "greedy/swap advance #{yields} after warm-up allocated"
        );
    }
    assert!(
        yields >= 2,
        "probe needs multiple steady-state yields, got {yields}"
    );
}

/// The two-terminal best-first arm: frontier pushes may grow the heap
/// early, but once the high-water mark is passed the stream drains
/// allocation-free. A complete graph on six relations has dozens of
/// vertex-simple paths between any two of them; past the last
/// path-length transition every buffer is at high-water, so the final
/// length class must drain without a single allocation.
#[test]
fn two_terminal_arm_drains_allocation_free() {
    let mut mkb = MetaKnowledgeBase::new();
    let names = ["N0", "N1", "N2", "N3", "N4", "N5"];
    for name in names {
        mkb.add_relation(describe(name)).expect("fresh relation");
    }
    for (i, a) in names.iter().enumerate() {
        for b in names.iter().skip(i + 1) {
            mkb.add_join(jc(&format!("j_{a}_{b}"), a, b))
                .expect("fresh join");
        }
    }
    let h = Hypergraph::build(&mkb);
    let terminals: BTreeSet<RelName> = [rel("N0"), rel("N5")].into_iter().collect();

    // First pass: learn the stream's length profile. Allocation can
    // legitimately happen only while buffers reach new high-water marks
    // — the frontier heap growing to its peak, the scratch edge list
    // growing to the longest path — and the stream yields in
    // nondecreasing length, so the final length class runs entirely at
    // high-water.
    let lengths: Vec<usize> = {
        let mut c = h.tree_cursor(&terminals, 8);
        let mut lens = Vec::new();
        while c.advance() {
            lens.push(c.edges().len());
        }
        lens
    };
    let total = lengths.len();
    let longest = *lengths.last().expect("K6 terminals connect");
    let steady_from = lengths
        .iter()
        .position(|&l| l == longest)
        .expect("last length exists");
    assert!(
        total - steady_from >= 4,
        "probe needs a non-trivial steady state, got {} of {total}",
        total - steady_from
    );

    // Second pass: warm up through the last length transition, then the
    // drain must be allocation-free.
    let mut cursor = h.tree_cursor(&terminals, 8);
    for _ in 0..steady_from + 1 {
        assert!(cursor.advance());
    }
    let mut step = steady_from + 1;
    loop {
        let (allocs, more) = allocations_in(|| cursor.advance());
        if !more {
            break;
        }
        step += 1;
        assert_eq!(allocs, 0, "two-terminal advance #{step} allocated");
    }
    assert_eq!(step, total, "second pass yielded a different stream length");
}
