//! Byte-identity property suite for the data-oriented hypergraph core.
//!
//! The interned-id refactor (dense `RelId`s, CSR adjacency, `RelSet`
//! bitsets, the zero-allocation `TreeCursor`) is required to be a pure
//! representation change: every observable output — enumerated
//! connection trees, viable covers, `Min(H_R)`, and full synchronization
//! outcomes — must be byte-identical to the string-keyed behaviour it
//! replaced. The string-keyed *boundary* is still in the tree
//! (`ConnectionTree`, `MkbIndex::enumerate_trees`, `preview`), so each
//! property drives the same computation through independent entry points
//! (id-keyed cursor vs. materializing iterator, memoized vs.
//! `without_cache`, warm vs. cold index, 1/2/8 sync workers) and asserts
//! the results compare equal structurally — which for these types means
//! field-by-field on the resolved strings.

use eve_core::{
    compute_r_mapping, cvs_delete_relation_searched, r_mapping_with_index, CvsOptions, MkbIndex,
    SynchronizerBuilder,
};
use eve_hypergraph::{ConnectionTree, Hypergraph};
use eve_misd::evolve;
use eve_relational::RelName;
use eve_workload::{views_touching, SynthConfig, SynthWorkload, Topology};
use std::collections::BTreeSet;

/// The workload grid: every topology family the synth generator offers,
/// with a few seeds for the randomized one.
fn workloads() -> Vec<(String, SynthWorkload)> {
    let mut all = vec![
        ("chain/d2+pc".to_string(), SynthWorkload::chain(2, true)),
        ("chain/d4".to_string(), SynthWorkload::chain(4, false)),
        ("wide/3x2".to_string(), SynthWorkload::wide_mkb(3, 2)),
        ("wide/4x3".to_string(), SynthWorkload::wide_mkb(4, 3)),
    ];
    for seed in [11u64, 42, 1998] {
        let cfg = SynthConfig {
            topology: Topology::Random { extra: 12 },
            ..SynthConfig::default()
        };
        all.push((format!("random/s{seed}"), SynthWorkload::random(&cfg, seed)));
    }
    all
}

/// The CVS search must produce identical results (same rewritings in the
/// same order, same stats, or the same error) whether the per-change
/// memo tables are cold, warm from a previous run, or disabled entirely.
#[test]
fn search_results_identical_across_cache_modes() {
    for (name, w) in workloads() {
        let change = w.delete_change();
        let mkb2 = evolve(&w.mkb, &change).expect("target is described");
        let opts = CvsOptions::default();

        let cold = {
            let index = MkbIndex::new(&w.mkb, &mkb2, &opts);
            cvs_delete_relation_searched(&w.view, &w.target, &index, &opts, false, None)
        };
        let index = MkbIndex::new(&w.mkb, &mkb2, &opts);
        let warm1 = cvs_delete_relation_searched(&w.view, &w.target, &index, &opts, false, None);
        let warm2 = cvs_delete_relation_searched(&w.view, &w.target, &index, &opts, false, None);
        let uncached = {
            let index = MkbIndex::new(&w.mkb, &mkb2, &opts).without_cache();
            cvs_delete_relation_searched(&w.view, &w.target, &index, &opts, false, None)
        };

        assert_eq!(cold, warm1, "{name}: cold vs warm index");
        assert_eq!(warm1, warm2, "{name}: repeat on a warm index");
        assert_eq!(cold, uncached, "{name}: cached vs without_cache");

        // Adopted definitions must render identically through both
        // printers (the fast buffer renderer is the ranking tie-break).
        if let Ok(res) = &cold {
            for lr in &res.rewritings {
                assert_eq!(
                    lr.view.rendered(),
                    lr.view.to_string(),
                    "{name}: rendered() diverged from Display"
                );
            }
        }
    }
}

/// Full `preview` outcomes must be schedule-independent: the same
/// per-view verdicts under 1, 2, and 8 workers, on both a cold and a
/// warm synchronizer. (`ChangeOutcome::eq` deliberately ignores cache
/// hit/miss totals — those legitimately vary with interleaving.)
#[test]
fn sync_outcomes_identical_across_worker_counts() {
    for (name, w) in [
        ("chain/d3+pc", SynthWorkload::chain(3, true)),
        ("wide/4x3", SynthWorkload::wide_mkb(4, 3)),
        (
            "random/s11",
            SynthWorkload::random(
                &SynthConfig {
                    topology: Topology::Random { extra: 12 },
                    ..SynthConfig::default()
                },
                11,
            ),
        ),
    ] {
        let change = w.delete_change();
        let views = views_touching(&w.mkb, &w.target, 8, 3, 11);
        let mut reference = None;
        for threads in [1usize, 2, 8] {
            let mut builder = SynchronizerBuilder::new(w.mkb.clone()).with_options(CvsOptions {
                parallelism: Some(threads),
                ..CvsOptions::default()
            });
            for v in &views {
                builder = builder
                    .with_view(v.clone())
                    .expect("synthetic view is valid");
            }
            let sync = builder.build();
            let cold = sync.preview(&change).expect("change applies");
            let warm = sync.preview(&change).expect("change applies");
            assert_eq!(cold, warm, "{name}: warm preview differs at t{threads}");
            match &reference {
                None => reference = Some(cold),
                Some(r) => assert_eq!(*r, cold, "{name}: t{threads} differs from t1"),
            }
        }
    }
}

/// All three enumeration entry points — the batch API, the materializing
/// iterator, and the id-keyed cursor resolved at the boundary — must
/// yield the same trees in the same order, and the stream must satisfy
/// the documented invariants (spans the terminals, nondecreasing edge
/// count).
#[test]
fn enumeration_entry_points_agree() {
    for (name, w) in workloads() {
        let h = Hypergraph::build(&w.mkb);
        for terminals in terminal_sets(&w) {
            let label = format!("{name} over {terminals:?}");
            let batch = h.enumerate_trees(&terminals, 64, 8);
            let via_iter: Vec<ConnectionTree> = h.tree_iter(&terminals, 8).take(64).collect();
            assert_eq!(batch, via_iter, "{label}: batch vs iterator");

            let mut cursor = h.tree_cursor(&terminals, 8);
            let mut via_cursor = Vec::new();
            while via_cursor.len() < 64 && cursor.advance() {
                // The id-keyed scratch must resolve to exactly the
                // string-keyed relation set of the materialized tree.
                let names: BTreeSet<RelName> = cursor
                    .relations()
                    .iter()
                    .map(|id| h.rel_name(id).clone())
                    .collect();
                let tree = cursor.materialize();
                assert_eq!(names, tree.relations, "{label}: scratch vs materialized");
                via_cursor.push(tree);
            }
            assert_eq!(batch, via_cursor, "{label}: batch vs cursor");

            for tree in &batch {
                for t in &terminals {
                    assert!(tree.contains(t), "{label}: tree misses terminal {t}");
                }
            }
            for pair in batch.windows(2) {
                assert!(
                    pair[0].joins.len() <= pair[1].joins.len(),
                    "{label}: stream not in nondecreasing edge count"
                );
            }
        }
    }
}

/// `Min(H_R)` must come out identical whether computed through the
/// per-change index (id-keyed components, memoized survival sets) or
/// directly over the matching string-keyed component; and the memoized
/// survival set must equal the definitional filter.
#[test]
fn r_mapping_identical_via_index_and_direct() {
    for (name, w) in workloads() {
        let change = w.delete_change();
        let mkb2 = evolve(&w.mkb, &change).expect("target is described");
        let opts = CvsOptions::default();
        let index = MkbIndex::new(&w.mkb, &mkb2, &opts);
        let via_index = r_mapping_with_index(&w.view, &w.target, &index, &opts);

        let h = Hypergraph::build(&w.mkb);
        let component = h
            .components()
            .into_iter()
            .find(|c| c.contains(&w.target))
            .expect("target is in some component");
        let direct = compute_r_mapping(&w.view, &w.target, &component, &opts);
        assert_eq!(via_index, direct, "{name}: indexed vs direct R-mapping");

        let survivors = index.survival_set(&via_index.max_relations, &w.target);
        let expected: BTreeSet<RelName> = via_index
            .max_relations
            .iter()
            .filter(|r| **r != w.target)
            .cloned()
            .collect();
        assert_eq!(*survivors, expected, "{name}: memoized survival set");
        assert_eq!(
            expected,
            via_index.surviving_relations(),
            "{name}: surviving_relations"
        );
    }
}

/// Viable covers (attribute → replacement choices) must be identical
/// with the memo on and off — the cover map is now keyed by interned
/// attribute ids internally, with `AttrRef` only at the boundary.
#[test]
fn viable_covers_identical_with_and_without_cache() {
    for (name, w) in workloads() {
        let change = w.delete_change();
        let mkb2 = evolve(&w.mkb, &change).expect("target is described");
        let opts = CvsOptions::default();
        let cached = MkbIndex::new(&w.mkb, &mkb2, &opts);
        let plain = MkbIndex::new(&w.mkb, &mkb2, &opts).without_cache();
        for f in w.mkb.function_ofs() {
            let a = cached.viable_covers(&f.target, &w.target);
            let b = plain.viable_covers(&f.target, &w.target);
            assert_eq!(a, b, "{name}: covers for {} diverge", f.target);
        }
    }
}

/// Terminal sets to enumerate over: the view's own FROM relations plus
/// every adjacent pair and triple along them — small sets are where the
/// two-terminal best-first cursor and the greedy Steiner arm both get
/// exercised.
fn terminal_sets(w: &SynthWorkload) -> Vec<BTreeSet<RelName>> {
    let rels = w.view.relations();
    let mut sets = Vec::new();
    if rels.len() >= 2 {
        for pair in rels.windows(2) {
            sets.push(pair.iter().cloned().collect());
        }
    }
    if rels.len() >= 3 {
        for triple in rels.windows(3) {
            sets.push(triple.iter().cloned().collect());
        }
    }
    sets.push(rels.into_iter().collect());
    sets
}
