//! Minimal aligned-text table rendering for experiment reports.

/// A simple column-aligned text table.
#[derive(Debug, Default, Clone)]
pub struct Table {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Table with the given column headers.
    pub fn new(header: &[&str]) -> Self {
        Table {
            header: header.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Append a row (must match the header arity).
    pub fn row(&mut self, cells: &[String]) {
        assert_eq!(cells.len(), self.header.len(), "row arity mismatch");
        self.rows.push(cells.to_vec());
    }

    /// Append a row of displayable cells.
    pub fn push<T: std::fmt::Display>(&mut self, cells: &[T]) {
        self.row(&cells.iter().map(|c| c.to_string()).collect::<Vec<_>>());
    }

    /// Render with aligned columns.
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.header.iter().map(|h| h.chars().count()).collect();
        for row in &self.rows {
            for (i, c) in row.iter().enumerate() {
                widths[i] = widths[i].max(c.chars().count());
            }
        }
        let fmt_row = |cells: &[String]| -> String {
            let mut line = String::new();
            for (i, c) in cells.iter().enumerate() {
                if i > 0 {
                    line.push_str("  ");
                }
                line.push_str(c);
                let pad = widths[i].saturating_sub(c.chars().count());
                if i + 1 < cells.len() {
                    line.push_str(&" ".repeat(pad));
                }
            }
            line
        };
        let mut out = String::new();
        out.push_str(&fmt_row(&self.header));
        out.push('\n');
        out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * (widths.len() - 1)));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row));
            out.push('\n');
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned() {
        let mut t = Table::new(&["a", "longer"]);
        t.push(&["xx", "y"]);
        t.push(&["1", "22222222"]);
        let s = t.render();
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].starts_with("a "));
        assert!(lines[2].starts_with("xx"));
    }

    #[test]
    #[should_panic(expected = "arity")]
    fn arity_checked() {
        let mut t = Table::new(&["a", "b"]);
        t.push(&["only-one"]);
    }
}
