//! Quantitative sweeps — the measurements the paper's claims imply.
//!
//! | sweep | claim under test |
//! |-------|------------------|
//! | [`sweep_chain`] | "our solution succeeds in determining possibly complex view rewrites through multiple join constraints" where the one-step-away prior work fails |
//! | [`sweep_scale`] | CVS is practical in *large-scale* information spaces |
//! | [`sweep_covers`] | more function-of knowledge in the MKB yields more rewriting alternatives |
//! | [`sweep_extent`] | the Step-6 symbolic P3 checker is *sound* w.r.t. actual extents |

use crate::support::{cvs_dr, svs_dr};
use crate::table::Table;
use eve_core::{empirical_extent, CvsOptions, ExtentVerdict, ImplicationMode};
use eve_misd::evolve;
use eve_relational::{ExtentRelation, FuncRegistry};
use eve_workload::{SynthConfig, SynthWorkload, Topology};
use std::time::Instant;

/// One row of the chain sweep.
#[derive(Debug, Clone)]
pub struct ChainRow {
    /// Join-constraint distance of the only cover.
    pub distance: usize,
    /// Did full CVS find a rewriting?
    pub cvs_ok: bool,
    /// Number of rewritings CVS produced.
    pub cvs_candidates: usize,
    /// Did CVS certify P3 (VE = ⊇) for some rewriting?
    pub cvs_p3: bool,
    /// Did the one-step-away SVS baseline find a rewriting?
    pub svs_ok: bool,
    /// Did CVS restricted to syntactic clause implication still find the
    /// mapping (ablation)?
    pub syntactic_ok: bool,
}

/// CVS vs the SVS baseline on cover distances `1..=max_distance`.
pub fn sweep_chain(max_distance: usize) -> Vec<ChainRow> {
    (1..=max_distance)
        .map(|d| {
            let w = SynthWorkload::chain(d, true);
            let mkb2 = evolve(&w.mkb, &w.delete_change()).expect("target described");
            let cvs = cvs_dr(&w.view, &w.target, &w.mkb, &mkb2, &CvsOptions::default());
            let svs = svs_dr(&w.view, &w.target, &w.mkb, &mkb2);
            let syn = cvs_dr(
                &w.view,
                &w.target,
                &w.mkb,
                &mkb2,
                &CvsOptions {
                    implication: ImplicationMode::Syntactic,
                    ..CvsOptions::default()
                },
            );
            ChainRow {
                distance: d,
                cvs_ok: cvs.is_ok(),
                cvs_candidates: cvs.as_ref().map(|v| v.len()).unwrap_or(0),
                cvs_p3: cvs
                    .as_ref()
                    .map(|v| v.iter().any(|r| r.satisfies_p3))
                    .unwrap_or(false),
                svs_ok: svs.is_ok(),
                syntactic_ok: syn.is_ok(),
            }
        })
        .collect()
}

/// Render the chain sweep.
pub fn render_chain(rows: &[ChainRow]) -> String {
    let mut t = Table::new(&[
        "distance",
        "CVS",
        "candidates",
        "P3 ⊇ certified",
        "SVS (one-step)",
        "CVS (syntactic impl.)",
    ]);
    for r in rows {
        t.push(&[
            r.distance.to_string(),
            yn(r.cvs_ok),
            r.cvs_candidates.to_string(),
            yn(r.cvs_p3),
            yn(r.svs_ok),
            yn(r.syntactic_ok),
        ]);
    }
    format!(
        "sweep-chain — CVS vs one-step-away SVS by cover distance\n\n{}",
        t.render()
    )
}

fn yn(b: bool) -> String {
    (if b { "yes" } else { "no" }).to_string()
}

/// One row of the scale sweep.
#[derive(Debug, Clone)]
pub struct ScaleRow {
    /// Relations in the MKB.
    pub n_relations: usize,
    /// Join constraints in the MKB.
    pub n_joins: usize,
    /// Density label.
    pub density: &'static str,
    /// Median synchronization latency over the seeds, in microseconds.
    pub median_us: u128,
    /// Fraction of seeds where a rewriting was found.
    pub success_rate: f64,
}

/// CVS latency and success rate versus MKB size and density.
pub fn sweep_scale(sizes: &[usize], seeds: u64) -> Vec<ScaleRow> {
    let mut out = Vec::new();
    for &n in sizes {
        for (density, extra) in [("sparse", n / 8), ("dense", n / 2)] {
            let mut times: Vec<u128> = Vec::new();
            let mut ok = 0usize;
            for seed in 0..seeds {
                let cfg = SynthConfig {
                    n_relations: n,
                    topology: Topology::Random { extra },
                    cover_count: 3,
                    view_relations: 3,
                    ..SynthConfig::default()
                };
                let w = SynthWorkload::random(&cfg, seed);
                let mkb2 = evolve(&w.mkb, &w.delete_change()).expect("target described");
                let start = Instant::now();
                let res = cvs_dr(&w.view, &w.target, &w.mkb, &mkb2, &CvsOptions::default());
                times.push(start.elapsed().as_micros());
                if res.is_ok() {
                    ok += 1;
                }
            }
            times.sort_unstable();
            let w = SynthWorkload::random(
                &SynthConfig {
                    n_relations: n,
                    topology: Topology::Random { extra },
                    ..SynthConfig::default()
                },
                0,
            );
            out.push(ScaleRow {
                n_relations: n,
                n_joins: w.mkb.joins().len(),
                density,
                median_us: times[times.len() / 2],
                success_rate: ok as f64 / seeds as f64,
            });
        }
    }
    out
}

/// Render the scale sweep.
pub fn render_scale(rows: &[ScaleRow]) -> String {
    let mut t = Table::new(&[
        "relations",
        "joins",
        "density",
        "median latency (µs)",
        "success",
    ]);
    for r in rows {
        t.push(&[
            r.n_relations.to_string(),
            r.n_joins.to_string(),
            r.density.to_string(),
            r.median_us.to_string(),
            format!("{:.0}%", r.success_rate * 100.0),
        ]);
    }
    format!(
        "sweep-scale — CVS latency vs MKB size (per-size medians)\n\n{}",
        t.render()
    )
}

/// One row of the covers sweep.
#[derive(Debug, Clone)]
pub struct CoverRow {
    /// Function-of covers declared for the target's attributes.
    pub covers: usize,
    /// Mean number of rewritings across seeds.
    pub mean_candidates: f64,
    /// Success rate across seeds.
    pub success_rate: f64,
}

/// Rewriting alternatives versus function-of density.
pub fn sweep_covers(max_covers: usize, seeds: u64) -> Vec<CoverRow> {
    (1..=max_covers)
        .map(|c| {
            let mut total = 0usize;
            let mut ok = 0usize;
            for seed in 0..seeds {
                let cfg = SynthConfig {
                    n_relations: 20,
                    cover_count: c,
                    topology: Topology::Random { extra: 10 },
                    ..SynthConfig::default()
                };
                let w = SynthWorkload::random(&cfg, seed);
                let mkb2 = evolve(&w.mkb, &w.delete_change()).expect("target described");
                if let Ok(rw) = cvs_dr(&w.view, &w.target, &w.mkb, &mkb2, &CvsOptions::default()) {
                    ok += 1;
                    total += rw.len();
                }
            }
            CoverRow {
                covers: c,
                mean_candidates: total as f64 / seeds as f64,
                success_rate: ok as f64 / seeds as f64,
            }
        })
        .collect()
}

/// Render the covers sweep.
pub fn render_covers(rows: &[CoverRow]) -> String {
    let mut t = Table::new(&["covers in MKB", "mean rewritings", "success"]);
    for r in rows {
        t.push(&[
            r.covers.to_string(),
            format!("{:.1}", r.mean_candidates),
            format!("{:.0}%", r.success_rate * 100.0),
        ]);
    }
    format!(
        "sweep-covers — rewriting alternatives vs function-of density\n\n{}\n\
         note: candidate counts are capped by CvsOptions::max_cover_combinations \
         (default {}); the plateau is the cap, not the search space.\n",
        t.render(),
        CvsOptions::default().max_cover_combinations
    )
}

/// Aggregate result of the extent-soundness sweep.
#[derive(Debug, Clone, Default)]
pub struct ExtentReport {
    /// Rewritings evaluated.
    pub total: usize,
    /// Rewritings with a definite symbolic verdict (≡, ⊇ or ⊆).
    pub certified: usize,
    /// Certified rewritings whose empirical extent agreed (must equal
    /// `certified` — the checker is sound).
    pub certified_correct: usize,
    /// `Unknown` verdicts.
    pub unknown: usize,
    /// `Unknown` verdicts that empirically were supersets/equivalent —
    /// measured conservatism of the symbolic checker.
    pub unknown_but_superset: usize,
}

/// Cross-validate the symbolic P3 checker against empirical extents on
/// generated constraint-respecting IS states.
pub fn sweep_extent(seeds: u64) -> ExtentReport {
    let funcs = FuncRegistry::new();
    let mut rep = ExtentReport::default();
    for seed in 0..seeds {
        for (pc_fraction, distance) in [(1.0, 1), (1.0, 2), (0.0, 1), (0.0, 3)] {
            // Chain workloads give controlled swaps; PC on/off toggles
            // certifiability.
            let w = SynthWorkload::chain(distance, pc_fraction > 0.5);
            let mkb2 = evolve(&w.mkb, &w.delete_change()).expect("target described");
            let rewritings = match cvs_dr(&w.view, &w.target, &w.mkb, &mkb2, &CvsOptions::default())
            {
                Ok(r) => r,
                Err(_) => continue,
            };
            let db = w.database(seed, 60, 0.7);
            for r in rewritings.iter().take(3) {
                let observed = match empirical_extent(&r.view, &w.view, &db, &funcs) {
                    Ok(o) => o,
                    Err(_) => continue,
                };
                rep.total += 1;
                match r.verdict {
                    ExtentVerdict::Unknown => {
                        rep.unknown += 1;
                        if matches!(
                            observed,
                            ExtentRelation::ProperSuperset | ExtentRelation::Equivalent
                        ) {
                            rep.unknown_but_superset += 1;
                        }
                    }
                    v => {
                        rep.certified += 1;
                        let consistent = match v {
                            ExtentVerdict::Equivalent => observed.is_equivalent(),
                            ExtentVerdict::Superset => observed.is_superset(),
                            ExtentVerdict::Subset => observed.is_subset(),
                            ExtentVerdict::Unknown => unreachable!(),
                        };
                        if consistent {
                            rep.certified_correct += 1;
                        }
                    }
                }
            }
        }
    }
    rep
}

/// Render the extent sweep.
pub fn render_extent(rep: &ExtentReport) -> String {
    format!(
        "sweep-extent — symbolic P3 checker vs empirical extents\n\n\
         rewritings evaluated:      {}\n\
         certified (≡/⊇/⊆):        {}\n\
         certified & consistent:    {}  (soundness requires equality)\n\
         unknown verdicts:          {}\n\
         unknown but superset/≡:    {}  (conservatism)\n",
        rep.total, rep.certified, rep.certified_correct, rep.unknown, rep.unknown_but_superset
    )
}

/// One row of the lifecycle sweep: mean fraction of views still alive
/// after `step` destructive changes, per strategy.
#[derive(Debug, Clone)]
pub struct LifecycleRow {
    /// Number of changes applied so far.
    pub step: usize,
    /// Classical static views (any affected view dies).
    pub static_alive: f64,
    /// One-step-away SVS synchronization.
    pub svs_alive: f64,
    /// Full CVS synchronization.
    pub cvs_alive: f64,
}

/// Survival of a portfolio of views over a sequence of random
/// `delete-relation` changes, comparing three strategies: classical
/// static views (the paper's strawman: every affected view is disabled),
/// the one-step-away SVS baseline, and full CVS.
pub fn sweep_lifecycle(seeds: u64, steps: usize) -> Vec<LifecycleRow> {
    use eve_core::SynchronizerBuilder;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    let n_views = 6usize;
    let mut alive = vec![[0usize; 3]; steps]; // [static, svs, cvs]

    for seed in 0..seeds {
        let cfg = SynthConfig {
            n_relations: 16,
            cover_count: 4,
            topology: Topology::Random { extra: 10 },
            // A redundant information space: most relations can be
            // recomputed from somewhere else (the WWW setting of §1).
            global_cover_prob: 0.7,
            ..SynthConfig::default()
        };
        let w = SynthWorkload::random(&cfg, seed);
        let views = eve_workload::random_views(&w.mkb, n_views, 3, seed);

        // A shared random deletion sequence over distinct relations.
        let mut rng = StdRng::seed_from_u64(seed.wrapping_mul(77) + 5);
        let names: Vec<_> = w.mkb.relation_names().cloned().collect();
        let mut victims = Vec::new();
        while victims.len() < steps {
            let cand = names[rng.gen_range(0..names.len())].clone();
            if !victims.contains(&cand) {
                victims.push(cand);
            }
        }
        let changes: Vec<eve_misd::CapabilityChange> = victims
            .into_iter()
            .map(eve_misd::CapabilityChange::DeleteRelation)
            .collect();

        // Static strategy: a view dies the first time it is affected.
        let mut static_views = views.clone();
        for (i, ch) in changes.iter().enumerate() {
            static_views.retain(|v| !eve_core::is_affected(v, ch));
            alive[i][0] += static_views.len();
        }

        // SVS and CVS strategies: real synchronizers.
        for (slot, opts) in [(1, CvsOptions::svs_baseline()), (2, CvsOptions::default())] {
            let mut builder = SynchronizerBuilder::new(w.mkb.clone()).with_options(opts);
            for v in &views {
                builder = builder
                    .with_view(v.clone())
                    .expect("generated views are well-formed");
            }
            let mut sync = builder.build();
            for (i, ch) in changes.iter().enumerate() {
                sync.apply(ch).expect("MKB evolution succeeds");
                alive[i][slot] += sync.views().count();
            }
        }
    }

    let denom = (seeds as f64) * (n_views as f64);
    alive
        .into_iter()
        .enumerate()
        .map(|(i, [st, sv, cv])| LifecycleRow {
            step: i + 1,
            static_alive: st as f64 / denom,
            svs_alive: sv as f64 / denom,
            cvs_alive: cv as f64 / denom,
        })
        .collect()
}

/// Render the lifecycle sweep.
pub fn render_lifecycle(rows: &[LifecycleRow]) -> String {
    let mut t = Table::new(&[
        "deletions applied",
        "static views alive",
        "SVS alive",
        "CVS alive",
    ]);
    for r in rows {
        t.push(&[
            r.step.to_string(),
            format!("{:.0}%", r.static_alive * 100.0),
            format!("{:.0}%", r.svs_alive * 100.0),
            format!("{:.0}%", r.cvs_alive * 100.0),
        ]);
    }
    format!(
        "sweep-lifecycle — view survival over sequential delete-relation changes\n\
         (6 views over 16-relation MKBs, mean over seeds)\n\n{}",
        t.render()
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lifecycle_orders_strategies() {
        let rows = sweep_lifecycle(6, 4);
        assert_eq!(rows.len(), 4);
        for r in &rows {
            assert!(
                r.cvs_alive >= r.svs_alive && r.svs_alive >= r.static_alive,
                "{r:?}"
            );
        }
        // Survival is monotonically non-increasing.
        assert!(rows
            .windows(2)
            .all(|w| w[1].cvs_alive <= w[0].cvs_alive + 1e-9));
        // And CVS strictly beats static views somewhere.
        assert!(rows.iter().any(|r| r.cvs_alive > r.static_alive));
    }

    #[test]
    fn chain_sweep_shape() {
        let rows = sweep_chain(4);
        assert_eq!(rows.len(), 4);
        // CVS succeeds everywhere; SVS only at distance 1.
        assert!(rows.iter().all(|r| r.cvs_ok));
        assert!(rows[0].svs_ok);
        assert!(rows[1..].iter().all(|r| !r.svs_ok));
        // P3 certified at every distance thanks to the PC constraints.
        assert!(rows.iter().all(|r| r.cvs_p3), "{rows:?}");
    }

    #[test]
    fn scale_sweep_runs() {
        let rows = sweep_scale(&[10, 20], 3);
        assert_eq!(rows.len(), 4);
        assert!(rows.iter().all(|r| r.success_rate > 0.0));
    }

    #[test]
    fn covers_sweep_monotone_candidates() {
        let rows = sweep_covers(4, 5);
        assert_eq!(rows.len(), 4);
        // More covers → at least as many candidates (on average).
        assert!(
            rows.last().unwrap().mean_candidates >= rows[0].mean_candidates,
            "{rows:?}"
        );
    }

    #[test]
    fn extent_sweep_is_sound() {
        let rep = sweep_extent(5);
        assert!(rep.total > 0);
        assert_eq!(
            rep.certified, rep.certified_correct,
            "symbolic checker claimed a false extent relationship: {rep:?}"
        );
    }
}
