//! Shims driving the indexed CVS entry points the way
//! [`eve_core::Synchronizer::apply`] does: build one [`MkbIndex`] for
//! the change, then synchronize against it. The experiments and benches
//! go through these so they measure the same code path the synchronizer
//! runs in production.

use eve_core::{
    cvs_delete_relation_indexed, r_mapping_with_index, svs_delete_relation_indexed,
    synchronize_delete_attribute_indexed, CvsError, CvsOptions, LegalRewriting, MkbIndex, RMapping,
};
use eve_esql::ViewDefinition;
use eve_misd::MetaKnowledgeBase;
use eve_relational::{AttrRef, RelName};

/// CVS `delete-relation` over a fresh per-change index.
pub fn cvs_dr(
    view: &ViewDefinition,
    target: &RelName,
    mkb: &MetaKnowledgeBase,
    mkb_prime: &MetaKnowledgeBase,
    opts: &CvsOptions,
) -> Result<Vec<LegalRewriting>, CvsError> {
    let index = MkbIndex::new(mkb, mkb_prime, opts);
    cvs_delete_relation_indexed(view, target, &index, opts)
}

/// The SVS (one-step-away) baseline over a fresh per-change index.
pub fn svs_dr(
    view: &ViewDefinition,
    target: &RelName,
    mkb: &MetaKnowledgeBase,
    mkb_prime: &MetaKnowledgeBase,
) -> Result<Vec<LegalRewriting>, CvsError> {
    let opts = CvsOptions::default();
    let index = MkbIndex::new(mkb, mkb_prime, &opts);
    svs_delete_relation_indexed(view, target, &index, &opts)
}

/// CVS `delete-attribute` over a fresh per-change index.
pub fn sync_da(
    view: &ViewDefinition,
    attr: &AttrRef,
    mkb: &MetaKnowledgeBase,
    mkb_prime: &MetaKnowledgeBase,
    opts: &CvsOptions,
) -> Result<Vec<LegalRewriting>, CvsError> {
    let index = MkbIndex::new(mkb, mkb_prime, opts);
    synchronize_delete_attribute_indexed(view, attr, &index, opts)
}

/// The Def. 2 R-mapping over a fresh same-MKB index (the pre-change
/// hypergraph is what Def. 2 inspects, so `mkb` serves as both sides).
pub fn r_mapping(
    view: &ViewDefinition,
    target: &RelName,
    mkb: &MetaKnowledgeBase,
    opts: &CvsOptions,
) -> RMapping {
    let index = MkbIndex::new(mkb, mkb, opts);
    r_mapping_with_index(view, target, &index, opts)
}
