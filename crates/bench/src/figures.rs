//! Reproductions of the paper's figures and tables (Figs. 1–4).

use crate::table::Table;
use eve_esql::{EvolutionParams, ViewExtent};
use eve_hypergraph::{dot, Hypergraph};
use eve_misd::{evolve, CapabilityChange, MetaKnowledgeBase};
use eve_relational::RelName;
use eve_workload::TravelFixture;
use std::collections::BTreeSet;

/// Fig. 1 — the MISD semantic-constraint taxonomy, with one live
/// instance of each kind drawn from the fixtures.
pub fn fig1() -> String {
    let travel = TravelFixture::with_person();
    let mkb = travel.mkb();
    let mut t = Table::new(&["constraint", "paper syntax", "instance (from fixture)"]);
    let customer = mkb
        .relation(&RelName::new("Customer"))
        .expect("fixture has Customer");
    t.push(&[
        "Type Integrity".to_string(),
        "TC_{R,Ai} = (R(Ai) ⊆ Type_i(Ai))".to_string(),
        format!(
            "Customer(Age) ⊆ {}",
            customer.type_of(&"Age".into()).expect("Age typed")
        ),
    ]);
    t.push(&[
        "Order Integrity".to_string(),
        "OC_R = (R(A1..An) ⊆ C(Ai1..Aik))".to_string(),
        "(supported; none declared in Fig. 2)".to_string(),
    ]);
    let jc2 = mkb.join_by_id("JC2").expect("fixture has JC2");
    t.push(&[
        "Join Constraint".to_string(),
        "JC_{R1,R2} = (C1 AND .. AND Cl)".to_string(),
        format!("JC2: {}", jc2.predicate),
    ]);
    let f3 = mkb.funcof_by_id("F3").expect("fixture has F3");
    t.push(&[
        "Function-of".to_string(),
        "F_{R1.A,R2.B} = (R1.A = f(R2.B))".to_string(),
        format!("F3: {} = {}", f3.target, f3.expr),
    ]);
    let pc = &mkb.pcs()[0];
    t.push(&[
        "Partial/Complete".to_string(),
        "PC_{R1,R2} = (π(σ R1) θ π(σ R2))".to_string(),
        format!("{}: {} {} {}", pc.id, pc.left, pc.op, pc.right),
    ]);
    format!(
        "Fig. 1 — Semantic constraints for IS descriptions\n\n{}",
        t.render()
    )
}

/// Fig. 2 — content descriptions, join and function-of constraints of
/// the travel-agency example, regenerated from the machine-readable MKB.
pub fn fig2() -> String {
    let travel = TravelFixture::new();
    let mkb = travel.mkb();
    let mut out = String::from("Fig. 2 — Travel-agency MKB\n\n");

    let mut t = Table::new(&["IS", "description"]);
    for r in mkb.relations() {
        let attrs: Vec<String> = r.attrs.iter().map(|a| a.name.to_string()).collect();
        t.push(&[
            r.source.clone(),
            format!("{}({})", r.name, attrs.join(", ")),
        ]);
    }
    out.push_str(&t.render());
    out.push('\n');

    let mut t = Table::new(&["JC", "join constraint"]);
    for j in mkb.joins() {
        t.push(&[j.id.clone(), j.predicate.to_string()]);
    }
    out.push_str(&t.render());
    out.push('\n');

    let mut t = Table::new(&["F", "function-of constraint"]);
    for f in mkb.function_ofs() {
        t.push(&[f.id.clone(), format!("{} = {}", f.target, f.expr)]);
    }
    out.push_str(&t.render());
    out
}

/// Fig. 3 — the E-SQL evolution-parameter table with the implemented
/// defaults.
pub fn fig3() -> String {
    let d = EvolutionParams::default();
    let mut t = Table::new(&["evolution parameter", "values", "default"]);
    for (name, short) in [
        ("Attribute-dispensable", "AD"),
        ("Attribute-replaceable", "AR"),
        ("Condition-dispensable", "CD"),
        ("Condition-replaceable", "CR"),
        ("Relation-dispensable", "RD"),
        ("Relation-replaceable", "RR"),
    ] {
        let default = if short.ends_with('D') {
            d.dispensable
        } else {
            d.replaceable
        };
        t.push(&[
            format!("{name} ({short})"),
            "true | false".to_string(),
            default.to_string(),
        ]);
    }
    t.push(&[
        "View-extent (VE)".to_string(),
        "≡ | ⊇ | ⊆ | ≈".to_string(),
        ViewExtent::default().symbol().to_string(),
    ]);
    format!(
        "Fig. 3 — View evolution parameters of E-SQL\n\n{}",
        t.render()
    )
}

/// Fig. 4 — the hypergraphs `H(MKB)` and `H'(MKB')` for the travel
/// example under `delete-relation Customer`. Returns the textual
/// component summary plus the two DOT documents.
pub fn fig4() -> Fig4 {
    let travel = TravelFixture::new();
    let mkb = travel.mkb();
    let h = Hypergraph::build(mkb);

    let customer = RelName::new("Customer");
    let mkb_prime = evolve(mkb, &CapabilityChange::DeleteRelation(customer.clone()))
        .expect("Customer is described");
    let h_prime = Hypergraph::build(&mkb_prime);

    // The Min(H_Customer) highlight of Fig. 4 (bold edge JC1) for the
    // Eq. (5) view.
    let bold: BTreeSet<String> = ["JC1".to_string()].into_iter().collect();

    let mut summary = String::from("Fig. 4 — H(MKB) and H'(MKB')\n\nH(MKB):\n");
    summary.push_str(&dot::component_summary(&h));
    summary.push_str("\nH'(MKB') after delete-relation Customer:\n");
    summary.push_str(&dot::component_summary(&h_prime));

    Fig4 {
        summary,
        dot_h: dot::to_dot(mkb, &h, &bold),
        dot_h_prime: dot::to_dot(&mkb_prime, &h_prime, &BTreeSet::new()),
        components_before: h.components().len(),
        components_after: h_prime.components().len(),
        customer_component: h
            .component_relations(&customer)
            .expect("Customer in H(MKB)"),
    }
}

/// The Fig. 4 reproduction artifacts.
#[derive(Debug, Clone)]
pub struct Fig4 {
    /// Text summary of the components before/after.
    pub summary: String,
    /// DOT for `H(MKB)` (with `Min(H_Customer)` bold).
    pub dot_h: String,
    /// DOT for `H'(MKB')`.
    pub dot_h_prime: String,
    /// Number of connected components of `H(MKB)`.
    pub components_before: usize,
    /// Number of connected components of `H'(MKB')`.
    pub components_after: usize,
    /// The relation set of `H_Customer(MKB)`.
    pub customer_component: BTreeSet<RelName>,
}

/// Convenience for tests: the full travel MKB.
pub fn travel_mkb() -> MetaKnowledgeBase {
    TravelFixture::new().mkb().clone()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig2_lists_everything() {
        let s = fig2();
        for rel in [
            "Customer",
            "Tour",
            "Participant",
            "FlightRes",
            "Accident-Ins",
            "Hotels",
            "RentACar",
        ] {
            assert!(s.contains(rel), "missing {rel} in:\n{s}");
        }
        for id in ["JC1", "JC6", "F1", "F7"] {
            assert!(s.contains(id), "missing {id}");
        }
    }

    #[test]
    fn fig4_matches_paper() {
        let f = fig4();
        // Paper: two connected components in H(MKB)…
        assert_eq!(f.components_before, 2);
        // …whose Customer component is {Customer, Tour, Participant,
        // FlightRes, Accident-Ins}.
        let expected: BTreeSet<RelName> = [
            "Customer",
            "Tour",
            "Participant",
            "FlightRes",
            "Accident-Ins",
        ]
        .into_iter()
        .map(RelName::new)
        .collect();
        assert_eq!(f.customer_component, expected);
        // Erasing Customer splits its component: {Participant, Tour} and
        // {FlightRes, Accident-Ins} (plus {Hotels, RentACar}).
        assert_eq!(f.components_after, 3);
        assert!(f.dot_h.contains("penwidth=3"));
        assert!(f.dot_h_prime.contains("graph H"));
    }

    #[test]
    fn fig1_and_fig3_render() {
        assert!(fig1().contains("Function-of"));
        let f3 = fig3();
        assert!(f3.contains("AD"));
        assert!(f3.contains("≡"));
    }
}
