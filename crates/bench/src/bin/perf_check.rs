//! CI perf-smoke guard for the data-oriented hypergraph core.
//!
//! Re-runs the `wide_mkb/exhaustive` scenario of `experiments bench-cvs`
//! in-process — a fresh [`MkbIndex`] build plus one exhaustive
//! `cvs_delete_relation_searched` per iteration, median over the same
//! iteration count — and asserts it is at least `min_ratio`× faster
//! than the committed pre-refactor baseline. The local target is ≥ 5×
//! (see EXPERIMENTS.md); CI asserts a conservative 3× to absorb shared
//! -runner noise. Three measurement series are taken and the best
//! median wins: noise on a loaded host only ever inflates a wall-clock
//! sample, so best-of-N converges on the machine's true figure.
//!
//! A second mode guards the incremental index maintenance of the
//! versioned-MKB path: `perf_check --stream [min_ratio]` (default
//! `5.0`) re-measures [`eve_bench::perf::maintain_ab`] — delta apply
//! vs from-scratch [`MkbIndex::new`] over the same 64-change
//! capability stream — and asserts the delta path is at least
//! `min_ratio`× faster. Both sides run in-process back to back, so the
//! ratio needs no committed baseline and is robust to host speed.
//!
//! Usage: `perf_check [baseline.json] [min_ratio]`
//! (defaults: `BENCH_cvs.json`, `3.0`). Exits non-zero when the ratio
//! falls short or the baseline row cannot be found.

use eve_bench::perf::{maintain_ab, STREAM_CHANGES};
use eve_core::{cvs_delete_relation_searched, CvsOptions, MkbIndex, SearchBudget};
use eve_misd::evolve;
use eve_workload::SynthWorkload;
use std::time::Instant;

const SCENARIO: &str = "wide_mkb/exhaustive";
const ITERS: usize = 15;
const SERIES: usize = 3;

fn median_ns(iters: usize, mut f: impl FnMut()) -> u64 {
    let mut samples: Vec<u64> = Vec::with_capacity(iters);
    for _ in 0..iters {
        let t = Instant::now();
        f();
        samples.push(t.elapsed().as_nanos() as u64);
    }
    samples.sort_unstable();
    samples[samples.len() / 2]
}

/// Pull `"median_ns": <n>` out of the row whose `"scenario"` is
/// `scenario`. The JSON is the hand-rolled output of
/// `eve_bench::perf::to_json` (no serde in this environment), so a
/// substring scan is exact: scenario labels are unique and unescaped.
fn extract_median(json: &str, scenario: &str) -> Option<u64> {
    let row = json.find(&format!("\"scenario\": \"{scenario}\""))?;
    let rest = &json[row..];
    let key = "\"median_ns\": ";
    let at = rest.find(key)? + key.len();
    let digits: String = rest[at..]
        .chars()
        .take_while(|c| c.is_ascii_digit())
        .collect();
    digits.parse().ok()
}

/// The `--stream` mode: best-of-[`SERIES`] in-process A/B of delta
/// apply vs per-change index rebuild on the 64-change stream.
fn stream_guard(min_ratio: f64) {
    let (mut rebuild, mut delta) = maintain_ab(ITERS);
    for _ in 1..SERIES {
        let (r, d) = maintain_ab(ITERS);
        rebuild = rebuild.min(r);
        delta = delta.min(d);
    }
    let ratio = rebuild as f64 / delta as f64;
    println!(
        "scenario=change_stream/maintain changes={STREAM_CHANGES} rebuild_ns={rebuild} \
         delta_ns={delta} ratio={ratio:.2} min_ratio={min_ratio}"
    );
    if ratio < min_ratio {
        eprintln!("perf-smoke FAILED: delta apply only {ratio:.2}x < required {min_ratio}x");
        std::process::exit(1);
    }
}

fn main() {
    let mut args = std::env::args().skip(1);
    let first = args.next();
    if first.as_deref() == Some("--stream") {
        let min_ratio: f64 = args.next().and_then(|a| a.parse().ok()).unwrap_or(5.0);
        stream_guard(min_ratio);
        return;
    }
    let baseline_path = first.unwrap_or_else(|| "BENCH_cvs.json".to_string());
    let min_ratio: f64 = args.next().and_then(|a| a.parse().ok()).unwrap_or(3.0);

    let baseline_json = std::fs::read_to_string(&baseline_path)
        .unwrap_or_else(|e| panic!("cannot read baseline {baseline_path}: {e}"));
    let baseline = extract_median(&baseline_json, SCENARIO)
        .unwrap_or_else(|| panic!("no {SCENARIO} row in {baseline_path}"));

    let wide = SynthWorkload::wide_mkb(4, 3);
    let change = wide.delete_change();
    let mkb2 = evolve(&wide.mkb, &change).expect("target described");
    let opts = CvsOptions {
        budget: SearchBudget::unlimited(),
        ..CvsOptions::default()
    };
    let run = || {
        let index = MkbIndex::new(&wide.mkb, &mkb2, &opts);
        cvs_delete_relation_searched(&wide.view, &wide.target, &index, &opts, false, None)
            .expect("wide workload is synchronizable")
    };
    run(); // warm-up: fault in code paths and allocator arenas

    let best = (0..SERIES)
        .map(|_| {
            median_ns(ITERS, || {
                run();
            })
        })
        .min()
        .expect("SERIES > 0");

    let ratio = baseline as f64 / best as f64;
    println!(
        "scenario={SCENARIO} baseline_ns={baseline} current_ns={best} \
         ratio={ratio:.2} min_ratio={min_ratio}"
    );
    if ratio < min_ratio {
        eprintln!("perf-smoke FAILED: {ratio:.2}x < required {min_ratio}x vs {baseline_path}");
        std::process::exit(1);
    }
}
