//! CI perf-smoke guard for the data-oriented hypergraph core.
//!
//! Re-runs the `wide_mkb/exhaustive` scenario of `experiments bench-cvs`
//! in-process — a fresh [`MkbIndex`] build plus one exhaustive
//! `cvs_delete_relation_searched` per iteration, median over the same
//! iteration count — and asserts it is at least `min_ratio`× faster
//! than the committed pre-refactor baseline. The local target is ≥ 5×
//! (see EXPERIMENTS.md); CI asserts a conservative 3× to absorb shared
//! -runner noise. Three measurement series are taken and the best
//! median wins: noise on a loaded host only ever inflates a wall-clock
//! sample, so best-of-N converges on the machine's true figure.
//!
//! A second mode guards the incremental index maintenance of the
//! versioned-MKB path: `perf_check --stream [min_ratio]` (default
//! `5.0`) re-measures [`eve_bench::perf::maintain_ab`] — delta apply
//! vs from-scratch [`MkbIndex::new`] over the same 64-change
//! capability stream — and asserts the delta path is at least
//! `min_ratio`× faster. Both sides run in-process back to back, so the
//! ratio needs no committed baseline and is robust to host speed.
//!
//! A third mode is the perf-regression sentinel: `perf_check --history
//! [FILE]` (default `results/BENCH_history.jsonl`) re-measures the
//! tracked scenario, judges it against the rolling median of the prior
//! rows for the same scenario (> 20% slower = regression, exit 1), and
//! appends the new row to the ledger. Rows carry a timestamp and git
//! revision passed in via `--ts` / `--rev` (or `EVE_BENCH_TS` /
//! `EVE_BENCH_REV`) — never computed in-process. For deterministic CI
//! self-tests, `--scenario S --current-ns N` skips measurement and
//! judges the given figure instead.
//!
//! Usage: `perf_check [baseline.json] [min_ratio]`
//! (defaults: `BENCH_cvs.json`, `3.0`). Exits non-zero when the ratio
//! falls short or the baseline row cannot be found.

use eve_bench::history::{self, HistoryRow, DEFAULT_THRESHOLD};
use eve_bench::perf::{maintain_ab, STREAM_CHANGES};
use eve_core::{cvs_delete_relation_searched, CvsOptions, MkbIndex, SearchBudget};
use eve_misd::evolve;
use eve_workload::SynthWorkload;
use std::time::Instant;

const SCENARIO: &str = "wide_mkb/exhaustive";
const ITERS: usize = 15;
const SERIES: usize = 3;

fn median_ns(iters: usize, mut f: impl FnMut()) -> u64 {
    let mut samples: Vec<u64> = Vec::with_capacity(iters);
    for _ in 0..iters {
        let t = Instant::now();
        f();
        samples.push(t.elapsed().as_nanos() as u64);
    }
    samples.sort_unstable();
    samples[samples.len() / 2]
}

/// Pull `"median_ns": <n>` out of the row whose `"scenario"` is
/// `scenario`. The JSON is the hand-rolled output of
/// `eve_bench::perf::to_json` (no serde in this environment), so a
/// substring scan is exact: scenario labels are unique and unescaped.
fn extract_median(json: &str, scenario: &str) -> Option<u64> {
    let row = json.find(&format!("\"scenario\": \"{scenario}\""))?;
    let rest = &json[row..];
    let key = "\"median_ns\": ";
    let at = rest.find(key)? + key.len();
    let digits: String = rest[at..]
        .chars()
        .take_while(|c| c.is_ascii_digit())
        .collect();
    digits.parse().ok()
}

/// The `--stream` mode: best-of-[`SERIES`] in-process A/B of delta
/// apply vs per-change index rebuild on the 64-change stream.
fn stream_guard(min_ratio: f64) {
    let (mut rebuild, mut delta) = maintain_ab(ITERS);
    for _ in 1..SERIES {
        let (r, d) = maintain_ab(ITERS);
        rebuild = rebuild.min(r);
        delta = delta.min(d);
    }
    let ratio = rebuild as f64 / delta as f64;
    println!(
        "scenario=change_stream/maintain changes={STREAM_CHANGES} rebuild_ns={rebuild} \
         delta_ns={delta} ratio={ratio:.2} min_ratio={min_ratio}"
    );
    if ratio < min_ratio {
        eprintln!("perf-smoke FAILED: delta apply only {ratio:.2}x < required {min_ratio}x");
        std::process::exit(1);
    }
}

/// `--ts` / `--rev` flag, falling back to the environment, falling
/// back to `"unknown"` — never a clock or `git` subprocess.
fn stamp(flags: &std::collections::HashMap<String, String>, flag: &str, env: &str) -> String {
    flags
        .get(flag)
        .cloned()
        .or_else(|| std::env::var(env).ok())
        .unwrap_or_else(|| "unknown".to_string())
}

/// The `--history` sentinel: judge the current median against the
/// ledger's rolling baseline, then append it as a new row.
fn history_sentinel(rest: &[String]) {
    let mut path = std::path::PathBuf::from("results/BENCH_history.jsonl");
    let mut flags = std::collections::HashMap::new();
    let mut it = rest.iter();
    while let Some(arg) = it.next() {
        if let Some(name) = arg.strip_prefix("--") {
            let value = it.next().unwrap_or_else(|| {
                eprintln!("perf_check: --{name} needs a value");
                std::process::exit(2);
            });
            flags.insert(name.to_string(), value.clone());
        } else {
            path = std::path::PathBuf::from(arg);
        }
    }

    let (scenario, current_ns) = match (flags.get("scenario"), flags.get("current-ns")) {
        // Deterministic probe: judge a given figure, no measurement.
        (Some(s), Some(ns)) => {
            let ns: u128 = ns.parse().unwrap_or_else(|e| {
                eprintln!("perf_check: bad --current-ns: {e}");
                std::process::exit(2);
            });
            (s.clone(), ns)
        }
        (None, None) => {
            // Measure the tracked scenario (same body as the ratio
            // guard below, best-of-SERIES median).
            let wide = SynthWorkload::wide_mkb(4, 3);
            let change = wide.delete_change();
            let mkb2 = evolve(&wide.mkb, &change).expect("target described");
            let opts = CvsOptions {
                budget: SearchBudget::unlimited(),
                ..CvsOptions::default()
            };
            let run = || {
                let index = MkbIndex::new(&wide.mkb, &mkb2, &opts);
                cvs_delete_relation_searched(&wide.view, &wide.target, &index, &opts, false, None)
                    .expect("wide workload is synchronizable")
            };
            run(); // warm-up
            let best = (0..SERIES)
                .map(|_| {
                    median_ns(ITERS, || {
                        run();
                    })
                })
                .min()
                .expect("SERIES > 0");
            (SCENARIO.to_string(), best as u128)
        }
        _ => {
            eprintln!("perf_check: --scenario and --current-ns must be given together");
            std::process::exit(2);
        }
    };

    let prior = match std::fs::read_to_string(&path) {
        Ok(text) => history::parse_rows(&text),
        Err(_) => Vec::new(), // first run seeds the ledger
    };
    let verdict = history::check(&prior, &scenario, current_ns, DEFAULT_THRESHOLD);
    println!("{}", history::render_verdict(&verdict));

    let row = HistoryRow {
        ts: stamp(&flags, "ts", "EVE_BENCH_TS"),
        rev: stamp(&flags, "rev", "EVE_BENCH_REV"),
        scenario,
        median_ns: current_ns,
    };
    history::append_rows(&path, &[row])
        .unwrap_or_else(|e| panic!("cannot append to {}: {e}", path.display()));

    if verdict.regressed {
        eprintln!(
            "perf-sentinel FAILED: {} regressed past the {:.0}% threshold",
            verdict.scenario,
            (DEFAULT_THRESHOLD - 1.0) * 100.0
        );
        std::process::exit(1);
    }
}

fn main() {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    if argv.first().map(String::as_str) == Some("--history") {
        history_sentinel(&argv[1..]);
        return;
    }
    let mut args = argv.into_iter();
    let first = args.next();
    if first.as_deref() == Some("--stream") {
        let min_ratio: f64 = args.next().and_then(|a| a.parse().ok()).unwrap_or(5.0);
        stream_guard(min_ratio);
        return;
    }
    let baseline_path = first.unwrap_or_else(|| "BENCH_cvs.json".to_string());
    let min_ratio: f64 = args.next().and_then(|a| a.parse().ok()).unwrap_or(3.0);

    let baseline_json = std::fs::read_to_string(&baseline_path)
        .unwrap_or_else(|e| panic!("cannot read baseline {baseline_path}: {e}"));
    let baseline = extract_median(&baseline_json, SCENARIO)
        .unwrap_or_else(|| panic!("no {SCENARIO} row in {baseline_path}"));

    let wide = SynthWorkload::wide_mkb(4, 3);
    let change = wide.delete_change();
    let mkb2 = evolve(&wide.mkb, &change).expect("target described");
    let opts = CvsOptions {
        budget: SearchBudget::unlimited(),
        ..CvsOptions::default()
    };
    let run = || {
        let index = MkbIndex::new(&wide.mkb, &mkb2, &opts);
        cvs_delete_relation_searched(&wide.view, &wide.target, &index, &opts, false, None)
            .expect("wide workload is synchronizable")
    };
    run(); // warm-up: fault in code paths and allocator arenas

    let best = (0..SERIES)
        .map(|_| {
            median_ns(ITERS, || {
                run();
            })
        })
        .min()
        .expect("SERIES > 0");

    let ratio = baseline as f64 / best as f64;
    println!(
        "scenario={SCENARIO} baseline_ns={baseline} current_ns={best} \
         ratio={ratio:.2} min_ratio={min_ratio}"
    );
    if ratio < min_ratio {
        eprintln!("perf-smoke FAILED: {ratio:.2}x < required {min_ratio}x vs {baseline_path}");
        std::process::exit(1);
    }
}
