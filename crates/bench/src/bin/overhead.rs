//! Disabled-instrumentation overhead probe for the CI guard.
//!
//! Mirrors the `cvs_index_reuse_8_views/cached/64` criterion scenario —
//! one per-change [`MkbIndex`] build plus eight indexed view
//! synchronizations per iteration — without criterion, so it runs in a
//! couple of seconds and compiles with *and* without the default
//! features. CI builds both configurations, runs each, and asserts the
//! default build (telemetry *and* eve-faults sites compiled in but
//! **not** installed, i.e. one relaxed atomic load each) stays within
//! 5% of the `--no-default-features` build, in which both facades
//! compile to no-ops. The probe path crosses every fault site
//! (`index.build`, `index.enumerate-trees`, `search.candidate`,
//! `view.sync`, `hypergraph.tree-iter`), so the guard covers them all.
//!
//! A second probe pins the data-oriented enumeration core on its own:
//! [`Hypergraph::tree_cursor`] driven to exhaustion over the wide-MKB
//! workload's view relations. The cursor's steady state is
//! allocation-free index arithmetic, so any instrumentation residue
//! (the per-call fault-site load, the yield-counter flush on drop)
//! shows up here with nothing to hide behind.
//!
//! Output: two lines on stdout —
//! `median_ns_per_iter=<n>` and `cursor_median_ns_per_iter=<n>`.
//!
//! With `--enabled` (default build only), the probe instead compares a
//! *live* pipeline against a live pipeline with the flight recorder
//! armed: `enabled_median_ns_per_iter=<n>` (telemetry installed, no
//! sinks) and `recorder_median_ns_per_iter=<n>` (plus
//! `flight_install`). CI asserts the recorder stays within 5% of the
//! enabled pipeline — the per-event cost is one uncontended mutex push
//! into a bounded ring.

use eve_core::{cvs_delete_relation_indexed, CvsOptions, MkbIndex};
use eve_hypergraph::Hypergraph;
use eve_misd::evolve;
use eve_workload::{SynthConfig, SynthWorkload, Topology};
use std::collections::BTreeSet;
use std::time::Instant;

const VIEWS: usize = 8;

fn median_ns(iters: usize, mut f: impl FnMut()) -> u64 {
    let mut samples: Vec<u64> = Vec::with_capacity(iters);
    for _ in 0..iters {
        let t = Instant::now();
        f();
        samples.push(t.elapsed().as_nanos() as u64);
    }
    samples.sort_unstable();
    samples[samples.len() / 2]
}

/// The `--enabled` A/B: live pipeline vs live pipeline + recorder.
#[cfg(feature = "telemetry")]
fn enabled_probe(iters: usize, one_iter: impl Fn()) {
    let _serial = eve_telemetry::serial_guard();
    for _ in 0..5 {
        one_iter(); // warm-up outside the pipeline
    }

    eve_telemetry::install(vec![]).expect("no other pipeline installed");
    let enabled = median_ns(iters, &one_iter);
    println!("enabled_median_ns_per_iter={enabled}");

    eve_telemetry::flight_install(4096, None).expect("no other recorder installed");
    let recorder = median_ns(iters, &one_iter);
    println!("recorder_median_ns_per_iter={recorder}");
    let stats = eve_telemetry::flight_uninstall().expect("recorder was installed");
    assert!(
        stats.buffered > 0,
        "recorder observed nothing — probe is vacuous"
    );
    eve_telemetry::uninstall();
}

#[cfg(not(feature = "telemetry"))]
fn enabled_probe(_iters: usize, _one_iter: impl Fn()) {
    eprintln!("overhead --enabled requires the default `telemetry` feature");
    std::process::exit(2);
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let enabled_mode = args.iter().any(|a| a == "--enabled");
    let iters: usize = args.iter().find_map(|a| a.parse().ok()).unwrap_or(60);

    let cfg = SynthConfig {
        n_relations: 64,
        topology: Topology::Random { extra: 16 },
        cover_count: 3,
        view_relations: 3,
        ..SynthConfig::default()
    };
    let w = SynthWorkload::random(&cfg, 7);
    let mkb2 = evolve(&w.mkb, &w.delete_change()).expect("target described");
    let opts = CvsOptions::default();

    let one_iter = || {
        let index = MkbIndex::new(&w.mkb, &mkb2, &opts);
        for _ in 0..VIEWS {
            cvs_delete_relation_indexed(&w.view, &w.target, &index, &opts)
                .expect("workload is synchronizable");
        }
    };

    if enabled_mode {
        enabled_probe(iters, one_iter);
        return;
    }

    // Warm-up: fault in code paths and allocator arenas before timing.
    for _ in 0..5 {
        one_iter();
    }

    println!("median_ns_per_iter={}", median_ns(iters, one_iter));

    // Probe 2: the id-level enumeration core in isolation. Stream every
    // connection tree over the wide workload's view relations; the
    // relation count stays within the inline bitset budget, so the loop
    // body is exactly the code the fault/telemetry facades decorate.
    let wide = SynthWorkload::wide_mkb(4, 3);
    let h = Hypergraph::build(&wide.mkb);
    let terminals: BTreeSet<_> = wide.view.relations().into_iter().collect();
    let cursor_iter = || {
        let mut cursor = h.tree_cursor(&terminals, 8);
        let mut yielded = 0u64;
        while cursor.advance() {
            yielded += 1;
        }
        yielded
    };
    assert!(
        cursor_iter() > 0,
        "wide workload enumerates at least one tree"
    );

    let cursor_median = median_ns(iters, || {
        // 64 full streams per sample: one stream is sub-microsecond,
        // too close to timer resolution to compare builds on.
        for _ in 0..64 {
            std::hint::black_box(cursor_iter());
        }
    });
    println!("cursor_median_ns_per_iter={cursor_median}");
}
