//! Disabled-instrumentation overhead probe for the CI guard.
//!
//! Mirrors the `cvs_index_reuse_8_views/cached/64` criterion scenario —
//! one per-change [`MkbIndex`] build plus eight indexed view
//! synchronizations per iteration — without criterion, so it runs in a
//! couple of seconds and compiles with *and* without the default
//! features. CI builds both configurations, runs each, and asserts the
//! default build (telemetry *and* eve-faults sites compiled in but
//! **not** installed, i.e. one relaxed atomic load each) stays within
//! 5% of the `--no-default-features` build, in which both facades
//! compile to no-ops. The probe path crosses every fault site
//! (`index.build`, `index.enumerate-trees`, `search.candidate`,
//! `view.sync`, `hypergraph.tree-iter`), so the guard covers them all.
//!
//! A second probe pins the data-oriented enumeration core on its own:
//! [`Hypergraph::tree_cursor`] driven to exhaustion over the wide-MKB
//! workload's view relations. The cursor's steady state is
//! allocation-free index arithmetic, so any instrumentation residue
//! (the per-call fault-site load, the yield-counter flush on drop)
//! shows up here with nothing to hide behind.
//!
//! Output: two lines on stdout —
//! `median_ns_per_iter=<n>` and `cursor_median_ns_per_iter=<n>`.

use eve_core::{cvs_delete_relation_indexed, CvsOptions, MkbIndex};
use eve_hypergraph::Hypergraph;
use eve_misd::evolve;
use eve_workload::{SynthConfig, SynthWorkload, Topology};
use std::collections::BTreeSet;
use std::time::Instant;

const VIEWS: usize = 8;

fn main() {
    let iters: usize = std::env::args()
        .nth(1)
        .and_then(|a| a.parse().ok())
        .unwrap_or(60);

    let cfg = SynthConfig {
        n_relations: 64,
        topology: Topology::Random { extra: 16 },
        cover_count: 3,
        view_relations: 3,
        ..SynthConfig::default()
    };
    let w = SynthWorkload::random(&cfg, 7);
    let mkb2 = evolve(&w.mkb, &w.delete_change()).expect("target described");
    let opts = CvsOptions::default();

    let one_iter = || {
        let index = MkbIndex::new(&w.mkb, &mkb2, &opts);
        for _ in 0..VIEWS {
            cvs_delete_relation_indexed(&w.view, &w.target, &index, &opts)
                .expect("workload is synchronizable");
        }
    };

    // Warm-up: fault in code paths and allocator arenas before timing.
    for _ in 0..5 {
        one_iter();
    }

    let mut samples: Vec<u64> = Vec::with_capacity(iters);
    for _ in 0..iters {
        let t = Instant::now();
        one_iter();
        samples.push(t.elapsed().as_nanos() as u64);
    }
    samples.sort_unstable();
    println!("median_ns_per_iter={}", samples[samples.len() / 2]);

    // Probe 2: the id-level enumeration core in isolation. Stream every
    // connection tree over the wide workload's view relations; the
    // relation count stays within the inline bitset budget, so the loop
    // body is exactly the code the fault/telemetry facades decorate.
    let wide = SynthWorkload::wide_mkb(4, 3);
    let h = Hypergraph::build(&wide.mkb);
    let terminals: BTreeSet<_> = wide.view.relations().into_iter().collect();
    let cursor_iter = || {
        let mut cursor = h.tree_cursor(&terminals, 8);
        let mut yielded = 0u64;
        while cursor.advance() {
            yielded += 1;
        }
        yielded
    };
    assert!(
        cursor_iter() > 0,
        "wide workload enumerates at least one tree"
    );

    let mut samples: Vec<u64> = Vec::with_capacity(iters);
    for _ in 0..iters {
        let t = Instant::now();
        // 64 full streams per sample: one stream is sub-microsecond,
        // too close to timer resolution to compare builds on.
        for _ in 0..64 {
            std::hint::black_box(cursor_iter());
        }
        samples.push(t.elapsed().as_nanos() as u64);
    }
    samples.sort_unstable();
    println!("cursor_median_ns_per_iter={}", samples[samples.len() / 2]);
}
