//! Nightly randomized delta≡rebuild equivalence check.
//!
//! Draws a fresh seed per run (or takes one as `argv[1]` to replay a
//! failure), generates a batch of random federated MKBs and capability
//! change streams from it, and replays every stream through three
//! synchronizers side by side — `IndexMaintenance::Rebuild` (the
//! from-scratch oracle), `Incremental` (delta-maintained cores + memo
//! carry) and `IncrementalFresh` (delta cores, no carry). After every
//! prefix all three must produce byte-identical [`ChangeOutcome`]s and
//! observable state (evolved MKB, view texts, disabled sets).
//!
//! The seed is printed first, so a red nightly run is replayable
//! verbatim: `delta_equiv <seed>`. Exits non-zero on the first
//! divergence with the round, prefix and change that broke.
//!
//! Usage: `delta_equiv [seed] [rounds]` (defaults: time-derived seed,
//! 32 rounds).

use eve_core::{ChangeOutcome, CvsOptions, IndexMaintenance, Synchronizer, SynchronizerBuilder};
use eve_misd::MetaKnowledgeBase;
use eve_workload::{change_stream, random_views, SynthConfig, SynthWorkload, Topology};

/// Deterministic xorshift64* over the run seed — keeps the round
/// parameters reproducible from the one logged number without pulling
/// `rand` into the bin.
struct Rng(u64);

impl Rng {
    fn next(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.0 = x;
        x.wrapping_mul(0x2545F4914F6CDD1D)
    }
    fn range(&mut self, lo: usize, hi: usize) -> usize {
        lo + (self.next() % (hi - lo) as u64) as usize
    }
}

fn build(mkb: &MetaKnowledgeBase, mode: IndexMaintenance, seed: u64) -> Synchronizer {
    let mut b = SynchronizerBuilder::new(mkb.clone()).with_options(CvsOptions {
        index_maintenance: mode,
        ..CvsOptions::default()
    });
    for v in random_views(mkb, 3, 3, seed) {
        b = b.with_view(v).expect("synthetic view is valid");
    }
    b.build()
}

fn observe(s: &Synchronizer) -> (MetaKnowledgeBase, Vec<String>, Vec<String>) {
    (
        s.mkb().clone(),
        s.views().map(|v| v.to_string()).collect(),
        s.disabled_views().map(|(n, _)| n.to_string()).collect(),
    )
}

fn main() {
    let mut args = std::env::args().skip(1);
    let seed: u64 = args
        .next()
        .map(|a| a.parse().expect("seed must be a u64"))
        .unwrap_or_else(|| {
            std::time::SystemTime::now()
                .duration_since(std::time::UNIX_EPOCH)
                .expect("clock after epoch")
                .as_nanos() as u64
        });
    let rounds: usize = args.next().and_then(|a| a.parse().ok()).unwrap_or(32);
    // The one line that matters when this goes red at 3am.
    println!("delta_equiv seed={seed} rounds={rounds} (replay: delta_equiv {seed})");

    let mut rng = Rng(seed | 1);
    let mut checked = 0usize;
    for round in 0..rounds {
        let n_relations = rng.range(6, 24);
        let topology = match rng.range(0, 4) {
            0 => Topology::Chain,
            1 => Topology::Ring,
            2 => Topology::Random {
                extra: rng.range(0, 10),
            },
            _ => Topology::Clusters {
                size: rng.range(3, 7),
                extra: rng.range(0, 3),
            },
        };
        let cfg = SynthConfig {
            n_relations,
            topology,
            cover_count: rng.range(1, 4),
            view_relations: 3,
            global_cover_prob: [0.0, 0.25, 0.5][rng.range(0, 3)],
            ..SynthConfig::default()
        };
        let w_seed = rng.next();
        let len = rng.range(4, 20);
        let w = SynthWorkload::random(&cfg, w_seed);
        let stream = change_stream(&w.mkb, len, w_seed);
        let mut rebuild = build(&w.mkb, IndexMaintenance::Rebuild, w_seed);
        let mut inc = build(&w.mkb, IndexMaintenance::Incremental, w_seed);
        let mut fresh = build(&w.mkb, IndexMaintenance::IncrementalFresh, w_seed);
        for (i, c) in stream.iter().enumerate() {
            let a: ChangeOutcome = rebuild.apply(c).expect("stream change applies");
            let b = inc.apply(c).expect("stream change applies");
            let f = fresh.apply(c).expect("stream change applies");
            let fail = |mode: &str| {
                eprintln!(
                    "DIVERGED round={round} prefix={i} change=\"{c}\" mode={mode} \
                     (replay: delta_equiv {seed})"
                );
                std::process::exit(1);
            };
            if a != b {
                fail("incremental");
            }
            if a != f {
                fail("incremental-fresh");
            }
            if observe(&rebuild) != observe(&inc) {
                fail("incremental-state");
            }
            if observe(&rebuild) != observe(&fresh) {
                fail("incremental-fresh-state");
            }
            checked += 1;
        }
    }
    println!("delta_equiv OK: {rounds} rounds, {checked} prefixes, all modes byte-identical");
}
