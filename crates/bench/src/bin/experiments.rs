//! The experiment driver: regenerates every figure, table and worked
//! example of the CVS paper, plus the quantitative sweeps.
//!
//! ```text
//! cargo run -p eve-bench --bin experiments -- <id> [--out DIR]
//!
//! ids: fig1 fig2 fig3 fig4 ex3 ex4 ex5_10
//!      sweep-chain sweep-scale sweep-covers sweep-extent
//!      bench-cvs all
//! ```
//!
//! With `--out DIR` (default `results/`), reports are also written to
//! `<DIR>/<id>.txt` and the Fig. 4 DOT files to `<DIR>/fig4*.dot`.
//!
//! `bench-cvs` additionally appends every measured row to the
//! perf-sentinel ledger `<DIR>/BENCH_history.jsonl` (see
//! `eve_bench::history`). The timestamp and git revision stamped onto
//! those rows come from `--ts` / `--rev` (or `EVE_BENCH_TS` /
//! `EVE_BENCH_REV`), never from an in-process clock or `git` call.

use eve_bench::{cost_rank, examples, figures, history, perf, sweeps};
use std::io::Write;
use std::path::{Path, PathBuf};

const IDS: &[&str] = &[
    "fig1",
    "fig2",
    "fig3",
    "fig4",
    "ex3",
    "ex4",
    "ex5_10",
    "sweep-chain",
    "sweep-scale",
    "sweep-covers",
    "sweep-extent",
    "sweep-lifecycle",
    "cost-rank",
    "bench-cvs",
];

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut out_dir = PathBuf::from("results");
    let mut selected: Vec<String> = Vec::new();
    let mut quick = false;
    let mut ts = None;
    let mut rev = None;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--out" => {
                i += 1;
                out_dir = PathBuf::from(args.get(i).map(String::as_str).unwrap_or("results"));
            }
            "--ts" => {
                i += 1;
                ts = args.get(i).cloned();
            }
            "--rev" => {
                i += 1;
                rev = args.get(i).cloned();
            }
            "--quick" => quick = true,
            "all" => selected.extend(IDS.iter().map(|s| s.to_string())),
            id if IDS.contains(&id) => selected.push(id.to_string()),
            other => {
                eprintln!("unknown experiment `{other}`; known: {} all", IDS.join(" "));
                std::process::exit(2);
            }
        }
        i += 1;
    }
    if selected.is_empty() {
        eprintln!("usage: experiments <id>... | all  [--out DIR] [--quick] [--ts TS] [--rev REV]");
        eprintln!("ids: {} all", IDS.join(" "));
        std::process::exit(2);
    }

    let stamp = |flag: Option<String>, env: &str| {
        flag.or_else(|| std::env::var(env).ok())
            .unwrap_or_else(|| "unknown".to_string())
    };
    let stamp = (stamp(ts, "EVE_BENCH_TS"), stamp(rev, "EVE_BENCH_REV"));

    std::fs::create_dir_all(&out_dir).expect("create output directory");
    for id in selected {
        let report = run(&id, quick, &out_dir, &stamp);
        println!("{report}");
        println!("{}", "=".repeat(72));
        write_out(&out_dir, &format!("{id}.txt"), &report);
    }
}

fn run(id: &str, quick: bool, out_dir: &Path, stamp: &(String, String)) -> String {
    match id {
        "fig1" => figures::fig1(),
        "fig2" => figures::fig2(),
        "fig3" => figures::fig3(),
        "fig4" => {
            let f = figures::fig4();
            write_out(out_dir, "fig4_h.dot", &f.dot_h);
            write_out(out_dir, "fig4_h_prime.dot", &f.dot_h_prime);
            format!(
                "{}\n(DOT written to {}/fig4_h.dot and fig4_h_prime.dot)\n",
                f.summary,
                out_dir.display()
            )
        }
        "ex3" => examples::ex3(),
        "ex4" => examples::ex4(),
        "ex5_10" => examples::ex5_10(),
        "sweep-chain" => sweeps::render_chain(&sweeps::sweep_chain(if quick { 4 } else { 8 })),
        "sweep-scale" => {
            let sizes: &[usize] = if quick {
                &[10, 50]
            } else {
                &[10, 50, 100, 200, 500, 1000]
            };
            sweeps::render_scale(&sweeps::sweep_scale(sizes, if quick { 3 } else { 10 }))
        }
        "sweep-covers" => sweeps::render_covers(&sweeps::sweep_covers(
            if quick { 4 } else { 8 },
            if quick { 5 } else { 25 },
        )),
        "sweep-extent" => sweeps::render_extent(&sweeps::sweep_extent(if quick { 5 } else { 50 })),
        "sweep-lifecycle" => {
            sweeps::render_lifecycle(&sweeps::sweep_lifecycle(if quick { 5 } else { 30 }, 6))
        }
        "cost-rank" => cost_rank::cost_rank(),
        "bench-cvs" => {
            let rows = perf::bench_cvs(quick);
            // One traced pass outside the timed rows: phase timings and
            // cache/search counters land in the JSON alongside the medians.
            let trace = perf::trace_summary();
            let json = perf::to_json(&rows, trace.as_ref());
            write_out(out_dir, "BENCH_cvs.json", &json);
            // Feed the perf-sentinel ledger: one history row per
            // scenario, stamped with the caller-supplied ts/rev.
            let (ts, rev) = stamp;
            let ledger: Vec<history::HistoryRow> = rows
                .iter()
                .map(|r| history::HistoryRow {
                    ts: ts.clone(),
                    rev: rev.clone(),
                    scenario: r.scenario.clone(),
                    median_ns: r.median_ns,
                })
                .collect();
            let ledger_path = out_dir.join("BENCH_history.jsonl");
            history::append_rows(&ledger_path, &ledger)
                .unwrap_or_else(|e| panic!("cannot append to {}: {e}", ledger_path.display()));
            format!(
                "{}\n(JSON written to {}/BENCH_cvs.json; {} rows appended to BENCH_history.jsonl)\n",
                perf::render(&rows),
                out_dir.display(),
                ledger.len()
            )
        }
        other => unreachable!("id {other} validated in main"),
    }
}

fn write_out(dir: &Path, file: &str, content: &str) {
    let path = dir.join(file);
    let mut f = std::fs::File::create(&path)
        .unwrap_or_else(|e| panic!("cannot create {}: {e}", path.display()));
    f.write_all(content.as_bytes())
        .unwrap_or_else(|e| panic!("cannot write {}: {e}", path.display()));
}
