//! # eve-bench
//!
//! The experiment harness reproducing every figure, table and worked
//! example of the CVS paper, plus the quantitative sweeps its claims
//! imply (the paper's own evaluation is qualitative — see
//! `EXPERIMENTS.md` at the repository root for the paper-vs-measured
//! record).
//!
//! Each experiment is a pure function returning a rendered report (and,
//! where meaningful, structured rows), shared by:
//!
//! * the `experiments` binary (`cargo run -p eve-bench --bin experiments
//!   -- <id>`) — regenerates any single artifact or `all` of them;
//! * the criterion benches under `benches/`;
//! * golden tests in the root crate's `tests/`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cost_rank;
pub mod examples;
pub mod figures;
pub mod history;
pub mod perf;
pub mod support;
pub mod sweeps;
pub mod table;
