//! The `cost-rank` experiment: the preservation cost model (the paper's
//! §7 future work, implemented in `eve-core::cost`) applied to the
//! Eq. (5) rewriting candidates.

use crate::support::cvs_dr;
use crate::table::Table;
use eve_core::{CostModel, CvsOptions};
use eve_misd::{evolve, CapabilityChange};
use eve_relational::RelName;
use eve_workload::TravelFixture;

/// Rank the Examples 5–10 rewritings by preservation cost and render the
/// comparison against the default (P3-first, smallest-first) order.
pub fn cost_rank() -> String {
    let fixture = TravelFixture::new();
    let mkb = fixture.mkb();
    let customer = RelName::new("Customer");
    let mkb_prime = evolve(mkb, &CapabilityChange::DeleteRelation(customer.clone()))
        .expect("Customer described");
    let view = TravelFixture::customer_passengers_asia_eq5();

    let default_order =
        cvs_dr(&view, &customer, mkb, &mkb_prime, &CvsOptions::default()).expect("curable");
    let model = CostModel::default();
    let mut cost_order = default_order.clone();
    model.rank(&view, &mut cost_order);

    let mut t = Table::new(&[
        "rank (cost)",
        "cost",
        "dropped attrs",
        "covers",
        "relations",
        "extent",
        "rank (default)",
    ]);
    for (i, r) in cost_order.iter().enumerate() {
        let b = model.assess(&view, r);
        let default_pos = default_order
            .iter()
            .position(|d| d.view == r.view)
            .map(|p| (p + 1).to_string())
            .unwrap_or_else(|| "-".into());
        t.push(&[
            (i + 1).to_string(),
            format!("{:.1}", b.total),
            b.dropped_attrs.to_string(),
            r.replacement.covers.len().to_string(),
            r.replacement.relations.len().to_string(),
            r.verdict.to_string(),
            default_pos,
        ]);
    }
    format!(
        "cost-rank — preservation cost model over the Eq. (5) candidates\n\n{}\n\
         The cost model prefers covering Customer.Age (via F3) over dropping it,\n\
         reordering the default (P3-first, smallest-first) ranking.\n",
        t.render()
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cost_rank_prefers_full_preservation() {
        let s = cost_rank();
        // The top-ranked candidate drops nothing.
        let first_row = s
            .lines()
            .find(|l| l.trim_start().starts_with('1'))
            .expect("has a first row");
        assert!(first_row.contains(" 0 "), "{s}");
    }
}
