//! Timed micro-experiments behind `experiments bench-cvs`: medians of
//! the end-to-end synchronization latency across view count × thread
//! count, plus the enumeration-cache ablation, emitted both as a table
//! and as machine-readable `BENCH_cvs.json`.
//!
//! These are coarse wall-clock medians for trend lines and CI smoke —
//! the criterion benches under `benches/` remain the rigorous
//! measurements.

use crate::table::Table;
use eve_core::{
    cvs_delete_relation_indexed, cvs_delete_relation_searched, CvsOptions, IndexCore,
    IndexMaintenance, MkbDelta, MkbIndex, SearchBudget, SearchStats, SynchronizerBuilder,
};
use eve_misd::evolve;
use eve_workload::{
    change_stream, random_views, views_touching, SynthConfig, SynthWorkload, Topology,
};
use std::time::Instant;

/// One measured scenario.
#[derive(Debug, Clone)]
pub struct PerfRow {
    /// Scenario label (stable across runs, used as the JSON key).
    pub scenario: String,
    /// Number of affected views synchronized per run.
    pub views: usize,
    /// Worker threads used (1 = sequential).
    pub threads: usize,
    /// Median wall-clock nanoseconds per run.
    pub median_ns: u128,
    /// Search counters from one representative run, for scenarios that
    /// exercise the budgeted rewriting search (`None` otherwise).
    pub search: Option<SearchStats>,
}

/// Aggregate phase timing for one span name (`span.<phase>` histogram),
/// as embedded under `"telemetry"` in `BENCH_cvs.json`.
#[derive(Debug, Clone)]
pub struct PhaseTiming {
    /// Span name: `apply`, `view-sync`, `index-from-cores`,
    /// `tree-enumeration`, `ranking`.
    pub phase: String,
    /// Spans recorded.
    pub count: u64,
    /// Total nanoseconds across all spans of this phase.
    pub sum_ns: u64,
    /// Median upper bound (log-scale bucket).
    pub p50_ns: u64,
    /// 95th-percentile upper bound (log-scale bucket).
    pub p95_ns: u64,
    /// Largest single span.
    pub max_ns: u64,
}

/// Phase timings plus cache/search counters captured from one traced
/// pass over the bench workload. `None` when the `telemetry` feature is
/// off or another pipeline is already installed.
#[derive(Debug, Clone)]
pub struct TraceSummary {
    /// All registry counters (`index.cache.*`, `search.*`, `sync.*`, …),
    /// sorted by name.
    pub counters: Vec<(String, u64)>,
    /// Per-phase span timings, sorted by phase name.
    pub phases: Vec<PhaseTiming>,
}

/// Run one traced synchronization pass over the bench workload (8
/// affected views, 4 workers) and read the phase timings and
/// cache/search counters back out of the metrics registry. Installs and
/// uninstalls the process-wide pipeline, so it serializes against other
/// telemetry users and runs *outside* the timed scenarios — the timed
/// rows in [`bench_cvs`] stay on the disabled fast path.
#[cfg(feature = "telemetry")]
pub fn trace_summary() -> Option<TraceSummary> {
    let _serial = eve_telemetry::serial_guard();
    eve_telemetry::install(vec![]).ok()?;
    let w = workload();
    let change = w.delete_change();
    let mut builder = SynchronizerBuilder::new(w.mkb.clone()).with_options(CvsOptions {
        parallelism: Some(4),
        ..CvsOptions::default()
    });
    for v in views_touching(&w.mkb, &w.target, 8, 3, 11) {
        builder = builder.with_view(v).expect("synthetic view is valid");
    }
    let sync = builder.build();
    let result = sync.preview(&change);
    let snapshot = eve_telemetry::uninstall()?;
    result.expect("change applies");
    let phases = snapshot
        .histograms
        .iter()
        .filter_map(|(name, h)| {
            name.strip_prefix("span.").map(|phase| PhaseTiming {
                phase: phase.to_string(),
                count: h.count,
                sum_ns: h.sum_ns,
                p50_ns: h.p50_ns,
                p95_ns: h.p95_ns,
                max_ns: h.max_ns,
            })
        })
        .collect();
    Some(TraceSummary {
        counters: snapshot.counters,
        phases,
    })
}

/// Without the `telemetry` feature there is nothing to read out.
#[cfg(not(feature = "telemetry"))]
pub fn trace_summary() -> Option<TraceSummary> {
    None
}

fn median_ns(iters: usize, mut f: impl FnMut()) -> u128 {
    let mut samples: Vec<u128> = (0..iters.max(1))
        .map(|_| {
            let t = Instant::now();
            f();
            t.elapsed().as_nanos()
        })
        .collect();
    samples.sort_unstable();
    samples[samples.len() / 2]
}

fn workload() -> SynthWorkload {
    let cfg = SynthConfig {
        n_relations: 64,
        topology: Topology::Random { extra: 16 },
        cover_count: 3,
        view_relations: 3,
        ..SynthConfig::default()
    };
    SynthWorkload::random(&cfg, 7)
}

/// Number of capability changes in the incremental-maintenance stream
/// scenario (`change_stream/*` rows, and the `perf_check --stream` CI
/// guard).
pub const STREAM_CHANGES: usize = 64;

/// The federated stream workload shared by [`stream_ab`] and
/// [`maintain_ab`]: 256 relations in 32 autonomous clusters of 8 (no
/// cross-cluster joins — the paper's large-scale multi-IS setting),
/// a tenth of the relations carrying redundant function-of covers.
fn stream_workload() -> SynthWorkload {
    SynthWorkload::random(
        &SynthConfig {
            n_relations: 256,
            topology: Topology::Clusters { size: 8, extra: 2 },
            cover_count: 3,
            view_relations: 3,
            global_cover_prob: 0.1,
            ..SynthConfig::default()
        },
        13,
    )
}

/// Measure the [`STREAM_CHANGES`]-change capability stream end to end
/// under per-change index rebuilds vs incremental delta maintenance:
/// one synchronizer per mode over the same 128-relation MKB, the same
/// two registered views and the same change sequence. Returns the
/// `(rebuild_ns, incremental_ns)` medians over `iters` runs — the ratio
/// is the speedup of `IndexMaintenance::Incremental`, and because both
/// sides run in-process back to back it is robust to host speed.
///
/// This is the *throughput* number (changes/sec = 64e9 / median). The
/// speedup it shows is deliberately Amdahl-limited: both modes pay the
/// identical `evolve` cost per change (MKB validation + evolution is
/// index-independent), so the end-to-end ratio understates the index
/// win. [`maintain_ab`] isolates the maintenance work itself.
pub fn stream_ab(iters: usize) -> (u128, u128) {
    let sw = stream_workload();
    let stream = change_stream(&sw.mkb, STREAM_CHANGES, 13);
    let views = random_views(&sw.mkb, 2, 3, 13);
    let mut medians = [0u128; 2];
    for (slot, mode) in [
        (0, IndexMaintenance::Rebuild),
        (1, IndexMaintenance::Incremental),
    ] {
        let mut builder = SynchronizerBuilder::new(sw.mkb.clone()).with_options(CvsOptions {
            index_maintenance: mode,
            ..CvsOptions::default()
        });
        for v in &views {
            builder = builder
                .with_view(v.clone())
                .expect("synthetic view is valid");
        }
        let proto = builder.build();
        medians[slot] = median_ns(iters, || {
            // Cloning the prototype is O(views) Arc bumps — the measured
            // work is the 64 applies, not the setup.
            let mut s = proto.clone();
            for c in &stream {
                s.apply(c).expect("stream change applies");
            }
        });
    }
    (medians[0], medians[1])
}

/// Measure index maintenance alone over the same [`STREAM_CHANGES`]
/// stream: per change, a from-scratch [`MkbIndex::new`] vs the delta
/// path ([`MkbDelta::compute`] → [`IndexCore::apply_delta`] →
/// [`MkbIndex::from_cores`]). The evolved MKB chain is precomputed
/// outside the timed region, so the returned `(rebuild_ns, delta_ns)`
/// medians compare exactly the work `IndexMaintenance` switches — this
/// is the ratio the `perf_check --stream` CI guard holds at ≥ 5x.
pub fn maintain_ab(iters: usize) -> (u128, u128) {
    let sw = stream_workload();
    let stream = change_stream(&sw.mkb, STREAM_CHANGES, 13);
    let opts = CvsOptions::default();
    let mut states = Vec::with_capacity(stream.len() + 1);
    states.push(sw.mkb.clone());
    for c in &stream {
        let next = evolve(states.last().expect("nonempty"), c).expect("stream change applies");
        states.push(next);
    }
    let rebuild = median_ns(iters, || {
        for (i, _c) in stream.iter().enumerate() {
            std::hint::black_box(MkbIndex::new(&states[i], &states[i + 1], &opts));
        }
    });
    let core0 = IndexCore::build(&states[0]);
    let delta = median_ns(iters, || {
        let mut core = core0.clone();
        for (i, c) in stream.iter().enumerate() {
            let d = MkbDelta::compute(&states[i], &states[i + 1], c);
            let next = core.apply_delta(&d);
            std::hint::black_box(MkbIndex::from_cores(
                &states[i],
                &states[i + 1],
                &core,
                &next,
                &opts,
                None,
            ));
            core = next;
        }
    });
    (rebuild, delta)
}

/// Run the scenarios: the parallel fan-out at 64 affected views across
/// 1/2/4/8 worker threads, and the sequential cache ablation (8 views
/// against one shared index, memo tables on vs off).
///
/// Thread-count rows only show speedups when the host actually has
/// spare cores — on a single-CPU container the sweep degenerates to
/// measuring pool overhead (a few percent).
pub fn bench_cvs(quick: bool) -> Vec<PerfRow> {
    let iters = if quick { 5 } else { 15 };
    let w = workload();
    let change = w.delete_change();
    let mut rows = Vec::new();

    const VIEWS: usize = 64;
    let views = views_touching(&w.mkb, &w.target, VIEWS, 3, 11);
    for threads in [1usize, 2, 4, 8] {
        let mut builder = SynchronizerBuilder::new(w.mkb.clone()).with_options(CvsOptions {
            parallelism: Some(threads),
            ..CvsOptions::default()
        });
        for v in &views {
            builder = builder
                .with_view(v.clone())
                .expect("synthetic view is valid");
        }
        let sync = builder.build();
        let ns = median_ns(iters, || {
            sync.preview(&change).expect("change applies");
        });
        rows.push(PerfRow {
            scenario: format!("parallel_sync/t{threads}"),
            views: VIEWS,
            threads,
            median_ns: ns,
            search: None,
        });
    }

    let mkb2 = evolve(&w.mkb, &change).expect("target described");
    let opts = CvsOptions::default();
    for (label, cached) in [("cache_off", false), ("cache_on", true)] {
        let ns = median_ns(iters, || {
            let index = MkbIndex::new(&w.mkb, &mkb2, &opts);
            let index = if cached { index } else { index.without_cache() };
            for _ in 0..8 {
                cvs_delete_relation_indexed(&w.view, &w.target, &index, &opts)
                    .expect("workload is synchronizable");
            }
        });
        rows.push(PerfRow {
            scenario: format!("sequential_8_views/{label}"),
            views: 8,
            threads: 1,
            median_ns: ns,
            search: None,
        });
    }

    // Budgeted-search ablation on the wide-MKB/high-fanout workload: many
    // deep cover combinations, of which the shallow one is structurally
    // dominant. Exhaustive search enumerates every combination's trees;
    // `top_k = 1` lets the admissible bound cut the deep combinations
    // before their trees are ever enumerated.
    let wide = SynthWorkload::wide_mkb(4, 3);
    let wide_change = wide.delete_change();
    let wide_mkb2 = evolve(&wide.mkb, &wide_change).expect("target described");
    for (label, budget) in [
        ("exhaustive", SearchBudget::unlimited()),
        ("budgeted_top1", SearchBudget::top_k(1)),
    ] {
        let wopts = CvsOptions {
            budget,
            ..CvsOptions::default()
        };
        let run = || {
            let index = MkbIndex::new(&wide.mkb, &wide_mkb2, &wopts);
            cvs_delete_relation_searched(&wide.view, &wide.target, &index, &wopts, false, None)
                .expect("wide workload is synchronizable")
        };
        let stats = run().stats;
        let ns = median_ns(iters, || {
            run();
        });
        rows.push(PerfRow {
            scenario: format!("wide_mkb/{label}"),
            views: 1,
            threads: 1,
            median_ns: ns,
            search: Some(stats),
        });
    }

    // Incremental index maintenance vs per-change rebuild on the same
    // 64-change capability stream (the tentpole A/B; `median_ns` is for
    // the whole stream, so changes/sec = 64e9 / median_ns).
    let (rebuild_ns, incremental_ns) = stream_ab(iters);
    for (label, ns) in [("rebuild", rebuild_ns), ("incremental", incremental_ns)] {
        rows.push(PerfRow {
            scenario: format!("change_stream/{label}"),
            views: 2,
            threads: 1,
            median_ns: ns,
            search: None,
        });
    }
    rows
}

/// Render the rows as a table, with the t1→tN speedups called out.
pub fn render(rows: &[PerfRow]) -> String {
    let mut t = Table::new(&["scenario", "views", "threads", "median ns", "vs baseline"]);
    let base_parallel = rows
        .iter()
        .find(|r| r.scenario == "parallel_sync/t1")
        .map(|r| r.median_ns);
    let base_cache = rows
        .iter()
        .find(|r| r.scenario == "sequential_8_views/cache_off")
        .map(|r| r.median_ns);
    let base_wide = rows
        .iter()
        .find(|r| r.scenario == "wide_mkb/exhaustive")
        .map(|r| r.median_ns);
    let base_stream = rows
        .iter()
        .find(|r| r.scenario == "change_stream/rebuild")
        .map(|r| r.median_ns);
    for r in rows {
        let base = if r.scenario.starts_with("parallel_sync") {
            base_parallel
        } else if r.scenario.starts_with("wide_mkb") {
            base_wide
        } else if r.scenario.starts_with("change_stream") {
            base_stream
        } else {
            base_cache
        };
        let speedup = match base {
            Some(b) if r.median_ns > 0 => format!("{:.2}x", b as f64 / r.median_ns as f64),
            _ => "-".to_string(),
        };
        t.push(&[
            r.scenario.clone(),
            r.views.to_string(),
            r.threads.to_string(),
            r.median_ns.to_string(),
            speedup,
        ]);
    }
    format!(
        "bench-cvs — parallel per-view synchronization & enumeration cache\n\n{}",
        t.render()
    )
}

/// Hand-rolled JSON (the environment has no serde): one object per row,
/// plus an optional `"telemetry"` section embedding the traced pass's
/// phase timings and cache/search counters. Scenario labels and metric
/// names contain no characters needing escapes.
pub fn to_json(rows: &[PerfRow], trace: Option<&TraceSummary>) -> String {
    let mut out = String::from("{\n  \"bench\": \"cvs\",\n  \"rows\": [\n");
    for (i, r) in rows.iter().enumerate() {
        let search = match &r.search {
            Some(s) => format!(
                ", \"search\": {{\"generated\": {}, \"pruned\": {}, \"kept\": {}, \"trees_enumerated\": {}, \"budget_exhausted\": {}}}",
                s.generated, s.pruned, s.kept, s.trees_enumerated, s.budget_exhausted
            ),
            None => String::new(),
        };
        out.push_str(&format!(
            "    {{\"scenario\": \"{}\", \"views\": {}, \"threads\": {}, \"median_ns\": {}{}}}{}\n",
            r.scenario,
            r.views,
            r.threads,
            r.median_ns,
            search,
            if i + 1 < rows.len() { "," } else { "" }
        ));
    }
    match trace {
        None => out.push_str("  ]\n}\n"),
        Some(t) => {
            out.push_str("  ],\n  \"telemetry\": {\n    \"counters\": {");
            for (i, (name, value)) in t.counters.iter().enumerate() {
                let sep = if i + 1 < t.counters.len() { ", " } else { "" };
                out.push_str(&format!("\"{name}\": {value}{sep}"));
            }
            out.push_str("},\n    \"phases\": {\n");
            for (i, p) in t.phases.iter().enumerate() {
                out.push_str(&format!(
                    "      \"{}\": {{\"count\": {}, \"sum_ns\": {}, \"p50_ns\": {}, \"p95_ns\": {}, \"max_ns\": {}}}{}\n",
                    p.phase,
                    p.count,
                    p.sum_ns,
                    p.p50_ns,
                    p.p95_ns,
                    p.max_ns,
                    if i + 1 < t.phases.len() { "," } else { "" }
                ));
            }
            out.push_str("    }\n  }\n}\n");
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_shape_is_well_formed() {
        let rows = vec![
            PerfRow {
                scenario: "parallel_sync/t1".into(),
                views: 64,
                threads: 1,
                median_ns: 1000,
                search: None,
            },
            PerfRow {
                scenario: "parallel_sync/t4".into(),
                views: 64,
                threads: 4,
                median_ns: 400,
                search: None,
            },
        ];
        let j = to_json(&rows, None);
        assert!(j.starts_with('{') && j.trim_end().ends_with('}'));
        assert_eq!(j.matches("\"scenario\"").count(), 2);
        assert_eq!(j.matches(',').count(), 8, "{j}");
        let rendered = render(&rows);
        assert!(rendered.contains("2.50x"), "{rendered}");
    }

    #[test]
    fn json_embeds_trace_summary_when_present() {
        let rows = vec![PerfRow {
            scenario: "parallel_sync/t1".into(),
            views: 64,
            threads: 1,
            median_ns: 1000,
            search: None,
        }];
        let trace = TraceSummary {
            counters: vec![
                ("index.cache.hits".into(), 9),
                ("search.trees_enumerated".into(), 4),
            ],
            phases: vec![PhaseTiming {
                phase: "apply".into(),
                count: 1,
                sum_ns: 1_000_000,
                p50_ns: 1_048_576,
                p95_ns: 1_048_576,
                max_ns: 1_000_000,
            }],
        };
        let j = to_json(&rows, Some(&trace));
        assert!(
            j.contains("\"counters\": {\"index.cache.hits\": 9, \"search.trees_enumerated\": 4}"),
            "{j}"
        );
        assert!(
            j.contains(
                "\"apply\": {\"count\": 1, \"sum_ns\": 1000000, \
                 \"p50_ns\": 1048576, \"p95_ns\": 1048576, \"max_ns\": 1000000}"
            ),
            "{j}"
        );
        assert!(j.trim_end().ends_with('}'), "{j}");
    }

    /// With the feature on, the traced pass must surface every phase of
    /// the pipeline and nonzero cache/search counters.
    #[cfg(feature = "telemetry")]
    #[test]
    fn trace_summary_covers_all_phases() {
        let t = trace_summary().expect("telemetry pipeline available");
        let phases: Vec<&str> = t.phases.iter().map(|p| p.phase.as_str()).collect();
        for phase in ["apply", "view-sync", "index-from-cores", "ranking"] {
            assert!(phases.contains(&phase), "missing {phase}: {phases:?}");
        }
        assert!(t.phases.iter().all(|p| p.count > 0 && p.sum_ns > 0));
        let counter = |n: &str| {
            t.counters
                .iter()
                .find(|(name, _)| name == n)
                .map(|&(_, v)| v)
        };
        assert_eq!(counter("index.delta_builds"), Some(1));
        assert_eq!(counter("index.delta_applies"), Some(1));
        assert_eq!(counter("sync.changes"), Some(1));
        assert!(counter("search.candidates_generated").unwrap_or(0) > 0);
        assert!(
            counter("index.cache.hits").unwrap_or(0) + counter("index.cache.misses").unwrap_or(0)
                > 0
        );
    }

    #[test]
    fn json_embeds_search_stats_when_present() {
        let rows = vec![PerfRow {
            scenario: "wide_mkb/budgeted_top1".into(),
            views: 1,
            threads: 1,
            median_ns: 500,
            search: Some(SearchStats {
                generated: 3,
                pruned: 4,
                kept: 1,
                trees_enumerated: 2,
                disconnected_combos: 0,
                budget_exhausted: false,
            }),
        }];
        let j = to_json(&rows, None);
        assert!(
            j.contains(
                "\"search\": {\"generated\": 3, \"pruned\": 4, \"kept\": 1, \
                 \"trees_enumerated\": 2, \"budget_exhausted\": false}"
            ),
            "{j}"
        );
    }

    #[test]
    fn quick_bench_produces_all_scenarios() {
        let rows = bench_cvs(true);
        assert_eq!(rows.len(), 10);
        assert!(rows.iter().all(|r| r.median_ns > 0));
        let wide: Vec<_> = rows
            .iter()
            .filter(|r| r.scenario.starts_with("wide_mkb/"))
            .collect();
        assert_eq!(wide.len(), 2);
        assert!(wide.iter().all(|r| r.search.is_some()));
        let stream: Vec<_> = rows
            .iter()
            .filter(|r| r.scenario.starts_with("change_stream/"))
            .collect();
        assert_eq!(stream.len(), 2);
    }

    /// The tentpole acceptance criterion: on a 64-change stream, delta
    /// apply (compute → `apply_delta` → `from_cores`) beats per-change
    /// from-scratch index rebuilds by at least 5x. Ratio of two
    /// in-process medians, so host speed cancels.
    #[test]
    fn incremental_maintenance_beats_rebuild_at_least_5x() {
        let (rebuild, delta) = maintain_ab(3);
        let ratio = rebuild as f64 / delta as f64;
        assert!(
            ratio >= 5.0,
            "delta apply {delta}ns vs rebuild {rebuild}ns: only {ratio:.2}x"
        );
    }

    /// End to end — `evolve` and view sync included, identical in both
    /// modes — the incremental synchronizer must still win clearly
    /// (Amdahl caps this well below the index-only ratio).
    #[test]
    fn incremental_stream_is_faster_end_to_end() {
        let (rebuild, incremental) = stream_ab(3);
        let ratio = rebuild as f64 / incremental as f64;
        assert!(
            ratio >= 2.0,
            "incremental {incremental}ns vs rebuild {rebuild}ns: only {ratio:.2}x end to end"
        );
    }

    /// The acceptance criterion for the budgeted search on the wide-MKB
    /// workload: `top_k = 1` visits at least 5x fewer candidates than the
    /// exhaustive run while still returning the same best rewriting.
    #[test]
    fn budgeted_search_prunes_wide_mkb_at_least_5x() {
        let wide = SynthWorkload::wide_mkb(4, 3);
        let mkb2 = evolve(&wide.mkb, &wide.delete_change()).expect("target described");
        let run = |budget: SearchBudget| {
            let opts = CvsOptions {
                budget,
                ..CvsOptions::default()
            };
            let index = MkbIndex::new(&wide.mkb, &mkb2, &opts);
            cvs_delete_relation_searched(&wide.view, &wide.target, &index, &opts, false, None)
                .expect("wide workload is synchronizable")
        };
        let exhaustive = run(SearchBudget::unlimited());
        let budgeted = run(SearchBudget::top_k(1));
        assert!(!exhaustive.stats.budget_exhausted);
        assert_eq!(budgeted.rewritings.len(), 1);
        assert_eq!(budgeted.rewritings[0], exhaustive.rewritings[0]);
        assert!(
            budgeted.stats.generated * 5 <= exhaustive.stats.generated,
            "budgeted generated {} vs exhaustive {}",
            budgeted.stats.generated,
            exhaustive.stats.generated
        );
        assert!(budgeted.stats.pruned > 0);
    }
}
