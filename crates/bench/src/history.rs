//! The perf-regression sentinel's ledger: an append-only
//! `BENCH_history.jsonl` of timestamped medians, one JSON object per
//! line, plus the rolling-median check `perf_check --history` runs over
//! it.
//!
//! Timestamps and git revisions are **passed in** (CLI flags or the
//! `EVE_BENCH_TS` / `EVE_BENCH_REV` environment variables), never
//! computed in-process — the ledger stays reproducible and the binaries
//! stay hermetic. Parsing is the same hand-rolled substring scan used
//! everywhere else in this workspace (no serde): scenario labels are
//! unique and none of the recorded fields need JSON escapes.

use std::fmt::Write as _;
use std::io::Write as _;
use std::path::Path;

/// How many most-recent prior rows per scenario feed the rolling
/// median.
pub const ROLLING_WINDOW: usize = 20;

/// Default regression threshold: flag when the current median exceeds
/// the rolling median of prior rows by more than 20%.
pub const DEFAULT_THRESHOLD: f64 = 1.20;

/// One appended measurement.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HistoryRow {
    /// Timestamp supplied by the caller (opaque; RFC 3339 in CI).
    pub ts: String,
    /// Git revision supplied by the caller (opaque; short hash in CI).
    pub rev: String,
    /// Scenario label, matching [`crate::perf::PerfRow::scenario`].
    pub scenario: String,
    /// Median wall-clock nanoseconds for the scenario.
    pub median_ns: u128,
}

/// The sentinel's judgement for one scenario.
#[derive(Debug, Clone, PartialEq)]
pub struct Verdict {
    /// Scenario label.
    pub scenario: String,
    /// The median measured now.
    pub current_ns: u128,
    /// Rolling median of the prior rows (`None` when the ledger holds
    /// no earlier row for this scenario — nothing to compare against).
    pub baseline_ns: Option<u128>,
    /// `current / baseline`; `None` without a baseline.
    pub ratio: Option<f64>,
    /// `true` when `ratio` exceeds the threshold.
    pub regressed: bool,
}

/// Render one row as a single JSONL line (no trailing newline).
pub fn render_row(row: &HistoryRow) -> String {
    format!(
        "{{\"ts\": \"{}\", \"rev\": \"{}\", \"scenario\": \"{}\", \"median_ns\": {}}}",
        row.ts, row.rev, row.scenario, row.median_ns
    )
}

fn field<'a>(line: &'a str, key: &str) -> Option<&'a str> {
    let tag = format!("\"{key}\": ");
    let at = line.find(&tag)? + tag.len();
    let rest = &line[at..];
    if let Some(stripped) = rest.strip_prefix('"') {
        stripped.split('"').next()
    } else {
        Some(
            rest.split(|c: char| !c.is_ascii_digit())
                .next()
                .unwrap_or(rest),
        )
    }
}

/// Parse a ledger. Malformed or blank lines are skipped rather than
/// fatal — a corrupt row must not take the sentinel down with it.
pub fn parse_rows(text: &str) -> Vec<HistoryRow> {
    text.lines()
        .filter_map(|line| {
            Some(HistoryRow {
                ts: field(line, "ts")?.to_string(),
                rev: field(line, "rev")?.to_string(),
                scenario: field(line, "scenario")?.to_string(),
                median_ns: field(line, "median_ns")?.parse().ok()?,
            })
        })
        .collect()
}

/// Rolling median of the last [`ROLLING_WINDOW`] prior rows for
/// `scenario`, in ledger order. `None` when the scenario has no prior
/// rows.
pub fn rolling_median(prior: &[HistoryRow], scenario: &str) -> Option<u128> {
    let mut recent: Vec<u128> = prior
        .iter()
        .filter(|r| r.scenario == scenario)
        .map(|r| r.median_ns)
        .collect();
    if recent.is_empty() {
        return None;
    }
    let start = recent.len().saturating_sub(ROLLING_WINDOW);
    recent = recent.split_off(start);
    recent.sort_unstable();
    Some(recent[recent.len() / 2])
}

/// Judge `current_ns` for `scenario` against the ledger's rolling
/// median at `threshold` (e.g. `1.20` = flag a > 20% slowdown). A
/// scenario with no history never regresses — the first row seeds the
/// baseline.
pub fn check(prior: &[HistoryRow], scenario: &str, current_ns: u128, threshold: f64) -> Verdict {
    let baseline_ns = rolling_median(prior, scenario);
    let ratio = baseline_ns
        .filter(|&b| b > 0)
        .map(|b| current_ns as f64 / b as f64);
    Verdict {
        scenario: scenario.to_string(),
        current_ns,
        baseline_ns,
        ratio,
        regressed: ratio.is_some_and(|r| r > threshold),
    }
}

/// Render a verdict as the one-line report `perf_check --history`
/// prints per scenario.
pub fn render_verdict(v: &Verdict) -> String {
    let mut out = format!("scenario={} current_ns={}", v.scenario, v.current_ns);
    match (v.baseline_ns, v.ratio) {
        (Some(b), Some(r)) => {
            let _ = write!(out, " baseline_ns={b} ratio={r:.3}");
            if v.regressed {
                out.push_str(" REGRESSED");
            }
        }
        _ => out.push_str(" baseline_ns=- ratio=- (no history)"),
    }
    out
}

/// Append rows to the ledger at `path`, creating it (and its parent
/// directory) if missing.
pub fn append_rows(path: &Path, rows: &[HistoryRow]) -> std::io::Result<()> {
    if let Some(parent) = path.parent() {
        if !parent.as_os_str().is_empty() {
            std::fs::create_dir_all(parent)?;
        }
    }
    let mut out = std::fs::OpenOptions::new()
        .create(true)
        .append(true)
        .open(path)?;
    for row in rows {
        writeln!(out, "{}", render_row(row))?;
    }
    out.flush()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn row(ts: &str, scenario: &str, ns: u128) -> HistoryRow {
        HistoryRow {
            ts: ts.to_string(),
            rev: "abc1234".to_string(),
            scenario: scenario.to_string(),
            median_ns: ns,
        }
    }

    #[test]
    fn rows_roundtrip_through_jsonl() {
        let rows = vec![
            row("2026-08-01T00:00:00Z", "wide_mkb/exhaustive", 1_000_000),
            row("2026-08-02T00:00:00Z", "parallel_sync/t4", 420),
        ];
        let text = rows.iter().map(render_row).collect::<Vec<_>>().join("\n");
        assert_eq!(parse_rows(&text), rows);
    }

    #[test]
    fn malformed_lines_are_skipped() {
        let text = format!(
            "not json\n{}\n{{\"ts\": \"t\"}}\n",
            render_row(&row("t1", "s", 7))
        );
        let parsed = parse_rows(&text);
        assert_eq!(parsed.len(), 1);
        assert_eq!(parsed[0].median_ns, 7);
    }

    /// The acceptance criterion: a synthetic 25% slowdown against a
    /// flat history is flagged at the default 20% threshold; a 10%
    /// wobble is not.
    #[test]
    fn flags_25_percent_slowdown_but_not_10() {
        let prior: Vec<HistoryRow> = (0..5)
            .map(|i| row(&format!("t{i}"), "wide_mkb/exhaustive", 1_000_000))
            .collect();
        let slow = check(&prior, "wide_mkb/exhaustive", 1_250_000, DEFAULT_THRESHOLD);
        assert!(slow.regressed, "{slow:?}");
        assert_eq!(slow.baseline_ns, Some(1_000_000));
        let ok = check(&prior, "wide_mkb/exhaustive", 1_100_000, DEFAULT_THRESHOLD);
        assert!(!ok.regressed, "{ok:?}");
    }

    #[test]
    fn empty_history_never_regresses() {
        let v = check(&[], "wide_mkb/exhaustive", u128::MAX, DEFAULT_THRESHOLD);
        assert!(!v.regressed);
        assert!(v.baseline_ns.is_none());
        assert!(render_verdict(&v).contains("no history"));
    }

    /// The rolling window forgets old rows: after 20 fast rows, ancient
    /// slow ones no longer mask a fresh regression.
    #[test]
    fn rolling_window_uses_only_recent_rows() {
        let mut prior: Vec<HistoryRow> = (0..5)
            .map(|i| row(&format!("old{i}"), "s", 10_000_000))
            .collect();
        prior.extend((0..ROLLING_WINDOW).map(|i| row(&format!("new{i}"), "s", 1_000_000)));
        assert_eq!(rolling_median(&prior, "s"), Some(1_000_000));
        assert!(check(&prior, "s", 1_300_000, DEFAULT_THRESHOLD).regressed);
    }

    #[test]
    fn scenarios_are_independent() {
        let prior = vec![row("t0", "a", 100), row("t1", "b", 9_999_999)];
        let v = check(&prior, "a", 105, DEFAULT_THRESHOLD);
        assert_eq!(v.baseline_ns, Some(100));
        assert!(!v.regressed);
    }

    #[test]
    fn append_creates_and_extends_the_ledger() {
        let dir = std::env::temp_dir().join(format!("eve-history-{}", std::process::id()));
        let path = dir.join("BENCH_history.jsonl");
        let _ = std::fs::remove_file(&path);
        append_rows(&path, &[row("t0", "s", 1)]).expect("first append");
        append_rows(&path, &[row("t1", "s", 2)]).expect("second append");
        let rows = parse_rows(&std::fs::read_to_string(&path).expect("ledger readable"));
        assert_eq!(rows.len(), 2);
        assert_eq!(rows[1].median_ns, 2);
        let _ = std::fs::remove_dir_all(&dir);
    }
}
