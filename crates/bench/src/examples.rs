//! Reproductions of the paper's worked examples (Examples 3–10,
//! Eqs. (1)–(13)).

use crate::support::{cvs_dr, r_mapping, sync_da};
use crate::table::Table;
use eve_core::{empirical_extent, CvsOptions};
use eve_esql::parse_view;
use eve_misd::{evolve, CapabilityChange};
use eve_relational::{AttrRef, FuncRegistry, RelName};
use eve_workload::TravelFixture;

/// Example 3 / Eq. (1): the `Asia-Customer` E-SQL view — parse, validate
/// and print the canonical round-tripped form.
pub fn ex3() -> String {
    let view = TravelFixture::asia_customer_eq1();
    let printed = view.to_string();
    let reparsed = parse_view(&printed).expect("canonical form reparses");
    assert_eq!(reparsed.name, view.name);
    format!(
        "Example 3 (Eq. 1) — E-SQL view with evolution preferences\n\n{printed}\n\n\
         round-trip: parse(print(V)) == V ✓\n\
         VE = {}  |  SELECT items: {}  |  conditions: {}\n",
        view.extent,
        view.select.len(),
        view.conditions.len()
    )
}

/// Example 4 / Eqs. (3)–(4): `delete-attribute Customer.Addr` rerouted
/// through `Person`, with the VE = ⊇ certificate from the PC constraint,
/// validated both symbolically and empirically.
pub fn ex4() -> String {
    let fixture = TravelFixture::with_person();
    let mkb = fixture.mkb();
    let attr = AttrRef::new("Customer", "Addr");
    let change = CapabilityChange::DeleteAttribute(attr.clone());
    let mkb_prime = evolve(mkb, &change).expect("Customer.Addr exists");
    let view = TravelFixture::asia_customer_eq3();

    let rewritings = sync_da(&view, &attr, mkb, &mkb_prime, &CvsOptions::default())
        .expect("Example 4 is curable");
    let best = &rewritings[0];

    // Empirical validation on a generated IS state.
    let db = fixture.database(11, 60);
    let funcs = FuncRegistry::new();
    let observed = empirical_extent(&best.view, &view, &db, &funcs).expect("views evaluate");

    format!(
        "Example 4 (Eqs. 3–4) — delete-attribute Customer.Addr\n\n\
         original:\n{view}\n\n\
         evolved (Eq. 4):\n{evolved}\n\n\
         symbolic verdict: V' {verdict} V   (P3 for VE = ⊇: {sat})\n\
         empirical (seed 11, 60 customers): V' {observed} V\n",
        evolved = best.view,
        verdict = best.verdict,
        sat = if best.satisfies_p3 {
            "satisfied"
        } else {
            "unverified"
        },
        observed = observed.symbol(),
    )
}

/// Examples 5–10 / Eqs. (5)–(13): the full CVS run for
/// `delete-relation Customer` on `Customer-Passengers-Asia`.
pub fn ex5_10() -> String {
    let fixture = TravelFixture::new();
    let mkb = fixture.mkb();
    let customer = RelName::new("Customer");
    let change = CapabilityChange::DeleteRelation(customer.clone());
    let mkb_prime = evolve(mkb, &change).expect("Customer is described");
    let view = TravelFixture::customer_passengers_asia_eq5();

    let mut out = format!(
        "Examples 5–10 (Eqs. 5–13) — delete-relation Customer\n\n\
         original view (Eq. 5):\n{view}\n\n"
    );

    // Ex. 8: the R-mapping.
    let rm = r_mapping(&view, &customer, mkb, &CvsOptions::default());
    out.push_str(&format!(
        "R-mapping (Def. 2 / Ex. 8):\n  Max(V_R) relations: {}\n  Min(H_R) joins: {}\n  \
         C_Max/Min: {}\n  Rest: {}\n\n",
        names(&rm.max_relations),
        rm.min_joins
            .iter()
            .map(|j| j.id.as_str())
            .collect::<Vec<_>>()
            .join(", "),
        rm.c_max_min
            .iter()
            .map(|c| format!("({})", c.clause))
            .collect::<Vec<_>>()
            .join(" AND "),
        names(&rm.rest_relations),
    ));

    // Ex. 9: covers of Customer.Name.
    let name_attr = AttrRef::new("Customer", "Name");
    let mut t = Table::new(&["cover relation", "function-of", "usable in H'(MKB')"]);
    for f in mkb.covers_of(&name_attr) {
        let source = f.source_relation().expect("single-source funcof");
        // Usable iff connected with FlightRes (= Min(H'_Customer)) in H'.
        let h_prime = eve_hypergraph::Hypergraph::build(&mkb_prime);
        let usable = h_prime.is_connected_set(
            &[source.clone(), RelName::new("FlightRes")]
                .into_iter()
                .collect(),
        );
        t.push(&[
            source.to_string(),
            f.id.clone(),
            if usable { "yes" } else { "no (disconnected)" }.to_string(),
        ]);
    }
    out.push_str(&format!("Cover(Customer.Name) (Ex. 9):\n{}\n", t.render()));

    // Ex. 10 / Eq. 13: the legal rewritings.
    let rewritings = cvs_dr(&view, &customer, mkb, &mkb_prime, &CvsOptions::default())
        .expect("Examples 5-10 are curable");
    out.push_str(&format!("legal rewritings found: {}\n\n", rewritings.len()));
    for (i, r) in rewritings.iter().enumerate() {
        let covers: Vec<String> = r
            .replacement
            .covers
            .iter()
            .map(|(a, c)| format!("{a} -> {} (via {})", c.replacement, c.funcof_id))
            .collect();
        out.push_str(&format!(
            "--- rewriting {} (V' {} V{}) ---\ncovers: {}\n{}\n\n",
            i + 1,
            r.verdict,
            if r.satisfies_p3 { ", P3 ✓" } else { "" },
            if covers.is_empty() {
                "(none — dispensable components dropped)".to_string()
            } else {
                covers.join("; ")
            },
            r.view,
        ));
    }
    out
}

fn names(set: &std::collections::BTreeSet<RelName>) -> String {
    set.iter()
        .map(RelName::as_str)
        .collect::<Vec<_>>()
        .join(", ")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ex3_roundtrips() {
        let s = ex3();
        assert!(s.contains("Asia-Customer"));
        assert!(s.contains("VE = ⊇") || s.contains('⊇'));
    }

    #[test]
    fn ex4_reproduces_eq4() {
        let s = ex4();
        assert!(s.contains("Person.PAddr"), "{s}");
        assert!(s.contains("P3 for VE = ⊇: satisfied"), "{s}");
        // Empirically a (possibly proper) superset.
        assert!(s.contains("empirical"), "{s}");
        assert!(
            s.contains("V' ⊃ V") || s.contains("V' ≡ V"),
            "empirical extent not superset-or-equal:\n{s}"
        );
    }

    #[test]
    fn ex5_10_reproduces_eq13() {
        let s = ex5_10();
        // Ex. 8 shape.
        assert!(s.contains("Max(V_R) relations: Customer, FlightRes"), "{s}");
        assert!(s.contains("Min(H_R) joins: JC1"), "{s}");
        assert!(s.contains("FlightRes.Dest = 'Asia'"), "{s}");
        // Ex. 9: three covers; Participant disconnected.
        assert!(
            s.contains("Participant") && s.contains("no (disconnected)"),
            "{s}"
        );
        // Eq. 13: the Accident-Ins rewriting with the Age replacement.
        assert!(s.contains("Accident-Ins.Birthday"), "{s}");
        assert!(s.contains("F2"), "{s}");
    }
}
