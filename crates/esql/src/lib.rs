//! # eve-esql
//!
//! The **E-SQL** language of the EVE framework (§3 of the CVS paper):
//! SELECT-FROM-WHERE SQL extended with *view evolution preferences*.
//!
//! Every component of a view definition carries two evolution parameters
//! (Fig. 3 of the paper):
//!
//! * **dispensable** (`AD`/`CD`/`RD`): may the component be *dropped* from
//!   an evolved view definition?
//! * **replaceable** (`AR`/`CR`/`RR`): may the component be *replaced*
//!   during view evolution?
//!
//! and the view as a whole carries a **view-extent parameter**
//! `VE ∈ {≡, ⊇, ⊆, ≈}` constraining how the evolved extent may relate to
//! the original one.
//!
//! This crate provides a hand-written lexer and recursive-descent parser
//! for E-SQL (the annotation syntax is not standard SQL, so no existing
//! SQL parser applies), the AST, a canonical pretty-printer whose output
//! re-parses to the same AST, and a validator enforcing the paper's §4
//! well-formedness assumptions.
//!
//! ## Syntax accepted
//!
//! ```text
//! CREATE VIEW Asia-Customer (AName, AAddr, APh) (VE = superset) AS
//! SELECT C.Name (AD = false, AR = true), C.Addr, C.Phone (true, false)
//! FROM   Customer C (RR = true), FlightRes F
//! WHERE  (C.Name = F.PName) (false, true) AND (F.Dest = 'Asia') (CD = true)
//! ```
//!
//! Annotations may be keyed (`AD = true`) or positional
//! (`(dispensable, replaceable)`), exactly as the paper alternates between
//! the two forms (Eq. (1) vs Eq. (5)). Identifiers may contain internal
//! hyphens (`Accident-Ins`, `Asia-Customer`); consequently binary minus in
//! arithmetic must be surrounded by whitespace.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod ast;
pub mod display;
pub mod error;
pub mod lexer;
pub mod parser;
pub mod validate;

pub use ast::{CondItem, EvolutionParams, FromItem, SelectItem, ViewDefinition, ViewExtent};
pub use error::ParseError;
pub use parser::{parse_view, parse_views};
pub use validate::{validate_view, ValidationError};
