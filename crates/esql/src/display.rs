//! Canonical pretty-printer for E-SQL.
//!
//! The printer emits a canonical textual form that the parser accepts and
//! that round-trips to the same AST (`parse(print(v)) == v`, up to the
//! surface aliases which the printer does not reproduce — printed views
//! always use full relation names, as the resolved AST does). Evolution
//! parameters are always printed in the keyed form for readability, and
//! only when they differ from the Fig. 3 defaults.

use crate::ast::{EvolutionParams, ViewDefinition, ViewExtent};
use std::fmt;

fn params_str(prefix: char, p: EvolutionParams) -> Option<String> {
    if p == EvolutionParams::DEFAULT {
        return None;
    }
    Some(format!(
        "({pD} = {d}, {pR} = {r})",
        pD = format_args!("{prefix}D"),
        pR = format_args!("{prefix}R"),
        d = p.dispensable,
        r = p.replaceable
    ))
}

impl fmt::Display for ViewDefinition {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "CREATE VIEW {}", self.name)?;
        if let Some(iface) = &self.interface {
            write!(f, " (")?;
            for (i, n) in iface.iter().enumerate() {
                if i > 0 {
                    write!(f, ", ")?;
                }
                write!(f, "{n}")?;
            }
            write!(f, ")")?;
        }
        if self.extent != ViewExtent::Equivalent {
            write!(f, " (VE = {})", self.extent.keyword())?;
        }
        writeln!(f, " AS")?;

        write!(f, "SELECT ")?;
        for (i, s) in self.select.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{}", s.expr)?;
            if let Some(a) = &s.alias {
                write!(f, " AS {a}")?;
            }
            if let Some(p) = params_str('A', s.params) {
                write!(f, " {p}")?;
            }
        }
        writeln!(f)?;

        write!(f, "FROM ")?;
        for (i, r) in self.from.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{}", r.relation)?;
            if let Some(p) = params_str('R', r.params) {
                write!(f, " {p}")?;
            }
        }

        if !self.conditions.is_empty() {
            writeln!(f)?;
            write!(f, "WHERE ")?;
            for (i, c) in self.conditions.iter().enumerate() {
                if i > 0 {
                    write!(f, " AND ")?;
                }
                write!(f, "({})", c.clause)?;
                if let Some(p) = params_str('C', c.params) {
                    write!(f, " {p}")?;
                }
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use crate::parser::parse_view;

    /// Round-trip: parse → print → parse must be the identity, modulo
    /// the dropped surface aliases.
    fn roundtrip(src: &str) {
        let v1 = parse_view(src).unwrap();
        let printed = v1.to_string();
        let v2 = parse_view(&printed)
            .unwrap_or_else(|e| panic!("printed form failed to parse: {e}\n{printed}"));
        // Aliases are not reproduced; clear them before comparing.
        let mut v1 = v1;
        for f in &mut v1.from {
            f.alias = None;
        }
        assert_eq!(v1, v2, "\nprinted:\n{printed}");
    }

    #[test]
    fn roundtrip_eq1() {
        roundtrip(
            "CREATE VIEW Asia-Customer (VE = superset) AS
             SELECT C.Name (AR = true), C.Addr, C.Phone (AD = true, AR = false)
             FROM Customer C (RR = true), FlightRes F
             WHERE (C.Name = F.PName) AND (F.Dest = 'Asia') (CD = true)",
        );
    }

    #[test]
    fn roundtrip_eq5() {
        roundtrip(
            "CREATE VIEW Customer-Passengers-Asia AS
             SELECT C.Name (false, true), C.Age (true, true),
                    P.Participant (true, true), P.TourID (true, true)
             FROM Customer C (true, true), FlightRes F (true, true), Participant P (true, true)
             WHERE (C.Name = F.PName) (false, true) AND (F.Dest = 'Asia')
               AND (P.StartDate = F.Date) AND (P.Loc = 'Asia')",
        );
    }

    #[test]
    fn roundtrip_interface_and_functions() {
        roundtrip(
            "CREATE VIEW V (N, A) (VE = subset) AS
             SELECT A.Holder, (today() - A.Birthday) / 365 AS Age (AD = true)
             FROM Accident-Ins A
             WHERE (A.Amount >= 1000) AND (A.Type <> 'life')",
        );
    }

    #[test]
    fn roundtrip_no_where() {
        roundtrip("CREATE VIEW V AS SELECT R.a FROM R");
    }

    #[test]
    fn default_params_not_printed() {
        let v = parse_view("CREATE VIEW V AS SELECT R.a FROM R").unwrap();
        let s = v.to_string();
        assert!(!s.contains("AD ="), "{s}");
        assert!(!s.contains("RD ="), "{s}");
    }
}
