//! Canonical pretty-printer for E-SQL.
//!
//! The printer emits a canonical textual form that the parser accepts and
//! that round-trips to the same AST (`parse(print(v)) == v`, up to the
//! surface aliases which the printer does not reproduce — printed views
//! always use full relation names, as the resolved AST does). Evolution
//! parameters are always printed in the keyed form for readability, and
//! only when they differ from the Fig. 3 defaults.

use crate::ast::{EvolutionParams, ViewDefinition, ViewExtent};
use std::fmt;

/// Write `" (xD = .., xR = ..)"` for non-default parameters — straight
/// into the formatter, no intermediate allocation (this printer is on
/// the candidate-ranking hot path, where every kept rewriting is
/// rendered once).
fn write_params(f: &mut fmt::Formatter<'_>, prefix: char, p: EvolutionParams) -> fmt::Result {
    if p == EvolutionParams::DEFAULT {
        return Ok(());
    }
    write!(
        f,
        " ({prefix}D = {}, {prefix}R = {})",
        p.dispensable, p.replaceable
    )
}

impl ViewDefinition {
    /// Render the canonical textual form into an owned, pre-sized
    /// buffer. Byte-identical to `self.to_string()`, but pushes straight
    /// into the buffer instead of going through the `fmt` machinery —
    /// the rewriting search renders every kept candidate for its ranking
    /// tie-break, making this the hottest printer in the engine.
    pub fn rendered(&self) -> String {
        let mut out = String::with_capacity(256);
        out.push_str("CREATE VIEW ");
        out.push_str(self.name.as_str());
        if let Some(iface) = &self.interface {
            out.push_str(" (");
            for (i, n) in iface.iter().enumerate() {
                if i > 0 {
                    out.push_str(", ");
                }
                out.push_str(n.as_str());
            }
            out.push(')');
        }
        if self.extent != ViewExtent::Equivalent {
            out.push_str(" (VE = ");
            out.push_str(self.extent.keyword());
            out.push(')');
        }
        out.push_str(" AS\n");

        out.push_str("SELECT ");
        for (i, s) in self.select.iter().enumerate() {
            if i > 0 {
                out.push_str(", ");
            }
            s.expr.render_into(&mut out);
            if let Some(a) = &s.alias {
                out.push_str(" AS ");
                out.push_str(a.as_str());
            }
            push_params(&mut out, 'A', s.params);
        }
        out.push('\n');

        out.push_str("FROM ");
        for (i, r) in self.from.iter().enumerate() {
            if i > 0 {
                out.push_str(", ");
            }
            out.push_str(r.relation.as_str());
            push_params(&mut out, 'R', r.params);
        }

        if !self.conditions.is_empty() {
            out.push('\n');
            out.push_str("WHERE ");
            for (i, c) in self.conditions.iter().enumerate() {
                if i > 0 {
                    out.push_str(" AND ");
                }
                out.push('(');
                c.clause.render_into(&mut out);
                out.push(')');
                push_params(&mut out, 'C', c.params);
            }
        }
        out
    }
}

/// Buffer-writing twin of [`write_params`].
fn push_params(out: &mut String, prefix: char, p: EvolutionParams) {
    if p == EvolutionParams::DEFAULT {
        return;
    }
    out.push_str(" (");
    out.push(prefix);
    out.push_str("D = ");
    out.push_str(if p.dispensable { "true" } else { "false" });
    out.push_str(", ");
    out.push(prefix);
    out.push_str("R = ");
    out.push_str(if p.replaceable { "true" } else { "false" });
    out.push(')');
}

impl fmt::Display for ViewDefinition {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "CREATE VIEW {}", self.name)?;
        if let Some(iface) = &self.interface {
            write!(f, " (")?;
            for (i, n) in iface.iter().enumerate() {
                if i > 0 {
                    write!(f, ", ")?;
                }
                write!(f, "{n}")?;
            }
            write!(f, ")")?;
        }
        if self.extent != ViewExtent::Equivalent {
            write!(f, " (VE = {})", self.extent.keyword())?;
        }
        writeln!(f, " AS")?;

        write!(f, "SELECT ")?;
        for (i, s) in self.select.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{}", s.expr)?;
            if let Some(a) = &s.alias {
                write!(f, " AS {a}")?;
            }
            write_params(f, 'A', s.params)?;
        }
        writeln!(f)?;

        write!(f, "FROM ")?;
        for (i, r) in self.from.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{}", r.relation)?;
            write_params(f, 'R', r.params)?;
        }

        if !self.conditions.is_empty() {
            writeln!(f)?;
            write!(f, "WHERE ")?;
            for (i, c) in self.conditions.iter().enumerate() {
                if i > 0 {
                    write!(f, " AND ")?;
                }
                write!(f, "({})", c.clause)?;
                write_params(f, 'C', c.params)?;
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use crate::parser::parse_view;

    /// Round-trip: parse → print → parse must be the identity, modulo
    /// the dropped surface aliases.
    fn roundtrip(src: &str) {
        let v1 = parse_view(src).unwrap();
        let printed = v1.to_string();
        let v2 = parse_view(&printed)
            .unwrap_or_else(|e| panic!("printed form failed to parse: {e}\n{printed}"));
        // Aliases are not reproduced; clear them before comparing.
        let mut v1 = v1;
        for f in &mut v1.from {
            f.alias = None;
        }
        assert_eq!(v1, v2, "\nprinted:\n{printed}");
    }

    #[test]
    fn roundtrip_eq1() {
        roundtrip(
            "CREATE VIEW Asia-Customer (VE = superset) AS
             SELECT C.Name (AR = true), C.Addr, C.Phone (AD = true, AR = false)
             FROM Customer C (RR = true), FlightRes F
             WHERE (C.Name = F.PName) AND (F.Dest = 'Asia') (CD = true)",
        );
    }

    #[test]
    fn roundtrip_eq5() {
        roundtrip(
            "CREATE VIEW Customer-Passengers-Asia AS
             SELECT C.Name (false, true), C.Age (true, true),
                    P.Participant (true, true), P.TourID (true, true)
             FROM Customer C (true, true), FlightRes F (true, true), Participant P (true, true)
             WHERE (C.Name = F.PName) (false, true) AND (F.Dest = 'Asia')
               AND (P.StartDate = F.Date) AND (P.Loc = 'Asia')",
        );
    }

    #[test]
    fn roundtrip_interface_and_functions() {
        roundtrip(
            "CREATE VIEW V (N, A) (VE = subset) AS
             SELECT A.Holder, (today() - A.Birthday) / 365 AS Age (AD = true)
             FROM Accident-Ins A
             WHERE (A.Amount >= 1000) AND (A.Type <> 'life')",
        );
    }

    #[test]
    fn roundtrip_no_where() {
        roundtrip("CREATE VIEW V AS SELECT R.a FROM R");
    }

    /// `rendered()` is the hot-path twin of `Display` — the two must
    /// agree byte-for-byte on every shape the printer can emit.
    #[test]
    fn rendered_matches_display() {
        for src in [
            "CREATE VIEW Asia-Customer (VE = superset) AS
             SELECT C.Name (AR = true), C.Addr, C.Phone (AD = true, AR = false)
             FROM Customer C (RR = true), FlightRes F
             WHERE (C.Name = F.PName) AND (F.Dest = 'Asia') (CD = true)",
            "CREATE VIEW V (N, A) (VE = subset) AS
             SELECT A.Holder, (today() - A.Birthday) / 365 AS Age (AD = true)
             FROM Accident-Ins A
             WHERE (A.Amount >= 1000) AND (A.Type <> 'life')",
            "CREATE VIEW V AS SELECT R.a FROM R",
            "CREATE VIEW O (VE = any) AS SELECT R.a FROM R
             WHERE (R.s = 'it''s') AND (R.f < 1.5) AND (R.n = -42)",
        ] {
            let v = crate::parser::parse_view(src).unwrap();
            assert_eq!(v.rendered(), v.to_string(), "source: {src}");
        }
    }

    #[test]
    fn default_params_not_printed() {
        let v = parse_view("CREATE VIEW V AS SELECT R.a FROM R").unwrap();
        let s = v.to_string();
        assert!(!s.contains("AD ="), "{s}");
        assert!(!s.contains("RD ="), "{s}");
    }
}
