//! Parse errors with source positions.

use std::fmt;

/// A lexing or parsing error, carrying a 1-based line/column position.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// Human-readable description of what went wrong.
    pub message: String,
    /// 1-based line.
    pub line: usize,
    /// 1-based column.
    pub col: usize,
}

impl ParseError {
    /// Create a parse error.
    pub fn new(message: impl Into<String>, line: usize, col: usize) -> Self {
        ParseError {
            message: message.into(),
            line,
            col,
        }
    }
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "parse error at {}:{}: {}",
            self.line, self.col, self.message
        )
    }
}

impl std::error::Error for ParseError {}

#[cfg(test)]
mod tests {
    use crate::parse_view;

    #[test]
    fn errors_carry_positions() {
        // The bogus token is on line 2, after "FROM".
        let err = parse_view("CREATE VIEW V AS SELECT R.a\nFROM = R").unwrap_err();
        assert_eq!(err.line, 2);
        assert!(err.col >= 6, "{err}");
        assert!(err.to_string().contains("parse error at 2:"), "{err}");
    }

    #[test]
    fn lexer_error_positions() {
        let err = parse_view("CREATE VIEW V AS SELECT R.a FROM R WHERE R.a = @").unwrap_err();
        assert_eq!(err.line, 1);
        assert!(err.message.contains("unexpected character"), "{err}");
    }
}
