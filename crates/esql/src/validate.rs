//! Structural validation of view definitions.
//!
//! §4 of the paper makes two standing assumptions about E-SQL views, which
//! CVS relies on:
//!
//! 1. all **distinguished** attributes (attributes used in an
//!    *indispensable* WHERE condition) are among the **preserved**
//!    attributes (the SELECT clause);
//! 2. a relation appears **at most once** in the FROM clause.
//!
//! [`validate_view`] enforces these plus basic well-formedness: every
//! referenced relation is in the FROM clause, the explicit interface (if
//! any) matches the SELECT arity without duplicate names, and the WHERE
//! clause is not trivially inconsistent.

use crate::ast::ViewDefinition;
use eve_relational::{AttrRef, RelName};
use std::collections::BTreeSet;
use std::fmt;

/// A violation of view well-formedness.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ValidationError {
    /// The same relation occurs twice in FROM (violates §4 assumption 2).
    DuplicateRelation(RelName),
    /// A referenced relation does not occur in FROM.
    UnknownRelation(RelName),
    /// A distinguished attribute is not preserved (violates §4
    /// assumption 1).
    DistinguishedNotPreserved(AttrRef),
    /// Explicit interface arity differs from the SELECT arity.
    InterfaceArity {
        /// Number of interface names given.
        interface: usize,
        /// Number of SELECT items.
        select: usize,
    },
    /// Two interface columns share a name.
    DuplicateInterfaceName(String),
    /// The WHERE clause is detectably inconsistent (always-empty view).
    InconsistentWhere,
    /// The SELECT clause is empty.
    EmptySelect,
    /// The FROM clause is empty.
    EmptyFrom,
}

impl fmt::Display for ValidationError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ValidationError::DuplicateRelation(r) => {
                write!(f, "relation {r} appears more than once in FROM")
            }
            ValidationError::UnknownRelation(r) => {
                write!(f, "relation {r} referenced but not in FROM")
            }
            ValidationError::DistinguishedNotPreserved(a) => write!(
                f,
                "attribute {a} is used in an indispensable condition but not preserved in SELECT"
            ),
            ValidationError::InterfaceArity { interface, select } => write!(
                f,
                "interface has {interface} names but SELECT has {select} items"
            ),
            ValidationError::DuplicateInterfaceName(n) => {
                write!(f, "duplicate interface column name {n}")
            }
            ValidationError::InconsistentWhere => {
                write!(f, "WHERE clause is inconsistent (view extent always empty)")
            }
            ValidationError::EmptySelect => write!(f, "SELECT clause is empty"),
            ValidationError::EmptyFrom => write!(f, "FROM clause is empty"),
        }
    }
}

impl std::error::Error for ValidationError {}

/// Validate a view definition, returning *all* violations found.
pub fn validate_view(view: &ViewDefinition) -> Vec<ValidationError> {
    let mut errors = Vec::new();

    if view.select.is_empty() {
        errors.push(ValidationError::EmptySelect);
    }
    if view.from.is_empty() {
        errors.push(ValidationError::EmptyFrom);
    }

    // §4 assumption 2: relation at most once in FROM.
    let mut seen = BTreeSet::new();
    for f in &view.from {
        if !seen.insert(f.relation.clone()) {
            errors.push(ValidationError::DuplicateRelation(f.relation.clone()));
        }
    }

    // Every referenced relation must be in FROM.
    for attr in view.referenced_attrs() {
        if !seen.contains(&attr.relation) {
            let e = ValidationError::UnknownRelation(attr.relation.clone());
            if !errors.contains(&e) {
                errors.push(e);
            }
        }
    }

    // §4 assumption 1: distinguished ⊆ preserved.
    let preserved = view.preserved_attrs();
    for attr in view.distinguished_attrs() {
        if !preserved.contains(&attr) {
            errors.push(ValidationError::DistinguishedNotPreserved(attr));
        }
    }

    // Interface list checks.
    if let Some(iface) = &view.interface {
        if iface.len() != view.select.len() {
            errors.push(ValidationError::InterfaceArity {
                interface: iface.len(),
                select: view.select.len(),
            });
        }
        let mut names = BTreeSet::new();
        for n in iface {
            if !names.insert(n.as_str()) {
                errors.push(ValidationError::DuplicateInterfaceName(
                    n.as_str().to_string(),
                ));
            }
        }
    }

    // Consistency of the WHERE clause.
    if !view.where_conjunction().is_consistent() {
        errors.push(ValidationError::InconsistentWhere);
    }

    errors
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_view;

    fn errors_of(src: &str) -> Vec<ValidationError> {
        validate_view(&parse_view(src).unwrap())
    }

    #[test]
    fn valid_paper_view_passes() {
        // Eq. (5)-style view: all distinguished attrs preserved.
        let errs = errors_of(
            "CREATE VIEW V AS
             SELECT C.Name, C.Age, P.Participant, P.TourID, P.StartDate, F.PName, F.Date
             FROM Customer C, FlightRes F, Participant P
             WHERE (C.Name = F.PName) AND (F.Dest = 'Asia') (CD = true)
               AND (P.StartDate = F.Date) (CD = true)",
        );
        assert!(errs.is_empty(), "{errs:?}");
    }

    #[test]
    fn duplicate_relation_flagged() {
        let errs = errors_of("CREATE VIEW V AS SELECT R.a FROM R, R");
        assert!(errs
            .iter()
            .any(|e| matches!(e, ValidationError::DuplicateRelation(_))));
    }

    #[test]
    fn unknown_relation_flagged() {
        let errs = errors_of("CREATE VIEW V AS SELECT S.a FROM R");
        assert!(errs
            .iter()
            .any(|e| matches!(e, ValidationError::UnknownRelation(_))));
    }

    #[test]
    fn distinguished_not_preserved_flagged() {
        // R.b used in an indispensable condition but not selected.
        let errs = errors_of("CREATE VIEW V AS SELECT R.a FROM R WHERE R.b = 1");
        assert!(errs
            .iter()
            .any(|e| matches!(e, ValidationError::DistinguishedNotPreserved(_))));
        // Dispensable condition: fine.
        let errs = errors_of("CREATE VIEW V AS SELECT R.a FROM R WHERE (R.b = 1) (CD = true)");
        assert!(errs.is_empty(), "{errs:?}");
    }

    #[test]
    fn interface_arity_flagged() {
        let errs = errors_of("CREATE VIEW V (X, Y) AS SELECT R.a FROM R");
        assert!(errs
            .iter()
            .any(|e| matches!(e, ValidationError::InterfaceArity { .. })));
    }

    #[test]
    fn duplicate_interface_name_flagged() {
        let errs = errors_of("CREATE VIEW V (X, X) AS SELECT R.a, R.b FROM R");
        assert!(errs
            .iter()
            .any(|e| matches!(e, ValidationError::DuplicateInterfaceName(_))));
    }

    #[test]
    fn inconsistent_where_flagged() {
        let errs = errors_of("CREATE VIEW V AS SELECT R.a FROM R WHERE (R.a = 1) AND (R.a = 2)");
        assert!(errs.contains(&ValidationError::InconsistentWhere));
    }

    #[test]
    fn multiple_errors_all_reported() {
        let errs = errors_of("CREATE VIEW V (X, Y) AS SELECT S.a FROM R, R");
        assert!(errs.len() >= 3, "{errs:?}");
    }
}
