//! Hand-written lexer shared by the E-SQL parser and the MISD textual
//! format (`eve-misd` reuses it).
//!
//! ## Identifiers and hyphens
//!
//! The paper's names freely contain hyphens (`Accident-Ins`,
//! `Asia-Customer`, `Customer-Passengers-Asia`). The lexer therefore
//! treats `-` as part of an identifier when it is immediately followed by
//! a letter while an identifier is being scanned. The consequence: binary
//! minus between two attribute identifiers must be written with
//! whitespace (`today() - A.Birthday`), which is how the paper typesets
//! its one arithmetic constraint (F3) anyway.

use crate::error::ParseError;
use std::fmt;

/// A lexical token.
#[derive(Debug, Clone, PartialEq)]
pub enum Tok {
    /// Identifier or keyword (keywords are matched case-insensitively by
    /// the parser).
    Ident(String),
    /// Integer literal.
    Int(i64),
    /// Float literal.
    Float(f64),
    /// Single-quoted string literal (quotes removed, `''` unescaped).
    Str(String),
    /// `(`
    LParen,
    /// `)`
    RParen,
    /// `,`
    Comma,
    /// `.`
    Dot,
    /// `=`
    Eq,
    /// `<>` or `!=`
    Ne,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
    /// `+`
    Plus,
    /// `-`
    Minus,
    /// `*`
    Star,
    /// `/`
    Slash,
    /// `;`
    Semi,
    /// `:`
    Colon,
}

impl Tok {
    /// True iff this token is the given keyword (case-insensitive).
    pub fn is_kw(&self, kw: &str) -> bool {
        matches!(self, Tok::Ident(s) if s.eq_ignore_ascii_case(kw))
    }
}

impl fmt::Display for Tok {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Tok::Ident(s) => write!(f, "{s}"),
            Tok::Int(i) => write!(f, "{i}"),
            Tok::Float(x) => write!(f, "{x}"),
            Tok::Str(s) => write!(f, "'{s}'"),
            Tok::LParen => write!(f, "("),
            Tok::RParen => write!(f, ")"),
            Tok::Comma => write!(f, ","),
            Tok::Dot => write!(f, "."),
            Tok::Eq => write!(f, "="),
            Tok::Ne => write!(f, "<>"),
            Tok::Lt => write!(f, "<"),
            Tok::Le => write!(f, "<="),
            Tok::Gt => write!(f, ">"),
            Tok::Ge => write!(f, ">="),
            Tok::Plus => write!(f, "+"),
            Tok::Minus => write!(f, "-"),
            Tok::Star => write!(f, "*"),
            Tok::Slash => write!(f, "/"),
            Tok::Semi => write!(f, ";"),
            Tok::Colon => write!(f, ":"),
        }
    }
}

/// A token plus its source position (1-based).
#[derive(Debug, Clone, PartialEq)]
pub struct Spanned {
    /// The token.
    pub tok: Tok,
    /// 1-based line.
    pub line: usize,
    /// 1-based column.
    pub col: usize,
}

/// Tokenise an input string.
///
/// Comments: `--` to end of line (SQL style).
pub fn tokenize(input: &str) -> Result<Vec<Spanned>, ParseError> {
    let mut out = Vec::new();
    let chars: Vec<char> = input.chars().collect();
    let mut i = 0;
    let mut line = 1;
    let mut col = 1;

    macro_rules! push {
        ($tok:expr, $l:expr, $c:expr) => {
            out.push(Spanned {
                tok: $tok,
                line: $l,
                col: $c,
            })
        };
    }

    while i < chars.len() {
        let c = chars[i];
        let (l0, c0) = (line, col);
        match c {
            '\n' => {
                line += 1;
                col = 1;
                i += 1;
            }
            c if c.is_whitespace() => {
                col += 1;
                i += 1;
            }
            '-' if i + 1 < chars.len() && chars[i + 1] == '-' => {
                // comment to end of line
                while i < chars.len() && chars[i] != '\n' {
                    i += 1;
                }
            }
            '(' => {
                push!(Tok::LParen, l0, c0);
                i += 1;
                col += 1;
            }
            ')' => {
                push!(Tok::RParen, l0, c0);
                i += 1;
                col += 1;
            }
            ',' => {
                push!(Tok::Comma, l0, c0);
                i += 1;
                col += 1;
            }
            '.' => {
                push!(Tok::Dot, l0, c0);
                i += 1;
                col += 1;
            }
            ';' => {
                push!(Tok::Semi, l0, c0);
                i += 1;
                col += 1;
            }
            ':' => {
                push!(Tok::Colon, l0, c0);
                i += 1;
                col += 1;
            }
            '+' => {
                push!(Tok::Plus, l0, c0);
                i += 1;
                col += 1;
            }
            '-' => {
                push!(Tok::Minus, l0, c0);
                i += 1;
                col += 1;
            }
            '*' => {
                push!(Tok::Star, l0, c0);
                i += 1;
                col += 1;
            }
            '/' => {
                push!(Tok::Slash, l0, c0);
                i += 1;
                col += 1;
            }
            '=' => {
                // accept == as =
                if i + 1 < chars.len() && chars[i + 1] == '=' {
                    i += 2;
                    col += 2;
                } else {
                    i += 1;
                    col += 1;
                }
                push!(Tok::Eq, l0, c0);
            }
            '!' if i + 1 < chars.len() && chars[i + 1] == '=' => {
                push!(Tok::Ne, l0, c0);
                i += 2;
                col += 2;
            }
            '<' => {
                if i + 1 < chars.len() && chars[i + 1] == '>' {
                    push!(Tok::Ne, l0, c0);
                    i += 2;
                    col += 2;
                } else if i + 1 < chars.len() && chars[i + 1] == '=' {
                    push!(Tok::Le, l0, c0);
                    i += 2;
                    col += 2;
                } else {
                    push!(Tok::Lt, l0, c0);
                    i += 1;
                    col += 1;
                }
            }
            '>' => {
                if i + 1 < chars.len() && chars[i + 1] == '=' {
                    push!(Tok::Ge, l0, c0);
                    i += 2;
                    col += 2;
                } else {
                    push!(Tok::Gt, l0, c0);
                    i += 1;
                    col += 1;
                }
            }
            '\'' => {
                // string literal with '' escape
                let mut s = String::new();
                i += 1;
                col += 1;
                loop {
                    if i >= chars.len() {
                        return Err(ParseError::new("unterminated string literal", l0, c0));
                    }
                    if chars[i] == '\'' {
                        if i + 1 < chars.len() && chars[i + 1] == '\'' {
                            s.push('\'');
                            i += 2;
                            col += 2;
                        } else {
                            i += 1;
                            col += 1;
                            break;
                        }
                    } else {
                        if chars[i] == '\n' {
                            line += 1;
                            col = 0;
                        }
                        s.push(chars[i]);
                        i += 1;
                        col += 1;
                    }
                }
                push!(Tok::Str(s), l0, c0);
            }
            c if c.is_ascii_digit() => {
                let mut s = String::new();
                while i < chars.len() && chars[i].is_ascii_digit() {
                    s.push(chars[i]);
                    i += 1;
                    col += 1;
                }
                // fraction only when '.' is followed by a digit, so that
                // `1.x` never swallows a qualifier dot.
                if i + 1 < chars.len() && chars[i] == '.' && chars[i + 1].is_ascii_digit() {
                    s.push('.');
                    i += 1;
                    col += 1;
                    while i < chars.len() && chars[i].is_ascii_digit() {
                        s.push(chars[i]);
                        i += 1;
                        col += 1;
                    }
                    let v: f64 = s
                        .parse()
                        .map_err(|_| ParseError::new(format!("bad float literal {s}"), l0, c0))?;
                    push!(Tok::Float(v), l0, c0);
                } else {
                    let v: i64 = s
                        .parse()
                        .map_err(|_| ParseError::new(format!("bad int literal {s}"), l0, c0))?;
                    push!(Tok::Int(v), l0, c0);
                }
            }
            c if c.is_alphabetic() || c == '_' => {
                let mut s = String::new();
                while i < chars.len() {
                    let ch = chars[i];
                    if ch.is_alphanumeric() || ch == '_' {
                        s.push(ch);
                        i += 1;
                        col += 1;
                    } else if ch == '-' && i + 1 < chars.len() && chars[i + 1].is_alphabetic() {
                        // hyphenated identifier (Accident-Ins)
                        s.push(ch);
                        i += 1;
                        col += 1;
                    } else {
                        break;
                    }
                }
                push!(Tok::Ident(s), l0, c0);
            }
            other => {
                return Err(ParseError::new(
                    format!("unexpected character {other:?}"),
                    l0,
                    c0,
                ));
            }
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toks(s: &str) -> Vec<Tok> {
        tokenize(s).unwrap().into_iter().map(|s| s.tok).collect()
    }

    #[test]
    fn hyphenated_identifiers() {
        assert_eq!(
            toks("Accident-Ins"),
            vec![Tok::Ident("Accident-Ins".into())]
        );
        assert_eq!(
            toks("Customer-Passengers-Asia"),
            vec![Tok::Ident("Customer-Passengers-Asia".into())]
        );
    }

    #[test]
    fn minus_before_digit_is_operator() {
        assert_eq!(
            toks("Age-1"),
            vec![Tok::Ident("Age".into()), Tok::Minus, Tok::Int(1)]
        );
        assert_eq!(
            toks("Age - Birthday"),
            vec![
                Tok::Ident("Age".into()),
                Tok::Minus,
                Tok::Ident("Birthday".into())
            ]
        );
    }

    #[test]
    fn qualified_names_keep_dot() {
        assert_eq!(
            toks("Customer.Name"),
            vec![
                Tok::Ident("Customer".into()),
                Tok::Dot,
                Tok::Ident("Name".into())
            ]
        );
    }

    #[test]
    fn numbers() {
        assert_eq!(toks("42"), vec![Tok::Int(42)]);
        assert_eq!(toks("3.25"), vec![Tok::Float(3.25)]);
        // `1.x` is int, dot, ident (never a float)
        assert_eq!(
            toks("1.x"),
            vec![Tok::Int(1), Tok::Dot, Tok::Ident("x".into())]
        );
    }

    #[test]
    fn strings_with_escape() {
        assert_eq!(toks("'Asia'"), vec![Tok::Str("Asia".into())]);
        assert_eq!(toks("'O''Neil'"), vec![Tok::Str("O'Neil".into())]);
        assert!(tokenize("'oops").is_err());
    }

    #[test]
    fn comparison_operators() {
        assert_eq!(
            toks("= <> != < <= > >= =="),
            vec![
                Tok::Eq,
                Tok::Ne,
                Tok::Ne,
                Tok::Lt,
                Tok::Le,
                Tok::Gt,
                Tok::Ge,
                Tok::Eq
            ]
        );
    }

    #[test]
    fn comments_skipped() {
        assert_eq!(
            toks("a -- comment here\nb"),
            vec![Tok::Ident("a".into()), Tok::Ident("b".into())]
        );
    }

    #[test]
    fn positions_tracked() {
        let spanned = tokenize("a\n  b").unwrap();
        assert_eq!((spanned[0].line, spanned[0].col), (1, 1));
        assert_eq!((spanned[1].line, spanned[1].col), (2, 3));
    }

    #[test]
    fn keyword_check_case_insensitive() {
        let t = Tok::Ident("select".into());
        assert!(t.is_kw("SELECT"));
        assert!(!t.is_kw("FROM"));
    }
}
