//! Recursive-descent parser for E-SQL view definitions.
//!
//! The entry point is [`parse_view`]. Lower-level helpers
//! ([`Cursor`], [`parse_expr_at`], [`parse_clause_at`],
//! [`parse_conjunction_at`]) are public so the MISD textual format in
//! `eve-misd` can reuse the same expression grammar.
//!
//! Aliases are resolved during parsing: the returned
//! [`ViewDefinition`] references base relations only (see `ast` module
//! docs).

use crate::ast::{CondItem, EvolutionParams, FromItem, SelectItem, ViewDefinition, ViewExtent};
use crate::error::ParseError;
use crate::lexer::{tokenize, Spanned, Tok};
use eve_relational::expr::ArithOp;
use eve_relational::{
    AttrName, AttrRef, Clause, CompareOp, Conjunction, RelName, ScalarExpr, Value,
};

/// A token cursor with save/restore backtracking.
#[derive(Debug, Clone)]
pub struct Cursor {
    toks: Vec<Spanned>,
    pos: usize,
}

impl Cursor {
    /// Tokenise input and position at the first token.
    pub fn new(input: &str) -> Result<Self, ParseError> {
        Ok(Cursor {
            toks: tokenize(input)?,
            pos: 0,
        })
    }

    /// Current position (for backtracking).
    pub fn mark(&self) -> usize {
        self.pos
    }

    /// Restore a previously marked position.
    pub fn reset(&mut self, mark: usize) {
        self.pos = mark;
    }

    /// Peek at the current token.
    pub fn peek(&self) -> Option<&Tok> {
        self.toks.get(self.pos).map(|s| &s.tok)
    }

    /// Peek `k` tokens ahead (0 = current).
    pub fn peek_at(&self, k: usize) -> Option<&Tok> {
        self.toks.get(self.pos + k).map(|s| &s.tok)
    }

    /// Consume and return the current token.
    #[allow(clippy::should_implement_trait)] // deliberate cursor idiom
    pub fn next(&mut self) -> Option<Tok> {
        let t = self.toks.get(self.pos).map(|s| s.tok.clone());
        if t.is_some() {
            self.pos += 1;
        }
        t
    }

    /// True at end of input.
    pub fn at_end(&self) -> bool {
        self.pos >= self.toks.len()
    }

    /// Build an error at the current position.
    pub fn err(&self, msg: impl Into<String>) -> ParseError {
        match self
            .toks
            .get(self.pos.min(self.toks.len().saturating_sub(1)))
        {
            Some(s) if !self.toks.is_empty() => ParseError::new(msg, s.line, s.col),
            _ => ParseError::new(msg, 1, 1),
        }
    }

    /// Consume the expected exact token or error.
    pub fn expect(&mut self, tok: &Tok) -> Result<(), ParseError> {
        match self.peek() {
            Some(t) if t == tok => {
                self.pos += 1;
                Ok(())
            }
            Some(t) => Err(self.err(format!("expected `{tok}`, found `{t}`"))),
            None => Err(self.err(format!("expected `{tok}`, found end of input"))),
        }
    }

    /// Consume the token if it matches; report whether it did.
    pub fn eat(&mut self, tok: &Tok) -> bool {
        if self.peek() == Some(tok) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    /// Consume the given keyword (case-insensitive identifier) or error.
    pub fn expect_kw(&mut self, kw: &str) -> Result<(), ParseError> {
        match self.peek() {
            Some(t) if t.is_kw(kw) => {
                self.pos += 1;
                Ok(())
            }
            Some(t) => Err(self.err(format!("expected keyword `{kw}`, found `{t}`"))),
            None => Err(self.err(format!("expected keyword `{kw}`, found end of input"))),
        }
    }

    /// Consume the keyword if present; report whether it was.
    pub fn eat_kw(&mut self, kw: &str) -> bool {
        if self.peek().map(|t| t.is_kw(kw)).unwrap_or(false) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    /// Consume an identifier (any; keyword filtering is the caller's job).
    pub fn expect_ident(&mut self) -> Result<String, ParseError> {
        match self.peek() {
            Some(Tok::Ident(s)) => {
                let s = s.clone();
                self.pos += 1;
                Ok(s)
            }
            Some(t) => Err(self.err(format!("expected identifier, found `{t}`"))),
            None => Err(self.err("expected identifier, found end of input")),
        }
    }
}

/// Keywords that terminate item lists and thus may not be consumed as
/// bare identifiers inside expressions or aliases.
const RESERVED: &[&str] = &["select", "from", "where", "and", "as", "create", "view"];

fn is_reserved(s: &str) -> bool {
    RESERVED.iter().any(|k| s.eq_ignore_ascii_case(k))
}

/// Parse a scalar expression at the cursor.
///
/// Grammar (left-associative):
/// ```text
/// expr   := term (('+' | '-') term)*
/// term   := factor (('*' | '/') factor)*
/// factor := '-' factor | literal | IDENT '.' IDENT
///         | IDENT '(' [expr (',' expr)*] ')' | '(' expr ')'
/// ```
/// `TRUE`/`FALSE`/`NULL` are literal keywords; `date(<int>)` is folded
/// into a [`Value::Date`] constant.
pub fn parse_expr_at(cur: &mut Cursor) -> Result<ScalarExpr, ParseError> {
    let mut lhs = parse_term(cur)?;
    loop {
        let op = match cur.peek() {
            Some(Tok::Plus) => ArithOp::Add,
            Some(Tok::Minus) => ArithOp::Sub,
            _ => break,
        };
        cur.next();
        let rhs = parse_term(cur)?;
        lhs = ScalarExpr::binary(op, lhs, rhs);
    }
    Ok(lhs)
}

fn parse_term(cur: &mut Cursor) -> Result<ScalarExpr, ParseError> {
    let mut lhs = parse_factor(cur)?;
    loop {
        let op = match cur.peek() {
            Some(Tok::Star) => ArithOp::Mul,
            Some(Tok::Slash) => ArithOp::Div,
            _ => break,
        };
        cur.next();
        let rhs = parse_factor(cur)?;
        lhs = ScalarExpr::binary(op, lhs, rhs);
    }
    Ok(lhs)
}

fn parse_factor(cur: &mut Cursor) -> Result<ScalarExpr, ParseError> {
    match cur.peek().cloned() {
        Some(Tok::Minus) => {
            cur.next();
            let f = parse_factor(cur)?;
            Ok(match f {
                ScalarExpr::Const(Value::Int(i)) => ScalarExpr::lit(-i),
                ScalarExpr::Const(Value::Float(x)) => ScalarExpr::lit(-x.get()),
                other => ScalarExpr::binary(ArithOp::Sub, ScalarExpr::lit(0i64), other),
            })
        }
        Some(Tok::Int(i)) => {
            cur.next();
            Ok(ScalarExpr::lit(i))
        }
        Some(Tok::Float(x)) => {
            cur.next();
            Ok(ScalarExpr::lit(x))
        }
        Some(Tok::Str(s)) => {
            cur.next();
            Ok(ScalarExpr::lit(s.as_str()))
        }
        Some(Tok::LParen) => {
            cur.next();
            let e = parse_expr_at(cur)?;
            cur.expect(&Tok::RParen)?;
            Ok(e)
        }
        Some(Tok::Ident(id)) => {
            if id.eq_ignore_ascii_case("true") {
                cur.next();
                return Ok(ScalarExpr::lit(true));
            }
            if id.eq_ignore_ascii_case("false") {
                cur.next();
                return Ok(ScalarExpr::lit(false));
            }
            if id.eq_ignore_ascii_case("null") {
                cur.next();
                return Ok(ScalarExpr::Const(Value::Null));
            }
            if is_reserved(&id) {
                return Err(cur.err(format!("unexpected keyword `{id}` in expression")));
            }
            cur.next();
            match cur.peek() {
                Some(Tok::Dot) => {
                    cur.next();
                    let attr = cur.expect_ident()?;
                    Ok(ScalarExpr::Attr(AttrRef::new(id, attr)))
                }
                Some(Tok::LParen) => {
                    cur.next();
                    let mut args = Vec::new();
                    if !cur.eat(&Tok::RParen) {
                        loop {
                            args.push(parse_expr_at(cur)?);
                            if !cur.eat(&Tok::Comma) {
                                break;
                            }
                        }
                        cur.expect(&Tok::RParen)?;
                    }
                    // Fold `date(<int>)` into a date constant.
                    if id.eq_ignore_ascii_case("date") && args.len() == 1 {
                        if let ScalarExpr::Const(Value::Int(d)) = &args[0] {
                            return Ok(ScalarExpr::Const(Value::Date(*d)));
                        }
                    }
                    Ok(ScalarExpr::call(id, args))
                }
                _ => Err(cur.err(format!(
                    "attribute reference `{id}` must be qualified as <relation>.<attribute>"
                ))),
            }
        }
        Some(t) => Err(cur.err(format!("unexpected `{t}` in expression"))),
        None => Err(cur.err("unexpected end of input in expression")),
    }
}

/// Parse a primitive clause `expr θ expr`, where the whole clause may be
/// wrapped in parentheses — `(C.Name = F.PName)` — as the paper writes
/// WHERE conditions.
pub fn parse_clause_at(cur: &mut Cursor) -> Result<Clause, ParseError> {
    // Try a parenthesised clause first, then fall back to a bare clause
    // (where a leading '(' opens a parenthesised *expression*).
    if cur.peek() == Some(&Tok::LParen) {
        let mark = cur.mark();
        cur.next();
        if let Ok(c) = parse_bare_clause(cur) {
            if cur.eat(&Tok::RParen) {
                return Ok(c);
            }
        }
        cur.reset(mark);
    }
    parse_bare_clause(cur)
}

fn parse_bare_clause(cur: &mut Cursor) -> Result<Clause, ParseError> {
    let lhs = parse_expr_at(cur)?;
    let op = match cur.peek() {
        Some(Tok::Eq) => CompareOp::Eq,
        Some(Tok::Ne) => CompareOp::Ne,
        Some(Tok::Lt) => CompareOp::Lt,
        Some(Tok::Le) => CompareOp::Le,
        Some(Tok::Gt) => CompareOp::Gt,
        Some(Tok::Ge) => CompareOp::Ge,
        _ => return Err(cur.err("expected comparison operator")),
    };
    cur.next();
    let rhs = parse_expr_at(cur)?;
    Ok(Clause::new(lhs, op, rhs))
}

/// Parse `clause (AND clause)*` into a [`Conjunction`] (no evolution
/// parameters; used by the MISD format for join constraints).
pub fn parse_conjunction_at(cur: &mut Cursor) -> Result<Conjunction, ParseError> {
    let mut clauses = vec![parse_clause_at(cur)?];
    while cur.eat_kw("and") {
        clauses.push(parse_clause_at(cur)?);
    }
    Ok(Conjunction::new(clauses))
}

/// Which component kind a parameter group annotates, determining the
/// accepted keys (`AD/AR`, `CD/CR` or `RD/RR`).
#[derive(Clone, Copy, PartialEq, Eq)]
enum ParamKind {
    Attribute,
    Condition,
    Relation,
}

impl ParamKind {
    fn prefix(self) -> char {
        match self {
            ParamKind::Attribute => 'A',
            ParamKind::Condition => 'C',
            ParamKind::Relation => 'R',
        }
    }
}

/// Is the cursor looking at a parameter group `( … )`? A group starts
/// with `(` followed by `true`/`false` (positional) or a parameter key
/// `XD`/`XR` followed by `=`.
fn at_param_group(cur: &Cursor) -> bool {
    if cur.peek() != Some(&Tok::LParen) {
        return false;
    }
    match cur.peek_at(1) {
        Some(Tok::Ident(s)) => {
            if s.eq_ignore_ascii_case("true") || s.eq_ignore_ascii_case("false") {
                return true;
            }
            let is_key = matches!(
                s.to_ascii_uppercase().as_str(),
                "AD" | "AR" | "CD" | "CR" | "RD" | "RR"
            );
            is_key && cur.peek_at(2) == Some(&Tok::Eq)
        }
        _ => false,
    }
}

fn parse_bool(cur: &mut Cursor) -> Result<bool, ParseError> {
    match cur.peek() {
        Some(Tok::Ident(s)) if s.eq_ignore_ascii_case("true") => {
            cur.next();
            Ok(true)
        }
        Some(Tok::Ident(s)) if s.eq_ignore_ascii_case("false") => {
            cur.next();
            Ok(false)
        }
        Some(t) => Err(cur.err(format!("expected true/false, found `{t}`"))),
        None => Err(cur.err("expected true/false, found end of input")),
    }
}

/// Parse an optional evolution-parameter group. Missing group = defaults.
fn parse_params(cur: &mut Cursor, kind: ParamKind) -> Result<EvolutionParams, ParseError> {
    if !at_param_group(cur) {
        return Ok(EvolutionParams::DEFAULT);
    }
    cur.expect(&Tok::LParen)?;
    let mut params = EvolutionParams::DEFAULT;
    // Positional form: (dispensable, replaceable)
    if matches!(cur.peek(), Some(Tok::Ident(s)) if s.eq_ignore_ascii_case("true") || s.eq_ignore_ascii_case("false"))
    {
        params.dispensable = parse_bool(cur)?;
        cur.expect(&Tok::Comma)?;
        params.replaceable = parse_bool(cur)?;
        cur.expect(&Tok::RParen)?;
        return Ok(params);
    }
    // Keyed form: XD = bool (, XR = bool)*
    loop {
        let key = cur.expect_ident()?.to_ascii_uppercase();
        let mut chars = key.chars();
        let (prefix, role) = (chars.next(), chars.next());
        if key.len() != 2 || prefix != Some(kind.prefix()) || !matches!(role, Some('D') | Some('R'))
        {
            return Err(cur.err(format!(
                "parameter key `{key}` not valid here (expected {p}D or {p}R)",
                p = kind.prefix()
            )));
        }
        cur.expect(&Tok::Eq)?;
        let v = parse_bool(cur)?;
        match role {
            Some('D') => params.dispensable = v,
            _ => params.replaceable = v,
        }
        if !cur.eat(&Tok::Comma) {
            break;
        }
    }
    cur.expect(&Tok::RParen)?;
    Ok(params)
}

/// Parse a complete `CREATE VIEW` E-SQL statement.
pub fn parse_view(input: &str) -> Result<ViewDefinition, ParseError> {
    let mut cur = Cursor::new(input)?;
    let view = parse_view_at(&mut cur)?;
    cur.eat(&Tok::Semi);
    if !cur.at_end() {
        return Err(cur.err("trailing input after view definition"));
    }
    Ok(view)
}

/// Parse a document of one or more `CREATE VIEW` statements, separated
/// by optional semicolons.
pub fn parse_views(input: &str) -> Result<Vec<ViewDefinition>, ParseError> {
    let mut cur = Cursor::new(input)?;
    let mut out = Vec::new();
    while !cur.at_end() {
        if cur.eat(&Tok::Semi) {
            continue;
        }
        out.push(parse_view_at(&mut cur)?);
    }
    Ok(out)
}

/// Parse a view definition at the cursor (used for multi-statement input).
pub fn parse_view_at(cur: &mut Cursor) -> Result<ViewDefinition, ParseError> {
    cur.expect_kw("create")?;
    cur.expect_kw("view")?;
    let name = cur.expect_ident()?;

    // Optional interface list and/or VE group — both parenthesised; a VE
    // group is `(VE = …)`.
    let mut interface = None;
    let mut extent = ViewExtent::default();
    while cur.peek() == Some(&Tok::LParen) {
        let is_ve = matches!(cur.peek_at(1), Some(Tok::Ident(s)) if s.eq_ignore_ascii_case("ve"))
            && cur.peek_at(2) == Some(&Tok::Eq);
        cur.next();
        if is_ve {
            cur.next(); // VE
            cur.next(); // =
            let word = match cur.next() {
                Some(Tok::Ident(s)) => s,
                Some(Tok::Le) => "<=".to_string(),
                Some(Tok::Ge) => ">=".to_string(),
                Some(Tok::Eq) => "=".to_string(),
                other => {
                    return Err(cur.err(format!(
                        "expected view-extent value after VE =, found {other:?}"
                    )))
                }
            };
            extent = ViewExtent::parse(&word)
                .ok_or_else(|| cur.err(format!("unknown view-extent value `{word}`")))?;
            cur.expect(&Tok::RParen)?;
        } else {
            if interface.is_some() {
                return Err(cur.err("duplicate interface list"));
            }
            let mut names = Vec::new();
            loop {
                names.push(AttrName::new(cur.expect_ident()?));
                if !cur.eat(&Tok::Comma) {
                    break;
                }
            }
            cur.expect(&Tok::RParen)?;
            interface = Some(names);
        }
    }

    cur.expect_kw("as")?;
    cur.expect_kw("select")?;

    // SELECT items (raw — alias resolution happens after FROM is known).
    let mut select = Vec::new();
    loop {
        let expr = parse_expr_at(cur)?;
        let alias = if cur.eat_kw("as") {
            Some(AttrName::new(cur.expect_ident()?))
        } else {
            None
        };
        let params = parse_params(cur, ParamKind::Attribute)?;
        select.push(SelectItem {
            expr,
            alias,
            params,
        });
        if !cur.eat(&Tok::Comma) {
            break;
        }
    }

    cur.expect_kw("from")?;
    let mut from = Vec::new();
    loop {
        let rel = cur.expect_ident()?;
        if is_reserved(&rel) {
            return Err(cur.err(format!("keyword `{rel}` cannot name a relation")));
        }
        // optional alias: a bare identifier that is not a keyword
        let alias = match cur.peek() {
            Some(Tok::Ident(s)) if !is_reserved(s) => {
                let a = s.clone();
                cur.next();
                Some(RelName::new(a))
            }
            _ => None,
        };
        let params = parse_params(cur, ParamKind::Relation)?;
        from.push(FromItem {
            relation: RelName::new(rel),
            alias,
            params,
        });
        if !cur.eat(&Tok::Comma) {
            break;
        }
    }

    let mut conditions = Vec::new();
    if cur.eat_kw("where") {
        loop {
            let clause = parse_clause_at(cur)?;
            let params = parse_params(cur, ParamKind::Condition)?;
            conditions.push(CondItem { clause, params });
            if !cur.eat_kw("and") {
                break;
            }
        }
    }

    // Resolve aliases: rewrite every attribute qualified by an alias to
    // the base relation name.
    for f in &from {
        if let Some(alias) = &f.alias {
            if alias != &f.relation {
                for s in &mut select {
                    s.expr = s.expr.rename_relation(alias, &f.relation);
                }
                for c in &mut conditions {
                    c.clause = c.clause.rename_relation(alias, &f.relation);
                }
            }
        }
    }

    Ok(ViewDefinition {
        name,
        interface,
        extent,
        select,
        from,
        conditions,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Eq. (1) of the paper (Asia-Customer with mixed keyed annotations).
    const EQ1: &str = "
        CREATE VIEW Asia-Customer (VE = superset) AS
        SELECT C.Name (AR = true), C.Addr (AR = true),
               C.Phone (AD = true, AR = false)
        FROM Customer C (RR = true), FlightRes F
        WHERE (C.Name = F.PName) AND (F.Dest = 'Asia') (CD = true)
    ";

    #[test]
    fn parses_eq1() {
        let v = parse_view(EQ1).unwrap();
        assert_eq!(v.name, "Asia-Customer");
        assert_eq!(v.extent, ViewExtent::Superset);
        assert_eq!(v.select.len(), 3);
        assert_eq!(v.from.len(), 2);
        assert_eq!(v.conditions.len(), 2);
        // Alias C resolved to Customer.
        assert_eq!(v.select[0].expr, ScalarExpr::attr("Customer", "Name"));
        // Phone: AD=true, AR=false.
        assert!(v.select[2].params.dispensable);
        assert!(!v.select[2].params.replaceable);
        // Customer: RR=true (default RD=false).
        assert!(!v.from[0].params.dispensable);
        assert!(v.from[0].params.replaceable);
        // Second condition dispensable.
        assert!(v.conditions[1].params.dispensable);
        // Condition attrs use base names.
        assert!(v.conditions[0]
            .clause
            .attrs()
            .contains(&AttrRef::new("FlightRes", "PName")));
    }

    /// Eq. (5) of the paper (positional annotations).
    const EQ5: &str = "
        CREATE VIEW Customer-Passengers-Asia AS
        SELECT C.Name (false, true), C.Age (true, true),
               P.Participant (true, true), P.TourID (true, true)
        FROM Customer C (true, true), FlightRes F (true, true),
             Participant P (true, true)
        WHERE (C.Name = F.PName) (false, true) AND (F.Dest = 'Asia')
          AND (P.StartDate = F.Date) AND (P.Loc = 'Asia')
    ";

    #[test]
    fn parses_eq5_positional() {
        let v = parse_view(EQ5).unwrap();
        assert_eq!(v.select.len(), 4);
        assert_eq!(v.from.len(), 3);
        assert_eq!(v.conditions.len(), 4);
        assert!(!v.select[0].params.dispensable);
        assert!(v.select[1].params.dispensable);
        assert!(v.from.iter().all(|f| f.params.dispensable));
        assert!(!v.conditions[0].params.dispensable);
        // default for unannotated conditions
        assert!(!v.conditions[1].params.dispensable);
        assert!(v.conditions[1].params.replaceable);
    }

    #[test]
    fn parse_views_multi_statement() {
        let views = parse_views(
            "CREATE VIEW A AS SELECT R.x FROM R;
             -- a comment between statements
             CREATE VIEW B AS SELECT S.y FROM S",
        )
        .unwrap();
        assert_eq!(views.len(), 2);
        assert_eq!(views[1].name, "B");
        assert!(parse_views("").unwrap().is_empty());
        // (`garbage` after FROM would be an alias — use a non-identifier.)
        assert!(parse_views("CREATE VIEW A AS SELECT R.x FROM R 42").is_err());
    }

    #[test]
    fn parses_interface_list_eq3() {
        let v = parse_view(
            "CREATE VIEW Asia-Customer (AName, AAddr, APh) (VE = superset) AS
             SELECT C.Name, C.Addr (AD = false, AR = true), C.Phone
             FROM Customer C, FlightRes F
             WHERE (C.Name = F.PName) AND (F.Dest = 'Asia')",
        )
        .unwrap();
        let iface = v.interface.as_ref().unwrap();
        assert_eq!(iface.len(), 3);
        assert_eq!(iface[0].as_str(), "AName");
    }

    #[test]
    fn ve_symbols() {
        for (txt, want) in [
            ("(VE = equivalent)", ViewExtent::Equivalent),
            ("(VE = superset)", ViewExtent::Superset),
            ("(VE = subset)", ViewExtent::Subset),
            ("(VE = any)", ViewExtent::Any),
            ("(VE = >=)", ViewExtent::Superset),
            ("(VE = <=)", ViewExtent::Subset),
            ("(VE = =)", ViewExtent::Equivalent),
        ] {
            let v = parse_view(&format!("CREATE VIEW V {txt} AS SELECT R.a FROM R")).unwrap();
            assert_eq!(v.extent, want, "for {txt}");
        }
    }

    #[test]
    fn no_where_clause() {
        let v = parse_view("CREATE VIEW V AS SELECT R.a FROM R").unwrap();
        assert!(v.conditions.is_empty());
        assert_eq!(v.extent, ViewExtent::Equivalent);
    }

    #[test]
    fn computed_select_item_with_function() {
        let v = parse_view(
            "CREATE VIEW V AS SELECT (today() - A.Birthday) / 365 AS Age (true, true)
             FROM Accident-Ins A",
        )
        .unwrap();
        assert_eq!(v.select[0].alias.as_ref().unwrap().as_str(), "Age");
        assert!(v.select[0].params.dispensable);
        assert!(v.select[0]
            .expr
            .attrs()
            .contains(&AttrRef::new("Accident-Ins", "Birthday")));
    }

    #[test]
    fn wrong_param_key_rejected() {
        let err = parse_view("CREATE VIEW V AS SELECT R.a (RD = true) FROM R").unwrap_err();
        assert!(err.message.contains("not valid here"), "{err}");
    }

    #[test]
    fn unqualified_attr_rejected() {
        let err = parse_view("CREATE VIEW V AS SELECT Name FROM R").unwrap_err();
        assert!(err.message.contains("qualified"), "{err}");
    }

    #[test]
    fn trailing_garbage_rejected() {
        assert!(parse_view("CREATE VIEW V AS SELECT R.a FROM R garbage garbage").is_err());
    }

    #[test]
    fn relation_used_twice_still_parses() {
        // The validator, not the parser, rejects duplicate relations.
        let v = parse_view("CREATE VIEW V AS SELECT R.a FROM R, R").unwrap();
        assert_eq!(v.from.len(), 2);
    }

    #[test]
    fn date_literal_folds() {
        let v = parse_view("CREATE VIEW V AS SELECT R.a FROM R WHERE R.d = date(100)").unwrap();
        assert_eq!(
            v.conditions[0].clause.rhs,
            ScalarExpr::Const(Value::Date(100))
        );
    }

    #[test]
    fn parenthesised_comparison_both_sides() {
        let v = parse_view("CREATE VIEW V AS SELECT R.a FROM R WHERE (R.a + 1) > (R.a - 1)");
        // `(R.a + 1)` is an expression in parens, not a clause.
        assert!(v.is_ok(), "{v:?}");
    }

    #[test]
    fn alias_same_as_relation() {
        let v = parse_view("CREATE VIEW V AS SELECT Customer.Name FROM Customer Customer").unwrap();
        assert_eq!(v.select[0].expr, ScalarExpr::attr("Customer", "Name"));
    }
}
