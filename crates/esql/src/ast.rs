//! The E-SQL abstract syntax tree.
//!
//! A parsed [`ViewDefinition`] is stored in *resolved* form: FROM-clause
//! aliases (`Customer C`) are eliminated at parse time, so every
//! [`AttrRef`] in the SELECT list and WHERE clause names the base relation
//! directly. This is sound because the paper assumes a relation appears at
//! most once in a FROM clause (§4), making the alias→relation map a
//! bijection.

use eve_relational::{AttrName, AttrRef, Clause, Conjunction, RelName, ScalarExpr};
use std::collections::BTreeSet;
use std::fmt;

/// The pair of evolution parameters attached to every view component
/// (Fig. 3 of the paper).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct EvolutionParams {
    /// May the component be dropped from an evolved definition?
    /// (`AD`/`CD`/`RD` = true).
    pub dispensable: bool,
    /// May the component be replaced during evolution?
    /// (`AR`/`CR`/`RR` = true).
    pub replaceable: bool,
}

impl EvolutionParams {
    /// Explicit constructor `(dispensable, replaceable)` mirroring the
    /// paper's positional notation.
    pub fn new(dispensable: bool, replaceable: bool) -> Self {
        EvolutionParams {
            dispensable,
            replaceable,
        }
    }

    /// The paper's Fig. 3 defaults (underlined values): components are
    /// *indispensable* but *replaceable* — EVE may rewrite them, yet must
    /// not silently drop them.
    pub const DEFAULT: EvolutionParams = EvolutionParams {
        dispensable: false,
        replaceable: true,
    };
}

impl Default for EvolutionParams {
    fn default() -> Self {
        Self::DEFAULT
    }
}

/// The view-extent evolution parameter `VE` (Fig. 3).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum ViewExtent {
    /// `≡` — the new extent must equal the old extent (the default).
    #[default]
    Equivalent,
    /// `⊇` — the new extent must be a superset of the old extent.
    Superset,
    /// `⊆` — the new extent must be a subset of the old extent.
    Subset,
    /// `≈` — the new extent may be anything.
    Any,
}

impl ViewExtent {
    /// Mathematical symbol used by the paper.
    pub fn symbol(self) -> &'static str {
        match self {
            ViewExtent::Equivalent => "≡",
            ViewExtent::Superset => "⊇",
            ViewExtent::Subset => "⊆",
            ViewExtent::Any => "≈",
        }
    }

    /// ASCII keyword used by the canonical printer / parser.
    pub fn keyword(self) -> &'static str {
        match self {
            ViewExtent::Equivalent => "equivalent",
            ViewExtent::Superset => "superset",
            ViewExtent::Subset => "subset",
            ViewExtent::Any => "any",
        }
    }

    /// Parse from keyword or symbol.
    pub fn parse(s: &str) -> Option<ViewExtent> {
        match s.to_ascii_lowercase().as_str() {
            "equivalent" | "equiv" | "=" | "==" | "≡" => Some(ViewExtent::Equivalent),
            "superset" | ">=" | "⊇" => Some(ViewExtent::Superset),
            "subset" | "<=" | "⊆" => Some(ViewExtent::Subset),
            "any" | "~" | "≈" => Some(ViewExtent::Any),
            _ => None,
        }
    }
}

impl fmt::Display for ViewExtent {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.symbol())
    }
}

/// One SELECT-list item: an expression with an optional output alias and
/// evolution parameters `(AD, AR)`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SelectItem {
    /// The projected expression (usually a bare attribute; evolved views
    /// may project computed replacements such as `f(A.Birthday)`).
    pub expr: ScalarExpr,
    /// Optional `AS` alias; also doubles as the interface name when the
    /// view lacks an explicit interface list.
    pub alias: Option<AttrName>,
    /// `(AD, AR)`.
    pub params: EvolutionParams,
}

impl SelectItem {
    /// Plain attribute item with default parameters.
    pub fn attr(rel: impl Into<RelName>, attr: impl Into<AttrName>) -> Self {
        SelectItem {
            expr: ScalarExpr::Attr(AttrRef::new(rel, attr)),
            alias: None,
            params: EvolutionParams::DEFAULT,
        }
    }

    /// Set the parameters (builder style).
    pub fn with_params(mut self, dispensable: bool, replaceable: bool) -> Self {
        self.params = EvolutionParams::new(dispensable, replaceable);
        self
    }

    /// Set the alias (builder style).
    pub fn with_alias(mut self, alias: impl Into<AttrName>) -> Self {
        self.alias = Some(alias.into());
        self
    }

    /// The interface name this item exports: alias if present, else the
    /// attribute name for bare attribute expressions, else `None`
    /// (caller falls back to a positional name).
    pub fn output_name(&self) -> Option<AttrName> {
        if let Some(a) = &self.alias {
            return Some(a.clone());
        }
        match &self.expr {
            ScalarExpr::Attr(a) => Some(a.attr.clone()),
            _ => None,
        }
    }
}

/// One FROM-clause item: a base relation with evolution parameters
/// `(RD, RR)`. The surface alias (if any) is recorded for provenance but
/// plays no semantic role after resolution.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FromItem {
    /// The base relation.
    pub relation: RelName,
    /// Surface alias used in the original text, if any.
    pub alias: Option<RelName>,
    /// `(RD, RR)`.
    pub params: EvolutionParams,
}

impl FromItem {
    /// Item with default parameters and no alias.
    pub fn new(relation: impl Into<RelName>) -> Self {
        FromItem {
            relation: relation.into(),
            alias: None,
            params: EvolutionParams::DEFAULT,
        }
    }

    /// Set the parameters (builder style).
    pub fn with_params(mut self, dispensable: bool, replaceable: bool) -> Self {
        self.params = EvolutionParams::new(dispensable, replaceable);
        self
    }
}

/// One WHERE-clause primitive clause with evolution parameters `(CD, CR)`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CondItem {
    /// The primitive clause.
    pub clause: Clause,
    /// `(CD, CR)`.
    pub params: EvolutionParams,
}

impl CondItem {
    /// Condition with default parameters.
    pub fn new(clause: Clause) -> Self {
        CondItem {
            clause,
            params: EvolutionParams::DEFAULT,
        }
    }

    /// Set the parameters (builder style).
    pub fn with_params(mut self, dispensable: bool, replaceable: bool) -> Self {
        self.params = EvolutionParams::new(dispensable, replaceable);
        self
    }
}

/// A complete E-SQL view definition (resolved form — no aliases in
/// attribute references).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ViewDefinition {
    /// View name.
    pub name: String,
    /// Explicit interface column names, when given
    /// (`CREATE VIEW V (A, B, C) …`). Must match the SELECT arity.
    pub interface: Option<Vec<AttrName>>,
    /// The view-extent parameter `VE`.
    pub extent: ViewExtent,
    /// SELECT list.
    pub select: Vec<SelectItem>,
    /// FROM list.
    pub from: Vec<FromItem>,
    /// WHERE conjunction (empty = no WHERE clause).
    pub conditions: Vec<CondItem>,
}

impl ViewDefinition {
    /// The interface (output column) names: the explicit list when
    /// present, otherwise per-item output names with positional
    /// `col<i>` fallbacks.
    pub fn interface_names(&self) -> Vec<AttrName> {
        if let Some(names) = &self.interface {
            return names.clone();
        }
        self.select
            .iter()
            .enumerate()
            .map(|(i, item)| {
                item.output_name()
                    .unwrap_or_else(|| AttrName::new(format!("col{i}")))
            })
            .collect()
    }

    /// The relations in the FROM clause, in order.
    pub fn relations(&self) -> Vec<RelName> {
        self.from.iter().map(|f| f.relation.clone()).collect()
    }

    /// Does the FROM clause reference `rel`?
    pub fn uses_relation(&self, rel: &RelName) -> bool {
        self.from.iter().any(|f| &f.relation == rel)
    }

    /// The full WHERE conjunction.
    pub fn where_conjunction(&self) -> Conjunction {
        self.conditions.iter().map(|c| c.clause.clone()).collect()
    }

    /// Every attribute referenced anywhere (SELECT + WHERE).
    pub fn referenced_attrs(&self) -> BTreeSet<AttrRef> {
        let mut out = BTreeSet::new();
        for s in &self.select {
            out.extend(s.expr.attrs());
        }
        for c in &self.conditions {
            out.extend(c.clause.attrs());
        }
        out
    }

    /// The attributes of relation `rel` referenced anywhere in the view.
    pub fn attrs_of_relation(&self, rel: &RelName) -> BTreeSet<AttrRef> {
        self.referenced_attrs()
            .into_iter()
            .filter(|a| &a.relation == rel)
            .collect()
    }

    /// *Distinguished* attributes: attributes used by an indispensable
    /// WHERE condition (§4 requires them to be among the preserved
    /// attributes).
    pub fn distinguished_attrs(&self) -> BTreeSet<AttrRef> {
        let mut out = BTreeSet::new();
        for c in &self.conditions {
            if !c.params.dispensable {
                out.extend(c.clause.attrs());
            }
        }
        out
    }

    /// *Preserved* attributes: attributes appearing in the SELECT clause.
    pub fn preserved_attrs(&self) -> BTreeSet<AttrRef> {
        let mut out = BTreeSet::new();
        for s in &self.select {
            out.extend(s.expr.attrs());
        }
        out
    }

    /// Does the view reference `attr` anywhere?
    pub fn uses_attr(&self, attr: &AttrRef) -> bool {
        self.referenced_attrs().contains(attr)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use eve_relational::CompareOp;

    fn sample() -> ViewDefinition {
        ViewDefinition {
            name: "Asia-Customer".into(),
            interface: None,
            extent: ViewExtent::Superset,
            select: vec![
                SelectItem::attr("Customer", "Name"),
                SelectItem::attr("Customer", "Phone").with_params(true, false),
            ],
            from: vec![
                FromItem::new("Customer").with_params(false, true),
                FromItem::new("FlightRes"),
            ],
            conditions: vec![
                CondItem::new(Clause::eq_attrs(
                    AttrRef::new("Customer", "Name"),
                    AttrRef::new("FlightRes", "PName"),
                )),
                CondItem::new(Clause::new(
                    ScalarExpr::attr("FlightRes", "Dest"),
                    CompareOp::Eq,
                    ScalarExpr::lit("Asia"),
                ))
                .with_params(true, true),
            ],
        }
    }

    #[test]
    fn interface_names_default_to_attr_names() {
        let v = sample();
        let names = v.interface_names();
        assert_eq!(names[0].as_str(), "Name");
        assert_eq!(names[1].as_str(), "Phone");
    }

    #[test]
    fn interface_names_explicit_win() {
        let mut v = sample();
        v.interface = Some(vec![AttrName::new("AName"), AttrName::new("APh")]);
        assert_eq!(v.interface_names()[0].as_str(), "AName");
    }

    #[test]
    fn distinguished_and_preserved() {
        let v = sample();
        let d = v.distinguished_attrs();
        assert!(d.contains(&AttrRef::new("Customer", "Name")));
        assert!(d.contains(&AttrRef::new("FlightRes", "PName")));
        // The dispensable Dest condition contributes nothing.
        assert!(!d.contains(&AttrRef::new("FlightRes", "Dest")));
        let p = v.preserved_attrs();
        assert!(p.contains(&AttrRef::new("Customer", "Phone")));
    }

    #[test]
    fn attrs_of_relation() {
        let v = sample();
        let attrs = v.attrs_of_relation(&RelName::new("Customer"));
        assert_eq!(attrs.len(), 2); // Name, Phone
    }

    #[test]
    fn default_params_match_fig3() {
        let p = EvolutionParams::default();
        assert!(!p.dispensable);
        assert!(p.replaceable);
        assert_eq!(ViewExtent::default(), ViewExtent::Equivalent);
    }

    #[test]
    fn view_extent_parse_symbols_and_keywords() {
        assert_eq!(ViewExtent::parse("superset"), Some(ViewExtent::Superset));
        assert_eq!(ViewExtent::parse("⊇"), Some(ViewExtent::Superset));
        assert_eq!(ViewExtent::parse("EQUIV"), Some(ViewExtent::Equivalent));
        assert_eq!(ViewExtent::parse("~"), Some(ViewExtent::Any));
        assert_eq!(ViewExtent::parse("huh"), None);
    }
}
