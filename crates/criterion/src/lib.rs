//! Workspace-local shim for the subset of the `criterion` 0.5 API used
//! by EVE's benches.
//!
//! The build environment has no access to crates.io, so the workspace
//! vendors this minimal timing harness instead of the real `criterion`
//! crate. It keeps the same bench-authoring surface — [`Criterion`],
//! [`BenchmarkGroup`], [`BenchmarkId`], [`Bencher::iter`], and the
//! [`criterion_group!`] / [`criterion_main!`] macros — but reports only
//! mean / min / max wall-clock per iteration, with no statistical
//! analysis, plots, or saved baselines. `cargo bench` output is a
//! one-line summary per benchmark; comparisons across runs are up to
//! the reader (or the `experiments` bin, which does its own timing).

use std::fmt;
use std::time::{Duration, Instant};

/// Opaque hint that `value` is used, preventing the optimiser from
/// deleting the computation under measurement.
pub fn black_box<T>(value: T) -> T {
    std::hint::black_box(value)
}

/// Top-level benchmark driver (builder-style configuration).
pub struct Criterion {
    sample_size: usize,
    warm_up_time: Duration,
    measurement_time: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            sample_size: 20,
            warm_up_time: Duration::from_millis(300),
            measurement_time: Duration::from_millis(900),
        }
    }
}

impl Criterion {
    /// Number of timed samples per benchmark.
    pub fn sample_size(mut self, n: usize) -> Self {
        assert!(n >= 2, "sample_size must be at least 2");
        self.sample_size = n;
        self
    }

    /// Untimed warm-up budget before sampling starts.
    pub fn warm_up_time(mut self, t: Duration) -> Self {
        self.warm_up_time = t;
        self
    }

    /// Total timed budget, split across the samples.
    pub fn measurement_time(mut self, t: Duration) -> Self {
        self.measurement_time = t;
        self
    }

    /// Run a single benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, mut f: F) -> &mut Self {
        let mut b = Bencher::new(self.sample_size, self.warm_up_time, self.measurement_time);
        f(&mut b);
        b.report(id);
        self
    }

    /// Open a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
        }
    }
}

/// A named set of benchmarks sharing the parent configuration.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    /// Run one benchmark of the group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl fmt::Display,
        f: F,
    ) -> &mut Self {
        let full = format!("{}/{}", self.name, id);
        self.criterion.bench_function(&full, f);
        self
    }

    /// Run one parameterised benchmark of the group.
    pub fn bench_with_input<I, F>(&mut self, id: BenchmarkId, input: &I, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        self.bench_function(id, |b| f(b, input))
    }

    /// End the group (kept for API compatibility; reporting is
    /// per-benchmark, so this is a no-op).
    pub fn finish(self) {}
}

/// Identifier for one parameterised benchmark within a group.
pub struct BenchmarkId {
    text: String,
}

impl BenchmarkId {
    /// `function_name/parameter` form.
    pub fn new(function_name: impl fmt::Display, parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            text: format!("{function_name}/{parameter}"),
        }
    }

    /// Parameter-only form.
    pub fn from_parameter(parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            text: parameter.to_string(),
        }
    }
}

impl fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.text)
    }
}

/// Passed to the bench closure; [`Bencher::iter`] times the routine.
pub struct Bencher {
    sample_size: usize,
    warm_up_time: Duration,
    measurement_time: Duration,
    samples: Vec<Duration>,
}

impl Bencher {
    fn new(sample_size: usize, warm_up_time: Duration, measurement_time: Duration) -> Self {
        Bencher {
            sample_size,
            warm_up_time,
            measurement_time,
            samples: Vec::new(),
        }
    }

    /// Time `routine`: warm up until the warm-up budget is spent, then
    /// record `sample_size` samples, each averaging enough iterations to
    /// fill its share of the measurement budget.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Warm-up doubles as calibration for the per-sample iteration count.
        let warm_start = Instant::now();
        let mut warm_iters: u64 = 0;
        while warm_start.elapsed() < self.warm_up_time || warm_iters == 0 {
            black_box(routine());
            warm_iters += 1;
        }
        let per_iter = warm_start.elapsed() / warm_iters as u32;
        let per_sample = self.measurement_time / self.sample_size as u32;
        let iters = (per_sample.as_nanos() / per_iter.as_nanos().max(1)).clamp(1, 1_000_000) as u32;

        self.samples = (0..self.sample_size)
            .map(|_| {
                let start = Instant::now();
                for _ in 0..iters {
                    black_box(routine());
                }
                start.elapsed() / iters
            })
            .collect();
    }

    fn report(&self, id: &str) {
        if self.samples.is_empty() {
            println!("{id:<48} (no samples)");
            return;
        }
        let total: Duration = self.samples.iter().sum();
        let mean = total / self.samples.len() as u32;
        let min = self.samples.iter().min().unwrap();
        let max = self.samples.iter().max().unwrap();
        println!(
            "{id:<48} time: [{} {} {}]",
            fmt_duration(*min),
            fmt_duration(mean),
            fmt_duration(*max)
        );
    }
}

fn fmt_duration(d: Duration) -> String {
    let nanos = d.as_nanos();
    if nanos < 1_000 {
        format!("{nanos} ns")
    } else if nanos < 1_000_000 {
        format!("{:.2} µs", nanos as f64 / 1_000.0)
    } else if nanos < 1_000_000_000 {
        format!("{:.2} ms", nanos as f64 / 1_000_000.0)
    } else {
        format!("{:.2} s", nanos as f64 / 1_000_000_000.0)
    }
}

/// Declare a benchmark group function, mirroring criterion's
/// `name = ...; config = ...; targets = ...` form (the positional form
/// is also accepted).
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion: $crate::Criterion = $config;
            $($target(&mut criterion);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group! {
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        }
    };
}

/// Emit the bench `main` that runs the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick() -> Criterion {
        Criterion::default()
            .sample_size(2)
            .warm_up_time(Duration::from_millis(1))
            .measurement_time(Duration::from_millis(4))
    }

    #[test]
    fn bench_function_runs_routine() {
        let mut ran = 0u64;
        quick().bench_function("smoke", |b| b.iter(|| ran += 1));
        assert!(ran > 0);
    }

    #[test]
    fn groups_and_ids_compose() {
        let mut c = quick();
        let mut group = c.benchmark_group("g");
        group.bench_with_input(BenchmarkId::new("f", 3), &3u32, |b, n| {
            b.iter(|| black_box(*n) * 2)
        });
        group.bench_with_input(BenchmarkId::from_parameter("p"), &(), |b, _| b.iter(|| ()));
        group.finish();
        assert_eq!(BenchmarkId::new("f", 3).to_string(), "f/3");
    }
}
