//! A minimal scoped **work-stealing thread pool**, vendored for the EVE
//! workspace (the build environment has no route to crates.io, so this
//! plays the role `rayon` would otherwise play — same offline-shim
//! pattern as the workspace's `rand`/`proptest`/`criterion` crates).
//!
//! The one entry point, [`map_in_order`], runs a closure over a batch of
//! work items on `threads` scoped OS threads and returns the results **in
//! input order**, so callers that must produce deterministic,
//! order-sensitive output (like the view synchronizer merging per-view
//! outcomes back in registration order) can parallelize without changing
//! observable behaviour.
//!
//! Design:
//!
//! * **Scoped** — workers are spawned with [`std::thread::scope`], so the
//!   closure may borrow from the caller's stack (the synchronizer shares
//!   one `&MkbIndex` across all workers without `Arc`ing its world).
//!   Threads live for one batch; for the intended workload (tens to
//!   hundreds of view rewrites, each microseconds to milliseconds) the
//!   ~10 µs spawn cost per worker is noise.
//! * **Work-stealing** — items are dealt round-robin into one deque per
//!   worker; a worker pops from the *front* of its own deque and, when
//!   empty, steals from the *back* of a victim's. Skewed batches (one
//!   expensive view among many trivial ones) therefore still keep every
//!   worker busy.
//! * **Panic-containing** — each work item runs under
//!   [`std::panic::catch_unwind`]; a panicking item yields
//!   `Err(`[`TaskPanic`]`)` *for that slot only*, every other item's
//!   result survives. Callers that want the old fail-fast behaviour call
//!   [`TaskPanic::resume`] on the first error.
//!
//! No `catch_unwind` footgun applies here: the closure is `Sync` and
//! called by shared reference, the pool hands each item to exactly one
//! call, and a caught task's partial effects are confined to whatever
//! the closure itself shared — the same exposure the panic-transparent
//! version had while the scope unwound.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::any::Any;
use std::collections::VecDeque;
use std::fmt;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::Mutex;

/// A panic captured at a task boundary: which input item unwound, the
/// best-effort textual message, and the original payload (so callers can
/// downcast typed payloads — e.g. `eve-faults`' injected faults — or
/// re-raise with [`TaskPanic::resume`]).
pub struct TaskPanic {
    /// Index of the input item whose task panicked.
    pub index: usize,
    /// The panic message when the payload was a string, a placeholder
    /// otherwise.
    pub message: String,
    /// The original panic payload.
    pub payload: Box<dyn Any + Send>,
}

impl TaskPanic {
    /// Re-raise the captured panic on the current thread (restores the
    /// pre-containment fail-fast behaviour).
    pub fn resume(self) -> ! {
        std::panic::resume_unwind(self.payload)
    }
}

impl fmt::Debug for TaskPanic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("TaskPanic")
            .field("index", &self.index)
            .field("message", &self.message)
            .finish_non_exhaustive()
    }
}

impl fmt::Display for TaskPanic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "task {} panicked: {}", self.index, self.message)
    }
}

fn panic_message(payload: &(dyn Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

/// Run `f()` for input item `index`, containing an unwind into
/// `Err(TaskPanic)`. This is the per-item capture [`map_in_order`] uses,
/// exposed so callers re-running a failed item (retry policies) capture
/// the retry's panic identically.
pub fn call_caught<R>(index: usize, f: impl FnOnce() -> R) -> Result<R, TaskPanic> {
    catch_unwind(AssertUnwindSafe(f)).map_err(|payload| TaskPanic {
        index,
        message: panic_message(payload.as_ref()),
        payload,
    })
}

/// One worker's deque of `(input index, item)` pairs, lock-protected so
/// that other workers can steal from it.
struct Deque<T> {
    items: Mutex<VecDeque<(usize, T)>>,
}

impl<T> Deque<T> {
    fn new() -> Self {
        Deque {
            items: Mutex::new(VecDeque::new()),
        }
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, VecDeque<(usize, T)>> {
        // Task panics are contained, but defensive recovery keeps the
        // pool usable even if an unwind ever crosses a lock again.
        self.items.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Pop from the owner's end.
    fn pop_front(&self) -> Option<(usize, T)> {
        self.lock().pop_front()
    }

    /// Steal from the victim's end.
    fn steal_back(&self) -> Option<(usize, T)> {
        self.lock().pop_back()
    }
}

/// Map `f` over `items` on up to `threads` scoped worker threads,
/// returning the per-item results in **input order**.
///
/// `f` receives `(index, item)` — the index of the item in `items` — and
/// must be callable from any worker (`Sync`, called by shared reference).
/// With `threads <= 1`, a single item, or an empty batch, everything runs
/// inline on the caller's thread: no worker is spawned and the call is
/// exactly a sequential `map`.  The worker count is additionally capped
/// at the batch size — spawning more threads than items buys nothing.
///
/// A panicking item does **not** kill the batch: its slot comes back as
/// `Err(`[`TaskPanic`]`)` (message + payload captured) while every other
/// item completes normally. Fail-fast callers can
/// `result?.unwrap_or_else(|p| p.resume())`.
pub fn map_in_order<T, R, F>(threads: usize, items: Vec<T>, f: F) -> Vec<Result<R, TaskPanic>>
where
    T: Send,
    R: Send,
    F: Fn(usize, T) -> R + Sync,
{
    let n = items.len();
    let workers = threads.min(n);
    if workers <= 1 {
        return items
            .into_iter()
            .enumerate()
            .map(|(i, t)| call_caught(i, || f(i, t)))
            .collect();
    }

    // Deal items round-robin so each worker starts with an even share
    // (and with *interleaved* indices — consecutive expensive items land
    // on different workers).
    let deques: Vec<Deque<T>> = (0..workers).map(|_| Deque::new()).collect();
    for (i, item) in items.into_iter().enumerate() {
        deques[i % workers].lock().push_back((i, item));
    }

    let f = &f;
    let deques = &deques;
    let mut results: Vec<Option<Result<R, TaskPanic>>> = Vec::with_capacity(n);
    results.resize_with(n, || None);

    let chunks = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..workers)
            .map(|me| {
                scope.spawn(move || {
                    let mut done: Vec<(usize, Result<R, TaskPanic>)> = Vec::new();
                    loop {
                        // Own work first, then sweep the victims once.
                        let next = deques[me].pop_front().or_else(|| {
                            (1..workers)
                                .map(|k| (me + k) % workers)
                                .find_map(|victim| deques[victim].steal_back())
                        });
                        match next {
                            Some((i, item)) => done.push((i, call_caught(i, || f(i, item)))),
                            // Every deque was empty on a full sweep: the
                            // batch is exhausted (no worker ever re-queues
                            // work, so emptiness is stable).
                            None => break,
                        }
                    }
                    done
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| match h.join() {
                Ok(chunk) => chunk,
                // Unreachable in practice — tasks are caught — but a
                // panic outside any task (e.g. allocation failure in the
                // worker loop) still propagates rather than vanishing.
                Err(payload) => std::panic::resume_unwind(payload),
            })
            .collect::<Vec<_>>()
    });

    for (i, r) in chunks.into_iter().flatten() {
        debug_assert!(results[i].is_none(), "item {i} processed twice");
        results[i] = Some(r);
    }
    results
        .into_iter()
        .map(|r| r.expect("every index processed exactly once"))
        .collect()
}

/// The parallelism the host offers: [`std::thread::available_parallelism`]
/// with a serial fallback when the platform cannot say.
pub fn available_parallelism() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    fn unwrap_all<R>(results: Vec<Result<R, TaskPanic>>) -> Vec<R> {
        results
            .into_iter()
            .map(|r| r.unwrap_or_else(|p| p.resume()))
            .collect()
    }

    #[test]
    fn preserves_input_order() {
        for threads in [1, 2, 3, 8, 33] {
            let items: Vec<usize> = (0..100).collect();
            let out = unwrap_all(map_in_order(threads, items, |i, x| {
                assert_eq!(i, x);
                x * 2
            }));
            assert_eq!(out, (0..100).map(|x| x * 2).collect::<Vec<_>>());
        }
    }

    #[test]
    fn empty_and_singleton_run_inline() {
        let out: Vec<u32> = unwrap_all(map_in_order(8, Vec::<u32>::new(), |_, x| x));
        assert!(out.is_empty());
        let out = unwrap_all(map_in_order(8, vec![41], |_, x| x + 1));
        assert_eq!(out, vec![42]);
    }

    #[test]
    fn skewed_batch_is_stolen() {
        // One item is ~1000x the others; with 4 workers the small items
        // must not wait behind it. We can't assert timing robustly, but we
        // can assert that more than one thread participated.
        let seen = Mutex::new(std::collections::HashSet::new());
        let items: Vec<u64> = (0..64)
            .map(|i| if i == 0 { 5_000_000 } else { 5_000 })
            .collect();
        let out = unwrap_all(map_in_order(4, items, |_, spins| {
            seen.lock().unwrap().insert(std::thread::current().id());
            let mut acc = 0u64;
            for k in 0..spins {
                acc = acc.wrapping_add(std::hint::black_box(k));
            }
            acc
        }));
        assert_eq!(out.len(), 64);
        assert!(seen.lock().unwrap().len() > 1, "work never spread");
    }

    #[test]
    fn borrows_from_callers_stack() {
        let base = 10usize;
        let counter = AtomicUsize::new(0);
        let out = unwrap_all(map_in_order(4, vec![1, 2, 3, 4], |_, x| {
            counter.fetch_add(1, Ordering::Relaxed);
            base + x
        }));
        assert_eq!(out, vec![11, 12, 13, 14]);
        assert_eq!(counter.load(Ordering::Relaxed), 4);
    }

    #[test]
    fn worker_panic_is_contained_to_its_slot() {
        for threads in [1, 4] {
            let results = map_in_order(threads, (0..16).collect::<Vec<_>>(), |_, x: i32| {
                if x == 7 {
                    panic!("boom {x}");
                }
                x * 10
            });
            assert_eq!(results.len(), 16);
            for (i, r) in results.into_iter().enumerate() {
                if i == 7 {
                    let p = r.expect_err("slot 7 panicked");
                    assert_eq!(p.index, 7);
                    assert_eq!(p.message, "boom 7");
                    assert_eq!(p.to_string(), "task 7 panicked: boom 7");
                } else {
                    assert_eq!(r.expect("other slots complete"), i as i32 * 10);
                }
            }
        }
    }

    #[test]
    fn typed_panic_payload_survives_capture() {
        #[derive(Debug, PartialEq)]
        struct Marker(u32);
        let mut results = map_in_order(2, vec![0u32, 1], |_, x| {
            if x == 1 {
                std::panic::panic_any(Marker(99));
            }
            x
        });
        let err = results.pop().unwrap().expect_err("panicked");
        assert_eq!(err.payload.downcast_ref::<Marker>(), Some(&Marker(99)));
        assert_eq!(err.message, "non-string panic payload");
        assert_eq!(results.pop().unwrap().expect("ok"), 0);
    }

    #[test]
    #[should_panic(expected = "boom")]
    fn resume_restores_fail_fast() {
        let results = map_in_order(4, (0..16).collect::<Vec<_>>(), |_, x: i32| {
            if x == 7 {
                panic!("boom");
            }
            x
        });
        let _ = unwrap_all(results);
    }

    #[test]
    fn call_caught_passes_through_success() {
        assert_eq!(call_caught(3, || 42).expect("ok"), 42);
        let err = call_caught(3, || -> u32 { panic!("nope") }).expect_err("caught");
        assert_eq!((err.index, err.message.as_str()), (3, "nope"));
    }

    #[test]
    fn available_parallelism_positive() {
        assert!(available_parallelism() >= 1);
    }
}
