//! A named collection of relation instances — one concrete *state of the
//! information space* (the union of the states of all ISs).

use crate::error::RelationalError;
use crate::relation::Relation;
use crate::schema::RelName;
use std::collections::BTreeMap;
use std::fmt;

/// A database: relation name → instance.
#[derive(Debug, Clone, Default)]
pub struct Database {
    relations: BTreeMap<RelName, Relation>,
}

impl Database {
    /// Empty database.
    pub fn new() -> Self {
        Database::default()
    }

    /// Insert or replace a relation instance.
    pub fn put(&mut self, name: impl Into<RelName>, rel: Relation) {
        self.relations.insert(name.into(), rel);
    }

    /// Look up a relation.
    pub fn get(&self, name: &RelName) -> Option<&Relation> {
        self.relations.get(name)
    }

    /// Look up a relation, erroring when absent.
    pub fn require(&self, name: &RelName) -> Result<&Relation, RelationalError> {
        self.relations
            .get(name)
            .ok_or_else(|| RelationalError::UnknownRelation(name.clone()))
    }

    /// Remove a relation (models the IS dropping it); returns the removed
    /// instance, if any.
    pub fn remove(&mut self, name: &RelName) -> Option<Relation> {
        self.relations.remove(name)
    }

    /// True iff the relation exists.
    pub fn contains(&self, name: &RelName) -> bool {
        self.relations.contains_key(name)
    }

    /// Relation names, sorted.
    pub fn names(&self) -> impl Iterator<Item = &RelName> {
        self.relations.keys()
    }

    /// Number of relations.
    pub fn len(&self) -> usize {
        self.relations.len()
    }

    /// True when the database holds no relations.
    pub fn is_empty(&self) -> bool {
        self.relations.is_empty()
    }
}

impl fmt::Display for Database {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (name, rel) in &self.relations {
            writeln!(f, "{name} [{} tuples] {}", rel.len(), rel.schema())?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::{AttributeDef, Schema};
    use crate::types::DataType;

    #[test]
    fn put_get_remove() {
        let mut db = Database::new();
        let name = RelName::new("R");
        let rel = Relation::new(Schema::of_relation(
            &name,
            &[AttributeDef::new("x", DataType::Int)],
        ));
        db.put(name.clone(), rel);
        assert!(db.contains(&name));
        assert!(db.require(&name).is_ok());
        assert!(db.remove(&name).is_some());
        assert!(matches!(
            db.require(&name),
            Err(RelationalError::UnknownRelation(_))
        ));
    }
}
