//! Scalar expressions: attribute references, constants, arithmetic and
//! named-function application.
//!
//! Scalar expressions appear in three places in the EVE framework:
//!
//! 1. the SELECT list of an (evolved) E-SQL view — e.g. Eq. (13) of the
//!    paper projects `f(A.Birthday)` after the `Customer.Age` attribute is
//!    replaced through function-of constraint `F3`;
//! 2. the right-hand side of MISD function-of constraints, e.g.
//!    `Customer.Age = (today() − Accident-Ins.Birthday)/365`;
//! 3. both sides of primitive clauses ([`crate::pred::Clause`]).
//!
//! Attribute substitution ([`ScalarExpr::substitute`]) is the workhorse of
//! CVS Step 4: every occurrence of a dropped relation's attribute is
//! replaced by its *replacement expression* `f(S.B)`.

use crate::error::RelationalError;
use crate::func::FuncRegistry;
use crate::schema::{AttrRef, RelName, Schema};
use crate::tuple::Tuple;
use crate::types::Value;
use std::collections::BTreeSet;
use std::fmt;

/// Binary arithmetic operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum ArithOp {
    /// Addition.
    Add,
    /// Subtraction.
    Sub,
    /// Multiplication.
    Mul,
    /// Division (integer division when both operands are integers).
    Div,
}

impl ArithOp {
    /// Symbol as written in E-SQL / MISD text.
    pub fn symbol(self) -> &'static str {
        match self {
            ArithOp::Add => "+",
            ArithOp::Sub => "-",
            ArithOp::Mul => "*",
            ArithOp::Div => "/",
        }
    }

    fn apply(self, l: &Value, r: &Value) -> Value {
        // Integer-preserving arithmetic when both sides are integers (or
        // dates, which are day counts); float otherwise.
        match (l, r) {
            (Value::Null, _) | (_, Value::Null) => Value::Null,
            (Value::Int(a), Value::Int(b)) => match self {
                ArithOp::Add => Value::Int(a.wrapping_add(*b)),
                ArithOp::Sub => Value::Int(a.wrapping_sub(*b)),
                ArithOp::Mul => Value::Int(a.wrapping_mul(*b)),
                ArithOp::Div => {
                    if *b == 0 {
                        Value::Null
                    } else {
                        Value::Int(a.wrapping_div(*b))
                    }
                }
            },
            (Value::Date(a), Value::Date(b)) if self == ArithOp::Sub => Value::Int(a - b),
            _ => match (l.as_f64(), r.as_f64()) {
                (Some(a), Some(b)) => match self {
                    ArithOp::Add => Value::float(a + b),
                    ArithOp::Sub => Value::float(a - b),
                    ArithOp::Mul => Value::float(a * b),
                    ArithOp::Div => {
                        if b == 0.0 {
                            Value::Null
                        } else {
                            Value::float(a / b)
                        }
                    }
                },
                _ => Value::Null,
            },
        }
    }
}

/// A scalar expression tree.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum ScalarExpr {
    /// A qualified attribute reference `R.A`.
    Attr(AttrRef),
    /// A literal constant.
    Const(Value),
    /// Binary arithmetic.
    Binary {
        /// Operator.
        op: ArithOp,
        /// Left operand.
        lhs: Box<ScalarExpr>,
        /// Right operand.
        rhs: Box<ScalarExpr>,
    },
    /// Named function application `f(e1, …, en)`.
    Call {
        /// Function name, resolved through a [`FuncRegistry`] at eval time.
        func: String,
        /// Arguments.
        args: Vec<ScalarExpr>,
    },
}

impl ScalarExpr {
    /// Attribute reference shorthand.
    pub fn attr(rel: impl Into<RelName>, attr: impl Into<crate::schema::AttrName>) -> Self {
        ScalarExpr::Attr(AttrRef::new(rel, attr))
    }

    /// Constant shorthand.
    pub fn lit(v: impl Into<Value>) -> Self {
        ScalarExpr::Const(v.into())
    }

    /// Binary arithmetic shorthand.
    pub fn binary(op: ArithOp, lhs: ScalarExpr, rhs: ScalarExpr) -> Self {
        ScalarExpr::Binary {
            op,
            lhs: Box::new(lhs),
            rhs: Box::new(rhs),
        }
    }

    /// Function call shorthand.
    pub fn call(func: impl Into<String>, args: Vec<ScalarExpr>) -> Self {
        ScalarExpr::Call {
            func: func.into(),
            args,
        }
    }

    /// Evaluate against a tuple under the given schema and function
    /// registry.
    pub fn eval(
        &self,
        schema: &Schema,
        tuple: &Tuple,
        funcs: &FuncRegistry,
    ) -> Result<Value, RelationalError> {
        match self {
            ScalarExpr::Attr(a) => {
                let idx = schema
                    .index_of(a)
                    .ok_or_else(|| RelationalError::UnknownAttribute(a.clone()))?;
                Ok(tuple.get(idx).cloned().unwrap_or(Value::Null))
            }
            ScalarExpr::Const(v) => Ok(v.clone()),
            ScalarExpr::Binary { op, lhs, rhs } => {
                let l = lhs.eval(schema, tuple, funcs)?;
                let r = rhs.eval(schema, tuple, funcs)?;
                Ok(op.apply(&l, &r))
            }
            ScalarExpr::Call { func, args } => {
                let vals = args
                    .iter()
                    .map(|a| a.eval(schema, tuple, funcs))
                    .collect::<Result<Vec<_>, _>>()?;
                funcs.call(func, &vals)
            }
        }
    }

    /// Collect every attribute referenced by this expression.
    pub fn attrs(&self) -> BTreeSet<AttrRef> {
        let mut out = BTreeSet::new();
        self.collect_attrs(&mut out);
        out
    }

    fn collect_attrs(&self, out: &mut BTreeSet<AttrRef>) {
        match self {
            ScalarExpr::Attr(a) => {
                out.insert(a.clone());
            }
            ScalarExpr::Const(_) => {}
            ScalarExpr::Binary { lhs, rhs, .. } => {
                lhs.collect_attrs(out);
                rhs.collect_attrs(out);
            }
            ScalarExpr::Call { args, .. } => {
                for a in args {
                    a.collect_attrs(out);
                }
            }
        }
    }

    /// All relations mentioned by this expression.
    pub fn relations(&self) -> BTreeSet<RelName> {
        self.attrs().into_iter().map(|a| a.relation).collect()
    }

    /// Does the expression reference attribute `target`? Equivalent to
    /// `self.attrs().contains(target)` without materialising the set.
    pub fn contains_attr(&self, target: &AttrRef) -> bool {
        match self {
            ScalarExpr::Attr(a) => a == target,
            ScalarExpr::Const(_) => false,
            ScalarExpr::Binary { lhs, rhs, .. } => {
                lhs.contains_attr(target) || rhs.contains_attr(target)
            }
            ScalarExpr::Call { args, .. } => args.iter().any(|a| a.contains_attr(target)),
        }
    }

    /// Does the expression reference any attribute of relation `rel`?
    /// Equivalent to `self.relations().contains(rel)` without
    /// materialising the set.
    pub fn references_relation(&self, rel: &RelName) -> bool {
        match self {
            ScalarExpr::Attr(a) => &a.relation == rel,
            ScalarExpr::Const(_) => false,
            ScalarExpr::Binary { lhs, rhs, .. } => {
                lhs.references_relation(rel) || rhs.references_relation(rel)
            }
            ScalarExpr::Call { args, .. } => args.iter().any(|a| a.references_relation(rel)),
        }
    }

    /// True iff the expression references no attributes (it is a constant
    /// expression, possibly via nullary functions such as `today()`).
    pub fn is_constant(&self) -> bool {
        self.attrs().is_empty()
    }

    /// Replace every occurrence of attribute `target` by `replacement`.
    ///
    /// This implements the attribute-substitution step of CVS (Step 4 and
    /// Def. 3 (V) of the paper): a dropped relation's attribute `R.A` is
    /// replaced throughout the view by its replacement `f(S.B)`.
    pub fn substitute(&self, target: &AttrRef, replacement: &ScalarExpr) -> ScalarExpr {
        match self {
            ScalarExpr::Attr(a) if a == target => replacement.clone(),
            ScalarExpr::Attr(_) | ScalarExpr::Const(_) => self.clone(),
            ScalarExpr::Binary { op, lhs, rhs } => ScalarExpr::Binary {
                op: *op,
                lhs: Box::new(lhs.substitute(target, replacement)),
                rhs: Box::new(rhs.substitute(target, replacement)),
            },
            ScalarExpr::Call { func, args } => ScalarExpr::Call {
                func: func.clone(),
                args: args
                    .iter()
                    .map(|a| a.substitute(target, replacement))
                    .collect(),
            },
        }
    }

    /// Rename every reference to relation `from` into `to` (used when a
    /// capability change renames a relation, and when binding view aliases
    /// to base relations).
    pub fn rename_relation(&self, from: &RelName, to: &RelName) -> ScalarExpr {
        match self {
            ScalarExpr::Attr(a) if &a.relation == from => {
                ScalarExpr::Attr(AttrRef::new(to.clone(), a.attr.clone()))
            }
            ScalarExpr::Attr(_) | ScalarExpr::Const(_) => self.clone(),
            ScalarExpr::Binary { op, lhs, rhs } => ScalarExpr::Binary {
                op: *op,
                lhs: Box::new(lhs.rename_relation(from, to)),
                rhs: Box::new(rhs.rename_relation(from, to)),
            },
            ScalarExpr::Call { func, args } => ScalarExpr::Call {
                func: func.clone(),
                args: args.iter().map(|a| a.rename_relation(from, to)).collect(),
            },
        }
    }
}

impl ScalarExpr {
    /// Append the canonical textual form to `out` — byte-identical to
    /// the [`fmt::Display`] output, without the formatter machinery.
    pub fn render_into(&self, out: &mut String) {
        match self {
            ScalarExpr::Attr(a) => {
                out.push_str(a.relation.as_str());
                out.push('.');
                out.push_str(a.attr.as_str());
            }
            ScalarExpr::Const(v) => v.render_into(out),
            ScalarExpr::Binary { op, lhs, rhs } => {
                out.push('(');
                lhs.render_into(out);
                out.push(' ');
                out.push_str(op.symbol());
                out.push(' ');
                rhs.render_into(out);
                out.push(')');
            }
            ScalarExpr::Call { func, args } => {
                out.push_str(func);
                out.push('(');
                for (i, a) in args.iter().enumerate() {
                    if i > 0 {
                        out.push_str(", ");
                    }
                    a.render_into(out);
                }
                out.push(')');
            }
        }
    }
}

impl fmt::Display for ScalarExpr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ScalarExpr::Attr(a) => write!(f, "{a}"),
            ScalarExpr::Const(v) => write!(f, "{v}"),
            ScalarExpr::Binary { op, lhs, rhs } => {
                write!(f, "({} {} {})", lhs, op.symbol(), rhs)
            }
            ScalarExpr::Call { func, args } => {
                write!(f, "{func}(")?;
                for (i, a) in args.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{a}")?;
                }
                write!(f, ")")
            }
        }
    }
}

impl From<AttrRef> for ScalarExpr {
    fn from(a: AttrRef) -> Self {
        ScalarExpr::Attr(a)
    }
}
impl From<Value> for ScalarExpr {
    fn from(v: Value) -> Self {
        ScalarExpr::Const(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::func::DEFAULT_TODAY;
    use crate::schema::AttributeDef;
    use crate::types::DataType;

    fn schema() -> Schema {
        Schema::of_relation(
            &RelName::new("R"),
            &[
                AttributeDef::new("x", DataType::Int),
                AttributeDef::new("d", DataType::Date),
            ],
        )
    }

    #[test]
    fn eval_arithmetic() {
        let s = schema();
        let funcs = FuncRegistry::new();
        let t = Tuple::new(vec![Value::Int(10), Value::Date(100)]);
        let e = ScalarExpr::binary(
            ArithOp::Mul,
            ScalarExpr::attr("R", "x"),
            ScalarExpr::lit(3i64),
        );
        assert_eq!(e.eval(&s, &t, &funcs).unwrap(), Value::Int(30));
    }

    #[test]
    fn eval_age_from_birthday_like_f3() {
        // F3: Age = (today() - Birthday)/365
        let s = schema();
        let funcs = FuncRegistry::new();
        let t = Tuple::new(vec![Value::Int(0), Value::Date(DEFAULT_TODAY - 365 * 30)]);
        let e = ScalarExpr::binary(
            ArithOp::Div,
            ScalarExpr::binary(
                ArithOp::Sub,
                ScalarExpr::call("today", vec![]),
                ScalarExpr::attr("R", "d"),
            ),
            ScalarExpr::lit(365i64),
        );
        assert_eq!(e.eval(&s, &t, &funcs).unwrap(), Value::Int(30));
    }

    #[test]
    fn eval_null_propagates() {
        let s = schema();
        let funcs = FuncRegistry::new();
        let t = Tuple::new(vec![Value::Null, Value::Date(5)]);
        let e = ScalarExpr::binary(
            ArithOp::Add,
            ScalarExpr::attr("R", "x"),
            ScalarExpr::lit(1i64),
        );
        assert_eq!(e.eval(&s, &t, &funcs).unwrap(), Value::Null);
    }

    #[test]
    fn division_by_zero_is_null() {
        let s = schema();
        let funcs = FuncRegistry::new();
        let t = Tuple::new(vec![Value::Int(1), Value::Date(5)]);
        let e = ScalarExpr::binary(
            ArithOp::Div,
            ScalarExpr::attr("R", "x"),
            ScalarExpr::lit(0i64),
        );
        assert_eq!(e.eval(&s, &t, &funcs).unwrap(), Value::Null);
    }

    #[test]
    fn unknown_attribute_errors() {
        let s = schema();
        let funcs = FuncRegistry::new();
        let t = Tuple::new(vec![Value::Int(1), Value::Date(5)]);
        let e = ScalarExpr::attr("R", "nope");
        assert!(matches!(
            e.eval(&s, &t, &funcs),
            Err(RelationalError::UnknownAttribute(_))
        ));
    }

    #[test]
    fn substitute_replaces_everywhere() {
        let target = AttrRef::new("Customer", "Age");
        let replacement = ScalarExpr::binary(
            ArithOp::Div,
            ScalarExpr::binary(
                ArithOp::Sub,
                ScalarExpr::call("today", vec![]),
                ScalarExpr::attr("Accident-Ins", "Birthday"),
            ),
            ScalarExpr::lit(365i64),
        );
        let e = ScalarExpr::binary(
            ArithOp::Add,
            ScalarExpr::Attr(target.clone()),
            ScalarExpr::Attr(target.clone()),
        );
        let e2 = e.substitute(&target, &replacement);
        assert!(e2
            .attrs()
            .contains(&AttrRef::new("Accident-Ins", "Birthday")));
        assert!(!e2.attrs().contains(&target));
    }

    #[test]
    fn rename_relation() {
        let e = ScalarExpr::binary(
            ArithOp::Add,
            ScalarExpr::attr("C", "Age"),
            ScalarExpr::attr("D", "Age"),
        );
        let e2 = e.rename_relation(&RelName::new("C"), &RelName::new("Customer"));
        assert!(e2.attrs().contains(&AttrRef::new("Customer", "Age")));
        assert!(e2.attrs().contains(&AttrRef::new("D", "Age")));
    }

    #[test]
    fn display_roundtrip_shapes() {
        let e = ScalarExpr::binary(
            ArithOp::Div,
            ScalarExpr::call("today", vec![]),
            ScalarExpr::lit(365i64),
        );
        assert_eq!(e.to_string(), "(today() / 365)");
    }

    #[test]
    fn is_constant() {
        assert!(ScalarExpr::lit(1i64).is_constant());
        assert!(ScalarExpr::call("today", vec![]).is_constant());
        assert!(!ScalarExpr::attr("R", "x").is_constant());
    }
}
