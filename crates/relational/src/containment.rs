//! Extent comparison under set semantics.
//!
//! Implements the relation `θ ∈ {⊂, ⊆, ≡, ⊇, ⊃}` between two extents, as
//! used by
//!
//! * partial/complete MISD constraints (Fig. 1):
//!   `PC_{R1,R2} = (π_{A1}(σ_{C(B1)} R1) θ π_{A2}(σ_{C(B2)} R2))`, and
//! * the view-extent parameter check P3 (Def. 1): comparing
//!   `π_{B_V ∩ B_V'}(V')` against `π_{B_V ∩ B_V'}(V)`.
//!
//! Comparison ignores column *names* — only positional tuple values matter
//! (the projections being compared are arranged to align columns) — but
//! requires equal arity.

use crate::relation::Relation;
use std::fmt;

/// The exact set relationship between two extents.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ExtentRelation {
    /// Extents are equal.
    Equivalent,
    /// Left is a proper subset of right.
    ProperSubset,
    /// Left is a proper superset of right.
    ProperSuperset,
    /// Neither contains the other.
    Incomparable,
}

impl ExtentRelation {
    /// `left ⊆ right`?
    pub fn is_subset(self) -> bool {
        matches!(
            self,
            ExtentRelation::Equivalent | ExtentRelation::ProperSubset
        )
    }

    /// `left ⊇ right`?
    pub fn is_superset(self) -> bool {
        matches!(
            self,
            ExtentRelation::Equivalent | ExtentRelation::ProperSuperset
        )
    }

    /// `left ≡ right`?
    pub fn is_equivalent(self) -> bool {
        self == ExtentRelation::Equivalent
    }

    /// Mathematical symbol.
    pub fn symbol(self) -> &'static str {
        match self {
            ExtentRelation::Equivalent => "≡",
            ExtentRelation::ProperSubset => "⊂",
            ExtentRelation::ProperSuperset => "⊃",
            ExtentRelation::Incomparable => "≬",
        }
    }
}

impl fmt::Display for ExtentRelation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.symbol())
    }
}

/// Compare the extents of two relations positionally.
///
/// # Panics
///
/// Panics when arities differ — callers must align projections first; a
/// mismatch is a logic error, not a data condition.
pub fn compare_extents(left: &Relation, right: &Relation) -> ExtentRelation {
    assert_eq!(
        left.schema().arity(),
        right.schema().arity(),
        "extent comparison requires equal arity"
    );
    let l = left.row_set();
    let r = right.row_set();
    let l_in_r = l.is_subset(r);
    let r_in_l = r.is_subset(l);
    match (l_in_r, r_in_l) {
        (true, true) => ExtentRelation::Equivalent,
        (true, false) => ExtentRelation::ProperSubset,
        (false, true) => ExtentRelation::ProperSuperset,
        (false, false) => ExtentRelation::Incomparable,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::{AttrRef, Schema};
    use crate::tuple::Tuple;
    use crate::types::{DataType, Value};

    fn rel(vals: &[i64]) -> Relation {
        let schema = Schema::from_columns(vec![(AttrRef::new("R", "x"), DataType::Int)]).unwrap();
        Relation::from_rows(
            schema,
            vals.iter().map(|v| Tuple::new(vec![Value::Int(*v)])),
        )
        .unwrap()
    }

    #[test]
    fn all_four_relations() {
        assert_eq!(
            compare_extents(&rel(&[1, 2]), &rel(&[1, 2])),
            ExtentRelation::Equivalent
        );
        assert_eq!(
            compare_extents(&rel(&[1]), &rel(&[1, 2])),
            ExtentRelation::ProperSubset
        );
        assert_eq!(
            compare_extents(&rel(&[1, 2, 3]), &rel(&[1, 2])),
            ExtentRelation::ProperSuperset
        );
        assert_eq!(
            compare_extents(&rel(&[1, 3]), &rel(&[1, 2])),
            ExtentRelation::Incomparable
        );
    }

    #[test]
    fn empty_edge_cases() {
        assert_eq!(
            compare_extents(&rel(&[]), &rel(&[])),
            ExtentRelation::Equivalent
        );
        assert_eq!(
            compare_extents(&rel(&[]), &rel(&[1])),
            ExtentRelation::ProperSubset
        );
    }

    #[test]
    fn predicates() {
        assert!(ExtentRelation::Equivalent.is_subset());
        assert!(ExtentRelation::Equivalent.is_superset());
        assert!(ExtentRelation::ProperSubset.is_subset());
        assert!(!ExtentRelation::ProperSubset.is_superset());
        assert!(!ExtentRelation::Incomparable.is_subset());
    }

    #[test]
    #[should_panic(expected = "equal arity")]
    fn arity_mismatch_panics() {
        let wide = Relation::from_rows(
            Schema::from_columns(vec![
                (AttrRef::new("R", "x"), DataType::Int),
                (AttrRef::new("R", "y"), DataType::Int),
            ])
            .unwrap(),
            vec![],
        )
        .unwrap();
        compare_extents(&rel(&[1]), &wide);
    }
}
