//! # eve-relational
//!
//! A small, self-contained, in-memory relational engine that serves as the
//! executable substrate for the EVE / CVS reproduction (Nica, Lee,
//! Rundensteiner, EDBT 1998).
//!
//! The CVS algorithm itself only consults the *meta knowledge base* — it
//! never touches data. Data enters the picture because the paper's
//! correctness criterion P3 (Def. 1) quantifies over **all states of the
//! underlying information sources**:
//!
//! ```text
//! π_{B_V ∩ B_V'}(V')   VE_V   π_{B_V ∩ B_V'}(V)
//! ```
//!
//! To *validate* that a rewriting satisfies its view-extent parameter we
//! need to be able to evaluate both the original and the evolved view over
//! concrete relation instances and compare their extents. This crate
//! provides exactly that: typed values, schemas, tuples, relations, scalar
//! expressions, predicates, the select/project/join algebra, a named
//! database, and set-semantics extent comparison.
//!
//! The vocabulary defined here ([`ScalarExpr`], [`Clause`], [`Conjunction`],
//! [`AttrRef`], …) is shared by the E-SQL AST (`eve-esql`) and the MISD
//! constraint language (`eve-misd`), so that a join constraint from the MKB
//! and a WHERE-clause conjunct from a view are directly comparable — the
//! heart of the R-mapping computation (Def. 2 of the paper).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod algebra;
pub mod containment;
pub mod database;
pub mod error;
pub mod expr;
pub mod func;
pub mod pred;
pub mod relation;
pub mod schema;
pub mod tuple;
pub mod typecheck;
pub mod types;

pub use algebra::{project, select, theta_join};
pub use containment::{compare_extents, ExtentRelation};
pub use database::Database;
pub use error::RelationalError;
pub use expr::ScalarExpr;
pub use func::{FuncRegistry, NamedFunc};
pub use pred::{clauses_consistent, Clause, CompareOp, Congruence, Conjunction};
pub use relation::Relation;
pub use schema::{AttrName, AttrRef, AttributeDef, RelName, Schema};
pub use tuple::Tuple;
pub use typecheck::{check_clause, comparable, infer_type, TypeError};
pub use types::{DataType, Value};
