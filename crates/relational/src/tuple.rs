//! Tuples: ordered value vectors matching a [`crate::schema::Schema`].

use crate::types::Value;
use std::fmt;

/// A tuple of values. Width must match the owning relation's schema arity
/// (enforced at insertion, see [`crate::relation::Relation::insert`]).
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord, Default)]
pub struct Tuple(Vec<Value>);

impl Tuple {
    /// Create a tuple from values.
    pub fn new(values: Vec<Value>) -> Self {
        Tuple(values)
    }

    /// Number of values.
    pub fn arity(&self) -> usize {
        self.0.len()
    }

    /// Value at position `i`.
    pub fn get(&self, i: usize) -> Option<&Value> {
        self.0.get(i)
    }

    /// All values in order.
    pub fn values(&self) -> &[Value] {
        &self.0
    }

    /// Concatenate two tuples (for join results).
    pub fn concat(&self, other: &Tuple) -> Tuple {
        let mut v = Vec::with_capacity(self.0.len() + other.0.len());
        v.extend_from_slice(&self.0);
        v.extend_from_slice(&other.0);
        Tuple(v)
    }

    /// Project onto the given positions. Positions out of range become
    /// `Null` (cannot happen for positions produced by a schema lookup).
    pub fn project(&self, positions: &[usize]) -> Tuple {
        Tuple(
            positions
                .iter()
                .map(|&i| self.0.get(i).cloned().unwrap_or(Value::Null))
                .collect(),
        )
    }
}

impl fmt::Display for Tuple {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "(")?;
        for (i, v) in self.0.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{v}")?;
        }
        write!(f, ")")
    }
}

impl From<Vec<Value>> for Tuple {
    fn from(v: Vec<Value>) -> Self {
        Tuple::new(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn concat_and_project() {
        let a = Tuple::new(vec![Value::Int(1), Value::str("x")]);
        let b = Tuple::new(vec![Value::Bool(true)]);
        let c = a.concat(&b);
        assert_eq!(c.arity(), 3);
        let p = c.project(&[2, 0]);
        assert_eq!(p.values(), &[Value::Bool(true), Value::Int(1)]);
    }

    #[test]
    fn display() {
        let t = Tuple::new(vec![Value::Int(1), Value::Null]);
        assert_eq!(t.to_string(), "(1, NULL)");
    }
}
