//! Error type for the relational engine.

use crate::schema::{AttrRef, RelName};
use std::fmt;

/// Errors raised while building schemas or evaluating algebra expressions.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RelationalError {
    /// A schema would contain the same qualified column twice.
    DuplicateColumn(AttrRef),
    /// An expression referenced an attribute absent from the input schema.
    UnknownAttribute(AttrRef),
    /// A named relation was not found in the database.
    UnknownRelation(RelName),
    /// A named function was not found in the registry.
    UnknownFunction(String),
    /// A function was applied to the wrong number of arguments.
    Arity {
        /// Function name.
        func: String,
        /// Expected argument count.
        expected: usize,
        /// Provided argument count.
        got: usize,
    },
    /// A tuple's width did not match its relation's schema.
    TupleWidth {
        /// Expected width (schema arity).
        expected: usize,
        /// Actual width.
        got: usize,
    },
    /// An arithmetic operator was applied to non-numeric operands.
    TypeMismatch(String),
}

impl fmt::Display for RelationalError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RelationalError::DuplicateColumn(c) => write!(f, "duplicate column {c}"),
            RelationalError::UnknownAttribute(a) => write!(f, "unknown attribute {a}"),
            RelationalError::UnknownRelation(r) => write!(f, "unknown relation {r}"),
            RelationalError::UnknownFunction(n) => write!(f, "unknown function {n}"),
            RelationalError::Arity {
                func,
                expected,
                got,
            } => write!(f, "function {func} expects {expected} args, got {got}"),
            RelationalError::TupleWidth { expected, got } => {
                write!(
                    f,
                    "tuple width {got} does not match schema arity {expected}"
                )
            }
            RelationalError::TypeMismatch(m) => write!(f, "type mismatch: {m}"),
        }
    }
}

impl std::error::Error for RelationalError {}
