//! Static type inference for scalar expressions and primitive clauses.
//!
//! MISD type-integrity constraints (`TC`, Fig. 1 of the paper) give every
//! exported attribute a declared domain; this module propagates those
//! domains through expressions so that views and constraints can be
//! checked *before* any data flows:
//!
//! * arithmetic requires numeric operands (`int`, `float`, `date`);
//! * comparisons require compatible operand types (equal, or both
//!   numeric);
//! * named functions are typed by a small signature table consistent
//!   with the default [`crate::func::FuncRegistry`].
//!
//! Inference is *conservative*: `Ok(None)` means "cannot determine" (an
//! unknown function), which checkers treat as compatible-with-anything.

use crate::expr::{ArithOp, ScalarExpr};
use crate::pred::Clause;
use crate::schema::AttrRef;
use crate::types::DataType;
use std::fmt;

/// A type error found during static checking.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TypeError {
    /// An attribute is not declared anywhere the resolver knows about.
    UnknownAttribute(AttrRef),
    /// Arithmetic applied to a non-numeric operand.
    NonNumeric {
        /// Rendered operand expression.
        expr: String,
        /// Its inferred type.
        ty: DataType,
    },
    /// Comparison between incompatible types.
    Incomparable {
        /// Rendered clause.
        clause: String,
        /// Left type.
        lhs: DataType,
        /// Right type.
        rhs: DataType,
    },
    /// A known function applied with the wrong argument type.
    BadArgument {
        /// Function name.
        func: String,
        /// Rendered argument.
        arg: String,
        /// The argument's inferred type.
        ty: DataType,
    },
}

impl fmt::Display for TypeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TypeError::UnknownAttribute(a) => write!(f, "unknown attribute {a}"),
            TypeError::NonNumeric { expr, ty } => {
                write!(f, "arithmetic on non-numeric expression {expr} ({ty})")
            }
            TypeError::Incomparable { clause, lhs, rhs } => {
                write!(f, "comparison `{clause}` between {lhs} and {rhs}")
            }
            TypeError::BadArgument { func, arg, ty } => {
                write!(f, "function {func} applied to {arg} of type {ty}")
            }
        }
    }
}

impl std::error::Error for TypeError {}

/// Are two declared types comparable with `= <> < <= > >=`?
pub fn comparable(a: DataType, b: DataType) -> bool {
    a == b || (a.is_numeric() && b.is_numeric())
}

/// Infer the type of an expression using `resolve` for attribute
/// domains. Returns `Ok(None)` when the type cannot be determined (an
/// unknown named function).
pub fn infer_type(
    expr: &ScalarExpr,
    resolve: &dyn Fn(&AttrRef) -> Option<DataType>,
) -> Result<Option<DataType>, TypeError> {
    match expr {
        ScalarExpr::Attr(a) => resolve(a)
            .map(Some)
            .ok_or_else(|| TypeError::UnknownAttribute(a.clone())),
        ScalarExpr::Const(v) => Ok(v.data_type()), // Null ⇒ None (wildcard)
        ScalarExpr::Binary { op, lhs, rhs } => {
            let lt = infer_type(lhs, resolve)?;
            let rt = infer_type(rhs, resolve)?;
            for (side, ty) in [(lhs, lt), (rhs, rt)] {
                if let Some(t) = ty {
                    if !t.is_numeric() {
                        return Err(TypeError::NonNumeric {
                            expr: side.to_string(),
                            ty: t,
                        });
                    }
                }
            }
            // Date − Date = Int (day count); any float ⇒ float; else int.
            Ok(Some(match (lt, rt) {
                (Some(DataType::Date), Some(DataType::Date)) if *op == ArithOp::Sub => {
                    DataType::Int
                }
                (Some(DataType::Float), _) | (_, Some(DataType::Float)) => DataType::Float,
                (Some(DataType::Date), _) | (_, Some(DataType::Date)) => DataType::Date,
                _ => DataType::Int,
            }))
        }
        ScalarExpr::Call { func, args } => {
            let arg_types: Vec<Option<DataType>> = args
                .iter()
                .map(|a| infer_type(a, resolve))
                .collect::<Result<_, _>>()?;
            match func.as_str() {
                "today" => Ok(Some(DataType::Date)),
                "identity" => Ok(arg_types.first().copied().flatten()),
                "abs" | "floor" => {
                    if let Some(Some(t)) = arg_types.first() {
                        if !t.is_numeric() {
                            return Err(TypeError::BadArgument {
                                func: func.clone(),
                                arg: args[0].to_string(),
                                ty: *t,
                            });
                        }
                    }
                    Ok(Some(if func == "floor" {
                        DataType::Int
                    } else {
                        arg_types
                            .first()
                            .copied()
                            .flatten()
                            .unwrap_or(DataType::Float)
                    }))
                }
                "lower" | "upper" => {
                    if let Some(Some(t)) = arg_types.first() {
                        if *t != DataType::Str {
                            return Err(TypeError::BadArgument {
                                func: func.clone(),
                                arg: args[0].to_string(),
                                ty: *t,
                            });
                        }
                    }
                    Ok(Some(DataType::Str))
                }
                _ => Ok(None), // user-registered function: unknown type
            }
        }
    }
}

/// Type-check a primitive clause: both sides must infer and be
/// comparable.
pub fn check_clause(
    clause: &Clause,
    resolve: &dyn Fn(&AttrRef) -> Option<DataType>,
) -> Result<(), TypeError> {
    let lt = infer_type(&clause.lhs, resolve)?;
    let rt = infer_type(&clause.rhs, resolve)?;
    if let (Some(a), Some(b)) = (lt, rt) {
        if !comparable(a, b) {
            return Err(TypeError::Incomparable {
                clause: clause.to_string(),
                lhs: a,
                rhs: b,
            });
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pred::CompareOp;
    use crate::types::Value;

    fn resolver(attr: &AttrRef) -> Option<DataType> {
        match (attr.relation.as_str(), attr.attr.as_str()) {
            ("Customer", "Name") => Some(DataType::Str),
            ("Customer", "Age") => Some(DataType::Int),
            ("Accident-Ins", "Birthday") => Some(DataType::Date),
            _ => None,
        }
    }

    #[test]
    fn infers_f3_as_int() {
        // (today() - Birthday) / 365 : Date - Date = Int, / Int = Int.
        let e = ScalarExpr::binary(
            ArithOp::Div,
            ScalarExpr::binary(
                ArithOp::Sub,
                ScalarExpr::call("today", vec![]),
                ScalarExpr::attr("Accident-Ins", "Birthday"),
            ),
            ScalarExpr::lit(365i64),
        );
        assert_eq!(infer_type(&e, &resolver).unwrap(), Some(DataType::Int));
    }

    #[test]
    fn arithmetic_on_string_rejected() {
        let e = ScalarExpr::binary(
            ArithOp::Add,
            ScalarExpr::attr("Customer", "Name"),
            ScalarExpr::lit(1i64),
        );
        assert!(matches!(
            infer_type(&e, &resolver),
            Err(TypeError::NonNumeric { .. })
        ));
    }

    #[test]
    fn unknown_attribute_rejected() {
        let e = ScalarExpr::attr("Customer", "Ghost");
        assert!(matches!(
            infer_type(&e, &resolver),
            Err(TypeError::UnknownAttribute(_))
        ));
    }

    #[test]
    fn clause_compatibility() {
        // Str vs Str ok.
        let ok = Clause::new(
            ScalarExpr::attr("Customer", "Name"),
            CompareOp::Eq,
            ScalarExpr::lit("ann"),
        );
        assert!(check_clause(&ok, &resolver).is_ok());
        // Int vs Date ok (numeric family).
        let ok2 = Clause::new(
            ScalarExpr::attr("Customer", "Age"),
            CompareOp::Lt,
            ScalarExpr::attr("Accident-Ins", "Birthday"),
        );
        assert!(check_clause(&ok2, &resolver).is_ok());
        // Str vs Int rejected.
        let bad = Clause::new(
            ScalarExpr::attr("Customer", "Name"),
            CompareOp::Eq,
            ScalarExpr::attr("Customer", "Age"),
        );
        assert!(matches!(
            check_clause(&bad, &resolver),
            Err(TypeError::Incomparable { .. })
        ));
    }

    #[test]
    fn null_is_wildcard() {
        let c = Clause::new(
            ScalarExpr::attr("Customer", "Name"),
            CompareOp::Eq,
            ScalarExpr::Const(Value::Null),
        );
        assert!(check_clause(&c, &resolver).is_ok());
    }

    #[test]
    fn string_functions_typed() {
        let e = ScalarExpr::call("lower", vec![ScalarExpr::attr("Customer", "Name")]);
        assert_eq!(infer_type(&e, &resolver).unwrap(), Some(DataType::Str));
        let bad = ScalarExpr::call("lower", vec![ScalarExpr::attr("Customer", "Age")]);
        assert!(matches!(
            infer_type(&bad, &resolver),
            Err(TypeError::BadArgument { .. })
        ));
    }

    #[test]
    fn unknown_function_is_untyped_not_error() {
        let e = ScalarExpr::call("mystery", vec![ScalarExpr::lit(1i64)]);
        assert_eq!(infer_type(&e, &resolver).unwrap(), None);
    }

    #[test]
    fn float_promotes() {
        let e = ScalarExpr::binary(
            ArithOp::Mul,
            ScalarExpr::attr("Customer", "Age"),
            ScalarExpr::lit(1.5f64),
        );
        assert_eq!(infer_type(&e, &resolver).unwrap(), Some(DataType::Float));
    }
}
