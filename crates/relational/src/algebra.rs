//! Relational algebra evaluation: selection σ, projection π and theta-join ⋈.
//!
//! These three operators are all the paper needs: views are
//! SELECT-FROM-WHERE (select-project-join), join constraints induce
//! theta-joins `R1 ⋈_{JC} R2`, and partial/complete constraints compare
//! projections of selections. Evaluation is straightforward nested-loop /
//! filter evaluation — the engine exists to *validate* rewritings on
//! modest generated states, not to compete on query performance (see
//! DESIGN.md, substitutions).

use crate::error::RelationalError;
use crate::expr::ScalarExpr;
use crate::func::FuncRegistry;
use crate::pred::Conjunction;
use crate::relation::Relation;
use crate::schema::{AttrRef, Schema};
use crate::tuple::Tuple;
use crate::types::{DataType, Value};

/// Selection `σ_cond(input)`.
pub fn select(
    input: &Relation,
    cond: &Conjunction,
    funcs: &FuncRegistry,
) -> Result<Relation, RelationalError> {
    let mut out = Relation::new(input.schema().clone());
    for t in input.rows() {
        if cond.eval(input.schema(), t, funcs)? {
            out.insert(t.clone())?;
        }
    }
    Ok(out)
}

/// Projection `π_exprs(input)` with explicit output column names.
///
/// Each output column is `(name, expr)`; the name becomes the column's
/// [`AttrRef`] in the result schema. The result type is inferred from the
/// expression where possible, defaulting to the type of the first non-null
/// produced value and `Str` as a last resort.
pub fn project(
    input: &Relation,
    columns: &[(AttrRef, ScalarExpr)],
    funcs: &FuncRegistry,
) -> Result<Relation, RelationalError> {
    // Infer output column types: attribute refs keep their declared type;
    // everything else gets typed from the first produced value.
    let mut types: Vec<Option<DataType>> = columns
        .iter()
        .map(|(_, e)| match e {
            ScalarExpr::Attr(a) => input.schema().type_of(a),
            ScalarExpr::Const(v) => v.data_type(),
            _ => None,
        })
        .collect();

    let mut produced: Vec<Tuple> = Vec::with_capacity(input.len());
    for t in input.rows() {
        let mut vals = Vec::with_capacity(columns.len());
        for (i, (_, e)) in columns.iter().enumerate() {
            let v = e.eval(input.schema(), t, funcs)?;
            if types[i].is_none() {
                types[i] = v.data_type();
            }
            vals.push(v);
        }
        produced.push(Tuple::new(vals));
    }

    let schema = Schema::from_columns(
        columns
            .iter()
            .zip(&types)
            .map(|((name, _), ty)| (name.clone(), ty.unwrap_or(DataType::Str)))
            .collect(),
    )?;
    Relation::from_rows(schema, produced)
}

/// Theta-join `left ⋈_cond right` (nested loop; `cond` may reference
/// columns of both inputs). The empty condition yields the cross product.
pub fn theta_join(
    left: &Relation,
    right: &Relation,
    cond: &Conjunction,
    funcs: &FuncRegistry,
) -> Result<Relation, RelationalError> {
    let schema = left.schema().concat(right.schema())?;
    let mut out = Relation::new(schema.clone());
    for lt in left.rows() {
        for rt in right.rows() {
            let joined = lt.concat(rt);
            if cond.eval(&schema, &joined, funcs)? {
                out.insert(joined)?;
            }
        }
    }
    Ok(out)
}

/// Evaluate a left-deep join chain `r_0 ⋈_{c_1} r_1 ⋈_{c_2} …` where each
/// `c_i` may reference any column that has appeared so far. This mirrors
/// the join-relation form of the paper's Eq. (6)/(7):
/// `R_{v_1} ⋈_{C_{R_{v_1},R_{v_2}}} … ⋈ R_{v_l}`.
pub fn join_chain(
    relations: &[&Relation],
    conds: &[Conjunction],
    funcs: &FuncRegistry,
) -> Result<Relation, RelationalError> {
    assert!(
        !relations.is_empty(),
        "join_chain requires at least one relation"
    );
    assert_eq!(
        conds.len(),
        relations.len().saturating_sub(1),
        "join_chain needs one condition per join step"
    );
    let mut acc = relations[0].clone();
    for (r, c) in relations[1..].iter().zip(conds) {
        acc = theta_join(&acc, r, c, funcs)?;
    }
    Ok(acc)
}

/// Convenience: a single projected value column for tests.
pub fn singleton(attr: AttrRef, ty: DataType, values: impl IntoIterator<Item = Value>) -> Relation {
    let schema = Schema::from_columns(vec![(attr, ty)]).expect("one column cannot collide");
    let mut r = Relation::new(schema);
    for v in values {
        r.insert(Tuple::new(vec![v])).expect("arity 1");
    }
    r
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pred::{Clause, CompareOp};
    use crate::schema::{AttributeDef, RelName};

    fn rel(name: &str, attrs: &[(&str, DataType)], rows: Vec<Vec<Value>>) -> Relation {
        let schema = Schema::of_relation(
            &RelName::new(name),
            &attrs
                .iter()
                .map(|(n, t)| AttributeDef::new(*n, *t))
                .collect::<Vec<_>>(),
        );
        Relation::from_rows(schema, rows.into_iter().map(Tuple::new)).unwrap()
    }

    fn customer() -> Relation {
        rel(
            "Customer",
            &[("Name", DataType::Str), ("Age", DataType::Int)],
            vec![
                vec![Value::str("ann"), Value::Int(30)],
                vec![Value::str("bob"), Value::Int(17)],
                vec![Value::str("cat"), Value::Int(45)],
            ],
        )
    }

    fn flightres() -> Relation {
        rel(
            "FlightRes",
            &[("PName", DataType::Str), ("Dest", DataType::Str)],
            vec![
                vec![Value::str("ann"), Value::str("Asia")],
                vec![Value::str("bob"), Value::str("Europe")],
                vec![Value::str("dan"), Value::str("Asia")],
            ],
        )
    }

    #[test]
    fn select_filters() {
        let funcs = FuncRegistry::new();
        let cond = Conjunction::new(vec![Clause::new(
            ScalarExpr::attr("Customer", "Age"),
            CompareOp::Gt,
            ScalarExpr::lit(18i64),
        )]);
        let out = select(&customer(), &cond, &funcs).unwrap();
        assert_eq!(out.len(), 2);
    }

    #[test]
    fn project_plain_and_computed() {
        let funcs = FuncRegistry::new();
        let out = project(
            &customer(),
            &[
                (
                    AttrRef::new("V", "Name"),
                    ScalarExpr::attr("Customer", "Name"),
                ),
                (
                    AttrRef::new("V", "AgePlus"),
                    ScalarExpr::binary(
                        crate::expr::ArithOp::Add,
                        ScalarExpr::attr("Customer", "Age"),
                        ScalarExpr::lit(1i64),
                    ),
                ),
            ],
            &funcs,
        )
        .unwrap();
        assert_eq!(out.len(), 3);
        assert_eq!(
            out.schema().type_of(&AttrRef::new("V", "AgePlus")),
            Some(DataType::Int)
        );
        assert!(out.contains(&Tuple::new(vec![Value::str("ann"), Value::Int(31)])));
    }

    #[test]
    fn project_dedups_under_set_semantics() {
        let funcs = FuncRegistry::new();
        let out = project(
            &customer(),
            &[(AttrRef::new("V", "One"), ScalarExpr::lit(1i64))],
            &funcs,
        )
        .unwrap();
        assert_eq!(out.len(), 1);
    }

    #[test]
    fn theta_join_on_name() {
        let funcs = FuncRegistry::new();
        let cond = Conjunction::new(vec![Clause::eq_attrs(
            AttrRef::new("Customer", "Name"),
            AttrRef::new("FlightRes", "PName"),
        )]);
        let out = theta_join(&customer(), &flightres(), &cond, &funcs).unwrap();
        assert_eq!(out.len(), 2); // ann, bob
        assert_eq!(out.schema().arity(), 4);
    }

    #[test]
    fn empty_condition_is_cross_product() {
        let funcs = FuncRegistry::new();
        let out = theta_join(&customer(), &flightres(), &Conjunction::empty(), &funcs).unwrap();
        assert_eq!(out.len(), 9);
    }

    #[test]
    fn join_chain_three_way() {
        let funcs = FuncRegistry::new();
        let third = rel(
            "Accident-Ins",
            &[("Holder", DataType::Str)],
            vec![vec![Value::str("ann")], vec![Value::str("eve")]],
        );
        let out = join_chain(
            &[&customer(), &flightres(), &third],
            &[
                Conjunction::new(vec![Clause::eq_attrs(
                    AttrRef::new("Customer", "Name"),
                    AttrRef::new("FlightRes", "PName"),
                )]),
                Conjunction::new(vec![Clause::eq_attrs(
                    AttrRef::new("FlightRes", "PName"),
                    AttrRef::new("Accident-Ins", "Holder"),
                )]),
            ],
            &funcs,
        )
        .unwrap();
        assert_eq!(out.len(), 1); // only ann survives both joins
    }

    #[test]
    fn select_project_join_composes_like_a_view() {
        // SELECT C.Name FROM Customer C, FlightRes F
        // WHERE C.Name = F.PName AND F.Dest = 'Asia'
        let funcs = FuncRegistry::new();
        let joined = theta_join(
            &customer(),
            &flightres(),
            &Conjunction::new(vec![Clause::eq_attrs(
                AttrRef::new("Customer", "Name"),
                AttrRef::new("FlightRes", "PName"),
            )]),
            &funcs,
        )
        .unwrap();
        let filtered = select(
            &joined,
            &Conjunction::new(vec![Clause::new(
                ScalarExpr::attr("FlightRes", "Dest"),
                CompareOp::Eq,
                ScalarExpr::lit("Asia"),
            )]),
            &funcs,
        )
        .unwrap();
        let out = project(
            &filtered,
            &[(
                AttrRef::new("V", "Name"),
                ScalarExpr::attr("Customer", "Name"),
            )],
            &funcs,
        )
        .unwrap();
        assert_eq!(out.len(), 1);
        assert!(out.contains(&Tuple::new(vec![Value::str("ann")])));
    }
}
