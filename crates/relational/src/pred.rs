//! Primitive clauses and conjunctions.
//!
//! The paper's WHERE clauses, join constraints `JC_{R1,R2} = (C_1 AND … AND
//! C_l)` and the selection conditions of partial/complete constraints are
//! all *conjunctions of primitive clauses* — comparisons between scalar
//! expressions (§2, §3). This module defines:
//!
//! * [`CompareOp`] — the comparison operators `= <> < <= > >=`;
//! * [`Clause`] — one primitive clause `lhs θ rhs`;
//! * [`Conjunction`] — `C_1 AND … AND C_l`.
//!
//! Besides evaluation, the types support the *symbolic* operations CVS
//! needs:
//!
//! * **normalisation** and **implication** ([`Clause::implies`]): Def. 2 of
//!   the paper requires every MKB join constraint of `Min(H_R)` to be
//!   implied by the corresponding view join condition of `Max(V_R)`. We
//!   check clause-level implication: syntactic equality modulo operand
//!   orientation, plus interval subsumption for comparisons of one
//!   expression against a constant (`Age > 21 ⇒ Age > 1`, needed for JC2 of
//!   the running example);
//! * **consistency** ([`Conjunction::is_consistent`]): CVS Step 4 must
//!   "check if there are no inconsistencies in the WHERE clause" after new
//!   join conditions are added;
//! * **substitution / renaming**, mirrored from [`ScalarExpr`].

use crate::error::RelationalError;
use crate::expr::ScalarExpr;
use crate::func::FuncRegistry;
use crate::schema::{AttrRef, RelName, Schema};
use crate::tuple::Tuple;
use crate::types::Value;
use std::cmp::Ordering;
use std::collections::{BTreeMap, BTreeSet};
use std::fmt;

/// Comparison operators of primitive clauses.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum CompareOp {
    /// `=`
    Eq,
    /// `<>`
    Ne,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
}

impl CompareOp {
    /// Symbol as written in E-SQL / MISD.
    pub fn symbol(self) -> &'static str {
        match self {
            CompareOp::Eq => "=",
            CompareOp::Ne => "<>",
            CompareOp::Lt => "<",
            CompareOp::Le => "<=",
            CompareOp::Gt => ">",
            CompareOp::Ge => ">=",
        }
    }

    /// The operator obtained by swapping the operands (`a < b ⇔ b > a`).
    pub fn flipped(self) -> CompareOp {
        match self {
            CompareOp::Eq => CompareOp::Eq,
            CompareOp::Ne => CompareOp::Ne,
            CompareOp::Lt => CompareOp::Gt,
            CompareOp::Le => CompareOp::Ge,
            CompareOp::Gt => CompareOp::Lt,
            CompareOp::Ge => CompareOp::Le,
        }
    }

    /// Logical negation (`¬(a < b) ⇔ a >= b`).
    pub fn negated(self) -> CompareOp {
        match self {
            CompareOp::Eq => CompareOp::Ne,
            CompareOp::Ne => CompareOp::Eq,
            CompareOp::Lt => CompareOp::Ge,
            CompareOp::Le => CompareOp::Gt,
            CompareOp::Gt => CompareOp::Le,
            CompareOp::Ge => CompareOp::Lt,
        }
    }

    /// Apply to an ordering produced by [`Value::sql_cmp`].
    pub fn test(self, ord: Ordering) -> bool {
        match self {
            CompareOp::Eq => ord == Ordering::Equal,
            CompareOp::Ne => ord != Ordering::Equal,
            CompareOp::Lt => ord == Ordering::Less,
            CompareOp::Le => ord != Ordering::Greater,
            CompareOp::Gt => ord == Ordering::Greater,
            CompareOp::Ge => ord != Ordering::Less,
        }
    }
}

impl fmt::Display for CompareOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.symbol())
    }
}

/// A primitive clause `lhs θ rhs`.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Clause {
    /// Left operand.
    pub lhs: ScalarExpr,
    /// Comparison operator.
    pub op: CompareOp,
    /// Right operand.
    pub rhs: ScalarExpr,
}

impl Clause {
    /// Create a clause.
    pub fn new(lhs: ScalarExpr, op: CompareOp, rhs: ScalarExpr) -> Self {
        Clause { lhs, op, rhs }
    }

    /// Equality clause between two attributes (the most common join form).
    pub fn eq_attrs(l: AttrRef, r: AttrRef) -> Self {
        Clause::new(ScalarExpr::Attr(l), CompareOp::Eq, ScalarExpr::Attr(r))
    }

    /// Evaluate against a tuple. Comparisons involving `Null` or
    /// incomparable types are false (SQL-like behaviour for plain
    /// SELECT-FROM-WHERE).
    pub fn eval(
        &self,
        schema: &Schema,
        tuple: &Tuple,
        funcs: &FuncRegistry,
    ) -> Result<bool, RelationalError> {
        let l = self.lhs.eval(schema, tuple, funcs)?;
        let r = self.rhs.eval(schema, tuple, funcs)?;
        Ok(match l.sql_cmp(&r) {
            Some(ord) => self.op.test(ord),
            None => false,
        })
    }

    /// All attributes referenced.
    pub fn attrs(&self) -> BTreeSet<AttrRef> {
        let mut s = self.lhs.attrs();
        s.extend(self.rhs.attrs());
        s
    }

    /// Does either operand reference `target`? Equivalent to
    /// `self.attrs().contains(target)` without materialising the set.
    pub fn contains_attr(&self, target: &AttrRef) -> bool {
        self.lhs.contains_attr(target) || self.rhs.contains_attr(target)
    }

    /// All relations referenced.
    pub fn relations(&self) -> BTreeSet<RelName> {
        self.attrs().into_iter().map(|a| a.relation).collect()
    }

    /// Canonical orientation: order the operands so that syntactically
    /// equal clauses written in either direction compare equal
    /// (`A = B` vs `B = A`, `x < 5` vs `5 > x`).
    pub fn normalized(&self) -> Clause {
        let (lhs, op, rhs) = self.normalized_parts();
        Clause {
            lhs: lhs.clone(),
            op,
            rhs: rhs.clone(),
        }
    }

    /// The canonical orientation as borrowed parts — what [`normalized`]
    /// clones, without the clone. Two clauses have equal normalisations
    /// iff their parts compare equal.
    ///
    /// [`normalized`]: Clause::normalized
    pub fn normalized_parts(&self) -> (&ScalarExpr, CompareOp, &ScalarExpr) {
        if self.rhs < self.lhs {
            (&self.rhs, self.op.flipped(), &self.lhs)
        } else {
            (&self.lhs, self.op, &self.rhs)
        }
    }

    /// Conservative implication test: does `self` (as a fact) imply
    /// `other`?
    ///
    /// Sound but incomplete. Holds when:
    /// * the normalised clauses are identical; or
    /// * both compare the *same* expression against constants and the
    ///   interval admitted by `self` is contained in the interval admitted
    ///   by `other` (e.g. `Age > 21 ⇒ Age > 1`, `x = 5 ⇒ x >= 2`).
    pub fn implies(&self, other: &Clause) -> bool {
        let a = self.normalized_parts();
        let b = other.normalized_parts();
        if a == b {
            return true;
        }
        // As in the original eager form, constants are extracted from the
        // *normalised* orientation.
        match (const_parts_of(a), const_parts_of(b)) {
            (Some((ea, opa, ca)), Some((eb, opb, cb))) if ea == eb => {
                implies_const(opa, ca, opb, cb)
            }
            _ => false,
        }
    }

    /// If this clause compares an expression against a constant, return
    /// `(expr, op, const)` oriented with the expression on the left.
    pub fn const_comparison(&self) -> Option<(ScalarExpr, CompareOp, Value)> {
        self.const_comparison_parts()
            .map(|(e, op, c)| (e.clone(), op, c.clone()))
    }

    /// Borrowed form of [`const_comparison`] for hot paths.
    ///
    /// [`const_comparison`]: Clause::const_comparison
    pub fn const_comparison_parts(&self) -> Option<(&ScalarExpr, CompareOp, &Value)> {
        const_parts_of((&self.lhs, self.op, &self.rhs))
    }

    /// Does this clause mention `rel` on either side? Equivalent to
    /// `self.relations().contains(rel)` without materialising the set.
    pub fn references_relation(&self, rel: &RelName) -> bool {
        self.lhs.references_relation(rel) || self.rhs.references_relation(rel)
    }

    /// Substitute an attribute by a replacement expression on both sides.
    pub fn substitute(&self, target: &AttrRef, replacement: &ScalarExpr) -> Clause {
        Clause {
            lhs: self.lhs.substitute(target, replacement),
            op: self.op,
            rhs: self.rhs.substitute(target, replacement),
        }
    }

    /// Rename relation references on both sides.
    pub fn rename_relation(&self, from: &RelName, to: &RelName) -> Clause {
        Clause {
            lhs: self.lhs.rename_relation(from, to),
            op: self.op,
            rhs: self.rhs.rename_relation(from, to),
        }
    }
}

/// Equality-congruence classes of a [`Conjunction`], built once by
/// [`Conjunction::congruence`] and queried many times.
#[derive(Debug)]
pub struct Congruence<'a> {
    classes: Vec<BTreeSet<&'a ScalarExpr>>,
}

impl Congruence<'_> {
    /// Are the two expressions syntactically equal or in the same
    /// equality class?
    pub fn equated(&self, a: &ScalarExpr, b: &ScalarExpr) -> bool {
        if a == b {
            return true;
        }
        self.classes.iter().any(|s| s.contains(a) && s.contains(b))
    }
}

/// Constant-comparison extraction over borrowed clause parts: the same
/// orientation rule as [`Clause::const_comparison`], applied to an
/// already-(de)normalised `(lhs, op, rhs)` triple.
fn const_parts_of<'a>(
    (lhs, op, rhs): (&'a ScalarExpr, CompareOp, &'a ScalarExpr),
) -> Option<(&'a ScalarExpr, CompareOp, &'a Value)> {
    match (lhs, rhs) {
        (e, ScalarExpr::Const(c)) if !matches!(e, ScalarExpr::Const(_)) => Some((e, op, c)),
        (ScalarExpr::Const(c), e) => Some((e, op.flipped(), c)),
        _ => None,
    }
}

/// Does `x θa ca` imply `x θb cb` (same expression `x`, constants `ca`,
/// `cb`)? Implements interval subsumption over [`Value::sql_cmp`]-comparable
/// constants.
fn implies_const(opa: CompareOp, ca: &Value, opb: CompareOp, cb: &Value) -> bool {
    use CompareOp::*;
    let ord = match ca.sql_cmp(cb) {
        Some(o) => o,
        None => return false,
    };
    match (opa, opb) {
        // x = ca implies anything satisfied by ca.
        (Eq, _) => opb.test(ord),
        // x <> ca implies x <> cb only when ca = cb.
        (Ne, Ne) => ord == Ordering::Equal,
        // Lower bounds: x > ca ⇒ x > cb when ca >= cb, etc.
        (Gt, Gt) | (Gt, Ge) | (Ge, Ge) => ord != Ordering::Less,
        (Ge, Gt) => ord == Ordering::Greater,
        // x > ca ⇒ x <> cb when cb <= ca.
        (Gt, Ne) => ord != Ordering::Less,
        (Ge, Ne) => ord == Ordering::Greater,
        // Upper bounds.
        (Lt, Lt) | (Lt, Le) | (Le, Le) => ord != Ordering::Greater,
        (Le, Lt) => ord == Ordering::Less,
        (Lt, Ne) => ord != Ordering::Greater,
        (Le, Ne) => ord == Ordering::Less,
        _ => false,
    }
}

impl Clause {
    /// Append the canonical textual form to `out` — byte-identical to
    /// the [`fmt::Display`] output, without the formatter machinery.
    pub fn render_into(&self, out: &mut String) {
        self.lhs.render_into(out);
        out.push(' ');
        out.push_str(self.op.symbol());
        out.push(' ');
        self.rhs.render_into(out);
    }
}

impl fmt::Display for Clause {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} {} {}", self.lhs, self.op, self.rhs)
    }
}

/// A conjunction `C_1 AND … AND C_l` of primitive clauses.
///
/// The empty conjunction is *true*.
#[derive(Debug, Clone, PartialEq, Eq, Default, Hash, PartialOrd, Ord)]
pub struct Conjunction {
    clauses: Vec<Clause>,
}

impl Conjunction {
    /// The empty (always-true) conjunction.
    pub fn empty() -> Self {
        Conjunction::default()
    }

    /// Build from clauses.
    pub fn new(clauses: Vec<Clause>) -> Self {
        Conjunction { clauses }
    }

    /// The clauses, in order.
    pub fn clauses(&self) -> &[Clause] {
        &self.clauses
    }

    /// True when there are no clauses.
    pub fn is_empty(&self) -> bool {
        self.clauses.is_empty()
    }

    /// Number of clauses.
    pub fn len(&self) -> usize {
        self.clauses.len()
    }

    /// Append a clause.
    pub fn push(&mut self, c: Clause) {
        self.clauses.push(c);
    }

    /// Concatenate two conjunctions.
    pub fn and(&self, other: &Conjunction) -> Conjunction {
        let mut clauses = self.clauses.clone();
        clauses.extend(other.clauses.iter().cloned());
        Conjunction { clauses }
    }

    /// Evaluate against a tuple (all clauses must hold).
    pub fn eval(
        &self,
        schema: &Schema,
        tuple: &Tuple,
        funcs: &FuncRegistry,
    ) -> Result<bool, RelationalError> {
        for c in &self.clauses {
            if !c.eval(schema, tuple, funcs)? {
                return Ok(false);
            }
        }
        Ok(true)
    }

    /// All attributes referenced.
    pub fn attrs(&self) -> BTreeSet<AttrRef> {
        let mut s = BTreeSet::new();
        for c in &self.clauses {
            s.extend(c.attrs());
        }
        s
    }

    /// Does any clause reference `target`? Equivalent to
    /// `self.attrs().contains(target)` without materialising the set.
    pub fn contains_attr(&self, target: &AttrRef) -> bool {
        self.clauses.iter().any(|c| c.contains_attr(target))
    }

    /// All relations referenced.
    pub fn relations(&self) -> BTreeSet<RelName> {
        self.attrs().into_iter().map(|a| a.relation).collect()
    }

    /// Does this conjunction (as a set of facts) imply the clause?
    ///
    /// Conservative but congruence-aware: true when some clause of
    /// `self` implies it directly, or when the target is an equality
    /// between two expressions connected transitively by the
    /// conjunction's own equalities (`A = B AND B = C ⊢ A = C`).
    pub fn implies_clause(&self, clause: &Clause) -> bool {
        self.implies_clause_cached(&self.congruence(), clause)
    }

    /// [`implies_clause`] against a congruence prebuilt with
    /// [`congruence`] — callers testing many clauses against the same
    /// conjunction build the equality closure once.
    ///
    /// [`implies_clause`]: Conjunction::implies_clause
    /// [`congruence`]: Conjunction::congruence
    pub fn implies_clause_cached(&self, congruence: &Congruence<'_>, clause: &Clause) -> bool {
        if self.clauses.iter().any(|c| c.implies(clause)) {
            return true;
        }
        if clause.op == CompareOp::Eq {
            return congruence.equated(&clause.lhs, &clause.rhs);
        }
        false
    }

    /// The equality-congruence classes of this conjunction's equality
    /// clauses, reusable across many [`Congruence::equated`] queries.
    pub fn congruence(&self) -> Congruence<'_> {
        // Union-find over the expressions appearing in equality clauses.
        let mut classes: Vec<BTreeSet<&ScalarExpr>> = Vec::new();
        for c in &self.clauses {
            if c.op != CompareOp::Eq {
                continue;
            }
            let (l, r) = (&c.lhs, &c.rhs);
            let il = classes.iter().position(|s| s.contains(l));
            let ir = classes.iter().position(|s| s.contains(r));
            match (il, ir) {
                (Some(i), Some(j)) if i != j => {
                    let moved = classes.swap_remove(i.max(j));
                    classes[i.min(j)].extend(moved);
                }
                (Some(i), None) => {
                    classes[i].insert(r);
                }
                (None, Some(j)) => {
                    classes[j].insert(l);
                }
                (None, None) => {
                    classes.push([l, r].into_iter().collect());
                }
                _ => {}
            }
        }
        Congruence { classes }
    }

    /// Are two expressions in the same equality-congruence class of this
    /// conjunction's equality clauses?
    pub fn equated(&self, a: &ScalarExpr, b: &ScalarExpr) -> bool {
        if a == b {
            return true;
        }
        self.congruence().equated(a, b)
    }

    /// Does this conjunction imply every clause of `other`?
    ///
    /// This is the containment test of Def. 2 (III): `Max(V_R) ⊆
    /// Min(H_R)` holds when each MKB join constraint is implied by the
    /// view's join conditions.
    pub fn implies(&self, other: &Conjunction) -> bool {
        other.clauses.iter().all(|c| self.implies_clause(c))
    }

    /// Substitute an attribute by a replacement expression in all clauses.
    pub fn substitute(&self, target: &AttrRef, replacement: &ScalarExpr) -> Conjunction {
        Conjunction {
            clauses: self
                .clauses
                .iter()
                .map(|c| c.substitute(target, replacement))
                .collect(),
        }
    }

    /// Rename relation references in all clauses.
    pub fn rename_relation(&self, from: &RelName, to: &RelName) -> Conjunction {
        Conjunction {
            clauses: self
                .clauses
                .iter()
                .map(|c| c.rename_relation(from, to))
                .collect(),
        }
    }

    /// Conservative consistency check (CVS Step 4: "we have to check if
    /// there are no inconsistencies in the WHERE clause").
    ///
    /// Returns `false` only when an inconsistency is *detected*; `true`
    /// means "not provably inconsistent". Detected patterns:
    ///
    /// * direct contradiction between two clauses over the same operand
    ///   pair (`e1 = e2` with `e1 <> e2`, `e1 < e2` with `e1 >= e2`, …);
    /// * an empty interval implied by constant comparisons on the same
    ///   expression (`x = 5 AND x = 6`, `x < 3 AND x > 7`,
    ///   `x = 5 AND x <> 5`), with equalities propagated through
    ///   equality-congruence classes of attribute expressions
    ///   (`x = y AND x = 5 AND y = 6` is inconsistent).
    pub fn is_consistent(&self) -> bool {
        clauses_consistent(&self.clauses)
    }
}

/// [`Conjunction::is_consistent`] over a borrowed clause sequence — same
/// verdict, no intermediate `Conjunction` (hot paths check a freshly
/// assembled WHERE list without cloning it).
pub fn clauses_consistent<'a, I: IntoIterator<Item = &'a Clause>>(clauses: I) -> bool {
    // 1. Pairwise direct contradictions on identical operand pairs.
    let normalized: Vec<(&ScalarExpr, CompareOp, &ScalarExpr)> =
        clauses.into_iter().map(Clause::normalized_parts).collect();
    for (i, a) in normalized.iter().enumerate() {
        for b in &normalized[i + 1..] {
            // Operator compatibility first: it is a cheap enum check and
            // rejects the vast majority of pairs (e.g. two equalities
            // can never contradict), skipping the operand comparisons.
            if contradictory(a.1, b.1) && a.0 == b.0 && a.2 == b.2 {
                return false;
            }
        }
    }

    // 2. Union-find over attribute expressions connected by equality.
    // The distinct-expression population of one WHERE clause is tiny, so
    // a linear scan replaces hashing (hashing an expression walks and
    // hashes its strings; equality usually fails on the first field).
    let mut exprs: Vec<&ScalarExpr> = Vec::new();
    fn id<'a>(e: &'a ScalarExpr, exprs: &mut Vec<&'a ScalarExpr>) -> usize {
        match exprs.iter().position(|x| *x == e) {
            Some(i) => i,
            None => {
                exprs.push(e);
                exprs.len() - 1
            }
        }
    }
    let mut pairs = Vec::new();
    let mut consts: Vec<(usize, CompareOp, &Value)> = Vec::new();
    for c in &normalized {
        if let Some((e, op, v)) = const_parts_of(*c) {
            let i = id(e, &mut exprs);
            consts.push((i, op, v));
        } else if c.1 == CompareOp::Eq {
            let i = id(c.0, &mut exprs);
            let j = id(c.2, &mut exprs);
            pairs.push((i, j));
        }
    }
    let mut uf: Vec<usize> = (0..exprs.len()).collect();
    fn find(uf: &mut Vec<usize>, i: usize) -> usize {
        if uf[i] != i {
            let r = find(uf, uf[i]);
            uf[i] = r;
        }
        uf[i]
    }
    for (i, j) in pairs {
        let (ri, rj) = (find(&mut uf, i), find(&mut uf, j));
        uf[ri] = rj;
    }

    // 3. Per equivalence class, intersect the constant constraints.
    let mut by_class: BTreeMap<usize, Vec<(CompareOp, &Value)>> = BTreeMap::new();
    for (i, op, v) in consts {
        let r = find(&mut uf, i);
        by_class.entry(r).or_default().push((op, v));
    }
    for constraints in by_class.values() {
        if !interval_satisfiable(constraints) {
            return false;
        }
    }
    true
}

/// Are `e1 opa e2` and `e1 opb e2` jointly unsatisfiable for all values?
fn contradictory(a: CompareOp, b: CompareOp) -> bool {
    use CompareOp::*;
    matches!(
        (a, b),
        (Eq, Ne)
            | (Ne, Eq)
            | (Eq, Lt)
            | (Lt, Eq)
            | (Eq, Gt)
            | (Gt, Eq)
            | (Lt, Gt)
            | (Gt, Lt)
            | (Lt, Ge)
            | (Ge, Lt)
            | (Gt, Le)
            | (Le, Gt)
    )
}

/// Can the conjunction of constant comparisons on a single expression be
/// satisfied? Intersects lower/upper bounds and checks `=` / `<>`
/// membership.
fn interval_satisfiable(constraints: &[(CompareOp, &Value)]) -> bool {
    use CompareOp::*;
    // Track: equalities must all be equal; bounds must leave room.
    let mut eq: Option<&Value> = None;
    for (op, v) in constraints {
        if *op == Eq {
            match eq {
                None => eq = Some(v),
                Some(e) => {
                    if e.sql_cmp(v) != Some(Ordering::Equal) {
                        return false;
                    }
                }
            }
        }
    }
    if let Some(e) = eq {
        // Every other constraint must admit the equality witness.
        return constraints.iter().all(|(op, v)| match e.sql_cmp(v) {
            Some(ord) => op.test(ord),
            None => true, // incomparable constants: assume satisfiable
        });
    }
    // No equality: intersect bounds. (lower, strict) and (upper, strict).
    let mut lower: Option<(&Value, bool)> = None;
    let mut upper: Option<(&Value, bool)> = None;
    for (op, v) in constraints {
        match op {
            Gt | Ge => {
                let strict = *op == Gt;
                lower = match lower {
                    None => Some((v, strict)),
                    Some((lv, ls)) => match v.sql_cmp(lv) {
                        Some(Ordering::Greater) => Some((v, strict)),
                        Some(Ordering::Equal) => Some((lv, ls || strict)),
                        _ => Some((lv, ls)),
                    },
                };
            }
            Lt | Le => {
                let strict = *op == Lt;
                upper = match upper {
                    None => Some((v, strict)),
                    Some((uv, us)) => match v.sql_cmp(uv) {
                        Some(Ordering::Less) => Some((v, strict)),
                        Some(Ordering::Equal) => Some((uv, us || strict)),
                        _ => Some((uv, us)),
                    },
                };
            }
            _ => {}
        }
    }
    if let (Some((lv, ls)), Some((uv, us))) = (lower, upper) {
        match lv.sql_cmp(uv) {
            Some(Ordering::Greater) => return false,
            Some(Ordering::Equal) if ls || us => return false,
            _ => {}
        }
    }
    true
}

impl fmt::Display for Conjunction {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.clauses.is_empty() {
            return write!(f, "TRUE");
        }
        for (i, c) in self.clauses.iter().enumerate() {
            if i > 0 {
                write!(f, " AND ")?;
            }
            write!(f, "({c})")?;
        }
        Ok(())
    }
}

impl From<Clause> for Conjunction {
    fn from(c: Clause) -> Self {
        Conjunction::new(vec![c])
    }
}

impl FromIterator<Clause> for Conjunction {
    fn from_iter<T: IntoIterator<Item = Clause>>(iter: T) -> Self {
        Conjunction::new(iter.into_iter().collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn attr(r: &str, a: &str) -> ScalarExpr {
        ScalarExpr::attr(r, a)
    }

    #[test]
    fn normalization_orients_consistently() {
        let c1 = Clause::new(attr("A", "x"), CompareOp::Eq, attr("B", "y"));
        let c2 = Clause::new(attr("B", "y"), CompareOp::Eq, attr("A", "x"));
        assert_eq!(c1.normalized(), c2.normalized());

        let c3 = Clause::new(ScalarExpr::lit(5i64), CompareOp::Gt, attr("A", "x"));
        let c4 = Clause::new(attr("A", "x"), CompareOp::Lt, ScalarExpr::lit(5i64));
        assert_eq!(c3.normalized(), c4.normalized());
    }

    #[test]
    fn implication_syntactic() {
        let c1 = Clause::new(attr("A", "x"), CompareOp::Eq, attr("B", "y"));
        let c2 = Clause::new(attr("B", "y"), CompareOp::Eq, attr("A", "x"));
        assert!(c1.implies(&c2));
        assert!(c2.implies(&c1));
    }

    #[test]
    fn implication_interval_jc2_example() {
        // View condition Age > 21 must imply MKB constraint Age > 1 (JC2).
        let strong = Clause::new(
            attr("Customer", "Age"),
            CompareOp::Gt,
            ScalarExpr::lit(21i64),
        );
        let weak = Clause::new(
            attr("Customer", "Age"),
            CompareOp::Gt,
            ScalarExpr::lit(1i64),
        );
        assert!(strong.implies(&weak));
        assert!(!weak.implies(&strong));
    }

    #[test]
    fn implication_eq_to_bounds() {
        let eq = Clause::new(attr("R", "x"), CompareOp::Eq, ScalarExpr::lit(5i64));
        let ge = Clause::new(attr("R", "x"), CompareOp::Ge, ScalarExpr::lit(2i64));
        let ne = Clause::new(attr("R", "x"), CompareOp::Ne, ScalarExpr::lit(9i64));
        let lt = Clause::new(attr("R", "x"), CompareOp::Lt, ScalarExpr::lit(4i64));
        assert!(eq.implies(&ge));
        assert!(eq.implies(&ne));
        assert!(!eq.implies(&lt));
    }

    #[test]
    fn conjunction_implies() {
        let view_cond = Conjunction::new(vec![
            Clause::new(attr("C", "Name"), CompareOp::Eq, attr("A", "Holder")),
            Clause::new(attr("C", "Age"), CompareOp::Gt, ScalarExpr::lit(21i64)),
        ]);
        let jc = Conjunction::new(vec![
            Clause::new(attr("A", "Holder"), CompareOp::Eq, attr("C", "Name")),
            Clause::new(attr("C", "Age"), CompareOp::Gt, ScalarExpr::lit(1i64)),
        ]);
        assert!(view_cond.implies(&jc));
        assert!(!jc.implies(&view_cond));
    }

    #[test]
    fn implication_transitive_equalities() {
        // A = B AND B = C implies A = C (needed when a view chains joins
        // through an intermediate attribute while the MKB constraint
        // equates the endpoints directly).
        let facts = Conjunction::new(vec![
            Clause::new(attr("A", "x"), CompareOp::Eq, attr("B", "y")),
            Clause::new(attr("B", "y"), CompareOp::Eq, attr("C", "z")),
        ]);
        let target = Clause::new(attr("A", "x"), CompareOp::Eq, attr("C", "z"));
        assert!(facts.implies_clause(&target));
        assert!(facts.implies(&Conjunction::from(target)));
        // Reflexivity.
        assert!(facts.implies_clause(&Clause::new(attr("A", "x"), CompareOp::Eq, attr("A", "x"))));
        // But not unrelated equalities.
        assert!(!facts.implies_clause(&Clause::new(attr("A", "x"), CompareOp::Eq, attr("D", "w"))));
        // And not inequalities through congruence.
        assert!(!facts.implies_clause(&Clause::new(attr("A", "x"), CompareOp::Lt, attr("C", "z"))));
    }

    #[test]
    fn consistency_direct_contradiction() {
        let c = Conjunction::new(vec![
            Clause::new(attr("R", "x"), CompareOp::Eq, attr("S", "y")),
            Clause::new(attr("R", "x"), CompareOp::Ne, attr("S", "y")),
        ]);
        assert!(!c.is_consistent());
    }

    #[test]
    fn consistency_interval_empty() {
        let c = Conjunction::new(vec![
            Clause::new(attr("R", "x"), CompareOp::Lt, ScalarExpr::lit(3i64)),
            Clause::new(attr("R", "x"), CompareOp::Gt, ScalarExpr::lit(7i64)),
        ]);
        assert!(!c.is_consistent());
        let ok = Conjunction::new(vec![
            Clause::new(attr("R", "x"), CompareOp::Gt, ScalarExpr::lit(3i64)),
            Clause::new(attr("R", "x"), CompareOp::Lt, ScalarExpr::lit(7i64)),
        ]);
        assert!(ok.is_consistent());
    }

    #[test]
    fn consistency_eq_propagation() {
        // x = y AND x = 'a' AND y = 'b' is inconsistent.
        let c = Conjunction::new(vec![
            Clause::new(attr("R", "x"), CompareOp::Eq, attr("S", "y")),
            Clause::new(attr("R", "x"), CompareOp::Eq, ScalarExpr::lit("a")),
            Clause::new(attr("S", "y"), CompareOp::Eq, ScalarExpr::lit("b")),
        ]);
        assert!(!c.is_consistent());
        // Same constant is fine.
        let ok = Conjunction::new(vec![
            Clause::new(attr("R", "x"), CompareOp::Eq, attr("S", "y")),
            Clause::new(attr("R", "x"), CompareOp::Eq, ScalarExpr::lit("a")),
            Clause::new(attr("S", "y"), CompareOp::Eq, ScalarExpr::lit("a")),
        ]);
        assert!(ok.is_consistent());
    }

    #[test]
    fn consistency_eq_ne_same_constant() {
        let c = Conjunction::new(vec![
            Clause::new(attr("R", "x"), CompareOp::Eq, ScalarExpr::lit(5i64)),
            Clause::new(attr("R", "x"), CompareOp::Ne, ScalarExpr::lit(5i64)),
        ]);
        assert!(!c.is_consistent());
    }

    #[test]
    fn consistency_boundary_strictness() {
        // x >= 5 AND x <= 5 is satisfiable; x > 5 AND x <= 5 is not.
        let ok = Conjunction::new(vec![
            Clause::new(attr("R", "x"), CompareOp::Ge, ScalarExpr::lit(5i64)),
            Clause::new(attr("R", "x"), CompareOp::Le, ScalarExpr::lit(5i64)),
        ]);
        assert!(ok.is_consistent());
        let bad = Conjunction::new(vec![
            Clause::new(attr("R", "x"), CompareOp::Gt, ScalarExpr::lit(5i64)),
            Clause::new(attr("R", "x"), CompareOp::Le, ScalarExpr::lit(5i64)),
        ]);
        assert!(!bad.is_consistent());
    }

    #[test]
    fn empty_conjunction_is_true_and_consistent() {
        let c = Conjunction::empty();
        assert!(c.is_consistent());
        assert!(c.is_empty());
        assert_eq!(c.to_string(), "TRUE");
    }

    #[test]
    fn display() {
        let c = Conjunction::new(vec![
            Clause::new(attr("C", "Name"), CompareOp::Eq, attr("F", "PName")),
            Clause::new(attr("F", "Dest"), CompareOp::Eq, ScalarExpr::lit("Asia")),
        ]);
        assert_eq!(c.to_string(), "(C.Name = F.PName) AND (F.Dest = 'Asia')");
    }
}
