//! Names, attribute references and relation schemas.
//!
//! The paper describes an exported relation as `IS.R(A_1, …, A_n)` (§2).
//! Relation names are globally unique in an information space (Fig. 2 uses
//! qualified names such as `Tour.TourID` only to disambiguate attribute
//! names across relations, not relation names). We model:
//!
//! * [`RelName`] — the relation's name, optionally carrying the name of the
//!   information source that exports it;
//! * [`AttrName`] — an attribute name, unique within its relation;
//! * [`AttrRef`] — a *qualified* attribute `R.A`, the hypernode identity in
//!   `H(MKB)` (two relations exporting the same attribute name are distinct
//!   hypernodes — see Fig. 4 where `Tour.Type` and `Accident-Ins.Type`
//!   coexist).

use crate::types::DataType;
use std::fmt;
use std::sync::Arc;

/// A relation name (unique within the information space).
///
/// Internally a shared immutable string: names are created once (parsing,
/// MKB construction) and then copied pervasively through hypergraphs,
/// R-mappings and candidate replacements — a clone is a refcount bump,
/// not an allocation. Comparison, ordering and hashing are by value,
/// exactly as for the owned-string representation.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct RelName(Arc<str>);

impl RelName {
    /// Create a relation name.
    pub fn new(name: impl Into<String>) -> Self {
        RelName(name.into().into())
    }

    /// The name as a string slice.
    pub fn as_str(&self) -> &str {
        &self.0
    }
}

impl fmt::Display for RelName {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl From<&str> for RelName {
    fn from(s: &str) -> Self {
        RelName::new(s)
    }
}
impl From<String> for RelName {
    fn from(s: String) -> Self {
        RelName::new(s)
    }
}

/// An attribute name (unique within its relation).
///
/// Shared immutable string, like [`RelName`]: cloning is a refcount
/// bump, value semantics are unchanged.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct AttrName(Arc<str>);

impl AttrName {
    /// Create an attribute name.
    pub fn new(name: impl Into<String>) -> Self {
        AttrName(name.into().into())
    }

    /// The name as a string slice.
    pub fn as_str(&self) -> &str {
        &self.0
    }
}

impl fmt::Display for AttrName {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl From<&str> for AttrName {
    fn from(s: &str) -> Self {
        AttrName::new(s)
    }
}
impl From<String> for AttrName {
    fn from(s: String) -> Self {
        AttrName::new(s)
    }
}

/// A fully qualified attribute reference `R.A`.
///
/// This is the identity of a hypernode in the MKB hypergraph and the unit
/// of column naming inside evaluated relations: every evaluated relation
/// carries `AttrRef`-labelled columns so joins never confuse same-named
/// attributes of different relations.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct AttrRef {
    /// The relation (or, inside a view body, the alias target) owning the
    /// attribute.
    pub relation: RelName,
    /// The attribute.
    pub attr: AttrName,
}

impl AttrRef {
    /// Create a qualified attribute reference.
    pub fn new(relation: impl Into<RelName>, attr: impl Into<AttrName>) -> Self {
        AttrRef {
            relation: relation.into(),
            attr: attr.into(),
        }
    }

    /// Parse `R.A` from text. Returns `None` when there is not exactly one
    /// dot-separated qualifier.
    pub fn parse(s: &str) -> Option<AttrRef> {
        let (r, a) = s.split_once('.')?;
        if r.is_empty() || a.is_empty() || a.contains('.') {
            return None;
        }
        Some(AttrRef::new(r, a))
    }
}

impl fmt::Display for AttrRef {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}.{}", self.relation, self.attr)
    }
}

/// An attribute definition: name + declared type (the type-integrity
/// constraint `TC` of Fig. 1, folded into the schema).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AttributeDef {
    /// Attribute name.
    pub name: AttrName,
    /// Declared domain.
    pub ty: DataType,
}

impl AttributeDef {
    /// Create an attribute definition.
    pub fn new(name: impl Into<AttrName>, ty: DataType) -> Self {
        AttributeDef {
            name: name.into(),
            ty,
        }
    }
}

/// The schema of a relation: an ordered list of [`AttrRef`]-identified,
/// typed columns.
///
/// Columns are identified by full `AttrRef`s (not bare names) because the
/// result of a join carries columns from several relations.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Schema {
    columns: Vec<(AttrRef, DataType)>,
}

impl Schema {
    /// Empty schema.
    pub fn new() -> Self {
        Schema::default()
    }

    /// Schema of a base relation `rel` with the given attributes.
    pub fn of_relation(rel: &RelName, attrs: &[AttributeDef]) -> Self {
        Schema {
            columns: attrs
                .iter()
                .map(|a| (AttrRef::new(rel.clone(), a.name.clone()), a.ty))
                .collect(),
        }
    }

    /// Build from explicit `(AttrRef, DataType)` columns.
    ///
    /// Duplicate `AttrRef`s are rejected.
    pub fn from_columns(
        columns: Vec<(AttrRef, DataType)>,
    ) -> Result<Self, crate::error::RelationalError> {
        for (i, (c, _)) in columns.iter().enumerate() {
            if columns[..i].iter().any(|(d, _)| d == c) {
                return Err(crate::error::RelationalError::DuplicateColumn(c.clone()));
            }
        }
        Ok(Schema { columns })
    }

    /// Number of columns.
    pub fn arity(&self) -> usize {
        self.columns.len()
    }

    /// True when the schema has no columns.
    pub fn is_empty(&self) -> bool {
        self.columns.is_empty()
    }

    /// Ordered columns.
    pub fn columns(&self) -> &[(AttrRef, DataType)] {
        &self.columns
    }

    /// Position of an attribute, if present.
    pub fn index_of(&self, attr: &AttrRef) -> Option<usize> {
        self.columns.iter().position(|(c, _)| c == attr)
    }

    /// Declared type of an attribute, if present.
    pub fn type_of(&self, attr: &AttrRef) -> Option<DataType> {
        self.columns
            .iter()
            .find(|(c, _)| c == attr)
            .map(|(_, t)| *t)
    }

    /// True iff `attr` is a column of this schema.
    pub fn contains(&self, attr: &AttrRef) -> bool {
        self.index_of(attr).is_some()
    }

    /// Concatenate two schemas (for a join result). Errors on duplicate
    /// columns — the paper assumes a relation appears at most once in a
    /// FROM clause, so this never fires for well-formed views.
    pub fn concat(&self, other: &Schema) -> Result<Schema, crate::error::RelationalError> {
        let mut cols = self.columns.clone();
        for (c, t) in &other.columns {
            if self.contains(c) {
                return Err(crate::error::RelationalError::DuplicateColumn(c.clone()));
            }
            cols.push((c.clone(), *t));
        }
        Ok(Schema { columns: cols })
    }

    /// All attribute references, in column order.
    pub fn attr_refs(&self) -> impl Iterator<Item = &AttrRef> {
        self.columns.iter().map(|(c, _)| c)
    }
}

impl fmt::Display for Schema {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "(")?;
        for (i, (c, t)) in self.columns.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{c}: {t}")?;
        }
        write!(f, ")")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn attr_ref_parse() {
        let r = AttrRef::parse("Customer.Name").unwrap();
        assert_eq!(r.relation.as_str(), "Customer");
        assert_eq!(r.attr.as_str(), "Name");
        assert!(AttrRef::parse("Name").is_none());
        assert!(AttrRef::parse("A.B.C").is_none());
        assert!(AttrRef::parse(".B").is_none());
        assert!(AttrRef::parse("A.").is_none());
    }

    #[test]
    fn schema_of_relation_qualifies() {
        let rel = RelName::new("Customer");
        let s = Schema::of_relation(
            &rel,
            &[
                AttributeDef::new("Name", DataType::Str),
                AttributeDef::new("Age", DataType::Int),
            ],
        );
        assert_eq!(s.arity(), 2);
        assert_eq!(
            s.type_of(&AttrRef::new("Customer", "Age")),
            Some(DataType::Int)
        );
        assert_eq!(s.index_of(&AttrRef::new("Customer", "Name")), Some(0));
        assert!(!s.contains(&AttrRef::new("Other", "Name")));
    }

    #[test]
    fn schema_concat_rejects_duplicates() {
        let a = Schema::from_columns(vec![(AttrRef::new("R", "x"), DataType::Int)]).unwrap();
        let b = Schema::from_columns(vec![(AttrRef::new("R", "x"), DataType::Int)]).unwrap();
        assert!(a.concat(&b).is_err());
        let c = Schema::from_columns(vec![(AttrRef::new("S", "x"), DataType::Int)]).unwrap();
        assert_eq!(a.concat(&c).unwrap().arity(), 2);
    }

    #[test]
    fn from_columns_rejects_duplicates() {
        let cols = vec![
            (AttrRef::new("R", "x"), DataType::Int),
            (AttrRef::new("R", "x"), DataType::Str),
        ];
        assert!(Schema::from_columns(cols).is_err());
    }

    #[test]
    fn display_forms() {
        assert_eq!(AttrRef::new("R", "a").to_string(), "R.a");
        let s = Schema::from_columns(vec![(AttrRef::new("R", "a"), DataType::Int)]).unwrap();
        assert_eq!(s.to_string(), "(R.a: int)");
    }
}
