//! Data types and runtime values.
//!
//! MISD type-integrity constraints (Fig. 1 of the paper,
//! `TC_{R,A_i} = (R(A_i) ⊆ Type_i(A_i))`) assign every exported attribute a
//! domain. We support the domains that appear in the running example
//! (names, addresses, phone numbers, ages, dates, amounts) plus booleans.
//!
//! [`Value`] implements a *total* order (floats are ordered by their IEEE
//! bit pattern after NaN canonicalisation) so relations can be used as sets
//! and extents compared deterministically.

use std::cmp::Ordering;
use std::fmt;

/// Declared domain of an attribute.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum DataType {
    /// 64-bit signed integer.
    Int,
    /// 64-bit IEEE float (totally ordered inside [`Value`]).
    Float,
    /// UTF-8 string.
    Str,
    /// Boolean.
    Bool,
    /// Calendar date, stored as days since 1970-01-01.
    Date,
}

impl DataType {
    /// All data types, in a fixed order (useful for generators).
    pub const ALL: [DataType; 5] = [
        DataType::Int,
        DataType::Float,
        DataType::Str,
        DataType::Bool,
        DataType::Date,
    ];

    /// Name as used in the MISD textual format (`int`, `float`, `str`,
    /// `bool`, `date`).
    pub fn name(self) -> &'static str {
        match self {
            DataType::Int => "int",
            DataType::Float => "float",
            DataType::Str => "str",
            DataType::Bool => "bool",
            DataType::Date => "date",
        }
    }

    /// Parse a MISD type name. Case-insensitive; accepts a few synonyms
    /// (`integer`, `string`, `double`, `boolean`).
    pub fn parse(s: &str) -> Option<DataType> {
        match s.to_ascii_lowercase().as_str() {
            "int" | "integer" => Some(DataType::Int),
            "float" | "double" | "real" => Some(DataType::Float),
            "str" | "string" | "varchar" | "text" => Some(DataType::Str),
            "bool" | "boolean" => Some(DataType::Bool),
            "date" => Some(DataType::Date),
            _ => None,
        }
    }

    /// Whether values of this type support arithmetic (`+ - * /`).
    pub fn is_numeric(self) -> bool {
        matches!(self, DataType::Int | DataType::Float | DataType::Date)
    }
}

impl fmt::Display for DataType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// A float wrapper with total order and hash, so tuples can live in sets.
///
/// NaNs are canonicalised to a single bit pattern and sort greater than any
/// other value; `-0.0` and `+0.0` compare equal.
#[derive(Debug, Clone, Copy)]
pub struct OrderedF64(f64);

impl OrderedF64 {
    /// Wrap a float, canonicalising NaN.
    pub fn new(v: f64) -> Self {
        if v.is_nan() {
            OrderedF64(f64::NAN)
        } else if v == 0.0 {
            // normalise -0.0 to +0.0 so Eq and Hash agree
            OrderedF64(0.0)
        } else {
            OrderedF64(v)
        }
    }

    /// The wrapped float.
    pub fn get(self) -> f64 {
        self.0
    }

    fn key(self) -> u64 {
        // Map to a lexicographically ordered unsigned key.
        let bits = self.0.to_bits();
        if bits >> 63 == 0 {
            bits | (1 << 63)
        } else {
            !bits
        }
    }
}

impl PartialEq for OrderedF64 {
    fn eq(&self, other: &Self) -> bool {
        self.key() == other.key()
    }
}
impl Eq for OrderedF64 {}
impl PartialOrd for OrderedF64 {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for OrderedF64 {
    fn cmp(&self, other: &Self) -> Ordering {
        self.key().cmp(&other.key())
    }
}
impl std::hash::Hash for OrderedF64 {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        self.key().hash(state);
    }
}

/// A runtime value. `Null` models missing information (an attribute that an
/// IS stopped exporting, or a dispensable component dropped from a view).
///
/// Comparison semantics: unlike SQL's three-valued logic we give `Null` a
/// definite position (smallest) in the total order, which keeps extent
/// comparison a plain set comparison. Predicate evaluation, however, treats
/// any comparison involving `Null` as *false* (see
/// [`crate::pred::Clause::eval`]), matching SQL's observable behaviour for
/// SELECT-FROM-WHERE queries without explicit `IS NULL`.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Value {
    /// Missing information.
    Null,
    /// Boolean.
    Bool(bool),
    /// Integer.
    Int(i64),
    /// Totally ordered float.
    Float(OrderedF64),
    /// String (shared immutable storage — values are copied pervasively
    /// through predicates and tuples, so a clone is a refcount bump).
    Str(std::sync::Arc<str>),
    /// Date as days since the Unix epoch.
    Date(i64),
}

impl Value {
    /// Construct a float value (canonicalising NaN).
    pub fn float(v: f64) -> Value {
        Value::Float(OrderedF64::new(v))
    }

    /// Construct a string value.
    pub fn str(s: impl Into<String>) -> Value {
        Value::Str(s.into().into())
    }

    /// The dynamic type of this value, or `None` for `Null`.
    pub fn data_type(&self) -> Option<DataType> {
        match self {
            Value::Null => None,
            Value::Bool(_) => Some(DataType::Bool),
            Value::Int(_) => Some(DataType::Int),
            Value::Float(_) => Some(DataType::Float),
            Value::Str(_) => Some(DataType::Str),
            Value::Date(_) => Some(DataType::Date),
        }
    }

    /// True iff this is [`Value::Null`].
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }

    /// Numeric view of the value (`Int`, `Float` and `Date` coerce to
    /// `f64`); `None` for everything else.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Int(i) => Some(*i as f64),
            Value::Float(f) => Some(f.get()),
            Value::Date(d) => Some(*d as f64),
            _ => None,
        }
    }

    /// Compare two values the way a predicate does: numeric types compare
    /// numerically across `Int`/`Float`/`Date`; other cross-type
    /// comparisons and any comparison involving `Null` yield `None`
    /// ("unknown", which predicates treat as false).
    pub fn sql_cmp(&self, other: &Value) -> Option<Ordering> {
        use Value::*;
        match (self, other) {
            (Null, _) | (_, Null) => None,
            (Bool(a), Bool(b)) => Some(a.cmp(b)),
            (Str(a), Str(b)) => Some(a.cmp(b)),
            _ => {
                let (a, b) = (self.as_f64()?, other.as_f64()?);
                a.partial_cmp(&b)
            }
        }
    }
}

impl Value {
    /// Append the canonical textual form to `out` — byte-identical to
    /// the [`fmt::Display`] output, without the formatter machinery (the
    /// candidate-ranking hot path renders whole views through this).
    pub fn render_into(&self, out: &mut String) {
        match self {
            Value::Null => out.push_str("NULL"),
            Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Value::Int(i) => push_i64(out, *i),
            Value::Float(x) => {
                use fmt::Write as _;
                let _ = write!(out, "{}", x.get());
            }
            Value::Str(s) => {
                out.push('\'');
                if s.contains('\'') {
                    out.push_str(&s.replace('\'', "''"));
                } else {
                    out.push_str(s);
                }
                out.push('\'');
            }
            Value::Date(d) => {
                out.push_str("date(");
                push_i64(out, *d);
                out.push(')');
            }
        }
    }
}

/// Decimal-format an `i64` straight into a string buffer.
fn push_i64(out: &mut String, v: i64) {
    let mut buf = [0u8; 20];
    let mut n = v.unsigned_abs();
    let mut i = buf.len();
    loop {
        i -= 1;
        buf[i] = b'0' + (n % 10) as u8;
        n /= 10;
        if n == 0 {
            break;
        }
    }
    if v < 0 {
        i -= 1;
        buf[i] = b'-';
    }
    out.push_str(std::str::from_utf8(&buf[i..]).expect("ASCII digits"));
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Null => write!(f, "NULL"),
            Value::Bool(b) => write!(f, "{b}"),
            Value::Int(i) => write!(f, "{i}"),
            Value::Float(x) => write!(f, "{}", x.get()),
            Value::Str(s) => write!(f, "'{}'", s.replace('\'', "''")),
            Value::Date(d) => write!(f, "date({d})"),
        }
    }
}

impl From<i64> for Value {
    fn from(v: i64) -> Self {
        Value::Int(v)
    }
}
impl From<bool> for Value {
    fn from(v: bool) -> Self {
        Value::Bool(v)
    }
}
impl From<&str> for Value {
    fn from(v: &str) -> Self {
        Value::Str(v.into())
    }
}
impl From<String> for Value {
    fn from(v: String) -> Self {
        Value::Str(v.into())
    }
}
impl From<f64> for Value {
    fn from(v: f64) -> Self {
        Value::float(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn datatype_roundtrip() {
        for dt in DataType::ALL {
            assert_eq!(DataType::parse(dt.name()), Some(dt));
        }
        assert_eq!(DataType::parse("VarChar"), Some(DataType::Str));
        assert_eq!(DataType::parse("blob"), None);
    }

    #[test]
    fn numeric_types() {
        assert!(DataType::Int.is_numeric());
        assert!(DataType::Date.is_numeric());
        assert!(!DataType::Str.is_numeric());
        assert!(!DataType::Bool.is_numeric());
    }

    #[test]
    fn ordered_float_total_order() {
        let nan = OrderedF64::new(f64::NAN);
        let one = OrderedF64::new(1.0);
        let neg = OrderedF64::new(-5.0);
        assert!(nan > one);
        assert!(neg < one);
        assert_eq!(nan, OrderedF64::new(f64::NAN));
        assert_eq!(OrderedF64::new(-0.0), OrderedF64::new(0.0));
    }

    #[test]
    fn value_sql_cmp_cross_numeric() {
        assert_eq!(
            Value::Int(3).sql_cmp(&Value::float(3.0)),
            Some(Ordering::Equal)
        );
        assert_eq!(
            Value::Date(10).sql_cmp(&Value::Int(11)),
            Some(Ordering::Less)
        );
        assert_eq!(Value::Null.sql_cmp(&Value::Int(1)), None);
        assert_eq!(Value::str("a").sql_cmp(&Value::Int(1)), None);
        assert_eq!(
            Value::str("a").sql_cmp(&Value::str("b")),
            Some(Ordering::Less)
        );
    }

    #[test]
    fn value_display() {
        assert_eq!(Value::str("O'Neil").to_string(), "'O''Neil'");
        assert_eq!(Value::Int(-4).to_string(), "-4");
        assert_eq!(Value::Null.to_string(), "NULL");
    }

    #[test]
    fn value_total_order_is_consistent() {
        let mut vals = [
            Value::str("z"),
            Value::Null,
            Value::Int(2),
            Value::float(1.5),
            Value::Bool(true),
            Value::Date(3),
        ];
        vals.sort();
        // Null sorts first in the total order.
        assert_eq!(vals[0], Value::Null);
    }
}
