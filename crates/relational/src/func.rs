//! Named scalar functions.
//!
//! MISD *function-of* constraints (§2 of the paper) have the form
//! `F_{R1.A, R2.B} = (R1.A = f(R2.B))` where `f` is an arbitrary function.
//! The running example uses `F3 = (Customer.Age = (today −
//! Accident-Ins.Birthday)/365)` — arithmetic over a nullary function
//! `today`. Arithmetic is part of [`crate::expr::ScalarExpr`]; everything
//! else is a *named function* resolved through a [`FuncRegistry`].
//!
//! The default registry is fully deterministic: `today` returns a fixed
//! simulation date (configurable via [`FuncRegistry::set_today`]) so that
//! experiments and property tests are reproducible.

use crate::error::RelationalError;
use crate::types::Value;
use std::collections::BTreeMap;
use std::fmt;
use std::sync::Arc;

/// The implementation type of a named function.
pub type FuncImpl = Arc<dyn Fn(&[Value]) -> Value + Send + Sync>;

/// A named scalar function: fixed arity plus an implementation.
#[derive(Clone)]
pub struct NamedFunc {
    /// Function name (as written in constraints/queries).
    pub name: String,
    /// Number of arguments the function takes.
    pub arity: usize,
    imp: FuncImpl,
}

impl NamedFunc {
    /// Create a named function.
    pub fn new(
        name: impl Into<String>,
        arity: usize,
        imp: impl Fn(&[Value]) -> Value + Send + Sync + 'static,
    ) -> Self {
        NamedFunc {
            name: name.into(),
            arity,
            imp: Arc::new(imp),
        }
    }

    /// Apply the function. Arity is checked by the caller
    /// ([`FuncRegistry::call`]).
    pub fn apply(&self, args: &[Value]) -> Value {
        (self.imp)(args)
    }
}

impl fmt::Debug for NamedFunc {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "NamedFunc({}/{})", self.name, self.arity)
    }
}

/// Registry of named functions, keyed case-sensitively.
#[derive(Debug, Clone)]
pub struct FuncRegistry {
    funcs: BTreeMap<String, NamedFunc>,
}

/// The fixed simulation date used by the default `today` implementation:
/// days since 1970-01-01 for 1998-03-23 (EDBT'98 week), keeping the
/// reproduction deterministic.
pub const DEFAULT_TODAY: i64 = 10_308;

impl Default for FuncRegistry {
    fn default() -> Self {
        let mut r = FuncRegistry {
            funcs: BTreeMap::new(),
        };
        r.register(NamedFunc::new("today", 0, |_| Value::Date(DEFAULT_TODAY)));
        r.register(NamedFunc::new("identity", 1, |a| a[0].clone()));
        r.register(NamedFunc::new("abs", 1, |a| match &a[0] {
            Value::Int(i) => Value::Int(i.abs()),
            Value::Float(f) => Value::float(f.get().abs()),
            _ => Value::Null,
        }));
        r.register(NamedFunc::new("lower", 1, |a| match &a[0] {
            Value::Str(s) => Value::Str(s.to_lowercase().into()),
            _ => Value::Null,
        }));
        r.register(NamedFunc::new("upper", 1, |a| match &a[0] {
            Value::Str(s) => Value::Str(s.to_uppercase().into()),
            _ => Value::Null,
        }));
        r.register(NamedFunc::new("floor", 1, |a| match a[0].as_f64() {
            Some(x) => Value::Int(x.floor() as i64),
            None => Value::Null,
        }));
        r
    }
}

impl FuncRegistry {
    /// Registry with the built-ins (`today`, `identity`, `abs`, `lower`,
    /// `upper`, `floor`).
    pub fn new() -> Self {
        Self::default()
    }

    /// Register (or replace) a function.
    pub fn register(&mut self, f: NamedFunc) {
        self.funcs.insert(f.name.clone(), f);
    }

    /// Override the simulation date returned by `today`.
    pub fn set_today(&mut self, days_since_epoch: i64) {
        self.register(NamedFunc::new("today", 0, move |_| {
            Value::Date(days_since_epoch)
        }));
    }

    /// Look up a function by name.
    pub fn get(&self, name: &str) -> Option<&NamedFunc> {
        self.funcs.get(name)
    }

    /// Call a function, checking existence and arity.
    pub fn call(&self, name: &str, args: &[Value]) -> Result<Value, RelationalError> {
        let f = self
            .funcs
            .get(name)
            .ok_or_else(|| RelationalError::UnknownFunction(name.to_string()))?;
        if f.arity != args.len() {
            return Err(RelationalError::Arity {
                func: name.to_string(),
                expected: f.arity,
                got: args.len(),
            });
        }
        Ok(f.apply(args))
    }

    /// Names of all registered functions.
    pub fn names(&self) -> impl Iterator<Item = &str> {
        self.funcs.keys().map(String::as_str)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builtins() {
        let r = FuncRegistry::new();
        assert_eq!(r.call("today", &[]).unwrap(), Value::Date(DEFAULT_TODAY));
        assert_eq!(r.call("abs", &[Value::Int(-3)]).unwrap(), Value::Int(3));
        assert_eq!(
            r.call("lower", &[Value::str("ABC")]).unwrap(),
            Value::str("abc")
        );
        assert_eq!(
            r.call("floor", &[Value::float(2.9)]).unwrap(),
            Value::Int(2)
        );
    }

    #[test]
    fn arity_and_unknown_errors() {
        let r = FuncRegistry::new();
        assert!(matches!(
            r.call("abs", &[]),
            Err(RelationalError::Arity { .. })
        ));
        assert!(matches!(
            r.call("nope", &[]),
            Err(RelationalError::UnknownFunction(_))
        ));
    }

    #[test]
    fn set_today_overrides() {
        let mut r = FuncRegistry::new();
        r.set_today(42);
        assert_eq!(r.call("today", &[]).unwrap(), Value::Date(42));
    }

    #[test]
    fn custom_function() {
        let mut r = FuncRegistry::new();
        r.register(NamedFunc::new("double", 1, |a| match a[0].as_f64() {
            Some(x) => Value::float(2.0 * x),
            None => Value::Null,
        }));
        assert_eq!(
            r.call("double", &[Value::Int(4)]).unwrap(),
            Value::float(8.0)
        );
    }
}
