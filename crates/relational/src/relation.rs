//! Relation instances: a schema plus a set of tuples.
//!
//! Extents are compared under **set semantics** (the paper's containment
//! statements `⊂ ⊆ ≡ ⊇ ⊃` are set relations), so duplicate tuples are
//! eliminated on insertion.

use crate::error::RelationalError;
use crate::schema::Schema;
use crate::tuple::Tuple;
use std::collections::BTreeSet;
use std::fmt;

/// A relation instance.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Relation {
    schema: Schema,
    rows: BTreeSet<Tuple>,
}

impl Relation {
    /// Empty relation with the given schema.
    pub fn new(schema: Schema) -> Self {
        Relation {
            schema,
            rows: BTreeSet::new(),
        }
    }

    /// Build from rows, checking widths.
    pub fn from_rows(
        schema: Schema,
        rows: impl IntoIterator<Item = Tuple>,
    ) -> Result<Self, RelationalError> {
        let mut r = Relation::new(schema);
        for t in rows {
            r.insert(t)?;
        }
        Ok(r)
    }

    /// The schema.
    pub fn schema(&self) -> &Schema {
        &self.schema
    }

    /// Insert a tuple (deduplicated). Errors when widths disagree.
    pub fn insert(&mut self, t: Tuple) -> Result<bool, RelationalError> {
        if t.arity() != self.schema.arity() {
            return Err(RelationalError::TupleWidth {
                expected: self.schema.arity(),
                got: t.arity(),
            });
        }
        Ok(self.rows.insert(t))
    }

    /// Number of (distinct) tuples.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// True when the relation holds no tuples.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Iterate over tuples in canonical order.
    pub fn rows(&self) -> impl Iterator<Item = &Tuple> {
        self.rows.iter()
    }

    /// The tuple set itself (for containment checks).
    pub fn row_set(&self) -> &BTreeSet<Tuple> {
        &self.rows
    }

    /// Membership test.
    pub fn contains(&self, t: &Tuple) -> bool {
        self.rows.contains(t)
    }
}

impl fmt::Display for Relation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "{}", self.schema)?;
        for t in &self.rows {
            writeln!(f, "  {t}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::{AttrRef, AttributeDef, RelName};
    use crate::types::{DataType, Value};

    fn schema() -> Schema {
        Schema::of_relation(
            &RelName::new("R"),
            &[
                AttributeDef::new("x", DataType::Int),
                AttributeDef::new("y", DataType::Str),
            ],
        )
    }

    #[test]
    fn insert_dedup_and_width_check() {
        let mut r = Relation::new(schema());
        let t = Tuple::new(vec![Value::Int(1), Value::str("a")]);
        assert!(r.insert(t.clone()).unwrap());
        assert!(!r.insert(t).unwrap());
        assert_eq!(r.len(), 1);
        assert!(r.insert(Tuple::new(vec![Value::Int(1)])).is_err());
    }

    #[test]
    fn from_rows() {
        let r = Relation::from_rows(
            schema(),
            vec![
                Tuple::new(vec![Value::Int(1), Value::str("a")]),
                Tuple::new(vec![Value::Int(2), Value::str("b")]),
            ],
        )
        .unwrap();
        assert_eq!(r.len(), 2);
        assert!(r.contains(&Tuple::new(vec![Value::Int(2), Value::str("b")])));
        assert!(r.schema().contains(&AttrRef::new("R", "x")));
    }
}
