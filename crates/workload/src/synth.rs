//! Parameterised synthetic workloads.
//!
//! The paper's evaluation is qualitative (worked examples); its claims —
//! CVS finds rewritings through *chains* of join constraints where the
//! one-step-away approach fails, in *large-scale* information spaces —
//! imply quantitative questions the experiment harness measures on the
//! workloads generated here:
//!
//! * [`SynthWorkload::chain`] — a cover at a controlled join-constraint
//!   distance `d` from the surviving view fragment (drives `sweep-chain`:
//!   CVS succeeds for any reachable `d`, SVS only for `d = 1`);
//! * [`SynthWorkload::random`] — random MKBs of configurable size,
//!   topology and constraint density (drives `sweep-scale` and
//!   `sweep-covers`);
//! * [`SynthWorkload::database`] — constraint-respecting IS states
//!   (drives `sweep-extent`: empirical validation of the symbolic P3
//!   checker).
//!
//! ## Data-consistency scheme
//!
//! All synthetic relations share an integer key attribute `k`; every join
//! constraint equates keys and every function-of constraint is an
//! identity on a shared payload attribute whose value is a fixed global
//! function of the key. Declared PC constraints are enforced by key-set
//! containment. Consequently *every* generated instance satisfies *all*
//! declared MKB constraints by construction, which is exactly the
//! semantics the MKB claims for real ISs.

use eve_esql::{CondItem, EvolutionParams, FromItem, SelectItem, ViewDefinition, ViewExtent};
use eve_misd::{
    CapabilityChange, ExtentOp, FunctionOf, JoinConstraint, MetaKnowledgeBase, MisdError,
    PartialComplete, ProjSel, RelationDescription,
};
use eve_relational::{
    AttrName, AttrRef, AttributeDef, Clause, Conjunction, DataType, Database, RelName, Relation,
    ScalarExpr, Schema, Tuple, Value,
};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::{BTreeMap, BTreeSet, VecDeque};

/// MKB topology of the relation graph (join-constraint edges).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Topology {
    /// `R0 — R1 — … — R(n-1)`.
    Chain,
    /// `R0` joined with every other relation.
    Star,
    /// Chain plus the closing edge `R(n-1) — R0`.
    Ring,
    /// Chain plus `extra` random chords (connected by construction).
    Random {
        /// Number of extra chord edges.
        extra: usize,
    },
    /// `⌈n / size⌉` independent clusters with **no cross-cluster
    /// joins** — each cluster is a chain of up to `size` consecutive
    /// relations plus `extra` random chords drawn inside the cluster.
    /// This models the paper's federated setting: a large evolvable
    /// information space made of autonomous IS groups, where one
    /// capability change perturbs a single group. Touched-component
    /// work (and so incremental index maintenance) stays `O(size)`
    /// however large the whole space grows.
    Clusters {
        /// Relations per cluster (clamped to ≥ 2; the last cluster may
        /// be smaller).
        size: usize,
        /// Random chord edges added inside each cluster.
        extra: usize,
    },
}

/// Configuration for [`SynthWorkload::random`].
#[derive(Debug, Clone, Copy)]
pub struct SynthConfig {
    /// Number of relations (≥ 2).
    pub n_relations: usize,
    /// Payload attributes per relation (`v0..`), beyond the key.
    pub payload_attrs: usize,
    /// Relation-graph topology.
    pub topology: Topology,
    /// Number of cover relations (function-of constraints defining the
    /// target's attributes from other relations).
    pub cover_count: usize,
    /// Probability that a cover also gets a certifying PC constraint
    /// (`S(k, v0) ⊇ R0(k, v0)`).
    pub pc_fraction: f64,
    /// Number of relations in the generated view (target + neighbours).
    pub view_relations: usize,
    /// The view-extent parameter of the generated view.
    pub extent: ViewExtent,
    /// Probability that each non-target relation also gets function-of
    /// covers (from a random other relation), making the whole
    /// information space redundant — used by the lifecycle sweep where
    /// any relation may be deleted. `0.0` (the default) restricts covers
    /// to the designated target.
    pub global_cover_prob: f64,
}

impl Default for SynthConfig {
    fn default() -> Self {
        SynthConfig {
            n_relations: 16,
            payload_attrs: 2,
            topology: Topology::Random { extra: 8 },
            cover_count: 2,
            pc_fraction: 0.5,
            view_relations: 3,
            extent: ViewExtent::Superset,
            global_cover_prob: 0.0,
        }
    }
}

/// A generated workload: an MKB, one affected view, and the relation
/// whose deletion drives the experiment.
#[derive(Debug, Clone)]
pub struct SynthWorkload {
    /// The meta knowledge base.
    pub mkb: MetaKnowledgeBase,
    /// The view to synchronize.
    pub view: ViewDefinition,
    /// The relation to delete.
    pub target: RelName,
}

fn rel_name(i: usize) -> RelName {
    RelName::new(format!("R{i}"))
}

fn describe(name: &RelName, payload_attrs: usize) -> RelationDescription {
    let mut attrs = vec![AttributeDef::new("k", DataType::Int)];
    for j in 0..payload_attrs {
        attrs.push(AttributeDef::new(format!("v{j}"), DataType::Int));
    }
    RelationDescription::new(format!("IS_{name}"), name.clone(), attrs)
}

fn key_join(id: &str, a: &RelName, b: &RelName) -> JoinConstraint {
    JoinConstraint::new(
        id,
        a.clone(),
        b.clone(),
        Conjunction::new(vec![Clause::eq_attrs(
            AttrRef::new(a.clone(), "k"),
            AttrRef::new(b.clone(), "k"),
        )]),
    )
}

/// A declaration the MKB rejected while building a synthetic workload:
/// which kind, which id, and the underlying reason. Surfaced by the
/// `try_*` generators so misuse (e.g. a naming scheme that collides for
/// some fanout/depth combination) reports the exact colliding
/// declaration instead of panicking mid-bench.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SynthError {
    /// Declaration kind: `"relation"`, `"join"`, `"function-of"`, `"PC"`.
    pub kind: &'static str,
    /// Name of the relation or id of the constraint that was rejected.
    pub id: String,
    /// The underlying MKB rejection.
    pub source: MisdError,
}

impl std::fmt::Display for SynthError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "declaring {} {:?}: {}", self.kind, self.id, self.source)
    }
}

impl std::error::Error for SynthError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        Some(&self.source)
    }
}

/// `?`-friendly wrapper over [`MetaKnowledgeBase`]'s fallible mutators
/// that attributes every rejection to the declaration that caused it.
struct MkbBuilder {
    mkb: MetaKnowledgeBase,
}

impl MkbBuilder {
    fn new() -> MkbBuilder {
        MkbBuilder {
            mkb: MetaKnowledgeBase::new(),
        }
    }

    fn relation(&mut self, desc: RelationDescription) -> Result<(), SynthError> {
        let id = desc.name.to_string();
        self.mkb.add_relation(desc).map_err(|source| SynthError {
            kind: "relation",
            id,
            source,
        })
    }

    fn join(&mut self, jc: JoinConstraint) -> Result<(), SynthError> {
        let id = jc.id.clone();
        self.mkb.add_join(jc).map_err(|source| SynthError {
            kind: "join",
            id,
            source,
        })
    }

    fn function_of(&mut self, f: FunctionOf) -> Result<(), SynthError> {
        let id = f.id.clone();
        self.mkb.add_function_of(f).map_err(|source| SynthError {
            kind: "function-of",
            id,
            source,
        })
    }

    fn pc(&mut self, pc: PartialComplete) -> Result<(), SynthError> {
        let id = pc.id.clone();
        self.mkb.add_pc(pc).map_err(|source| SynthError {
            kind: "PC",
            id,
            source,
        })
    }

    fn finish(self) -> MetaKnowledgeBase {
        self.mkb
    }
}

impl SynthWorkload {
    /// The controlled-distance chain workload of `sweep-chain`.
    ///
    /// Relations: target `T(k, v)`, witness `W(k, w)` (in the view),
    /// intermediates `C1..C(d-1)` and the cover `Cov(k, v)`, connected
    /// `W — C1 — … — C(d-1) — Cov`. The only covers of `T.v` and `T.k`
    /// live on `Cov`, exactly `distance` join-constraint hops from `W`.
    /// With `with_pc`, a PC constraint `Cov(k, v) ⊇ T(k, v)` certifies
    /// the swap.
    pub fn chain(distance: usize, with_pc: bool) -> SynthWorkload {
        Self::try_chain(distance, with_pc).unwrap_or_else(|e| panic!("chain workload: {e}"))
    }

    /// Fallible form of [`SynthWorkload::chain`]: reports which
    /// declaration the MKB rejected instead of panicking.
    pub fn try_chain(distance: usize, with_pc: bool) -> Result<SynthWorkload, SynthError> {
        assert!(distance >= 1, "distance must be at least 1");
        let mut b = MkbBuilder::new();
        let t = RelName::new("T");
        let w = RelName::new("W");
        let cov = RelName::new("Cov");

        b.relation(RelationDescription::new(
            "IS_T",
            t.clone(),
            vec![
                AttributeDef::new("k", DataType::Int),
                AttributeDef::new("v", DataType::Int),
            ],
        ))?;
        b.relation(RelationDescription::new(
            "IS_W",
            w.clone(),
            vec![
                AttributeDef::new("k", DataType::Int),
                AttributeDef::new("w", DataType::Int),
            ],
        ))?;
        let mut chain: Vec<RelName> = vec![w.clone()];
        for i in 1..distance {
            let c = RelName::new(format!("C{i}"));
            b.relation(RelationDescription::new(
                "IS_C",
                c.clone(),
                vec![AttributeDef::new("k", DataType::Int)],
            ))?;
            chain.push(c);
        }
        b.relation(RelationDescription::new(
            "IS_Cov",
            cov.clone(),
            vec![
                AttributeDef::new("k", DataType::Int),
                AttributeDef::new("v", DataType::Int),
            ],
        ))?;
        chain.push(cov.clone());

        b.join(key_join("JT", &t, &w))?;
        for (i, pair) in chain.windows(2).enumerate() {
            b.join(key_join(&format!("J{i}"), &pair[0], &pair[1]))?;
        }
        b.function_of(FunctionOf::new(
            "Fv",
            AttrRef::new(t.clone(), "v"),
            ScalarExpr::Attr(AttrRef::new(cov.clone(), "v")),
        ))?;
        b.function_of(FunctionOf::new(
            "Fk",
            AttrRef::new(t.clone(), "k"),
            ScalarExpr::Attr(AttrRef::new(cov.clone(), "k")),
        ))?;
        if with_pc {
            b.pc(PartialComplete::new(
                "PCcov",
                ProjSel::new(cov.clone(), vec![AttrName::new("k"), AttrName::new("v")]),
                ExtentOp::Superset,
                ProjSel::new(t.clone(), vec![AttrName::new("k"), AttrName::new("v")]),
            ))?;
            // The intermediates must also be complete w.r.t. T's keys —
            // otherwise joining through them could lose tuples and no
            // superset certificate would be sound.
            for (i, c) in chain[1..chain.len() - 1].iter().enumerate() {
                b.pc(PartialComplete::new(
                    format!("PCc{i}"),
                    ProjSel::new(c.clone(), vec![AttrName::new("k")]),
                    ExtentOp::Superset,
                    ProjSel::new(t.clone(), vec![AttrName::new("k")]),
                ))?;
            }
        }

        let view = build_view(
            "ChainView",
            ViewExtent::Superset,
            &[(t.clone(), vec!["k", "v"]), (w.clone(), vec!["k", "w"])],
            &[Clause::eq_attrs(
                AttrRef::new(t.clone(), "k"),
                AttrRef::new(w.clone(), "k"),
            )],
        );
        Ok(SynthWorkload {
            mkb: b.finish(),
            view,
            target: t,
        })
    }

    /// The wide-MKB/high-fanout workload of the budgeted-search
    /// benchmark (`bench-cvs` scenario `wide_mkb`).
    ///
    /// Relations: target `T(k, v)`, witness `W(k, w)` (in the view), one
    /// *shallow* cover `S0(k, v)` a single join hop from `W`, and
    /// `fanout` *deep* covers `C1..Cf(k, v)`, each at the end of its own
    /// chain `W — Bi1 — … — Bi{depth} — Ci` with a **parallel** join
    /// constraint on the last hop (so each deep cover contributes
    /// several connection-tree variants). Both of `T`'s attributes are
    /// covered by every cover relation, so the cover-combination space
    /// is `(1 + fanout)²` wide — the shallow×shallow combination is
    /// declared first and strictly dominates structurally.
    ///
    /// An exhaustive search expands every combination; a budgeted
    /// `top_k = 1` search keeps the shallow candidate and prunes every
    /// deep combination through the admissible relation-count bound
    /// before its trees are even enumerated. Both return the same best
    /// rewriting, which is what the `bench-smoke` assertion checks.
    pub fn wide_mkb(fanout: usize, depth: usize) -> SynthWorkload {
        Self::try_wide_mkb(fanout, depth).unwrap_or_else(|e| panic!("wide_mkb workload: {e}"))
    }

    /// Fallible form of [`SynthWorkload::wide_mkb`]: reports which
    /// declaration the MKB rejected instead of panicking.
    pub fn try_wide_mkb(fanout: usize, depth: usize) -> Result<SynthWorkload, SynthError> {
        assert!(fanout >= 1, "fanout must be at least 1");
        assert!(depth >= 1, "depth must be at least 1");
        let mut b = MkbBuilder::new();
        let t = RelName::new("T");
        let w = RelName::new("W");
        let s0 = RelName::new("S0");

        let kv = |name: &RelName, second: &str| {
            RelationDescription::new(
                format!("IS_{name}"),
                name.clone(),
                vec![
                    AttributeDef::new("k", DataType::Int),
                    AttributeDef::new(second, DataType::Int),
                ],
            )
        };
        b.relation(kv(&t, "v"))?;
        b.relation(kv(&w, "w"))?;
        b.relation(kv(&s0, "v"))?;
        b.join(key_join("JT", &t, &w))?;
        b.join(key_join("JS0", &w, &s0))?;

        // Declared first: the shallow cover, so the first cover
        // combination the search tries is the dominant one.
        let add_cover = |b: &mut MkbBuilder, idx: usize, src: &RelName| -> Result<(), SynthError> {
            b.function_of(FunctionOf::new(
                format!("Fk{idx}"),
                AttrRef::new(t.clone(), "k"),
                ScalarExpr::Attr(AttrRef::new(src.clone(), "k")),
            ))?;
            b.function_of(FunctionOf::new(
                format!("Fv{idx}"),
                AttrRef::new(t.clone(), "v"),
                ScalarExpr::Attr(AttrRef::new(src.clone(), "v")),
            ))?;
            Ok(())
        };
        add_cover(&mut b, 0, &s0)?;

        for i in 1..=fanout {
            let mut prev = w.clone();
            for j in 1..=depth {
                let mid = RelName::new(format!("B{i}_{j}"));
                b.relation(RelationDescription::new(
                    format!("IS_B{i}"),
                    mid.clone(),
                    vec![AttributeDef::new("k", DataType::Int)],
                ))?;
                b.join(key_join(&format!("J{i}_{j}"), &prev, &mid))?;
                prev = mid;
            }
            let c = RelName::new(format!("C{i}"));
            b.relation(kv(&c, "v"))?;
            // Parallel last-hop constraints: each deep cover combination
            // enumerates several connection-tree variants.
            b.join(key_join(&format!("J{i}_last_a"), &prev, &c))?;
            b.join(key_join(&format!("J{i}_last_b"), &prev, &c))?;
            add_cover(&mut b, i, &c)?;
        }

        let view = build_view(
            "WideView",
            ViewExtent::Any,
            &[(t.clone(), vec!["k", "v"]), (w.clone(), vec!["k", "w"])],
            &[Clause::eq_attrs(
                AttrRef::new(t.clone(), "k"),
                AttrRef::new(w.clone(), "k"),
            )],
        );
        Ok(SynthWorkload {
            mkb: b.finish(),
            view,
            target: t,
        })
    }

    /// A random workload per `cfg`, deterministic in `seed`.
    pub fn random(cfg: &SynthConfig, seed: u64) -> SynthWorkload {
        Self::try_random(cfg, seed).unwrap_or_else(|e| panic!("random workload: {e}"))
    }

    /// Fallible form of [`SynthWorkload::random`]: reports which
    /// declaration the MKB rejected instead of panicking.
    pub fn try_random(cfg: &SynthConfig, seed: u64) -> Result<SynthWorkload, SynthError> {
        assert!(cfg.n_relations >= 2);
        assert!(cfg.payload_attrs >= 1);
        let mut rng = StdRng::seed_from_u64(seed);
        let mut b = MkbBuilder::new();
        let names: Vec<RelName> = (0..cfg.n_relations).map(rel_name).collect();
        for n in &names {
            b.relation(describe(n, cfg.payload_attrs))?;
        }

        // Topology edges.
        let mut edges: BTreeSet<(usize, usize)> = BTreeSet::new();
        match cfg.topology {
            Topology::Chain => {
                for i in 0..cfg.n_relations - 1 {
                    edges.insert((i, i + 1));
                }
            }
            Topology::Star => {
                for i in 1..cfg.n_relations {
                    edges.insert((0, i));
                }
            }
            Topology::Ring => {
                for i in 0..cfg.n_relations - 1 {
                    edges.insert((i, i + 1));
                }
                edges.insert((0, cfg.n_relations - 1));
            }
            Topology::Random { extra } => {
                for i in 0..cfg.n_relations - 1 {
                    edges.insert((i, i + 1));
                }
                let mut added = 0;
                let mut attempts = 0;
                while added < extra && attempts < extra * 20 {
                    attempts += 1;
                    let a = rng.gen_range(0..cfg.n_relations);
                    let b = rng.gen_range(0..cfg.n_relations);
                    if a != b && edges.insert((a.min(b), a.max(b))) {
                        added += 1;
                    }
                }
            }
            Topology::Clusters { size, extra } => {
                let size = size.max(2);
                for start in (0..cfg.n_relations).step_by(size) {
                    let end = (start + size).min(cfg.n_relations);
                    for i in start..end.saturating_sub(1) {
                        edges.insert((i, i + 1));
                    }
                    if end - start < 2 {
                        continue; // singleton tail cluster: no chords possible
                    }
                    let mut added = 0;
                    let mut attempts = 0;
                    while added < extra && attempts < extra * 20 {
                        attempts += 1;
                        let a = rng.gen_range(start..end);
                        let b = rng.gen_range(start..end);
                        if a != b && edges.insert((a.min(b), a.max(b))) {
                            added += 1;
                        }
                    }
                }
            }
        }
        for (idx, (x, y)) in edges.iter().enumerate() {
            b.join(key_join(&format!("J{idx}"), &names[*x], &names[*y]))?;
        }

        // Adjacency for the view construction.
        let mut adj: BTreeMap<usize, Vec<usize>> = BTreeMap::new();
        for (a, b) in &edges {
            adj.entry(*a).or_default().push(*b);
            adj.entry(*b).or_default().push(*a);
        }

        // Covers of the target's key and first payload.
        let target = names[0].clone();
        let mut cover_sources: BTreeSet<usize> = BTreeSet::new();
        let mut attempts = 0;
        while cover_sources.len() < cfg.cover_count.min(cfg.n_relations - 1)
            && attempts < cfg.cover_count * 20 + 20
        {
            attempts += 1;
            cover_sources.insert(rng.gen_range(1..cfg.n_relations));
        }
        for (c, src) in cover_sources.iter().enumerate() {
            let s = &names[*src];
            b.function_of(FunctionOf::new(
                format!("Fk{c}"),
                AttrRef::new(target.clone(), "k"),
                ScalarExpr::Attr(AttrRef::new(s.clone(), "k")),
            ))?;
            b.function_of(FunctionOf::new(
                format!("Fv{c}"),
                AttrRef::new(target.clone(), "v0"),
                ScalarExpr::Attr(AttrRef::new(s.clone(), "v0")),
            ))?;
            if rng.gen_bool(cfg.pc_fraction) {
                b.pc(PartialComplete::new(
                    format!("PC{c}"),
                    ProjSel::new(s.clone(), vec![AttrName::new("k"), AttrName::new("v0")]),
                    ExtentOp::Superset,
                    ProjSel::new(
                        target.clone(),
                        vec![AttrName::new("k"), AttrName::new("v0")],
                    ),
                ))?;
            }
        }

        // Optional information-space redundancy: covers for non-target
        // relations too.
        if cfg.global_cover_prob > 0.0 {
            for i in 1..cfg.n_relations {
                if !rng.gen_bool(cfg.global_cover_prob) {
                    continue;
                }
                let mut j = rng.gen_range(0..cfg.n_relations);
                if j == i {
                    j = (j + 1) % cfg.n_relations;
                }
                let (t, s) = (&names[i], &names[j]);
                b.function_of(FunctionOf::new(
                    format!("GFk{i}"),
                    AttrRef::new(t.clone(), "k"),
                    ScalarExpr::Attr(AttrRef::new(s.clone(), "k")),
                ))?;
                b.function_of(FunctionOf::new(
                    format!("GFv{i}"),
                    AttrRef::new(t.clone(), "v0"),
                    ScalarExpr::Attr(AttrRef::new(s.clone(), "v0")),
                ))?;
            }
        }

        // The view: target plus BFS neighbours joined along JC edges.
        let mut view_rels: Vec<usize> = vec![0];
        let mut clauses: Vec<Clause> = Vec::new();
        let mut queue: VecDeque<usize> = VecDeque::from([0]);
        let mut seen: BTreeSet<usize> = [0].into_iter().collect();
        'bfs: while let Some(cur) = queue.pop_front() {
            for &next in adj.get(&cur).into_iter().flatten() {
                if seen.insert(next) {
                    view_rels.push(next);
                    clauses.push(Clause::eq_attrs(
                        AttrRef::new(names[cur].clone(), "k"),
                        AttrRef::new(names[next].clone(), "k"),
                    ));
                    if view_rels.len() >= cfg.view_relations {
                        break 'bfs;
                    }
                    queue.push_back(next);
                }
            }
        }

        let rels: Vec<(RelName, Vec<&str>)> = view_rels
            .iter()
            .enumerate()
            .map(|(pos, &i)| {
                let attrs = if pos == 0 { vec!["k", "v0"] } else { vec!["k"] };
                (names[i].clone(), attrs)
            })
            .collect();
        let view = build_view("SynthView", cfg.extent, &rels, &clauses);

        Ok(SynthWorkload {
            mkb: b.finish(),
            view,
            target,
        })
    }

    /// The capability change this workload studies.
    pub fn delete_change(&self) -> CapabilityChange {
        CapabilityChange::DeleteRelation(self.target.clone())
    }

    /// Generate a constraint-respecting database state.
    ///
    /// * `universe` — size of the shared key domain;
    /// * `coverage` — probability a relation holds a given key.
    ///
    /// Declared PC constraints are enforced by intersecting the
    /// subset-side key set into the superset side's (iterated to a
    /// fixpoint).
    pub fn database(&self, seed: u64, universe: usize, coverage: f64) -> Database {
        let mut rng = StdRng::seed_from_u64(seed);
        // Key sets per relation.
        let mut keysets: BTreeMap<RelName, BTreeSet<i64>> = BTreeMap::new();
        for desc in self.mkb.relations() {
            let mut ks = BTreeSet::new();
            for k in 0..universe as i64 {
                if rng.gen_bool(coverage) {
                    ks.insert(k);
                }
            }
            keysets.insert(desc.name.clone(), ks);
        }
        // Enforce PCs: π(S) ⊇ π(R) (as generated, left is the superset
        // side) → keyset(R) ⊆ keyset(S).
        for _ in 0..self.mkb.pcs().len() + 1 {
            for pc in self.mkb.pcs() {
                let (sup, sub) = match pc.op {
                    ExtentOp::Superset | ExtentOp::ProperSuperset => {
                        (pc.left.relation.clone(), pc.right.relation.clone())
                    }
                    ExtentOp::Subset | ExtentOp::ProperSubset => {
                        (pc.right.relation.clone(), pc.left.relation.clone())
                    }
                    ExtentOp::Equivalent => {
                        // intersect both ways
                        let l = keysets[&pc.left.relation].clone();
                        let r = keysets[&pc.right.relation].clone();
                        let both: BTreeSet<i64> = l.intersection(&r).cloned().collect();
                        keysets.insert(pc.left.relation.clone(), both.clone());
                        keysets.insert(pc.right.relation.clone(), both);
                        continue;
                    }
                };
                let sup_keys = keysets[&sup].clone();
                let sub_keys = keysets.get_mut(&sub).expect("relation described");
                sub_keys.retain(|k| sup_keys.contains(k));
            }
        }

        // Materialise tuples: payload j of key k is a fixed global
        // function, so identity function-of constraints hold on every
        // join.
        let payload = |k: i64, j: usize| -> i64 { (k * (j as i64 + 3) + 11) % 97 };
        let mut db = Database::new();
        for desc in self.mkb.relations() {
            let schema = Schema::of_relation(&desc.name, &desc.attrs);
            let mut rel = Relation::new(schema);
            for &k in &keysets[&desc.name] {
                let mut vals = Vec::with_capacity(desc.attrs.len());
                for (j, a) in desc.attrs.iter().enumerate() {
                    if a.name.as_str() == "k" {
                        vals.push(Value::Int(k));
                    } else {
                        vals.push(Value::Int(payload(k, j)));
                    }
                }
                rel.insert(Tuple::new(vals)).expect("arity");
            }
            db.put(desc.name.clone(), rel);
        }
        db
    }
}

/// Generate `count` views over an existing synthetic MKB, each rooted at
/// a different relation and joined to `view_relations - 1` BFS
/// neighbours along the MKB's join constraints. Views are named
/// `View0, View1, …` and satisfy the §4 well-formedness assumptions
/// (validated by construction). Relations with no join partner yield
/// single-relation views.
pub fn random_views(
    mkb: &MetaKnowledgeBase,
    count: usize,
    view_relations: usize,
    seed: u64,
) -> Vec<ViewDefinition> {
    let mut rng = StdRng::seed_from_u64(seed ^ 0x5eed_u64);
    let names: Vec<RelName> = mkb.relation_names().cloned().collect();
    if names.is_empty() {
        return Vec::new();
    }
    // Adjacency over join constraints.
    let mut adj: BTreeMap<RelName, Vec<RelName>> = BTreeMap::new();
    for jc in mkb.joins() {
        adj.entry(jc.left.clone())
            .or_default()
            .push(jc.right.clone());
        adj.entry(jc.right.clone())
            .or_default()
            .push(jc.left.clone());
    }
    let mut roots: Vec<RelName> = Vec::new();
    let mut attempts = 0;
    while roots.len() < count && attempts < count * 20 + 20 {
        attempts += 1;
        let cand = names[rng.gen_range(0..names.len())].clone();
        if !roots.contains(&cand) {
            roots.push(cand);
        }
    }

    roots
        .into_iter()
        .enumerate()
        .map(|(i, root)| {
            // BFS from the root.
            let mut rels: Vec<RelName> = vec![root.clone()];
            let mut clauses: Vec<Clause> = Vec::new();
            let mut seen: BTreeSet<RelName> = [root.clone()].into_iter().collect();
            let mut queue: VecDeque<RelName> = VecDeque::from([root]);
            'bfs: while let Some(cur) = queue.pop_front() {
                for next in adj.get(&cur).into_iter().flatten() {
                    if seen.insert(next.clone()) {
                        rels.push(next.clone());
                        clauses.push(Clause::eq_attrs(
                            AttrRef::new(cur.clone(), "k"),
                            AttrRef::new(next.clone(), "k"),
                        ));
                        if rels.len() >= view_relations {
                            break 'bfs;
                        }
                        queue.push_back(next.clone());
                    }
                }
            }
            let spec: Vec<(RelName, Vec<&str>)> = rels
                .iter()
                .enumerate()
                .map(|(pos, r)| {
                    let attrs = if pos == 0 { vec!["k", "v0"] } else { vec!["k"] };
                    (r.clone(), attrs)
                })
                .collect();
            build_view(&format!("View{i}"), ViewExtent::Any, &spec, &clauses)
        })
        .collect()
}

/// Generate `count` views that all reference `target` — the fan-out
/// workload for the parallel synchronizer benches (every view is
/// *affected* by `delete-relation target`). Each view starts at `target`
/// and grows by `view_relations - 1` randomized steps along the MKB's
/// join constraints, so the relation sets (and with them the terminal
/// sets the CVS search enumerates) differ from view to view. Views are
/// named `Fan0, Fan1, …` and are well-formed by construction.
pub fn views_touching(
    mkb: &MetaKnowledgeBase,
    target: &RelName,
    count: usize,
    view_relations: usize,
    seed: u64,
) -> Vec<ViewDefinition> {
    let mut rng = StdRng::seed_from_u64(seed ^ 0xfa11_u64);
    let mut adj: BTreeMap<RelName, Vec<RelName>> = BTreeMap::new();
    for jc in mkb.joins() {
        adj.entry(jc.left.clone())
            .or_default()
            .push(jc.right.clone());
        adj.entry(jc.right.clone())
            .or_default()
            .push(jc.left.clone());
    }
    (0..count)
        .map(|i| {
            let mut rels: Vec<RelName> = vec![target.clone()];
            let mut clauses: Vec<Clause> = Vec::new();
            while rels.len() < view_relations {
                // Frontier: (attached relation, unvisited neighbour).
                let frontier: Vec<(RelName, RelName)> = rels
                    .iter()
                    .flat_map(|r| {
                        adj.get(r)
                            .into_iter()
                            .flatten()
                            .filter(|n| !rels.contains(n))
                            .map(|n| (r.clone(), n.clone()))
                    })
                    .collect();
                if frontier.is_empty() {
                    break;
                }
                let (cur, next) = frontier[rng.gen_range(0..frontier.len())].clone();
                clauses.push(Clause::eq_attrs(
                    AttrRef::new(cur, "k"),
                    AttrRef::new(next.clone(), "k"),
                ));
                rels.push(next);
            }
            let spec: Vec<(RelName, Vec<&str>)> = rels
                .iter()
                .enumerate()
                .map(|(pos, r)| {
                    let attrs = if pos == 0 { vec!["k", "v0"] } else { vec!["k"] };
                    (r.clone(), attrs)
                })
                .collect();
            build_view(&format!("Fan{i}"), ViewExtent::Any, &spec, &clauses)
        })
        .collect()
}

/// Build a view over `rels` (relation, selected attrs) joined by
/// `clauses`. The first relation's items are `(false, true)`
/// (indispensable, replaceable); the others' are `(true, true)`.
fn build_view(
    name: &str,
    extent: ViewExtent,
    rels: &[(RelName, Vec<&str>)],
    clauses: &[Clause],
) -> ViewDefinition {
    let mut select = Vec::new();
    for (pos, (rel, attrs)) in rels.iter().enumerate() {
        for a in attrs {
            // Qualify output names: k of R1 exports as "R1_k".
            let alias = AttrName::new(format!("{}_{}", rel.as_str().replace('-', "_"), a));
            select.push(SelectItem {
                expr: ScalarExpr::Attr(AttrRef::new(rel.clone(), *a)),
                alias: Some(alias),
                params: EvolutionParams::new(pos != 0, true),
            });
        }
    }
    ViewDefinition {
        name: name.to_string(),
        interface: None,
        extent,
        select,
        from: rels
            .iter()
            .map(|(r, _)| FromItem {
                relation: r.clone(),
                alias: None,
                params: EvolutionParams::new(true, true),
            })
            .collect(),
        conditions: clauses
            .iter()
            .map(|c| CondItem {
                clause: c.clone(),
                params: EvolutionParams::new(false, true),
            })
            .collect(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use eve_core::{
        cvs_delete_relation_indexed, svs_delete_relation_indexed, CvsError, CvsOptions,
        LegalRewriting, MkbIndex,
    };
    use eve_misd::evolve;

    // Test-local shims: build one per-change MkbIndex, then synchronize
    // (the shape `Synchronizer::apply` uses).
    fn cvs_delete_relation(
        view: &ViewDefinition,
        target: &RelName,
        mkb: &MetaKnowledgeBase,
        mkb_prime: &MetaKnowledgeBase,
        opts: &CvsOptions,
    ) -> Result<Vec<LegalRewriting>, CvsError> {
        let index = MkbIndex::new(mkb, mkb_prime, opts);
        cvs_delete_relation_indexed(view, target, &index, opts)
    }

    fn svs_delete_relation(
        view: &ViewDefinition,
        target: &RelName,
        mkb: &MetaKnowledgeBase,
        mkb_prime: &MetaKnowledgeBase,
    ) -> Result<Vec<LegalRewriting>, CvsError> {
        let opts = CvsOptions::default();
        let index = MkbIndex::new(mkb, mkb_prime, &opts);
        svs_delete_relation_indexed(view, target, &index, &opts)
    }

    #[test]
    fn chain_structure() {
        let w = SynthWorkload::chain(3, true);
        // T, W, C1, C2, Cov = 5 relations; JT + 3 chain joins.
        assert_eq!(w.mkb.relation_count(), 5);
        assert_eq!(w.mkb.joins().len(), 4);
        assert_eq!(w.mkb.function_ofs().len(), 2);
        // PCcov plus one completeness PC per intermediate (C1, C2).
        assert_eq!(w.mkb.pcs().len(), 3);
        assert!(SynthWorkload::chain(1, false).mkb.relation_count() == 3);
    }

    #[test]
    fn chain_cvs_succeeds_svs_fails_beyond_one_hop() {
        for d in 1..=4 {
            let w = SynthWorkload::chain(d, false);
            let mkb2 = evolve(&w.mkb, &w.delete_change()).unwrap();
            let cvs =
                cvs_delete_relation(&w.view, &w.target, &w.mkb, &mkb2, &CvsOptions::default());
            assert!(cvs.is_ok(), "CVS failed at distance {d}: {cvs:?}");
            let svs = svs_delete_relation(&w.view, &w.target, &w.mkb, &mkb2);
            if d == 1 {
                assert!(svs.is_ok(), "SVS must succeed at distance 1");
            } else {
                assert!(svs.is_err(), "SVS must fail at distance {d}");
            }
        }
    }

    #[test]
    fn chain_pc_certifies_superset() {
        let w = SynthWorkload::chain(2, true);
        let mkb2 = evolve(&w.mkb, &w.delete_change()).unwrap();
        let rewritings =
            cvs_delete_relation(&w.view, &w.target, &w.mkb, &mkb2, &CvsOptions::default()).unwrap();
        assert!(
            rewritings.iter().any(|r| r.satisfies_p3),
            "PC certificate not picked up: {:?}",
            rewritings.iter().map(|r| r.verdict).collect::<Vec<_>>()
        );
    }

    #[test]
    fn wide_mkb_structure_and_search() {
        let w = SynthWorkload::wide_mkb(3, 2);
        // T, W, S0 + 3 × (2 intermediates + 1 cover) = 12 relations.
        assert_eq!(w.mkb.relation_count(), 12);
        // JT + JS0 + 3 × (2 chain + 2 parallel last-hop) = 14 joins.
        assert_eq!(w.mkb.joins().len(), 14);
        // (1 + 3 deep covers) × 2 attributes.
        assert_eq!(w.mkb.function_ofs().len(), 8);
        let errs = eve_esql::validate_view(&w.view);
        assert!(errs.is_empty(), "{errs:?}");

        // The shallow S0 candidate must win: it is the structurally
        // smallest rewriting (two relations, one join).
        let mkb2 = evolve(&w.mkb, &w.delete_change()).unwrap();
        let reps =
            cvs_delete_relation(&w.view, &w.target, &w.mkb, &mkb2, &CvsOptions::default()).unwrap();
        assert!(reps.len() > 1, "deep covers must contribute alternatives");
        assert!(
            reps[0].replacement.relations.contains(&RelName::new("S0")),
            "{:?}",
            reps[0].replacement.relations
        );
        assert_eq!(reps[0].replacement.relations.len(), 2);
    }

    #[test]
    fn random_workload_is_deterministic_and_valid() {
        let cfg = SynthConfig::default();
        let a = SynthWorkload::random(&cfg, 42);
        let b = SynthWorkload::random(&cfg, 42);
        assert_eq!(a.mkb, b.mkb);
        assert_eq!(a.view, b.view);
        // View is structurally valid.
        let errs = eve_esql::validate_view(&a.view);
        assert!(errs.is_empty(), "{errs:?}");
        // Workload is synchronizable end to end (covers exist).
        let mkb2 = evolve(&a.mkb, &a.delete_change()).unwrap();
        let res = cvs_delete_relation(&a.view, &a.target, &a.mkb, &mkb2, &CvsOptions::default());
        assert!(res.is_ok(), "{res:?}");
    }

    #[test]
    fn topologies_produce_expected_edge_counts() {
        for (topo, expect) in [
            (Topology::Chain, 9),
            (Topology::Star, 9),
            (Topology::Ring, 10),
        ] {
            let cfg = SynthConfig {
                n_relations: 10,
                topology: topo,
                ..SynthConfig::default()
            };
            let w = SynthWorkload::random(&cfg, 1);
            assert_eq!(w.mkb.joins().len(), expect, "{topo:?}");
        }
        let cfg = SynthConfig {
            n_relations: 10,
            topology: Topology::Random { extra: 5 },
            ..SynthConfig::default()
        };
        let w = SynthWorkload::random(&cfg, 1);
        assert!(w.mkb.joins().len() >= 9 && w.mkb.joins().len() <= 14);
    }

    #[test]
    fn random_views_are_valid_and_distinctly_rooted() {
        let cfg = SynthConfig {
            n_relations: 12,
            ..SynthConfig::default()
        };
        let w = SynthWorkload::random(&cfg, 3);
        let views = random_views(&w.mkb, 5, 3, 9);
        assert_eq!(views.len(), 5);
        let mut roots = BTreeSet::new();
        for v in &views {
            let errs = eve_esql::validate_view(v);
            assert!(errs.is_empty(), "{}: {errs:?}", v.name);
            roots.insert(v.from[0].relation.clone());
        }
        assert_eq!(roots.len(), 5, "roots must differ");
        // Deterministic per seed.
        let again = random_views(&w.mkb, 5, 3, 9);
        assert_eq!(views, again);
    }

    #[test]
    fn views_touching_all_reference_target() {
        let cfg = SynthConfig {
            n_relations: 16,
            topology: Topology::Random { extra: 6 },
            ..SynthConfig::default()
        };
        let w = SynthWorkload::random(&cfg, 7);
        let views = views_touching(&w.mkb, &w.target, 8, 3, 11);
        assert_eq!(views.len(), 8);
        for v in &views {
            let errs = eve_esql::validate_view(v);
            assert!(errs.is_empty(), "{}: {errs:?}", v.name);
            assert_eq!(
                v.from[0].relation, w.target,
                "{} must root at target",
                v.name
            );
        }
        // Relation sets must actually diverge across views.
        let shapes: BTreeSet<Vec<RelName>> = views
            .iter()
            .map(|v| v.from.iter().map(|f| f.relation.clone()).collect())
            .collect();
        assert!(shapes.len() > 1, "fan-out views must not all be identical");
        // Deterministic per seed.
        assert_eq!(views, views_touching(&w.mkb, &w.target, 8, 3, 11));
    }

    /// End-to-end coverage of the `RelSet` heap fallback: a relation
    /// universe beyond the inline bitset capacity (256 ids) must flow
    /// through index build, the CVS search and the synchronizer exactly
    /// like a small one — same outcomes, no panics, no silent clamping.
    #[test]
    fn relset_heap_fallback_synchronizes_large_universe() {
        use eve_core::{SynchronizerBuilder, ViewOutcome};
        use eve_hypergraph::{RelSet, INLINE_BITS};

        let cfg = SynthConfig {
            n_relations: 300,
            topology: Topology::Random { extra: 24 },
            cover_count: 3,
            view_relations: 3,
            ..SynthConfig::default()
        };
        let w = SynthWorkload::random(&cfg, 11);
        assert!(w.mkb.relation_count() > INLINE_BITS);
        assert!(
            !RelSet::with_universe(w.mkb.relation_count()).is_inline(),
            "a {}-relation universe must use the heap representation",
            w.mkb.relation_count()
        );

        // The low-level search path.
        let mkb2 = evolve(&w.mkb, &w.delete_change()).unwrap();
        let reps = cvs_delete_relation(&w.view, &w.target, &w.mkb, &mkb2, &CvsOptions::default());
        assert!(reps.is_ok(), "{reps:?}");
        assert!(!reps.unwrap().is_empty());

        // The full synchronizer pipeline (default incremental index
        // maintenance) on the same workload.
        let mut s = SynchronizerBuilder::new(w.mkb.clone())
            .with_view(w.view.clone())
            .expect("synthetic view is valid")
            .build();
        let outcome = s.apply(&w.delete_change()).expect("change applies");
        assert!(
            matches!(outcome.views[0].1, ViewOutcome::Rewritten { .. }),
            "{:?}",
            outcome.views[0].1
        );
        assert!(!s.views().next().unwrap().uses_relation(&w.target));
    }

    #[test]
    fn builder_reports_colliding_declaration() {
        let mut b = MkbBuilder::new();
        b.relation(describe(&RelName::new("R0"), 1)).unwrap();
        let err = b.relation(describe(&RelName::new("R0"), 1)).unwrap_err();
        assert_eq!(err.kind, "relation");
        assert_eq!(err.id, "R0");
        assert!(err.to_string().contains("R0"), "{err}");

        b.relation(describe(&RelName::new("R1"), 1)).unwrap();
        b.join(key_join("J0", &RelName::new("R0"), &RelName::new("R1")))
            .unwrap();
        let err = b
            .join(key_join("J0", &RelName::new("R1"), &RelName::new("R0")))
            .unwrap_err();
        assert_eq!((err.kind, err.id.as_str()), ("join", "J0"));
    }

    #[test]
    fn try_generators_match_panicking_forms() {
        let a = SynthWorkload::try_chain(3, true).expect("chain builds");
        let b = SynthWorkload::chain(3, true);
        assert_eq!(a.view, b.view);
        assert_eq!(a.target, b.target);
        let a = SynthWorkload::try_wide_mkb(2, 2).expect("wide builds");
        assert_eq!(a.target, RelName::new("T"));
        let cfg = SynthConfig::default();
        let a = SynthWorkload::try_random(&cfg, 7).expect("random builds");
        let b = SynthWorkload::random(&cfg, 7);
        assert_eq!(a.view, b.view);
    }

    #[test]
    fn database_respects_pc_and_funcofs() {
        let w = SynthWorkload::chain(2, true);
        let db = w.database(9, 50, 0.7);
        let t = db.get(&RelName::new("T")).unwrap();
        let cov = db.get(&RelName::new("Cov")).unwrap();
        // PC enforced: T's keys ⊆ Cov's keys; and since payloads are a
        // global function of the key, (k, v) tuples are subset too.
        assert!(t.row_set().is_subset(cov.row_set()));
        assert!(!cov.is_empty());
    }

    #[test]
    fn database_coverage_scales() {
        let w = SynthWorkload::chain(1, false);
        let sparse = w.database(1, 100, 0.2);
        let dense = w.database(1, 100, 0.9);
        let name = RelName::new("W");
        assert!(sparse.get(&name).unwrap().len() < dense.get(&name).unwrap().len());
    }
}
