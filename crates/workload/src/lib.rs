//! # eve-workload
//!
//! Workloads for the EVE / CVS reproduction:
//!
//! * [`travel`] — the paper's running example: the travel-agency MKB of
//!   Fig. 2 (seven relations over seven ISs, join constraints JC1–JC6,
//!   function-of constraints F1–F7), the views of Eq. (1), Eq. (3) and
//!   Eq. (5), the `Person` extension of Example 4, and a deterministic
//!   data generator producing constraint-respecting IS states;
//! * [`synth`] — parameterised synthetic workloads: MKB topologies
//!   (chain, star, grid, random), constraint densities, view and change
//!   generators, and IS-state generators. These drive the quantitative
//!   sweeps (`sweep-chain`, `sweep-scale`, `sweep-covers`,
//!   `sweep-extent`) that the paper's claims imply but its (qualitative)
//!   evaluation does not measure;
//! * [`scenario`] — end-to-end change sequences replayed against a
//!   [`eve_core::Synchronizer`];
//! * [`chaos`] — seeded fault-plan generators driving the chaos
//!   property suite against the `eve-faults` injection sites;
//! * [`library`] — a second domain fixture: the digital-library
//!   information space (shared with the CLI fixtures).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod chaos;
pub mod library;
pub mod scenario;
pub mod stream;
pub mod synth;
pub mod travel;

pub use chaos::{random_view_fault_plan, FAULT_SITES, INDEX_FAULT_SITES};
pub use library::LibraryFixture;
pub use stream::{change_stream, ChangeSource};
pub use synth::{random_views, views_touching, SynthConfig, SynthError, SynthWorkload, Topology};
pub use travel::TravelFixture;
