//! End-to-end scenarios: a starting MKB, registered views, and a
//! sequence of capability changes replayed through the synchronizer.

use crate::travel::TravelFixture;
use eve_core::{CvsOptions, SyncReport, Synchronizer, SynchronizerBuilder};
use eve_esql::ViewDefinition;
use eve_misd::{CapabilityChange, MetaKnowledgeBase, MisdError, RelationDescription};
use eve_relational::{AttrRef, AttributeDef, DataType, RelName};

/// A replayable scenario.
#[derive(Debug, Clone)]
pub struct Scenario {
    /// Starting meta knowledge base.
    pub mkb: MetaKnowledgeBase,
    /// Views registered before any change.
    pub views: Vec<ViewDefinition>,
    /// Changes applied in order.
    pub changes: Vec<CapabilityChange>,
}

impl Scenario {
    /// Replay the scenario, returning the synchronizer's final state and
    /// the accumulated report.
    pub fn replay(&self, opts: CvsOptions) -> Result<(Synchronizer, SyncReport), MisdError> {
        let mut builder = SynchronizerBuilder::new(self.mkb.clone()).with_options(opts);
        for v in &self.views {
            builder = builder
                .with_view(v.clone())
                .unwrap_or_else(|e| panic!("scenario view {} invalid: {e}", v.name));
        }
        let mut sync = builder.build();
        let report = sync.apply_all(&self.changes)?;
        Ok((sync, report))
    }
}

/// The travel-agency lifecycle scenario: the agency's information space
/// gains a partner IS, loses an attribute, renames a relation and
/// finally loses the `Customer` relation — the paper's §1 story condensed
/// into one change sequence.
pub fn travel_scenario() -> Scenario {
    let fixture = TravelFixture::with_person();
    let views = vec![
        // Eq. (5) enriched so that all distinguished attributes are
        // preserved (§4 assumption 1, enforced at registration).
        eve_esql::parse_view(
            "CREATE VIEW Customer-Passengers-Asia AS
             SELECT C.Name (false, true), C.Age (true, true),
                    P.Participant (true, true), P.TourID (true, true),
                    P.StartDate (true, true), F.Date (true, true), F.PName (true, true)
             FROM Customer C (true, true), FlightRes F (true, true), Participant P (true, true)
             WHERE (C.Name = F.PName) (false, true) AND (F.Dest = 'Asia') (CD = true)
               AND (P.StartDate = F.Date) (CD = true) AND (P.Loc = 'Asia') (CD = true)",
        )
        .expect("scenario view parses"),
        eve_esql::parse_view(
            "CREATE VIEW Tour-Catalog AS SELECT T.TourID, T.TourName, T.NoDays FROM Tour T",
        )
        .expect("scenario view parses"),
    ];
    let changes = vec![
        CapabilityChange::AddRelation(RelationDescription::new(
            "IS9",
            "CruiseLine",
            vec![
                AttributeDef::new("Ship", DataType::Str),
                AttributeDef::new("Port", DataType::Str),
            ],
        )),
        CapabilityChange::DeleteAttribute(AttrRef::new("Tour", "Type")),
        CapabilityChange::RenameAttribute {
            from: AttrRef::new("Tour", "TourName"),
            to: "Title".into(),
        },
        CapabilityChange::DeleteRelation(RelName::new("Customer")),
    ];
    Scenario {
        mkb: fixture.mkb().clone(),
        views,
        changes,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn travel_scenario_replays_with_all_views_surviving() {
        let scenario = travel_scenario();
        let (sync, report) = scenario.replay(CvsOptions::default()).unwrap();
        assert_eq!(report.outcomes.len(), 4);
        assert_eq!(report.disabled(), 0, "{report:?}");
        // The Customer deletion rewrote the passengers view.
        let last = report.outcomes.last().unwrap();
        assert_eq!(last.rewritten(), 1);
        // Final state: no Customer anywhere.
        let v = sync.view("Customer-Passengers-Asia").unwrap();
        assert!(!v.uses_relation(&RelName::new("Customer")));
        // Rename reached the catalog view.
        let cat = sync.view("Tour-Catalog").unwrap();
        assert!(cat.to_string().contains("Tour.Title"), "{cat}");
    }

    #[test]
    fn scenario_is_deterministic() {
        let a = travel_scenario().replay(CvsOptions::default()).unwrap();
        let b = travel_scenario().replay(CvsOptions::default()).unwrap();
        let va: Vec<String> = a.0.views().map(|v| v.to_string()).collect();
        let vb: Vec<String> = b.0.views().map(|v| v.to_string()).collect();
        assert_eq!(va, vb);
    }
}
