//! The paper's running example: a large travel agency headquartered in
//! Detroit (Example 1), its seven information sources (Fig. 2), the
//! E-SQL views of Eq. (1), Eq. (3) and Eq. (5), the `Person` extension of
//! Example 4, and a deterministic, constraint-respecting data generator.

use eve_esql::{parse_view, ViewDefinition};
use eve_misd::{parse_misd, MetaKnowledgeBase};
use eve_relational::{AttributeDef, DataType, Database, RelName, Relation, Schema, Tuple, Value};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// The canonical MISD text of Fig. 2 (content descriptions, join
/// constraints JC1–JC6 and function-of constraints F1–F7).
pub const FIG2_MISD: &str = "\
RELATION IS1 Customer(Name str, Addr str, Phone str, Age int)
RELATION IS2 Tour(TourID str, TourName str, Type str, NoDays int)
RELATION IS3 Participant(Participant str, TourID str, StartDate date, Loc str)
RELATION IS4 FlightRes(PName str, Airline str, FlightNo int, Source str, Dest str, Date date)
RELATION IS5 Accident-Ins(Holder str, Type str, Amount int, Birthday date)
RELATION IS6 Hotels(City str, Address str, PhoneNumber str)
RELATION IS7 RentACar(Company str, City str, PhoneNumber str, Location str)
JOIN JC1: Customer, FlightRes ON Customer.Name = FlightRes.PName
JOIN JC2: Customer, Accident-Ins ON Customer.Name = Accident-Ins.Holder AND Customer.Age > 1
JOIN JC3: Customer, Participant ON Customer.Name = Participant.Participant
JOIN JC4: Participant, Tour ON Participant.TourID = Tour.TourID
JOIN JC5: Hotels, RentACar ON Hotels.Address = RentACar.Location
JOIN JC6: FlightRes, Accident-Ins ON FlightRes.PName = Accident-Ins.Holder
FUNCOF F1: Customer.Name = FlightRes.PName
FUNCOF F2: Customer.Name = Accident-Ins.Holder
FUNCOF F3: Customer.Age = (today() - Accident-Ins.Birthday) / 365
FUNCOF F4: Customer.Name = Participant.Participant
FUNCOF F5: Participant.TourID = Tour.TourID
FUNCOF F6: Hotels.Address = RentACar.Location
FUNCOF F7: Hotels.City = RentACar.City
";

/// The Example 4 extension: relation `Person` with the constraints
/// (i)–(iv) of the paper, appended to [`FIG2_MISD`].
pub const PERSON_EXTENSION: &str = "\
RELATION IS8 Person(Name str, SSN int, PAddr str)
JOIN JCP: Customer, Person ON Customer.Name = Person.Name
FUNCOF FP: Customer.Addr = Person.PAddr
PC PCP: Person(Name, PAddr) superset Customer(Name, Addr)
";

/// The travel-agency fixture.
#[derive(Debug, Clone)]
pub struct TravelFixture {
    mkb: MetaKnowledgeBase,
}

impl TravelFixture {
    /// The Fig. 2 meta knowledge base.
    pub fn new() -> Self {
        TravelFixture {
            mkb: parse_misd(FIG2_MISD).expect("Fig. 2 MISD text is well-formed"),
        }
    }

    /// Fig. 2 plus the Example 4 `Person` extension (constraints
    /// (i)–(iv)).
    pub fn with_person() -> Self {
        let text = format!("{FIG2_MISD}{PERSON_EXTENSION}");
        TravelFixture {
            mkb: parse_misd(&text).expect("extended MISD text is well-formed"),
        }
    }

    /// The meta knowledge base.
    pub fn mkb(&self) -> &MetaKnowledgeBase {
        &self.mkb
    }

    /// Eq. (1): `Asia-Customer` with mixed keyed annotations.
    pub fn asia_customer_eq1() -> ViewDefinition {
        parse_view(
            "CREATE VIEW Asia-Customer (VE = superset) AS
             SELECT C.Name (AR = true), C.Addr (AR = true),
                    C.Phone (AD = true, AR = false)
             FROM Customer C (RR = true), FlightRes F
             WHERE (C.Name = F.PName) AND (F.Dest = 'Asia') (CD = true)",
        )
        .expect("Eq. (1) parses")
    }

    /// Eq. (3): `Asia-Customer` with an explicit interface and an
    /// indispensable, replaceable `Addr`.
    pub fn asia_customer_eq3() -> ViewDefinition {
        parse_view(
            "CREATE VIEW Asia-Customer (AName, AAddr, APh) (VE = superset) AS
             SELECT C.Name, C.Addr (AD = false, AR = true), C.Phone
             FROM Customer C, FlightRes F
             WHERE (C.Name = F.PName) AND (F.Dest = 'Asia')",
        )
        .expect("Eq. (3) parses")
    }

    /// Eq. (5): `Customer-Passengers-Asia` with positional annotations.
    pub fn customer_passengers_asia_eq5() -> ViewDefinition {
        parse_view(
            "CREATE VIEW Customer-Passengers-Asia AS
             SELECT C.Name (false, true), C.Age (true, true),
                    P.Participant (true, true), P.TourID (true, true)
             FROM Customer C (true, true), FlightRes F (true, true), Participant P (true, true)
             WHERE (C.Name = F.PName) (false, true) AND (F.Dest = 'Asia')
               AND (P.StartDate = F.Date) AND (P.Loc = 'Asia')",
        )
        .expect("Eq. (5) parses")
    }

    /// Generate a constraint-respecting database state:
    ///
    /// * `Customer` holds `n` customers with deterministic names;
    /// * `FlightRes` holds one reservation per customer (F1/JC1 hold)
    ///   plus some non-customer passengers — so
    ///   `π_Name(Customer) ⊆ π_PName(FlightRes)`;
    /// * `Accident-Ins` holds a policy per customer whose `Birthday` is
    ///   consistent with `Age` through F3, plus extra holders;
    /// * `Participant`/`Tour` link a subset of customers to tours (F4,
    ///   F5, JC3, JC4 hold);
    /// * `Person` (when present in the MKB) is a superset of `Customer`
    ///   on `(Name, Addr)` — the PC constraint of Example 4;
    /// * `Hotels`/`RentACar` share addresses (F6/F7/JC5 hold).
    pub fn database(&self, seed: u64, n: usize) -> Database {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut db = Database::new();
        let today = eve_relational::func::DEFAULT_TODAY;
        let dests = ["Asia", "Europe", "America", "Africa"];

        let customer_name = |i: usize| format!("cust{i:04}");
        let addr = |i: usize| format!("{} Main St", 100 + i);

        // Customer
        let mut customer = relation(
            "Customer",
            &[
                ("Name", DataType::Str),
                ("Addr", DataType::Str),
                ("Phone", DataType::Str),
                ("Age", DataType::Int),
            ],
        );
        let ages: Vec<i64> = (0..n).map(|_| rng.gen_range(18..80)).collect();
        for (i, age) in ages.iter().enumerate() {
            customer
                .insert(Tuple::new(vec![
                    Value::str(customer_name(i)),
                    Value::str(addr(i)),
                    Value::str(format!("734-555-{i:04}")),
                    Value::Int(*age),
                ]))
                .expect("arity");
        }
        db.put("Customer", customer);

        // FlightRes: every customer flies somewhere; a few strangers too.
        let mut flightres = relation(
            "FlightRes",
            &[
                ("PName", DataType::Str),
                ("Airline", DataType::Str),
                ("FlightNo", DataType::Int),
                ("Source", DataType::Str),
                ("Dest", DataType::Str),
                ("Date", DataType::Date),
            ],
        );
        let flight = |name: String, rng: &mut StdRng, rel: &mut Relation| {
            let dest = dests[rng.gen_range(0..dests.len())];
            rel.insert(Tuple::new(vec![
                Value::str(name),
                Value::str("NW"),
                Value::Int(rng.gen_range(1..999)),
                Value::str("Detroit"),
                Value::str(dest),
                Value::Date(today + rng.gen_range(1i64..60)),
            ]))
            .expect("arity");
        };
        for i in 0..n {
            flight(customer_name(i), &mut rng, &mut flightres);
        }
        for i in 0..n / 3 {
            flight(format!("stranger{i:04}"), &mut rng, &mut flightres);
        }
        db.put("FlightRes", flightres);

        // Accident-Ins: a policy per customer, Birthday consistent with
        // F3 (Age = (today - Birthday) / 365), plus extra holders.
        let mut ins = relation(
            "Accident-Ins",
            &[
                ("Holder", DataType::Str),
                ("Type", DataType::Str),
                ("Amount", DataType::Int),
                ("Birthday", DataType::Date),
            ],
        );
        for (i, age) in ages.iter().enumerate() {
            let slack = rng.gen_range(0i64..365);
            ins.insert(Tuple::new(vec![
                Value::str(customer_name(i)),
                Value::str("accident"),
                Value::Int(rng.gen_range(10i64..500) * 100),
                Value::Date(today - age * 365 - slack),
            ]))
            .expect("arity");
        }
        for i in 0..n / 4 {
            ins.insert(Tuple::new(vec![
                Value::str(format!("other{i:04}")),
                Value::str("life"),
                Value::Int(50_000),
                Value::Date(today - 40 * 365),
            ]))
            .expect("arity");
        }
        db.put("Accident-Ins", ins);

        // Tour + Participant.
        let mut tour = relation(
            "Tour",
            &[
                ("TourID", DataType::Str),
                ("TourName", DataType::Str),
                ("Type", DataType::Str),
                ("NoDays", DataType::Int),
            ],
        );
        let tours = ["T01", "T02", "T03", "T04"];
        for (i, id) in tours.iter().enumerate() {
            tour.insert(Tuple::new(vec![
                Value::str(*id),
                Value::str(format!("Grand Tour {i}")),
                Value::str(if i % 2 == 0 { "adventure" } else { "culture" }),
                Value::Int(7 + i as i64),
            ]))
            .expect("arity");
        }
        db.put("Tour", tour);

        let mut participant = relation(
            "Participant",
            &[
                ("Participant", DataType::Str),
                ("TourID", DataType::Str),
                ("StartDate", DataType::Date),
                ("Loc", DataType::Str),
            ],
        );
        for i in 0..n {
            if rng.gen_bool(0.6) {
                participant
                    .insert(Tuple::new(vec![
                        Value::str(customer_name(i)),
                        Value::str(tours[rng.gen_range(0..tours.len())]),
                        Value::Date(today + rng.gen_range(1i64..60)),
                        Value::str(dests[rng.gen_range(0..dests.len())]),
                    ]))
                    .expect("arity");
            }
        }
        db.put("Participant", participant);

        // Hotels / RentACar share locations (F6, F7, JC5).
        let mut hotels = relation(
            "Hotels",
            &[
                ("City", DataType::Str),
                ("Address", DataType::Str),
                ("PhoneNumber", DataType::Str),
            ],
        );
        let mut rentacar = relation(
            "RentACar",
            &[
                ("Company", DataType::Str),
                ("City", DataType::Str),
                ("PhoneNumber", DataType::Str),
                ("Location", DataType::Str),
            ],
        );
        for i in 0..4 {
            let city = format!("City{i}");
            let address = format!("{i} Plaza");
            hotels
                .insert(Tuple::new(vec![
                    Value::str(city.clone()),
                    Value::str(address.clone()),
                    Value::str(format!("800-{i:03}")),
                ]))
                .expect("arity");
            rentacar
                .insert(Tuple::new(vec![
                    Value::str("Avis"),
                    Value::str(city),
                    Value::str(format!("877-{i:03}")),
                    Value::str(address),
                ]))
                .expect("arity");
        }
        db.put("Hotels", hotels);
        db.put("RentACar", rentacar);

        // Person ⊇ Customer on (Name, Addr) — Example 4's PC constraint.
        if self.mkb.contains_relation(&RelName::new("Person")) {
            let mut person = relation(
                "Person",
                &[
                    ("Name", DataType::Str),
                    ("SSN", DataType::Int),
                    ("PAddr", DataType::Str),
                ],
            );
            for i in 0..n {
                person
                    .insert(Tuple::new(vec![
                        Value::str(customer_name(i)),
                        Value::Int(1000 + i as i64),
                        Value::str(addr(i)),
                    ]))
                    .expect("arity");
            }
            for i in 0..n / 2 {
                person
                    .insert(Tuple::new(vec![
                        Value::str(format!("noncust{i:04}")),
                        Value::Int(9000 + i as i64),
                        Value::str(format!("{i} Side St")),
                    ]))
                    .expect("arity");
            }
            db.put("Person", person);
        }

        db
    }
}

impl Default for TravelFixture {
    fn default() -> Self {
        Self::new()
    }
}

fn relation(name: &str, attrs: &[(&str, DataType)]) -> Relation {
    let rel = RelName::new(name);
    let schema = Schema::of_relation(
        &rel,
        &attrs
            .iter()
            .map(|(n, t)| AttributeDef::new(*n, *t))
            .collect::<Vec<_>>(),
    );
    Relation::new(schema)
}

#[cfg(test)]
mod tests {
    use super::*;
    use eve_relational::AttrRef;

    #[test]
    fn fig2_inventory() {
        let f = TravelFixture::new();
        assert_eq!(f.mkb().relation_count(), 7);
        assert_eq!(f.mkb().joins().len(), 6);
        assert_eq!(f.mkb().function_ofs().len(), 7);
        assert!(f.mkb().join_by_id("JC6").is_some());
        assert!(f.mkb().funcof_by_id("F7").is_some());
    }

    #[test]
    fn person_extension() {
        let f = TravelFixture::with_person();
        assert_eq!(f.mkb().relation_count(), 8);
        assert_eq!(f.mkb().pcs().len(), 1);
    }

    #[test]
    fn views_parse_and_validate() {
        for v in [
            TravelFixture::asia_customer_eq1(),
            TravelFixture::asia_customer_eq3(),
        ] {
            // Eq. (1)/(3) satisfy the §4 assumptions except that the
            // paper's own SELECT lists omit F.PName; the validator
            // flags exactly that and nothing else.
            let errs = eve_esql::validate_view(&v);
            assert!(
                errs.iter()
                    .all(|e| matches!(e, eve_esql::ValidationError::DistinguishedNotPreserved(_))),
                "{errs:?}"
            );
        }
    }

    #[test]
    fn database_respects_constraints() {
        let f = TravelFixture::with_person();
        let db = f.database(7, 40);
        let funcs = eve_relational::FuncRegistry::new();

        // F3: joining Customer with Accident-Ins on Name = Holder must
        // satisfy Age = (today() - Birthday)/365 for every joined tuple.
        let cust = db.get(&RelName::new("Customer")).unwrap();
        let ins = db.get(&RelName::new("Accident-Ins")).unwrap();
        let joined = eve_relational::theta_join(
            cust,
            ins,
            &eve_relational::Conjunction::new(vec![eve_relational::Clause::eq_attrs(
                AttrRef::new("Customer", "Name"),
                AttrRef::new("Accident-Ins", "Holder"),
            )]),
            &funcs,
        )
        .unwrap();
        assert!(!joined.is_empty());
        let age_idx = joined
            .schema()
            .index_of(&AttrRef::new("Customer", "Age"))
            .unwrap();
        let bday_idx = joined
            .schema()
            .index_of(&AttrRef::new("Accident-Ins", "Birthday"))
            .unwrap();
        let today = eve_relational::func::DEFAULT_TODAY;
        for t in joined.rows() {
            let age = match t.get(age_idx).unwrap() {
                Value::Int(a) => *a,
                other => panic!("age not int: {other}"),
            };
            let bday = match t.get(bday_idx).unwrap() {
                Value::Date(d) => *d,
                other => panic!("birthday not date: {other}"),
            };
            assert_eq!(age, (today - bday) / 365, "F3 violated");
        }

        // PC: π(Name,Addr)(Customer) ⊆ π(Name,PAddr)(Person).
        let person = db.get(&RelName::new("Person")).unwrap();
        assert!(person.len() > cust.len());
        let proj = |rel: &Relation, a: &str, b: &str, r: &str| {
            eve_relational::project(
                rel,
                &[
                    (
                        AttrRef::new("p", "1"),
                        eve_relational::ScalarExpr::attr(r, a),
                    ),
                    (
                        AttrRef::new("p", "2"),
                        eve_relational::ScalarExpr::attr(r, b),
                    ),
                ],
                &funcs,
            )
            .unwrap()
        };
        let c_proj = proj(cust, "Name", "Addr", "Customer");
        let p_proj = proj(person, "Name", "PAddr", "Person");
        assert!(
            eve_relational::compare_extents(&c_proj, &p_proj).is_subset(),
            "PC constraint violated by generated data"
        );
    }

    #[test]
    fn database_deterministic_per_seed() {
        let f = TravelFixture::new();
        let a = f.database(3, 20);
        let b = f.database(3, 20);
        let c = f.database(4, 20);
        let name = RelName::new("FlightRes");
        assert_eq!(a.get(&name), b.get(&name));
        assert_ne!(a.get(&name), c.get(&name));
    }
}
