//! Randomized capability-change streams.
//!
//! The incremental-maintenance benchmarks and the delta≡rebuild
//! equivalence suite both need long, *valid* sequences of capability
//! changes: every change must be applicable to the MKB state produced by
//! the changes before it. [`change_stream`] generates such a sequence by
//! keeping a scratch MKB, drawing weighted random candidate changes and
//! admitting only those `eve_misd::evolve` accepts — the same gate the
//! synchronizer itself applies — so a generated stream replays cleanly
//! through `Synchronizer::apply_all` in any maintenance mode.
//!
//! The operator mix is weighted toward the cheap structural edits real
//! schema evolution is dominated by (attribute adds/renames), with the
//! destructive operators kept rare enough that long streams don't
//! consume the schema: add-attribute 25%, rename-attribute 20%,
//! rename-relation 15%, add-relation 15%, delete-attribute 15%,
//! delete-relation 10%.

use eve_misd::{evolve, CapabilityChange, MetaKnowledgeBase, RelationDescription};
use eve_relational::{AttrName, AttrRef, AttributeDef, DataType, RelName};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Generate `count` capability changes, each valid against the MKB state
/// left behind by its predecessors, deterministic in `seed`.
///
/// Destructive picks are bounded so the stream cannot starve itself: a
/// relation is only deleted while more than two remain, and an attribute
/// only while its relation keeps at least two. Candidates `evolve`
/// rejects (e.g. deleting an attribute some constraint still needs) are
/// simply redrawn.
///
/// # Panics
///
/// Panics if no admissible change can be found after many redraws —
/// which only happens for degenerate inputs (an MKB so small and
/// constrained that every operator is inapplicable).
pub fn change_stream(mkb: &MetaKnowledgeBase, count: usize, seed: u64) -> Vec<CapabilityChange> {
    let mut rng = StdRng::seed_from_u64(seed ^ 0x57ea_u64);
    let mut scratch = mkb.clone();
    let mut out = Vec::with_capacity(count);
    let mut fresh = 0usize; // monotone counter for generated names
    let mut attempts = 0usize;
    let budget = count * 200 + 200;
    while out.len() < count {
        attempts += 1;
        assert!(
            attempts < budget,
            "change stream stalled after {} of {} changes: no admissible candidate",
            out.len(),
            count
        );
        let Some(change) = candidate(&scratch, &mut rng, &mut fresh) else {
            continue;
        };
        match evolve(&scratch, &change) {
            Ok(next) => {
                scratch = next;
                out.push(change);
            }
            Err(_) => continue, // inadmissible under current constraints — redraw
        }
    }
    out
}

/// Draw one weighted candidate change against the current scratch state.
/// `None` when the drawn operator has no applicable target right now.
fn candidate(
    mkb: &MetaKnowledgeBase,
    rng: &mut StdRng,
    fresh: &mut usize,
) -> Option<CapabilityChange> {
    let rels: Vec<_> = mkb.relations().collect();
    let pick = |rng: &mut StdRng| rels[rng.gen_range(0..rels.len())];
    let next_id = |fresh: &mut usize| {
        *fresh += 1;
        *fresh
    };
    Some(match rng.gen_range(0..100u32) {
        // add-attribute (25%)
        0..=24 => {
            let r = pick(rng);
            CapabilityChange::AddAttribute {
                relation: r.name.clone(),
                attr: AttributeDef::new(format!("x{}", next_id(fresh)), DataType::Int),
            }
        }
        // rename-attribute (20%)
        25..=44 => {
            let r = pick(rng);
            let a = &r.attrs[rng.gen_range(0..r.attrs.len())];
            CapabilityChange::RenameAttribute {
                from: AttrRef::new(r.name.clone(), a.name.clone()),
                to: AttrName::new(format!("{}r{}", a.name, next_id(fresh))),
            }
        }
        // rename-relation (15%)
        45..=59 => {
            let r = pick(rng);
            CapabilityChange::RenameRelation {
                from: r.name.clone(),
                to: RelName::new(format!("N{}", next_id(fresh))),
            }
        }
        // add-relation (15%)
        60..=74 => {
            let name = RelName::new(format!("A{}", next_id(fresh)));
            CapabilityChange::AddRelation(RelationDescription::new(
                format!("IS_{name}"),
                name.clone(),
                vec![
                    AttributeDef::new("k", DataType::Int),
                    AttributeDef::new("v0", DataType::Int),
                ],
            ))
        }
        // delete-attribute (15%) — keep at least two attributes so the
        // relation stays joinable and the stream stays productive.
        75..=89 => {
            let r = pick(rng);
            if r.attrs.len() < 2 {
                return None;
            }
            let a = &r.attrs[rng.gen_range(0..r.attrs.len())];
            CapabilityChange::DeleteAttribute(AttrRef::new(r.name.clone(), a.name.clone()))
        }
        // delete-relation (10%) — never shrink below two relations.
        _ => {
            if rels.len() <= 2 {
                return None;
            }
            CapabilityChange::DeleteRelation(pick(rng).name.clone())
        }
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::synth::{SynthConfig, SynthWorkload, Topology};

    fn base() -> MetaKnowledgeBase {
        SynthWorkload::random(
            &SynthConfig {
                n_relations: 12,
                topology: Topology::Random { extra: 4 },
                ..SynthConfig::default()
            },
            5,
        )
        .mkb
    }

    #[test]
    fn stream_is_deterministic_and_replayable() {
        let mkb = base();
        let a = change_stream(&mkb, 64, 17);
        let b = change_stream(&mkb, 64, 17);
        assert_eq!(a, b);
        assert_eq!(a.len(), 64);
        // Every change applies cleanly in order — the defining property.
        let mut state = mkb;
        for (i, c) in a.iter().enumerate() {
            state = evolve(&state, c).unwrap_or_else(|e| panic!("change {i} ({c}) rejected: {e}"));
        }
    }

    #[test]
    fn stream_mixes_all_six_operators() {
        let mkb = base();
        let stream = change_stream(&mkb, 128, 3);
        let mut seen = std::collections::BTreeSet::new();
        for c in &stream {
            seen.insert(c.operator_name());
        }
        assert_eq!(
            seen.len(),
            6,
            "expected all six operators in a 128-change stream, saw {seen:?}"
        );
    }

    #[test]
    fn different_seeds_diverge() {
        let mkb = base();
        assert_ne!(change_stream(&mkb, 32, 1), change_stream(&mkb, 32, 2));
    }
}
