//! Randomized capability-change streams.
//!
//! The incremental-maintenance benchmarks and the delta≡rebuild
//! equivalence suite both need long, *valid* sequences of capability
//! changes: every change must be applicable to the MKB state produced by
//! the changes before it. [`change_stream`] generates such a sequence by
//! keeping a scratch MKB, drawing weighted random candidate changes and
//! admitting only those `eve_misd::evolve` accepts — the same gate the
//! synchronizer itself applies — so a generated stream replays cleanly
//! through `Synchronizer::apply_all` in any maintenance mode.
//!
//! The operator mix is weighted toward the cheap structural edits real
//! schema evolution is dominated by (attribute adds/renames), with the
//! destructive operators kept rare enough that long streams don't
//! consume the schema: add-attribute 25%, rename-attribute 20%,
//! rename-relation 15%, add-relation 15%, delete-attribute 15%,
//! delete-relation 10%.

use eve_misd::{evolve, CapabilityChange, MetaKnowledgeBase, RelationDescription};
use eve_relational::{AttrName, AttrRef, AttributeDef, DataType, RelName};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A seeded source of single capability changes, each drawn against
/// whatever MKB state the caller currently holds.
///
/// This is the one change generator in the workspace: [`change_stream`]
/// pre-generates sequences from it against a scratch MKB, the soak
/// tests and the deterministic simulator (`eve-sim`) draw from it
/// step-by-step against the *live* synchronizer state — which matters
/// once rollbacks enter the picture, because a pre-generated stream
/// stops being valid the moment history is rewound.
///
/// Every draw is gated through [`eve_misd::evolve`] (the same check the
/// synchronizer applies), so a returned change is guaranteed admissible
/// against the MKB it was drawn for. Inadmissible candidates are
/// redrawn, bounded; `None` means no admissible change was found (a
/// schema too small or constrained for the configured operator mix).
#[derive(Debug, Clone)]
pub struct ChangeSource {
    rng: StdRng,
    fresh: usize, // monotone counter for generated names
    destructive: bool,
}

impl ChangeSource {
    /// A source with the standard operator mix (see the module docs),
    /// deterministic in `seed`. Seed mixing matches [`change_stream`],
    /// so `ChangeSource::new(s)` drawn against an evolving scratch MKB
    /// reproduces `change_stream(mkb, n, s)` exactly.
    pub fn new(seed: u64) -> Self {
        ChangeSource {
            rng: StdRng::seed_from_u64(seed ^ 0x57ea_u64),
            fresh: 0,
            destructive: false,
        }
    }

    /// A source drawing only destructive operators (delete-relation,
    /// delete-attribute) — the schema-consuming regime the destructive
    /// soak exercises. Runs dry (`None`) once the schema is down to two
    /// relations with minimal attributes.
    pub fn destructive(seed: u64) -> Self {
        ChangeSource {
            rng: StdRng::seed_from_u64(seed ^ 0x57ea_u64),
            fresh: 0,
            destructive: true,
        }
    }

    /// Draw the next change, valid against `mkb`. Redraws candidates
    /// `evolve` rejects, up to an internal budget; `None` when no
    /// admissible change turns up.
    pub fn next(&mut self, mkb: &MetaKnowledgeBase) -> Option<CapabilityChange> {
        for _ in 0..400 {
            let drawn = if self.destructive {
                destructive_candidate(mkb, &mut self.rng)
            } else {
                candidate(mkb, &mut self.rng, &mut self.fresh)
            };
            let Some(change) = drawn else { continue };
            if evolve(mkb, &change).is_ok() {
                return Some(change);
            }
        }
        None
    }
}

/// Generate `count` capability changes, each valid against the MKB state
/// left behind by its predecessors, deterministic in `seed`.
///
/// Destructive picks are bounded so the stream cannot starve itself: a
/// relation is only deleted while more than two remain, and an attribute
/// only while its relation keeps at least two. Candidates `evolve`
/// rejects (e.g. deleting an attribute some constraint still needs) are
/// simply redrawn.
///
/// # Panics
///
/// Panics if no admissible change can be found after many redraws —
/// which only happens for degenerate inputs (an MKB so small and
/// constrained that every operator is inapplicable).
pub fn change_stream(mkb: &MetaKnowledgeBase, count: usize, seed: u64) -> Vec<CapabilityChange> {
    let mut source = ChangeSource::new(seed);
    let mut scratch = mkb.clone();
    let mut out = Vec::with_capacity(count);
    while out.len() < count {
        let change = source.next(&scratch).unwrap_or_else(|| {
            panic!(
                "change stream stalled after {} of {} changes: no admissible candidate",
                out.len(),
                count
            )
        });
        scratch = evolve(&scratch, &change).expect("ChangeSource::next gates through evolve");
        out.push(change);
    }
    out
}

/// Draw one destructive candidate (delete-relation 60%, delete-attribute
/// 40%) with the same starvation guards as the standard mix.
fn destructive_candidate(mkb: &MetaKnowledgeBase, rng: &mut StdRng) -> Option<CapabilityChange> {
    let rels: Vec<_> = mkb.relations().collect();
    if rng.gen_range(0..100u32) < 60 {
        if rels.len() <= 2 {
            return None;
        }
        Some(CapabilityChange::DeleteRelation(
            rels[rng.gen_range(0..rels.len())].name.clone(),
        ))
    } else {
        let r = rels[rng.gen_range(0..rels.len())];
        if r.attrs.len() < 2 {
            return None;
        }
        let a = &r.attrs[rng.gen_range(0..r.attrs.len())];
        Some(CapabilityChange::DeleteAttribute(AttrRef::new(
            r.name.clone(),
            a.name.clone(),
        )))
    }
}

/// Draw one weighted candidate change against the current scratch state.
/// `None` when the drawn operator has no applicable target right now.
fn candidate(
    mkb: &MetaKnowledgeBase,
    rng: &mut StdRng,
    fresh: &mut usize,
) -> Option<CapabilityChange> {
    let rels: Vec<_> = mkb.relations().collect();
    let pick = |rng: &mut StdRng| rels[rng.gen_range(0..rels.len())];
    let next_id = |fresh: &mut usize| {
        *fresh += 1;
        *fresh
    };
    Some(match rng.gen_range(0..100u32) {
        // add-attribute (25%)
        0..=24 => {
            let r = pick(rng);
            CapabilityChange::AddAttribute {
                relation: r.name.clone(),
                attr: AttributeDef::new(format!("x{}", next_id(fresh)), DataType::Int),
            }
        }
        // rename-attribute (20%)
        25..=44 => {
            let r = pick(rng);
            let a = &r.attrs[rng.gen_range(0..r.attrs.len())];
            CapabilityChange::RenameAttribute {
                from: AttrRef::new(r.name.clone(), a.name.clone()),
                to: AttrName::new(format!("{}r{}", a.name, next_id(fresh))),
            }
        }
        // rename-relation (15%)
        45..=59 => {
            let r = pick(rng);
            CapabilityChange::RenameRelation {
                from: r.name.clone(),
                to: RelName::new(format!("N{}", next_id(fresh))),
            }
        }
        // add-relation (15%)
        60..=74 => {
            let name = RelName::new(format!("A{}", next_id(fresh)));
            CapabilityChange::AddRelation(RelationDescription::new(
                format!("IS_{name}"),
                name.clone(),
                vec![
                    AttributeDef::new("k", DataType::Int),
                    AttributeDef::new("v0", DataType::Int),
                ],
            ))
        }
        // delete-attribute (15%) — keep at least two attributes so the
        // relation stays joinable and the stream stays productive.
        75..=89 => {
            let r = pick(rng);
            if r.attrs.len() < 2 {
                return None;
            }
            let a = &r.attrs[rng.gen_range(0..r.attrs.len())];
            CapabilityChange::DeleteAttribute(AttrRef::new(r.name.clone(), a.name.clone()))
        }
        // delete-relation (10%) — never shrink below two relations.
        _ => {
            if rels.len() <= 2 {
                return None;
            }
            CapabilityChange::DeleteRelation(pick(rng).name.clone())
        }
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::synth::{SynthConfig, SynthWorkload, Topology};

    fn base() -> MetaKnowledgeBase {
        SynthWorkload::random(
            &SynthConfig {
                n_relations: 12,
                topology: Topology::Random { extra: 4 },
                ..SynthConfig::default()
            },
            5,
        )
        .mkb
    }

    #[test]
    fn stream_is_deterministic_and_replayable() {
        let mkb = base();
        let a = change_stream(&mkb, 64, 17);
        let b = change_stream(&mkb, 64, 17);
        assert_eq!(a, b);
        assert_eq!(a.len(), 64);
        // Every change applies cleanly in order — the defining property.
        let mut state = mkb;
        for (i, c) in a.iter().enumerate() {
            state = evolve(&state, c).unwrap_or_else(|e| panic!("change {i} ({c}) rejected: {e}"));
        }
    }

    #[test]
    fn stream_mixes_all_six_operators() {
        let mkb = base();
        let stream = change_stream(&mkb, 128, 3);
        let mut seen = std::collections::BTreeSet::new();
        for c in &stream {
            seen.insert(c.operator_name());
        }
        assert_eq!(
            seen.len(),
            6,
            "expected all six operators in a 128-change stream, saw {seen:?}"
        );
    }

    #[test]
    fn different_seeds_diverge() {
        let mkb = base();
        assert_ne!(change_stream(&mkb, 32, 1), change_stream(&mkb, 32, 2));
    }

    #[test]
    fn source_reproduces_the_stream() {
        let mkb = base();
        let stream = change_stream(&mkb, 48, 21);
        let mut source = ChangeSource::new(21);
        let mut state = mkb;
        for (i, expected) in stream.iter().enumerate() {
            let got = source.next(&state).expect("stream proved admissible");
            assert_eq!(&got, expected, "draw {i} diverged from change_stream");
            state = evolve(&state, &got).unwrap();
        }
    }

    #[test]
    fn destructive_source_runs_dry() {
        let mkb = base();
        let mut source = ChangeSource::destructive(5);
        let mut state = mkb;
        let mut applied = 0usize;
        while let Some(change) = source.next(&state) {
            assert!(change.is_destructive(), "{change}");
            state = evolve(&state, &change).unwrap();
            applied += 1;
            assert!(applied < 10_000, "destructive source never exhausts");
        }
        // Dry means the guards bottomed out: two relations left.
        assert_eq!(state.relation_count(), 2);
        assert!(applied > 5, "should consume most of the schema");
    }
}
