//! Random **fault-plan generators** for the chaos property suite
//! (`tests/prop_faults.rs`): given the view names of a workload, emit a
//! seeded `eve-faults` plan string targeting those views.
//!
//! The generators speak the textual plan format only (no `eve-faults`
//! dependency) so the workload crate stays a pure generator layer; the
//! chaos tests parse and install the plans themselves.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// The fault-injection sites wired through the sync pipeline, from the
/// deterministic view-task entry down to the schedule-dependent
/// hypergraph stream (see DESIGN.md, "Fault isolation & injection").
pub const FAULT_SITES: &[&str] = &[
    "view.sync",
    "search.candidate",
    "index.enumerate-trees",
    "hypergraph.tree-iter",
];

/// Generate a random view-scoped fault plan over `scopes` (view names):
/// 1–3 specs, each targeting one view at one site with a panic,
/// transient, delay, or budget fault on an early hit. Every spec is
/// scoped, so any fault that fires is attributable to exactly one view —
/// the property the chaos suite's "unaffected views are byte-identical"
/// check relies on.
///
/// Returns the textual plan format of `eve_faults::FaultPlan::parse`;
/// deterministic in `seed`.
pub fn random_view_fault_plan(seed: u64, scopes: &[String]) -> String {
    let mut rng = StdRng::seed_from_u64(seed ^ 0xFA01_75EE_D000_0000);
    let kinds = ["panic", "transient", "delay:1", "budget"];
    let mut entries = vec![format!("seed={seed}")];
    if scopes.is_empty() {
        return entries.pop().unwrap();
    }
    let n_specs = rng.gen_range(1..4);
    for _ in 0..n_specs {
        let scope = &scopes[rng.gen_range(0..scopes.len())];
        let site = FAULT_SITES[rng.gen_range(0..FAULT_SITES.len())];
        let kind = kinds[rng.gen_range(0..kinds.len())];
        let hit = rng.gen_range(0..3);
        entries.push(format!("{scope}/{site}#{hit}={kind}"));
    }
    entries.join(";")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn plans_are_deterministic_and_scoped() {
        let scopes = vec!["V0".to_string(), "V1".to_string()];
        let a = random_view_fault_plan(7, &scopes);
        assert_eq!(a, random_view_fault_plan(7, &scopes));
        assert_ne!(a, random_view_fault_plan(8, &scopes));
        assert!(a.starts_with("seed=7"));
        for entry in a.split(';').skip(1) {
            let (scope, rest) = entry.split_once('/').expect("every spec is scoped");
            assert!(scopes.iter().any(|s| s == scope), "{entry}");
            let site = rest.split(['#', '=']).next().unwrap();
            assert!(FAULT_SITES.contains(&site), "{entry}");
        }
        // No scopes → just the seed entry.
        assert_eq!(random_view_fault_plan(7, &[]), "seed=7");
    }
}
