//! Random **fault-plan generators** for the chaos property suite
//! (`tests/prop_faults.rs`): given the view names of a workload, emit a
//! seeded `eve-faults` plan string targeting those views.
//!
//! The generators speak the textual plan format only (no `eve-faults`
//! dependency) so the workload crate stays a pure generator layer; the
//! chaos tests parse and install the plans themselves.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// The fault-injection sites wired through the sync pipeline, from the
/// deterministic view-task entry down to the schedule-dependent
/// hypergraph stream (see DESIGN.md, "Fault isolation & injection").
pub const FAULT_SITES: &[&str] = &[
    "view.sync",
    "search.candidate",
    "index.enumerate-trees",
    "hypergraph.tree-iter",
];

/// Coordinator-thread index-maintenance sites: the full rebuild
/// (`MkbIndex::new`), the delta rebase (`MkbIndex::from_cores`, the
/// `index.delta_builds` telemetry path), and the per-change core patch
/// (`IndexCore::apply_delta`). These run *outside* the per-view panic
/// boundary, so generated plans only ever aim non-unwinding kinds
/// (`delay`, `budget`) at them — an injected panic here would escape
/// even a `Degrade` policy.
pub const INDEX_FAULT_SITES: &[&str] = &["index.build", "index.delta-build", "index.delta-apply"];

/// Generate a random fault plan over `scopes` (view names): 1–3
/// view-scoped specs, each targeting one view at one site with a panic,
/// transient, delay, or budget fault on an early hit, plus (half the
/// time) one **unscoped** spec aimed at an index-maintenance site with a
/// non-unwinding kind. Every unwinding spec is view-scoped, so any
/// outcome-changing fault that fires is attributable to exactly one
/// view — the property the chaos suite's "unaffected views are
/// byte-identical" check relies on; the unscoped index specs perturb
/// timing (or are discarded budget checks) without touching answers.
///
/// Returns the textual plan format of `eve_faults::FaultPlan::parse`;
/// deterministic in `seed`.
pub fn random_view_fault_plan(seed: u64, scopes: &[String]) -> String {
    let mut rng = StdRng::seed_from_u64(seed ^ 0xFA01_75EE_D000_0000);
    let kinds = ["panic", "transient", "delay:1", "budget"];
    let mut entries = vec![format!("seed={seed}")];
    if scopes.is_empty() {
        return entries.pop().unwrap();
    }
    let n_specs = rng.gen_range(1..4);
    for _ in 0..n_specs {
        let scope = &scopes[rng.gen_range(0..scopes.len())];
        let site = FAULT_SITES[rng.gen_range(0..FAULT_SITES.len())];
        let kind = kinds[rng.gen_range(0..kinds.len())];
        let hit = rng.gen_range(0..3);
        entries.push(format!("{scope}/{site}#{hit}={kind}"));
    }
    if rng.gen_bool(0.5) {
        let site = INDEX_FAULT_SITES[rng.gen_range(0..INDEX_FAULT_SITES.len())];
        let kind = if rng.gen_bool(0.5) {
            "delay:1"
        } else {
            "budget"
        };
        let hit = rng.gen_range(0..2);
        entries.push(format!("{site}#{hit}={kind}"));
    }
    entries.join(";")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn plans_are_deterministic_and_scoped() {
        let scopes = vec!["V0".to_string(), "V1".to_string()];
        let a = random_view_fault_plan(7, &scopes);
        assert_eq!(a, random_view_fault_plan(7, &scopes));
        assert_ne!(a, random_view_fault_plan(8, &scopes));
        assert!(a.starts_with("seed=7"));
        for entry in a.split(';').skip(1) {
            match entry.split_once('/') {
                Some((scope, rest)) => {
                    assert!(scopes.iter().any(|s| s == scope), "{entry}");
                    let site = rest.split(['#', '=']).next().unwrap();
                    assert!(FAULT_SITES.contains(&site), "{entry}");
                }
                // Unscoped specs target index-maintenance sites and
                // must stay non-unwinding (they fire outside the
                // per-view panic boundary).
                None => {
                    let site = entry.split(['#', '=']).next().unwrap();
                    assert!(INDEX_FAULT_SITES.contains(&site), "{entry}");
                    let kind = entry.split_once('=').unwrap().1;
                    assert!(kind == "budget" || kind.starts_with("delay"), "{entry}");
                }
            }
        }
        // No scopes → just the seed entry.
        assert_eq!(random_view_fault_plan(7, &[]), "seed=7");
    }

    #[test]
    fn index_sites_appear_in_some_plans() {
        let scopes = vec!["V0".to_string()];
        let hit = (0..64).any(|seed| {
            random_view_fault_plan(seed, &scopes)
                .split(';')
                .skip(1)
                .any(|e| !e.contains('/'))
        });
        assert!(hit, "no unscoped index spec in 64 seeds");
    }
}
