//! The digital-library information space — the paper's second §1
//! motivation ("advanced applications such as web-based information
//! services, **digital libraries**, and data mining"). Five autonomous
//! sources: a catalog, a publisher feed, a citation index, a full-text
//! archive and an author registry.
//!
//! The MISD text is shared verbatim with `fixtures/library.misd` (the
//! CLI fixture) via `include_str!`, so the programmatic and command-line
//! views of this space can never drift apart.

use eve_esql::{parse_views, ViewDefinition};
use eve_misd::{parse_misd, MetaKnowledgeBase};

/// The MISD description of the library space (see `fixtures/library.misd`).
pub const LIBRARY_MISD: &str = include_str!("../../../fixtures/library.misd");

/// The warehouse views over the library space
/// (see `fixtures/library_views.esql`).
pub const LIBRARY_VIEWS: &str = include_str!("../../../fixtures/library_views.esql");

/// The digital-library fixture.
#[derive(Debug, Clone)]
pub struct LibraryFixture {
    mkb: MetaKnowledgeBase,
}

impl LibraryFixture {
    /// Parse the canonical MISD description.
    pub fn new() -> Self {
        LibraryFixture {
            mkb: parse_misd(LIBRARY_MISD).expect("library MISD text is well-formed"),
        }
    }

    /// The meta knowledge base.
    pub fn mkb(&self) -> &MetaKnowledgeBase {
        &self.mkb
    }

    /// The warehouse views (`Cited-Books`, `Online-Texts`).
    pub fn views() -> Vec<ViewDefinition> {
        parse_views(LIBRARY_VIEWS).expect("library views are well-formed")
    }
}

impl Default for LibraryFixture {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use eve_core::{
        cvs_delete_relation_indexed, CvsError, CvsOptions, ExtentVerdict, LegalRewriting, MkbIndex,
    };
    use eve_esql::ViewDefinition;
    use eve_misd::MetaKnowledgeBase;

    fn cvs_delete_relation(
        view: &ViewDefinition,
        target: &RelName,
        mkb: &MetaKnowledgeBase,
        mkb_prime: &MetaKnowledgeBase,
        opts: &CvsOptions,
    ) -> Result<Vec<LegalRewriting>, CvsError> {
        let index = MkbIndex::new(mkb, mkb_prime, opts);
        cvs_delete_relation_indexed(view, target, &index, opts)
    }
    use eve_misd::{check_mkb, evolve, CapabilityChange};
    use eve_relational::RelName;

    #[test]
    fn fixture_is_well_formed() {
        let f = LibraryFixture::new();
        assert_eq!(f.mkb().relation_count(), 5);
        assert_eq!(f.mkb().joins().len(), 6);
        assert_eq!(f.mkb().function_ofs().len(), 4);
        assert_eq!(f.mkb().pcs().len(), 1);
        assert!(check_mkb(f.mkb()).is_empty());
        let views = LibraryFixture::views();
        assert_eq!(views.len(), 2);
        for v in &views {
            assert!(eve_esql::validate_view(v).is_empty(), "{}", v.name);
        }
    }

    #[test]
    fn cited_books_survives_catalog_withdrawal_with_certificate() {
        // The catalog IS withdraws Book; Cited-Books reroutes through the
        // publisher feed with the LP1 PC certificate (VE = ⊇).
        let f = LibraryFixture::new();
        let book = RelName::new("Book");
        let mkb2 = evolve(f.mkb(), &CapabilityChange::DeleteRelation(book.clone())).unwrap();
        let cited = LibraryFixture::views()
            .into_iter()
            .find(|v| v.name == "Cited-Books")
            .expect("fixture view");
        let rewritings =
            cvs_delete_relation(&cited, &book, f.mkb(), &mkb2, &CvsOptions::default()).unwrap();
        let best = &rewritings[0];
        assert_eq!(best.verdict, ExtentVerdict::Superset);
        assert!(best.satisfies_p3);
        let text = best.view.to_string();
        assert!(text.contains("Publication.PubTitle"), "{text}");
        assert!(
            text.contains("Publication.ISBN = Citation.CitedISBN")
                || text.contains("Citation.CitedISBN = Publication.ISBN"),
            "{text}"
        );
    }

    #[test]
    fn online_texts_frozen_uri_is_kept_verbatim() {
        // Online-Texts pins F.Uri (AD=false, AR=false): deleting FullText
        // must disable it (nothing may replace the URI), while deleting
        // Book keeps it alive (Book components are dispensable).
        let f = LibraryFixture::new();
        let online = LibraryFixture::views()
            .into_iter()
            .find(|v| v.name == "Online-Texts")
            .expect("fixture view");

        let ft = RelName::new("FullText");
        let mkb2 = evolve(f.mkb(), &CapabilityChange::DeleteRelation(ft.clone())).unwrap();
        assert!(cvs_delete_relation(&online, &ft, f.mkb(), &mkb2, &CvsOptions::default()).is_err());

        let book = RelName::new("Book");
        let mkb2 = evolve(f.mkb(), &CapabilityChange::DeleteRelation(book.clone())).unwrap();
        let rewritings =
            cvs_delete_relation(&online, &book, f.mkb(), &mkb2, &CvsOptions::default()).unwrap();
        assert!(rewritings[0].view.to_string().contains("FullText.Uri"));
    }
}
