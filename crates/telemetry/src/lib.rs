//! # eve-telemetry
//!
//! Std-only observability substrate for the EVE workspace: hierarchical
//! spans with monotonic timings, a process-wide metrics registry
//! (counters and log-scale latency histograms), and pluggable sinks.
//!
//! The build environment has no route to crates.io, so this crate is
//! vendored alongside the other workspace shims and depends on `std`
//! only.
//!
//! ## Model
//!
//! * A **pipeline** is installed process-wide with [`install`]: a set of
//!   [`Sink`]s plus a fresh metrics [`Registry`]. [`uninstall`] tears it
//!   down, flushes a final [`MetricsSnapshot`] to every sink, and
//!   returns the snapshot.
//! * A **span** ([`span`]/[`span_under`]) measures one phase. Spans
//!   nest: each thread keeps a stack of open spans and a new span is
//!   parented under the innermost open one. Cross-thread parenting is
//!   explicit — capture [`Span::ctx`] on the coordinating thread and
//!   open children with [`span_under`] on workers. On drop a span emits
//!   a [`SpanRecord`] to every sink and records its duration into the
//!   `span.<name>` histogram.
//! * **Metrics** are plain named counters ([`counter_add`]), last-set
//!   gauges ([`gauge_set`]), and power-of-two-bucket histograms
//!   ([`record_duration_ns`]).
//! * A **flight recorder** ([`flight_install`]) keeps a bounded ring
//!   of recent events per thread and merges them into a deterministic
//!   JSONL dump on demand or when the engine reports a failure (see
//!   [`flight_trigger`] and the module docs in `flight.rs`).
//! * **Exposition**: [`expo`] renders the registry as Prometheus text
//!   or a JSON snapshot, and [`serve`] puts both behind a hand-rolled
//!   HTTP/1.1 endpoint (`/metrics`, `/snapshot`, `/health`).
//!
//! ## Disabled fast path
//!
//! When no pipeline is installed, every entry point short-circuits on a
//! single relaxed atomic load: no locks, no allocation, no `Instant`
//! reads. [`span`] returns an inert guard whose drop is a no-op. This
//! keeps always-on instrumentation affordable in hot loops.
//!
//! ## Sinks
//!
//! [`Collector`] buffers records in memory (for tests and for the CLI's
//! `--trace` tree, rendered with [`render_tree`]). [`JsonlSink`] writes
//! one JSON object per line — spans while running, counters and
//! histogram summaries on [`uninstall`] — using the hand-rolled encoder
//! in [`json`] (no serde in the vendored workspace).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::cell::{Cell, RefCell};
use std::collections::BTreeMap;
use std::io::Write as _;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, MutexGuard, OnceLock, RwLock};
use std::time::Instant;

pub mod expo;
mod flight;
pub mod json;
pub mod serve;

pub use flight::{
    flight_dump, flight_enabled, flight_fault, flight_install, flight_last_dump, flight_stats,
    flight_trigger, flight_uninstall, FlightStats,
};

// ---------------------------------------------------------------------------
// Global pipeline state
// ---------------------------------------------------------------------------

/// The one-load fast path: `true` iff a pipeline is installed.
static ENABLED: AtomicBool = AtomicBool::new(false);

struct Inner {
    epoch: Instant,
    next_span: AtomicU64,
    sinks: Vec<Arc<dyn Sink>>,
    registry: Registry,
}

fn state() -> &'static RwLock<Option<Arc<Inner>>> {
    static STATE: OnceLock<RwLock<Option<Arc<Inner>>>> = OnceLock::new();
    STATE.get_or_init(|| RwLock::new(None))
}

fn current_inner() -> Option<Arc<Inner>> {
    state().read().unwrap_or_else(|e| e.into_inner()).clone()
}

/// Is a telemetry pipeline installed? One relaxed atomic load; this is
/// the cost every disabled-path call site pays.
#[inline]
pub fn enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// Error returned by [`install`] when a pipeline is already installed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AlreadyInstalled;

impl std::fmt::Display for AlreadyInstalled {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "a telemetry pipeline is already installed")
    }
}

impl std::error::Error for AlreadyInstalled {}

/// Install a process-wide telemetry pipeline with the given sinks and a
/// fresh metrics registry, enabling all instrumentation.
///
/// Fails if a pipeline is already installed (telemetry state is global;
/// tests that install one should serialize on [`serial_guard`]).
pub fn install(sinks: Vec<Arc<dyn Sink>>) -> Result<(), AlreadyInstalled> {
    let mut guard = state().write().unwrap_or_else(|e| e.into_inner());
    if guard.is_some() {
        return Err(AlreadyInstalled);
    }
    *guard = Some(Arc::new(Inner {
        epoch: Instant::now(),
        next_span: AtomicU64::new(1),
        sinks,
        registry: Registry::default(),
    }));
    ENABLED.store(true, Ordering::SeqCst);
    Ok(())
}

/// Tear down the installed pipeline, flush a final [`MetricsSnapshot`]
/// to every sink ([`Sink::metrics`]), and return the snapshot.
///
/// Returns `None` if no pipeline was installed. Spans still open when
/// the pipeline is uninstalled keep a handle to it and report to its
/// sinks when they close; they no longer show up in later snapshots.
pub fn uninstall() -> Option<MetricsSnapshot> {
    ENABLED.store(false, Ordering::SeqCst);
    let inner = state().write().unwrap_or_else(|e| e.into_inner()).take()?;
    let snapshot = inner.registry.snapshot();
    for sink in &inner.sinks {
        sink.metrics(&snapshot);
    }
    Some(snapshot)
}

/// Snapshot the metrics registry of the installed pipeline without
/// tearing it down. `None` if no pipeline is installed.
pub fn metrics_snapshot() -> Option<MetricsSnapshot> {
    current_inner().map(|inner| inner.registry.snapshot())
}

/// Serialize tests (or tools) that install the global pipeline: hold
/// the returned guard around `install`..`uninstall`. Poisoning is
/// ignored so one panicking test does not wedge the rest.
pub fn serial_guard() -> MutexGuard<'static, ()> {
    static LOCK: OnceLock<Mutex<()>> = OnceLock::new();
    LOCK.get_or_init(Mutex::default)
        .lock()
        .unwrap_or_else(|e| e.into_inner())
}

// ---------------------------------------------------------------------------
// Spans
// ---------------------------------------------------------------------------

thread_local! {
    /// Stack of open span ids on this thread (innermost last).
    static SPAN_STACK: RefCell<Vec<u64>> = const { RefCell::new(Vec::new()) };
}

/// Small dense per-thread ordinal, assigned on first use; stabler to
/// read in traces than `std::thread::ThreadId`.
fn thread_ordinal() -> u64 {
    static NEXT: AtomicU64 = AtomicU64::new(0);
    thread_local! {
        static ORDINAL: Cell<u64> = const { Cell::new(u64::MAX) };
    }
    ORDINAL.with(|slot| {
        if slot.get() == u64::MAX {
            slot.set(NEXT.fetch_add(1, Ordering::SeqCst));
        }
        slot.get()
    })
}

/// A handle to an open span, for explicit cross-thread parenting.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SpanCtx {
    id: Option<u64>,
}

impl SpanCtx {
    /// A context with no parent; children open as roots.
    pub const fn root() -> SpanCtx {
        SpanCtx { id: None }
    }
}

/// The innermost span open on the current thread (inert when disabled).
pub fn current() -> SpanCtx {
    if !enabled() {
        return SpanCtx::root();
    }
    SpanCtx {
        id: SPAN_STACK.with(|s| s.borrow().last().copied()),
    }
}

/// A finished span as reported to sinks.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpanRecord {
    /// Process-unique id (monotone from 1 per installed pipeline).
    pub id: u64,
    /// Id of the enclosing span, if any.
    pub parent: Option<u64>,
    /// Static phase name, e.g. `"apply"` or `"view-sync"`.
    pub name: &'static str,
    /// Optional dynamic label (view name, change description, ...).
    pub label: Option<String>,
    /// Start time in microseconds since the pipeline was installed.
    pub start_us: u64,
    /// Wall-clock duration in nanoseconds.
    pub dur_ns: u64,
    /// Dense ordinal of the thread the span closed on.
    pub thread: u64,
    /// Numeric attachments, e.g. `("worker", 3)`.
    pub fields: Vec<(&'static str, u64)>,
}

struct ActiveSpan {
    inner: Arc<Inner>,
    id: u64,
    parent: Option<u64>,
    name: &'static str,
    label: Option<String>,
    fields: Vec<(&'static str, u64)>,
    start: Instant,
    start_us: u64,
}

/// RAII span guard. Inert (all methods no-ops, drop free) when the
/// pipeline is disabled. Close explicitly by dropping.
#[must_use = "a span measures the scope it is alive for"]
pub struct Span(Option<Box<ActiveSpan>>);

/// Open a span named `name` under the innermost span open on this
/// thread (or as a root).
pub fn span(name: &'static str) -> Span {
    if !enabled() {
        return Span(None);
    }
    let parent = SPAN_STACK.with(|s| s.borrow().last().copied());
    open_span(name, parent)
}

/// Open a span with an explicit parent context — the cross-thread form
/// used by fan-out workers.
pub fn span_under(name: &'static str, parent: SpanCtx) -> Span {
    if !enabled() {
        return Span(None);
    }
    open_span(name, parent.id)
}

fn open_span(name: &'static str, parent: Option<u64>) -> Span {
    let Some(inner) = current_inner() else {
        return Span(None);
    };
    let id = inner.next_span.fetch_add(1, Ordering::Relaxed);
    let start = Instant::now();
    let start_us = start.duration_since(inner.epoch).as_micros() as u64;
    SPAN_STACK.with(|s| s.borrow_mut().push(id));
    flight::note_span_open(name);
    Span(Some(Box::new(ActiveSpan {
        inner,
        id,
        parent,
        name,
        label: None,
        fields: Vec::new(),
        start,
        start_us,
    })))
}

impl Span {
    /// Attach a dynamic label; the closure runs only when recording.
    pub fn label(&mut self, f: impl FnOnce() -> String) {
        if let Some(a) = &mut self.0 {
            a.label = Some(f());
        }
    }

    /// Attach a numeric field.
    pub fn field(&mut self, key: &'static str, value: u64) {
        if let Some(a) = &mut self.0 {
            a.fields.push((key, value));
        }
    }

    /// Is this span actually recording (pipeline enabled at open time)?
    pub fn is_recording(&self) -> bool {
        self.0.is_some()
    }

    /// Context for parenting children of this span on other threads.
    pub fn ctx(&self) -> SpanCtx {
        SpanCtx {
            id: self.0.as_ref().map(|a| a.id),
        }
    }
}

impl Drop for Span {
    fn drop(&mut self) {
        let Some(a) = self.0.take() else {
            return;
        };
        let dur_ns = a.start.elapsed().as_nanos() as u64;
        SPAN_STACK.with(|s| {
            let mut stack = s.borrow_mut();
            if let Some(pos) = stack.iter().rposition(|&id| id == a.id) {
                stack.remove(pos);
            }
        });
        let record = SpanRecord {
            id: a.id,
            parent: a.parent,
            name: a.name,
            label: a.label,
            start_us: a.start_us,
            dur_ns,
            thread: thread_ordinal(),
            fields: a.fields,
        };
        a.inner
            .registry
            .histogram(&format!("span.{}", a.name))
            .record(dur_ns);
        flight::note_span_close(record.name, &record.label, &record.fields, dur_ns);
        for sink in &a.inner.sinks {
            sink.span(&record);
        }
    }
}

// ---------------------------------------------------------------------------
// Metrics registry
// ---------------------------------------------------------------------------

/// Process-wide named counters, gauges, and histograms. One registry
/// lives for the duration of an installed pipeline.
#[derive(Default)]
pub struct Registry {
    counters: RwLock<BTreeMap<String, Arc<AtomicU64>>>,
    gauges: RwLock<BTreeMap<String, Arc<AtomicU64>>>,
    histograms: RwLock<BTreeMap<String, Arc<Histogram>>>,
}

impl Registry {
    fn counter(&self, name: &str) -> Arc<AtomicU64> {
        if let Some(c) = self
            .counters
            .read()
            .unwrap_or_else(|e| e.into_inner())
            .get(name)
        {
            return c.clone();
        }
        self.counters
            .write()
            .unwrap_or_else(|e| e.into_inner())
            .entry(name.to_string())
            .or_default()
            .clone()
    }

    fn gauge(&self, name: &str) -> Arc<AtomicU64> {
        if let Some(g) = self
            .gauges
            .read()
            .unwrap_or_else(|e| e.into_inner())
            .get(name)
        {
            return g.clone();
        }
        self.gauges
            .write()
            .unwrap_or_else(|e| e.into_inner())
            .entry(name.to_string())
            .or_default()
            .clone()
    }

    fn histogram(&self, name: &str) -> Arc<Histogram> {
        if let Some(h) = self
            .histograms
            .read()
            .unwrap_or_else(|e| e.into_inner())
            .get(name)
        {
            return h.clone();
        }
        self.histograms
            .write()
            .unwrap_or_else(|e| e.into_inner())
            .entry(name.to_string())
            .or_insert_with(|| Arc::new(Histogram::new()))
            .clone()
    }

    fn snapshot(&self) -> MetricsSnapshot {
        MetricsSnapshot {
            counters: self.counter_values(),
            gauges: self.gauge_values(),
            histograms: self
                .histograms
                .read()
                .unwrap_or_else(|e| e.into_inner())
                .iter()
                .map(|(name, h)| (name.clone(), h.summary()))
                .collect(),
        }
    }

    pub(crate) fn counter_values(&self) -> Vec<(String, u64)> {
        self.counters
            .read()
            .unwrap_or_else(|e| e.into_inner())
            .iter()
            .map(|(name, c)| (name.clone(), c.load(Ordering::Relaxed)))
            .collect()
    }

    pub(crate) fn gauge_values(&self) -> Vec<(String, u64)> {
        self.gauges
            .read()
            .unwrap_or_else(|e| e.into_inner())
            .iter()
            .map(|(name, g)| (name.clone(), g.load(Ordering::Relaxed)))
            .collect()
    }

    pub(crate) fn histogram_handles(&self) -> Vec<(String, Arc<Histogram>)> {
        self.histograms
            .read()
            .unwrap_or_else(|e| e.into_inner())
            .iter()
            .map(|(name, h)| (name.clone(), h.clone()))
            .collect()
    }
}

/// Add `n` to the named counter of the installed pipeline (no-op when
/// disabled).
pub fn counter_add(name: &str, n: u64) {
    if !enabled() {
        return;
    }
    if let Some(inner) = current_inner() {
        inner.registry.counter(name).fetch_add(n, Ordering::Relaxed);
        flight::note_counter(name, n);
    }
}

/// Set the named gauge to `value` (no-op when disabled). Gauges are
/// last-write-wins point-in-time levels (e.g. `sync.views_active`),
/// unlike counters which only accumulate.
pub fn gauge_set(name: &str, value: u64) {
    if !enabled() {
        return;
    }
    if let Some(inner) = current_inner() {
        inner.registry.gauge(name).store(value, Ordering::Relaxed);
    }
}

/// Record a nanosecond duration into the named histogram (no-op when
/// disabled).
pub fn record_duration_ns(name: &str, ns: u64) {
    if !enabled() {
        return;
    }
    if let Some(inner) = current_inner() {
        inner.registry.histogram(name).record(ns);
    }
}

/// Start a wall-clock timer iff the pipeline is enabled; pair with
/// [`stop_timer`]. The disabled path never reads the clock.
#[inline]
pub fn start_timer() -> Option<Instant> {
    if enabled() {
        Some(Instant::now())
    } else {
        None
    }
}

/// Record the elapsed time of a [`start_timer`] into the named
/// histogram (no-op if the timer was never started).
pub fn stop_timer(name: &str, timer: Option<Instant>) {
    if let Some(t) = timer {
        record_duration_ns(name, t.elapsed().as_nanos() as u64);
    }
}

/// Fixed-shape latency histogram with power-of-two bucket bounds:
/// bucket 0 holds exact zeros, bucket `i >= 1` holds values in
/// `[2^(i-1), 2^i)`. Recording is three relaxed atomic RMWs plus a
/// `fetch_max`; quantiles are read back as bucket upper bounds.
pub struct Histogram {
    buckets: [AtomicU64; 65],
    count: AtomicU64,
    sum: AtomicU64,
    max: AtomicU64,
}

impl Histogram {
    fn new() -> Histogram {
        Histogram {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            max: AtomicU64::new(0),
        }
    }

    /// Record one nanosecond observation.
    pub fn record(&self, ns: u64) {
        let idx = if ns == 0 {
            0
        } else {
            (u64::BITS - ns.leading_zeros()) as usize
        };
        self.buckets[idx].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(ns, Ordering::Relaxed);
        self.max.fetch_max(ns, Ordering::Relaxed);
    }

    /// Raw per-bucket counts, for cumulative exposition.
    pub(crate) fn bucket_counts(&self) -> [u64; 65] {
        std::array::from_fn(|i| self.buckets[i].load(Ordering::Relaxed))
    }

    /// Running sum of all observations, in nanoseconds.
    pub(crate) fn sum_ns(&self) -> u64 {
        self.sum.load(Ordering::Relaxed)
    }

    /// Summarise current contents (racy reads are fine: each cell is
    /// individually consistent).
    pub fn summary(&self) -> HistogramSummary {
        let counts: Vec<u64> = self
            .buckets
            .iter()
            .map(|b| b.load(Ordering::Relaxed))
            .collect();
        let count: u64 = counts.iter().sum();
        HistogramSummary {
            count,
            sum_ns: self.sum.load(Ordering::Relaxed),
            p50_ns: quantile(&counts, count, 0.50),
            p95_ns: quantile(&counts, count, 0.95),
            max_ns: self.max.load(Ordering::Relaxed),
        }
    }
}

/// Inclusive upper bound of histogram bucket `i`.
fn bucket_bound(i: usize) -> u64 {
    match i {
        0 => 0,
        1..=63 => (1u64 << i) - 1,
        _ => u64::MAX,
    }
}

fn quantile(counts: &[u64], total: u64, q: f64) -> u64 {
    if total == 0 {
        return 0;
    }
    let target = ((total as f64) * q).ceil().max(1.0) as u64;
    let mut cumulative = 0u64;
    for (i, c) in counts.iter().enumerate() {
        cumulative += c;
        if cumulative >= target {
            return bucket_bound(i);
        }
    }
    bucket_bound(counts.len() - 1)
}

/// Point-in-time read-out of a [`Histogram`]. Quantiles are bucket
/// upper bounds (so `p50_ns` reads "p50 ≤ this many ns").
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HistogramSummary {
    /// Number of recorded observations.
    pub count: u64,
    /// Sum of all observations, in nanoseconds.
    pub sum_ns: u64,
    /// Upper bound of the bucket containing the median.
    pub p50_ns: u64,
    /// Upper bound of the bucket containing the 95th percentile.
    pub p95_ns: u64,
    /// Largest observation seen.
    pub max_ns: u64,
}

/// Sorted name/value pairs from a [`Registry`] at one point in time.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct MetricsSnapshot {
    /// All counters, sorted by name.
    pub counters: Vec<(String, u64)>,
    /// All gauges (last-set values), sorted by name.
    pub gauges: Vec<(String, u64)>,
    /// All histogram summaries, sorted by name.
    pub histograms: Vec<(String, HistogramSummary)>,
}

impl MetricsSnapshot {
    /// Value of the named counter, if it was ever touched.
    pub fn counter(&self, name: &str) -> Option<u64> {
        self.counters
            .iter()
            .find(|(n, _)| n == name)
            .map(|&(_, v)| v)
    }

    /// Value of the named gauge, if it was ever set.
    pub fn gauge(&self, name: &str) -> Option<u64> {
        self.gauges.iter().find(|(n, _)| n == name).map(|&(_, v)| v)
    }

    /// Summary of the named histogram, if it was ever touched.
    pub fn histogram(&self, name: &str) -> Option<&HistogramSummary> {
        self.histograms
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, h)| h)
    }
}

// ---------------------------------------------------------------------------
// Sinks
// ---------------------------------------------------------------------------

/// Destination for telemetry. Span records arrive as spans close (from
/// any thread); the final metrics snapshot arrives on [`uninstall`].
pub trait Sink: Send + Sync {
    /// A span closed.
    fn span(&self, record: &SpanRecord);

    /// The pipeline is being uninstalled; `snapshot` is the final state
    /// of the metrics registry.
    fn metrics(&self, _snapshot: &MetricsSnapshot) {}
}

/// In-memory sink for tests and for rendering the `--trace` tree.
#[derive(Default)]
pub struct Collector {
    spans: Mutex<Vec<SpanRecord>>,
}

impl Collector {
    /// New empty collector, ready to pass to [`install`].
    pub fn new() -> Arc<Collector> {
        Arc::new(Collector::default())
    }

    /// Copy of every span record collected so far.
    pub fn spans(&self) -> Vec<SpanRecord> {
        self.spans.lock().unwrap_or_else(|e| e.into_inner()).clone()
    }
}

impl Sink for Collector {
    fn span(&self, record: &SpanRecord) {
        self.spans
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .push(record.clone());
    }
}

/// Sink that writes one JSON object per line: `{"type":"span",...}`
/// while running, then `{"type":"counter",...}`, `{"type":"gauge",...}`
/// and `{"type":"histogram",...}` lines when the pipeline is
/// uninstalled.
///
/// Output is buffered ([`JsonlSink::create`] wraps the file in a
/// `BufWriter`) and flushed when the sink drops. Write failures are
/// *surfaced*, not swallowed: the first I/O error is retained (check
/// it with [`JsonlSink::take_error`]), later events are skipped rather
/// than written into a broken stream, and an error nobody collected is
/// reported on stderr from `drop`.
pub struct JsonlSink {
    out: Mutex<JsonlState>,
}

struct JsonlState {
    out: Box<dyn std::io::Write + Send>,
    error: Option<std::io::Error>,
}

impl JsonlState {
    fn write_line(&mut self, line: &str) {
        if self.error.is_some() {
            return;
        }
        if let Err(e) = writeln!(self.out, "{line}") {
            self.error = Some(e);
        }
    }

    fn flush(&mut self) {
        if self.error.is_some() {
            return;
        }
        if let Err(e) = self.out.flush() {
            self.error = Some(e);
        }
    }
}

impl JsonlSink {
    /// Create (truncate) `path` and write JSON lines to it, buffered.
    pub fn create(path: impl AsRef<std::path::Path>) -> std::io::Result<JsonlSink> {
        let file = std::fs::File::create(path)?;
        Ok(JsonlSink::from_writer(Box::new(std::io::BufWriter::new(
            file,
        ))))
    }

    /// Wrap an arbitrary writer (used by tests to capture in memory).
    pub fn from_writer(out: Box<dyn std::io::Write + Send>) -> JsonlSink {
        JsonlSink {
            out: Mutex::new(JsonlState { out, error: None }),
        }
    }

    /// The first write or flush error this sink hit, if any. Taking it
    /// marks the error as handled, so `drop` stays quiet.
    pub fn take_error(&self) -> Option<std::io::Error> {
        self.out
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .error
            .take()
    }
}

impl Drop for JsonlSink {
    fn drop(&mut self) {
        let state = self.out.get_mut().unwrap_or_else(|e| e.into_inner());
        if state.error.is_none() {
            if let Err(e) = state.out.flush() {
                state.error = Some(e);
            }
        }
        if let Some(e) = &state.error {
            eprintln!("eve-telemetry: JSONL sink lost events: {e}");
        }
    }
}

impl Sink for JsonlSink {
    fn span(&self, r: &SpanRecord) {
        let mut line = String::with_capacity(128);
        line.push_str(&format!(
            "{{\"type\":\"span\",\"name\":\"{}\",\"id\":{},\"parent\":",
            json::escape(r.name),
            r.id
        ));
        match r.parent {
            Some(p) => line.push_str(&p.to_string()),
            None => line.push_str("null"),
        }
        if let Some(label) = &r.label {
            line.push_str(&format!(",\"label\":\"{}\"", json::escape(label)));
        }
        line.push_str(&format!(
            ",\"thread\":{},\"start_us\":{},\"dur_ns\":{},\"fields\":{{",
            r.thread, r.start_us, r.dur_ns
        ));
        for (i, (k, v)) in r.fields.iter().enumerate() {
            if i > 0 {
                line.push(',');
            }
            line.push_str(&format!("\"{}\":{}", json::escape(k), v));
        }
        line.push_str("}}");
        let mut state = self.out.lock().unwrap_or_else(|e| e.into_inner());
        state.write_line(&line);
    }

    fn metrics(&self, snapshot: &MetricsSnapshot) {
        let mut state = self.out.lock().unwrap_or_else(|e| e.into_inner());
        for (name, value) in &snapshot.counters {
            state.write_line(&format!(
                "{{\"type\":\"counter\",\"name\":\"{}\",\"value\":{value}}}",
                json::escape(name)
            ));
        }
        for (name, value) in &snapshot.gauges {
            state.write_line(&format!(
                "{{\"type\":\"gauge\",\"name\":\"{}\",\"value\":{value}}}",
                json::escape(name)
            ));
        }
        for (name, h) in &snapshot.histograms {
            state.write_line(&format!(
                "{{\"type\":\"histogram\",\"name\":\"{}\",\"count\":{},\"sum_ns\":{},\
                 \"p50_ns\":{},\"p95_ns\":{},\"max_ns\":{}}}",
                json::escape(name),
                h.count,
                h.sum_ns,
                h.p50_ns,
                h.p95_ns,
                h.max_ns
            ));
        }
        state.flush();
    }
}

// ---------------------------------------------------------------------------
// Rendering
// ---------------------------------------------------------------------------

/// Human format for a nanosecond duration (`842ns`, `3.1us`, `2.04ms`,
/// `1.50s`).
pub fn fmt_ns(ns: u64) -> String {
    if ns < 1_000 {
        format!("{ns}ns")
    } else if ns < 1_000_000 {
        format!("{:.1}us", ns as f64 / 1e3)
    } else if ns < 1_000_000_000 {
        format!("{:.2}ms", ns as f64 / 1e6)
    } else {
        format!("{:.2}s", ns as f64 / 1e9)
    }
}

/// Render collected spans as an indented tree, one line per span:
/// name, optional label, `key=value` fields, then the duration in a
/// right-aligned column. Siblings sort by start time (ties by id), so
/// the layout is deterministic for a sequential run.
pub fn render_tree(spans: &[SpanRecord]) -> String {
    let known: std::collections::HashSet<u64> = spans.iter().map(|s| s.id).collect();
    let mut children: BTreeMap<u64, Vec<&SpanRecord>> = BTreeMap::new();
    let mut roots: Vec<&SpanRecord> = Vec::new();
    for s in spans {
        match s.parent {
            Some(p) if known.contains(&p) => children.entry(p).or_default().push(s),
            _ => roots.push(s),
        }
    }
    let by_start = |a: &&SpanRecord, b: &&SpanRecord| (a.start_us, a.id).cmp(&(b.start_us, b.id));
    roots.sort_by(by_start);
    for list in children.values_mut() {
        list.sort_by(by_start);
    }
    let mut out = String::new();
    fn emit(
        out: &mut String,
        s: &SpanRecord,
        depth: usize,
        children: &BTreeMap<u64, Vec<&SpanRecord>>,
    ) {
        let mut left = "  ".repeat(depth);
        left.push_str(s.name);
        if let Some(label) = &s.label {
            left.push(' ');
            left.push_str(label);
        }
        for (k, v) in &s.fields {
            left.push_str(&format!(" {k}={v}"));
        }
        out.push_str(&format!("{left:<56} {:>9}\n", fmt_ns(s.dur_ns)));
        for child in children.get(&s.id).into_iter().flatten() {
            emit(out, child, depth + 1, children);
        }
    }
    for root in roots {
        emit(&mut out, root, 0, &children);
    }
    out
}

/// Render a metrics snapshot as aligned text: counters first, then
/// histogram summaries.
pub fn render_metrics(snapshot: &MetricsSnapshot) -> String {
    let mut out = String::new();
    if !snapshot.counters.is_empty() {
        out.push_str("counters:\n");
        for (name, value) in &snapshot.counters {
            out.push_str(&format!("  {name:<40} {value}\n"));
        }
    }
    if !snapshot.gauges.is_empty() {
        out.push_str("gauges:\n");
        for (name, value) in &snapshot.gauges {
            out.push_str(&format!("  {name:<40} {value}\n"));
        }
    }
    if !snapshot.histograms.is_empty() {
        out.push_str("histograms:\n");
        for (name, h) in &snapshot.histograms {
            out.push_str(&format!(
                "  {name:<40} count={} sum={} p50<={} p95<={} max={}\n",
                h.count,
                fmt_ns(h.sum_ns),
                fmt_ns(h.p50_ns),
                fmt_ns(h.p95_ns),
                fmt_ns(h.max_ns)
            ));
        }
    }
    out
}

// ---------------------------------------------------------------------------
// Tests
// ---------------------------------------------------------------------------

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_path_is_inert() {
        let _serial = serial_guard();
        assert!(!enabled());
        let mut s = span("nothing");
        s.label(|| panic!("label closure must not run when disabled"));
        s.field("k", 1);
        assert!(!s.is_recording());
        assert_eq!(s.ctx(), SpanCtx::root());
        drop(s);
        counter_add("nope", 7);
        record_duration_ns("nope", 7);
        assert!(metrics_snapshot().is_none());
        assert!(uninstall().is_none());
    }

    #[test]
    fn spans_nest_on_one_thread_and_across_threads() {
        let _serial = serial_guard();
        let collector = Collector::new();
        install(vec![collector.clone()]).unwrap();
        {
            let outer = span("outer");
            let ctx = outer.ctx();
            {
                let mut inner = span("inner");
                inner.field("n", 3);
                drop(inner);
            }
            let handle = std::thread::spawn(move || {
                let mut worker = span_under("worker", ctx);
                worker.label(|| "w0".to_string());
                drop(worker);
            });
            handle.join().unwrap();
            drop(outer);
        }
        let snap = uninstall().unwrap();
        let spans = collector.spans();
        assert_eq!(spans.len(), 3);
        let outer = spans.iter().find(|s| s.name == "outer").unwrap();
        let inner = spans.iter().find(|s| s.name == "inner").unwrap();
        let worker = spans.iter().find(|s| s.name == "worker").unwrap();
        assert_eq!(outer.parent, None);
        assert_eq!(inner.parent, Some(outer.id));
        assert_eq!(worker.parent, Some(outer.id));
        assert_eq!(inner.fields, vec![("n", 3)]);
        assert_eq!(worker.label.as_deref(), Some("w0"));
        // every span feeds its span.<name> histogram
        for name in ["span.outer", "span.inner", "span.worker"] {
            assert_eq!(snap.histogram(name).unwrap().count, 1, "{name}");
        }
    }

    #[test]
    fn counters_and_histograms_accumulate() {
        let _serial = serial_guard();
        install(vec![]).unwrap();
        counter_add("c", 2);
        counter_add("c", 3);
        record_duration_ns("h", 0);
        record_duration_ns("h", 1);
        record_duration_ns("h", 1024);
        let snap = uninstall().unwrap();
        assert_eq!(snap.counter("c"), Some(5));
        let h = snap.histogram("h").unwrap();
        assert_eq!(h.count, 3);
        assert_eq!(h.sum_ns, 1025);
        assert_eq!(h.max_ns, 1024);
        assert_eq!(h.p50_ns, 1); // bucket [1,1]
        assert_eq!(h.p95_ns, 2047); // bucket [1024,2047]
    }

    #[test]
    fn histogram_bucket_bounds() {
        let h = Histogram::new();
        for ns in [0u64, 1, 2, 3, 4, 1023, 1024, u64::MAX] {
            h.record(ns);
        }
        let s = h.summary();
        assert_eq!(s.count, 8);
        assert_eq!(s.max_ns, u64::MAX);
        assert_eq!(quantile(&[1, 0, 0], 1, 0.5), 0);
        assert_eq!(bucket_bound(64), u64::MAX);
    }

    #[test]
    fn double_install_fails() {
        let _serial = serial_guard();
        install(vec![]).unwrap();
        assert_eq!(install(vec![]), Err(AlreadyInstalled));
        uninstall().unwrap();
    }

    #[test]
    fn jsonl_sink_emits_valid_json_lines() {
        let _serial = serial_guard();
        #[derive(Clone, Default)]
        struct Buf(Arc<Mutex<Vec<u8>>>);
        impl std::io::Write for Buf {
            fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
                self.0.lock().unwrap().extend_from_slice(buf);
                Ok(buf.len())
            }
            fn flush(&mut self) -> std::io::Result<()> {
                Ok(())
            }
        }
        let buf = Buf::default();
        install(vec![Arc::new(JsonlSink::from_writer(Box::new(
            buf.clone(),
        )))])
        .unwrap();
        {
            let mut s = span("apply");
            s.label(|| "delete-relation \"R\"\n".to_string());
            s.field("affected", 2);
        }
        counter_add("index.cache.hits", 4);
        record_duration_ns("service.read_wait_ns", 55);
        uninstall().unwrap();
        let bytes = buf.0.lock().unwrap().clone();
        let text = String::from_utf8(bytes).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert!(lines.len() >= 4, "span + counter + 2 histograms: {text}");
        for line in &lines {
            json::validate(line).unwrap_or_else(|e| panic!("bad JSON line {line:?}: {e}"));
            assert!(line.contains("\"type\""), "{line}");
            assert!(line.contains("\"name\""), "{line}");
        }
        assert!(text.contains("\"type\":\"span\""));
        assert!(text.contains("\"type\":\"counter\""));
        assert!(text.contains("\"type\":\"histogram\""));
    }

    #[test]
    fn gauges_are_last_write_wins() {
        let _serial = serial_guard();
        install(vec![]).unwrap();
        gauge_set("g", 5);
        gauge_set("g", 2);
        assert_eq!(metrics_snapshot().unwrap().gauge("g"), Some(2));
        let snap = uninstall().unwrap();
        assert_eq!(snap.gauge("g"), Some(2));
        assert_eq!(snap.gauge("missing"), None);
        let text = render_metrics(&snap);
        assert!(text.contains("gauges:\n"), "{text}");
        assert!(text.contains("  g"), "{text}");
    }

    #[test]
    fn jsonl_sink_emits_gauge_lines() {
        let _serial = serial_guard();
        #[derive(Clone, Default)]
        struct Buf(Arc<Mutex<Vec<u8>>>);
        impl std::io::Write for Buf {
            fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
                self.0.lock().unwrap().extend_from_slice(buf);
                Ok(buf.len())
            }
            fn flush(&mut self) -> std::io::Result<()> {
                Ok(())
            }
        }
        let buf = Buf::default();
        install(vec![Arc::new(JsonlSink::from_writer(Box::new(
            buf.clone(),
        )))])
        .unwrap();
        gauge_set("sync.views_active", 3);
        uninstall().unwrap();
        let text = String::from_utf8(buf.0.lock().unwrap().clone()).unwrap();
        assert!(
            text.contains("{\"type\":\"gauge\",\"name\":\"sync.views_active\",\"value\":3}"),
            "{text}"
        );
    }

    #[test]
    fn jsonl_sink_surfaces_write_errors() {
        #[derive(Clone, Default)]
        struct Failing(Arc<std::sync::atomic::AtomicUsize>);
        impl std::io::Write for Failing {
            fn write(&mut self, _buf: &[u8]) -> std::io::Result<usize> {
                self.0.fetch_add(1, Ordering::SeqCst);
                Err(std::io::Error::other("disk full"))
            }
            fn flush(&mut self) -> std::io::Result<()> {
                Ok(())
            }
        }
        let attempts = Failing::default();
        let sink = JsonlSink::from_writer(Box::new(attempts.clone()));
        let record = SpanRecord {
            id: 1,
            parent: None,
            name: "s",
            label: None,
            start_us: 0,
            dur_ns: 1,
            thread: 0,
            fields: vec![],
        };
        sink.span(&record); // first write fails and is captured
        let after_first = attempts.0.load(Ordering::SeqCst);
        assert!(after_first >= 1);
        sink.span(&record); // later events are skipped, not retried
        assert_eq!(attempts.0.load(Ordering::SeqCst), after_first);
        let err = sink.take_error().expect("error surfaced");
        assert_eq!(err.to_string(), "disk full");
        assert!(sink.take_error().is_none(), "error is handed over once");
    }

    #[test]
    fn render_tree_is_indented_and_sorted() {
        let spans = vec![
            SpanRecord {
                id: 2,
                parent: Some(1),
                name: "child-b",
                label: None,
                start_us: 20,
                dur_ns: 1_500,
                thread: 0,
                fields: vec![],
            },
            SpanRecord {
                id: 3,
                parent: Some(1),
                name: "child-a",
                label: Some("first".into()),
                start_us: 10,
                dur_ns: 2_000_000,
                thread: 0,
                fields: vec![("k", 7)],
            },
            SpanRecord {
                id: 1,
                parent: None,
                name: "root",
                label: None,
                start_us: 0,
                dur_ns: 5_000_000_000,
                thread: 0,
                fields: vec![],
            },
        ];
        let tree = render_tree(&spans);
        let lines: Vec<&str> = tree.lines().collect();
        assert_eq!(lines.len(), 3);
        assert!(lines[0].starts_with("root"));
        assert!(lines[1].starts_with("  child-a first k=7"));
        assert!(lines[2].starts_with("  child-b"));
        assert!(lines[0].contains("5.00s"));
        assert!(lines[1].contains("2.00ms"));
        assert!(lines[2].contains("1.5us"));
    }

    #[test]
    fn orphan_spans_render_as_roots() {
        let spans = vec![SpanRecord {
            id: 9,
            parent: Some(1234),
            name: "lost",
            label: None,
            start_us: 0,
            dur_ns: 10,
            thread: 0,
            fields: vec![],
        }];
        assert!(render_tree(&spans).starts_with("lost"));
    }
}
