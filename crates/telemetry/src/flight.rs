//! Flight recorder: bounded per-thread rings of recent telemetry
//! events, merged into a deterministic postmortem dump.
//!
//! The recorder is a black box for the sync pipeline: while enabled it
//! captures span opens/closes, counter deltas, and fault firings into a
//! small ring per thread (each ring is written by exactly one thread,
//! so its mutex is uncontended — the closest std-only,
//! `forbid(unsafe_code)` equivalent of a lock-free SPSC ring). When a
//! failure surfaces — `FailFast` about to re-raise a `SyncPanic`, or
//! `Degrade` about to land a `ViewOutcome::Failed` — the engine calls
//! [`flight_trigger`], which merges every ring into one canonical JSONL
//! dump and writes it to the configured path.
//!
//! ## Determinism
//!
//! The dump is byte-identical across reruns and worker counts for the
//! same pinned fault seed, because:
//!
//! * fault hits are counted per `(scope, site)` in `eve-faults`, so
//!   which attempt fires is independent of thread interleaving;
//! * the fan-out barrier (`parpool::map_in_order`) completes every
//!   per-view task before failures are resolved serially in view
//!   registration order, so the recorded event *multiset* is fixed;
//! * the canonical form excludes everything scheduling-dependent —
//!   durations, span ids, thread ordinals, timestamps — and sorts the
//!   rendered lines lexicographically.
//!
//! The guarantee holds while no ring overflows (`dropped == 0` in the
//! header); an overflowing window keeps the *newest* events per thread,
//! which is the right postmortem bias but is capacity-dependent.

use std::cell::RefCell;
use std::collections::VecDeque;
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock, RwLock};

use crate::json;
use crate::AlreadyInstalled;

/// One captured telemetry event. Kept small: dynamic strings are only
/// allocated while the recorder is enabled.
#[derive(Debug, Clone)]
enum FlightEvent {
    /// A span was opened.
    SpanOpen { name: &'static str },
    /// A span closed (duration is kept in memory but excluded from the
    /// canonical dump — timing belongs to `--trace-out`).
    SpanClose {
        name: &'static str,
        label: Option<String>,
        fields: Vec<(&'static str, u64)>,
        #[allow(dead_code)]
        dur_ns: u64,
    },
    /// A counter was bumped by `delta`.
    Counter { name: String, delta: u64 },
    /// A seeded fault fired at `scope`/`site` on the given hit.
    Fault {
        scope: String,
        site: String,
        hit: u64,
        kind: String,
    },
}

/// One thread's bounded event window. Single-writer: only the owning
/// thread pushes, so the lock is uncontended except during a dump.
struct Ring {
    events: Mutex<VecDeque<FlightEvent>>,
    dropped: AtomicU64,
}

impl Ring {
    fn push(&self, capacity: usize, event: FlightEvent) {
        let mut events = self.events.lock().unwrap_or_else(|e| e.into_inner());
        if events.len() == capacity {
            events.pop_front();
            self.dropped.fetch_add(1, Ordering::Relaxed);
        }
        events.push_back(event);
    }
}

struct FlightInner {
    /// Monotone install generation, so thread-local ring caches from a
    /// previous recorder are never written into a new one.
    generation: u64,
    capacity: usize,
    auto_dump_path: Option<PathBuf>,
    rings: Mutex<Vec<Arc<Ring>>>,
    last_dump: Mutex<Option<String>>,
}

/// One-load fast path: `true` iff a recorder is installed.
static FLIGHT_ON: AtomicBool = AtomicBool::new(false);
static GENERATION: AtomicU64 = AtomicU64::new(0);

fn flight_state() -> &'static RwLock<Option<Arc<FlightInner>>> {
    static STATE: OnceLock<RwLock<Option<Arc<FlightInner>>>> = OnceLock::new();
    STATE.get_or_init(|| RwLock::new(None))
}

fn current_flight() -> Option<Arc<FlightInner>> {
    flight_state()
        .read()
        .unwrap_or_else(|e| e.into_inner())
        .clone()
}

thread_local! {
    /// This thread's ring in the current recorder generation.
    static MY_RING: RefCell<Option<(u64, Arc<Ring>)>> = const { RefCell::new(None) };
}

/// Is a flight recorder installed? One relaxed atomic load.
#[inline]
pub fn flight_enabled() -> bool {
    FLIGHT_ON.load(Ordering::Relaxed)
}

/// Occupancy read-out of an installed recorder, for bounded-memory
/// assertions and dump headers.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FlightStats {
    /// Number of per-thread rings allocated so far.
    pub threads: usize,
    /// Events currently buffered across all rings.
    pub buffered: usize,
    /// Events evicted (oldest-first) across all rings.
    pub dropped: u64,
    /// Per-ring capacity the recorder was installed with.
    pub capacity: usize,
}

/// Install a process-wide flight recorder holding up to `capacity`
/// recent events *per thread*. When `auto_dump_path` is set, failure
/// triggers ([`flight_trigger`]) also write the dump there.
///
/// Independent of the telemetry pipeline: events are captured at the
/// same call sites, but the recorder can run with or without sinks.
pub fn flight_install(
    capacity: usize,
    auto_dump_path: Option<PathBuf>,
) -> Result<(), AlreadyInstalled> {
    let mut guard = flight_state().write().unwrap_or_else(|e| e.into_inner());
    if guard.is_some() {
        return Err(AlreadyInstalled);
    }
    *guard = Some(Arc::new(FlightInner {
        generation: GENERATION.fetch_add(1, Ordering::SeqCst) + 1,
        capacity: capacity.max(1),
        auto_dump_path,
        rings: Mutex::new(Vec::new()),
        last_dump: Mutex::new(None),
    }));
    FLIGHT_ON.store(true, Ordering::SeqCst);
    Ok(())
}

/// Tear down the recorder, returning its final occupancy. `None` if no
/// recorder was installed.
pub fn flight_uninstall() -> Option<FlightStats> {
    FLIGHT_ON.store(false, Ordering::SeqCst);
    let inner = flight_state()
        .write()
        .unwrap_or_else(|e| e.into_inner())
        .take()?;
    Some(stats_of(&inner))
}

/// Occupancy of the installed recorder, or `None`.
pub fn flight_stats() -> Option<FlightStats> {
    current_flight().map(|inner| stats_of(&inner))
}

fn stats_of(inner: &FlightInner) -> FlightStats {
    let rings = inner.rings.lock().unwrap_or_else(|e| e.into_inner());
    FlightStats {
        threads: rings.len(),
        buffered: rings
            .iter()
            .map(|r| r.events.lock().unwrap_or_else(|e| e.into_inner()).len())
            .sum(),
        dropped: rings
            .iter()
            .map(|r| r.dropped.load(Ordering::Relaxed))
            .sum(),
        capacity: inner.capacity,
    }
}

/// The dump produced by the most recent [`flight_trigger`], if any.
pub fn flight_last_dump() -> Option<String> {
    let inner = current_flight()?;
    let last = inner.last_dump.lock().unwrap_or_else(|e| e.into_inner());
    last.clone()
}

fn record(event: FlightEvent) {
    let Some(inner) = current_flight() else {
        return;
    };
    MY_RING.with(|slot| {
        let mut slot = slot.borrow_mut();
        let stale = match &*slot {
            Some((generation, _)) => *generation != inner.generation,
            None => true,
        };
        if stale {
            let ring = Arc::new(Ring {
                events: Mutex::new(VecDeque::with_capacity(inner.capacity.min(1024))),
                dropped: AtomicU64::new(0),
            });
            inner
                .rings
                .lock()
                .unwrap_or_else(|e| e.into_inner())
                .push(ring.clone());
            *slot = Some((inner.generation, ring));
        }
        let (_, ring) = slot.as_ref().expect("ring just ensured");
        ring.push(inner.capacity, event);
    });
}

/// Hook: a span opened (called from `open_span`).
pub(crate) fn note_span_open(name: &'static str) {
    if flight_enabled() {
        record(FlightEvent::SpanOpen { name });
    }
}

/// Hook: a span closed (called from `Span::drop`).
pub(crate) fn note_span_close(
    name: &'static str,
    label: &Option<String>,
    fields: &[(&'static str, u64)],
    dur_ns: u64,
) {
    if flight_enabled() {
        record(FlightEvent::SpanClose {
            name,
            label: label.clone(),
            fields: fields.to_vec(),
            dur_ns,
        });
    }
}

/// Hook: a counter was bumped (called from `counter_add`).
pub(crate) fn note_counter(name: &str, delta: u64) {
    if flight_enabled() {
        record(FlightEvent::Counter {
            name: name.to_string(),
            delta,
        });
    }
}

/// Record a seeded fault firing. Called by the engine's fault facade
/// with plain values so `eve-telemetry` stays decoupled from
/// `eve-faults` types.
pub fn flight_fault(scope: &str, site: &str, hit: u64, kind: &str) {
    if flight_enabled() {
        record(FlightEvent::Fault {
            scope: scope.to_string(),
            site: site.to_string(),
            hit,
            kind: kind.to_string(),
        });
    }
}

/// Render the canonical (sorted, scheduling-independent) body of the
/// current window, one JSON object per line. `None` if no recorder is
/// installed.
pub fn flight_dump() -> Option<String> {
    let inner = current_flight()?;
    Some(render_body(&inner))
}

fn render_event(event: &FlightEvent, out: &mut Vec<String>) {
    match event {
        FlightEvent::SpanOpen { name } => out.push(format!(
            "{{\"type\":\"span-open\",\"name\":\"{}\"}}",
            json::escape(name)
        )),
        FlightEvent::SpanClose {
            name,
            label,
            fields,
            ..
        } => {
            let mut line = format!("{{\"type\":\"span\",\"name\":\"{}\"", json::escape(name));
            if let Some(label) = label {
                line.push_str(&format!(",\"label\":\"{}\"", json::escape(label)));
            }
            line.push_str(",\"fields\":{");
            for (i, (k, v)) in fields.iter().enumerate() {
                if i > 0 {
                    line.push(',');
                }
                line.push_str(&format!("\"{}\":{}", json::escape(k), v));
            }
            line.push_str("}}");
            out.push(line);
        }
        FlightEvent::Counter { name, delta } => out.push(format!(
            "{{\"type\":\"counter\",\"name\":\"{}\",\"delta\":{delta}}}",
            json::escape(name)
        )),
        FlightEvent::Fault {
            scope,
            site,
            hit,
            kind,
        } => out.push(format!(
            "{{\"type\":\"fault\",\"scope\":\"{}\",\"site\":\"{}\",\"hit\":{hit},\"kind\":\"{}\"}}",
            json::escape(scope),
            json::escape(site),
            json::escape(kind)
        )),
    }
}

fn render_body(inner: &FlightInner) -> String {
    let rings: Vec<Arc<Ring>> = inner
        .rings
        .lock()
        .unwrap_or_else(|e| e.into_inner())
        .clone();
    let mut lines = Vec::new();
    for ring in rings {
        let events = ring.events.lock().unwrap_or_else(|e| e.into_inner());
        for event in events.iter() {
            render_event(event, &mut lines);
        }
    }
    lines.sort_unstable();
    let mut body = lines.join("\n");
    if !body.is_empty() {
        body.push('\n');
    }
    body
}

/// Failure trigger: merge the window into a canonical dump prefixed by
/// a header line carrying the trigger context, remember it (see
/// [`flight_last_dump`]), and write it to the recorder's auto-dump
/// path, if one was configured. No-op without an installed recorder.
///
/// The engine calls this just before `FailFast` re-raises a
/// `SyncPanic` and just before `Degrade` returns a failed view.
pub fn flight_trigger(reason: &str, change: &str, view: &str) {
    if !flight_enabled() {
        return;
    }
    let Some(inner) = current_flight() else {
        return;
    };
    let stats = stats_of(&inner);
    let body = render_body(&inner);
    let events = if body.is_empty() {
        0
    } else {
        body.lines().count()
    };
    let dump = format!(
        "{{\"type\":\"flight-dump\",\"reason\":\"{}\",\"change\":\"{}\",\"view\":\"{}\",\
         \"events\":{events},\"dropped\":{}}}\n{body}",
        json::escape(reason),
        json::escape(change),
        json::escape(view),
        stats.dropped
    );
    *inner.last_dump.lock().unwrap_or_else(|e| e.into_inner()) = Some(dump.clone());
    if let Some(path) = &inner.auto_dump_path {
        if let Err(e) = std::fs::write(path, &dump) {
            eprintln!(
                "eve-telemetry: failed to write flight dump to {}: {e}",
                path.display()
            );
        }
    }
    crate::counter_add("flight.dumps", 1);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn recorder_is_bounded_and_counts_drops() {
        let _serial = crate::serial_guard();
        flight_install(8, None).unwrap();
        for i in 0..100u64 {
            record(FlightEvent::Counter {
                name: "c".into(),
                delta: i,
            });
        }
        let stats = flight_stats().unwrap();
        assert_eq!(stats.threads, 1);
        assert_eq!(stats.buffered, 8);
        assert_eq!(stats.dropped, 92);
        // newest events survive
        let dump = flight_dump().unwrap();
        assert!(dump.contains("\"delta\":99"));
        assert!(!dump.contains("\"delta\":42"));
        flight_uninstall().unwrap();
    }

    #[test]
    fn dump_is_sorted_and_valid_jsonl() {
        let _serial = crate::serial_guard();
        flight_install(64, None).unwrap();
        flight_fault("CPA", "view.sync", 2, "panic");
        note_span_open("apply");
        note_counter("sync.changes", 1);
        note_span_close("view-sync", &Some("CPA".into()), &[("task", 0)], 1234);
        let dump = flight_dump().unwrap();
        let lines: Vec<&str> = dump.lines().collect();
        assert_eq!(lines.len(), 4);
        let mut sorted = lines.clone();
        sorted.sort_unstable();
        assert_eq!(lines, sorted, "canonical dump is sorted");
        for line in &lines {
            json::validate(line).unwrap_or_else(|e| panic!("bad line {line:?}: {e}"));
        }
        assert!(dump.contains("\"type\":\"fault\""));
        assert!(dump.contains("\"hit\":2"));
        assert!(!dump.contains("dur"), "canonical dump carries no timing");
        flight_uninstall().unwrap();
    }

    #[test]
    fn trigger_prepends_header_and_remembers_dump() {
        let _serial = crate::serial_guard();
        flight_install(64, None).unwrap();
        note_counter("service.view_failures", 1);
        flight_trigger("view-failed", "delete-relation \"R\"", "Tour-Catalog");
        let dump = flight_last_dump().unwrap();
        let header = dump.lines().next().unwrap();
        json::validate(header).unwrap();
        assert!(header.starts_with("{\"type\":\"flight-dump\",\"reason\":\"view-failed\""));
        assert!(header.contains("\"events\":1"));
        assert!(header.contains("\"dropped\":0"));
        assert!(dump.contains("\"name\":\"service.view_failures\""));
        flight_uninstall().unwrap();
    }

    #[test]
    fn disabled_recorder_is_inert() {
        let _serial = crate::serial_guard();
        assert!(!flight_enabled());
        note_counter("c", 1);
        flight_fault("s", "x", 0, "panic");
        flight_trigger("r", "c", "v");
        assert!(flight_dump().is_none());
        assert!(flight_last_dump().is_none());
        assert!(flight_stats().is_none());
        assert!(flight_uninstall().is_none());
    }

    #[test]
    fn fresh_install_discards_previous_generation() {
        let _serial = crate::serial_guard();
        flight_install(8, None).unwrap();
        note_counter("old", 1);
        flight_uninstall().unwrap();
        flight_install(8, None).unwrap();
        note_counter("new", 1);
        let dump = flight_dump().unwrap();
        assert!(dump.contains("\"name\":\"new\""));
        assert!(!dump.contains("\"name\":\"old\""));
        flight_uninstall().unwrap();
    }
}
