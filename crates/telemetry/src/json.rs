//! Minimal JSON helpers for the JSONL sink: a string escaper for the
//! hand-rolled encoder and a strict validating parser used by tests and
//! CI smoke checks. No serde in the vendored workspace.

/// Escape `s` for inclusion inside a JSON string literal.
pub fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Validate that `line` is exactly one well-formed JSON value (with
/// optional surrounding whitespace). Returns a byte offset + message on
/// the first error.
pub fn validate(line: &str) -> Result<(), String> {
    let bytes = line.as_bytes();
    let mut pos = 0usize;
    skip_ws(bytes, &mut pos);
    value(bytes, &mut pos)?;
    skip_ws(bytes, &mut pos);
    if pos != bytes.len() {
        return Err(format!("trailing data at byte {pos}"));
    }
    Ok(())
}

fn skip_ws(b: &[u8], pos: &mut usize) {
    while *pos < b.len() && matches!(b[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn err(pos: usize, what: &str) -> String {
    format!("{what} at byte {pos}")
}

fn value(b: &[u8], pos: &mut usize) -> Result<(), String> {
    match b.get(*pos) {
        Some(b'{') => object(b, pos),
        Some(b'[') => array(b, pos),
        Some(b'"') => string(b, pos),
        Some(b't') => literal(b, pos, b"true"),
        Some(b'f') => literal(b, pos, b"false"),
        Some(b'n') => literal(b, pos, b"null"),
        Some(c) if c.is_ascii_digit() || *c == b'-' => number(b, pos),
        _ => Err(err(*pos, "expected a JSON value")),
    }
}

fn literal(b: &[u8], pos: &mut usize, lit: &[u8]) -> Result<(), String> {
    if b[*pos..].starts_with(lit) {
        *pos += lit.len();
        Ok(())
    } else {
        Err(err(*pos, "malformed literal"))
    }
}

fn object(b: &[u8], pos: &mut usize) -> Result<(), String> {
    *pos += 1; // '{'
    skip_ws(b, pos);
    if b.get(*pos) == Some(&b'}') {
        *pos += 1;
        return Ok(());
    }
    loop {
        skip_ws(b, pos);
        string(b, pos)?;
        skip_ws(b, pos);
        if b.get(*pos) != Some(&b':') {
            return Err(err(*pos, "expected ':' in object"));
        }
        *pos += 1;
        skip_ws(b, pos);
        value(b, pos)?;
        skip_ws(b, pos);
        match b.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b'}') => {
                *pos += 1;
                return Ok(());
            }
            _ => return Err(err(*pos, "expected ',' or '}' in object")),
        }
    }
}

fn array(b: &[u8], pos: &mut usize) -> Result<(), String> {
    *pos += 1; // '['
    skip_ws(b, pos);
    if b.get(*pos) == Some(&b']') {
        *pos += 1;
        return Ok(());
    }
    loop {
        skip_ws(b, pos);
        value(b, pos)?;
        skip_ws(b, pos);
        match b.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b']') => {
                *pos += 1;
                return Ok(());
            }
            _ => return Err(err(*pos, "expected ',' or ']' in array")),
        }
    }
}

fn string(b: &[u8], pos: &mut usize) -> Result<(), String> {
    if b.get(*pos) != Some(&b'"') {
        return Err(err(*pos, "expected '\"'"));
    }
    *pos += 1;
    while let Some(&c) = b.get(*pos) {
        match c {
            b'"' => {
                *pos += 1;
                return Ok(());
            }
            b'\\' => {
                *pos += 1;
                match b.get(*pos) {
                    Some(b'"' | b'\\' | b'/' | b'b' | b'f' | b'n' | b'r' | b't') => *pos += 1,
                    Some(b'u') => {
                        *pos += 1;
                        for _ in 0..4 {
                            match b.get(*pos) {
                                Some(h) if h.is_ascii_hexdigit() => *pos += 1,
                                _ => return Err(err(*pos, "bad \\u escape")),
                            }
                        }
                    }
                    _ => return Err(err(*pos, "bad escape")),
                }
            }
            0x00..=0x1f => return Err(err(*pos, "raw control character in string")),
            _ => *pos += 1,
        }
    }
    Err(err(*pos, "unterminated string"))
}

fn number(b: &[u8], pos: &mut usize) -> Result<(), String> {
    let start = *pos;
    if b.get(*pos) == Some(&b'-') {
        *pos += 1;
    }
    let mut digits = 0;
    while matches!(b.get(*pos), Some(c) if c.is_ascii_digit()) {
        *pos += 1;
        digits += 1;
    }
    if digits == 0 {
        return Err(err(start, "malformed number"));
    }
    if b.get(*pos) == Some(&b'.') {
        *pos += 1;
        let mut frac = 0;
        while matches!(b.get(*pos), Some(c) if c.is_ascii_digit()) {
            *pos += 1;
            frac += 1;
        }
        if frac == 0 {
            return Err(err(*pos, "malformed fraction"));
        }
    }
    if matches!(b.get(*pos), Some(b'e' | b'E')) {
        *pos += 1;
        if matches!(b.get(*pos), Some(b'+' | b'-')) {
            *pos += 1;
        }
        let mut exp = 0;
        while matches!(b.get(*pos), Some(c) if c.is_ascii_digit()) {
            *pos += 1;
            exp += 1;
        }
        if exp == 0 {
            return Err(err(*pos, "malformed exponent"));
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn escape_round_trip_is_valid() {
        let nasty = "a\"b\\c\nd\te\u{1}f";
        let line = format!("{{\"k\":\"{}\"}}", escape(nasty));
        validate(&line).unwrap();
    }

    #[test]
    fn accepts_well_formed_lines() {
        for ok in [
            "{}",
            "[]",
            "null",
            "-12.5e+3",
            r#"{"type":"span","parent":null,"fields":{"a":1},"xs":[1,2,3],"ok":true}"#,
            r#"  "str"  "#,
        ] {
            validate(ok).unwrap_or_else(|e| panic!("{ok}: {e}"));
        }
    }

    #[test]
    fn rejects_malformed_lines() {
        for bad in [
            "",
            "{",
            "{\"a\":}",
            "{\"a\":1,}",
            "[1,]",
            "tru",
            "01x",
            "\"unterminated",
            "\"bad \u{1} control\"",
            "{} trailing",
            "1.",
            "1e",
        ] {
            assert!(validate(bad).is_err(), "accepted {bad:?}");
        }
    }
}
