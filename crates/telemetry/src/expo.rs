//! Metrics exposition: render the live registry as Prometheus text
//! (version 0.0.4) and a [`MetricsSnapshot`] as one JSON document.
//!
//! Hand-rolled like everything else in this crate — the workspace has
//! no route to crates.io, so there is no prometheus client library to
//! lean on. The text format is small enough to emit directly:
//!
//! * counters become `eve_<name>_total` with `# TYPE ... counter`;
//! * gauges become `eve_<name>` with `# TYPE ... gauge`;
//! * histograms become cumulative `_bucket{le="..."}` series over the
//!   power-of-two bucket bounds (clipped to the highest occupied
//!   bucket, then `+Inf`), plus `_sum` and `_count`; the registry's
//!   bucket-bound quantile estimates ride along as `_p50` / `_p95`
//!   gauges since one metric name cannot be both histogram and
//!   summary.
//!
//! Metric names are sanitised to `[a-zA-Z0-9_]` (dots and dashes map
//! to `_`) and prefixed `eve_`; histogram names get a `_ns` unit
//! suffix unless they already carry one.

use crate::{bucket_bound, json, HistogramSummary, MetricsSnapshot};

/// `sync.views_active` → `eve_sync_views_active`.
fn sanitize(name: &str) -> String {
    let mut out = String::with_capacity(name.len() + 4);
    out.push_str("eve_");
    for ch in name.chars() {
        if ch.is_ascii_alphanumeric() {
            out.push(ch);
        } else {
            out.push('_');
        }
    }
    out
}

fn histogram_base(name: &str) -> String {
    let base = sanitize(name);
    if base.ends_with("_ns") {
        base
    } else {
        format!("{base}_ns")
    }
}

/// Render the installed pipeline's registry as Prometheus text
/// exposition format. `None` when no pipeline is installed.
pub fn prometheus_text() -> Option<String> {
    let inner = super::current_inner()?;
    let mut out = String::new();
    for (name, value) in inner.registry.counter_values() {
        let p = sanitize(&name);
        out.push_str(&format!("# TYPE {p}_total counter\n{p}_total {value}\n"));
    }
    for (name, value) in inner.registry.gauge_values() {
        let p = sanitize(&name);
        out.push_str(&format!("# TYPE {p} gauge\n{p} {value}\n"));
    }
    for (name, hist) in inner.registry.histogram_handles() {
        let p = histogram_base(&name);
        let counts = hist.bucket_counts();
        let total: u64 = counts.iter().sum();
        let top = counts.iter().rposition(|&c| c > 0).unwrap_or(0);
        out.push_str(&format!("# TYPE {p} histogram\n"));
        let mut cumulative = 0u64;
        for (i, &c) in counts.iter().enumerate().take(top + 1) {
            cumulative += c;
            out.push_str(&format!(
                "{p}_bucket{{le=\"{}\"}} {cumulative}\n",
                bucket_bound(i)
            ));
        }
        out.push_str(&format!("{p}_bucket{{le=\"+Inf\"}} {total}\n"));
        out.push_str(&format!("{p}_sum {}\n", hist.sum_ns()));
        out.push_str(&format!("{p}_count {total}\n"));
        let summary = hist.summary();
        out.push_str(&format!(
            "# TYPE {p}_p50 gauge\n{p}_p50 {}\n# TYPE {p}_p95 gauge\n{p}_p95 {}\n",
            summary.p50_ns, summary.p95_ns
        ));
    }
    Some(out)
}

fn histogram_json(h: &HistogramSummary) -> String {
    format!(
        "{{\"count\":{},\"sum_ns\":{},\"p50_ns\":{},\"p95_ns\":{},\"max_ns\":{}}}",
        h.count, h.sum_ns, h.p50_ns, h.p95_ns, h.max_ns
    )
}

/// Render a [`MetricsSnapshot`] as one JSON document with `counters`,
/// `gauges`, and `histograms` objects (names unsanitised — this is the
/// machine-readable registry dump, not the Prometheus surface).
pub fn snapshot_json(snapshot: &MetricsSnapshot) -> String {
    let mut out = String::from("{\"counters\":{");
    for (i, (name, value)) in snapshot.counters.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!("\"{}\":{value}", json::escape(name)));
    }
    out.push_str("},\"gauges\":{");
    for (i, (name, value)) in snapshot.gauges.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!("\"{}\":{value}", json::escape(name)));
    }
    out.push_str("},\"histograms\":{");
    for (i, (name, h)) in snapshot.histograms.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!("\"{}\":{}", json::escape(name), histogram_json(h)));
    }
    out.push_str("}}");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sanitize_prefixes_and_maps_punctuation() {
        assert_eq!(sanitize("sync.views_active"), "eve_sync_views_active");
        assert_eq!(sanitize("span.view-sync"), "eve_span_view_sync");
        assert_eq!(histogram_base("span.apply"), "eve_span_apply_ns");
        assert_eq!(
            histogram_base("service.read_wait_ns"),
            "eve_service_read_wait_ns"
        );
    }

    #[test]
    fn prometheus_text_requires_a_pipeline() {
        let _serial = crate::serial_guard();
        assert!(prometheus_text().is_none());
    }

    #[test]
    fn prometheus_text_renders_all_families() {
        let _serial = crate::serial_guard();
        crate::install(vec![]).unwrap();
        crate::counter_add("sync.changes", 3);
        crate::gauge_set("sync.views_active", 7);
        crate::record_duration_ns("engine.view_sync_ns", 0);
        crate::record_duration_ns("engine.view_sync_ns", 5);
        crate::record_duration_ns("engine.view_sync_ns", 1024);
        let text = prometheus_text().unwrap();
        crate::uninstall().unwrap();

        assert!(text.contains("# TYPE eve_sync_changes_total counter\n"));
        assert!(text.contains("eve_sync_changes_total 3\n"));
        assert!(text.contains("# TYPE eve_sync_views_active gauge\n"));
        assert!(text.contains("eve_sync_views_active 7\n"));
        assert!(text.contains("# TYPE eve_engine_view_sync_ns histogram\n"));
        // cumulative buckets: zeros bucket, then [4,7] covers 5, then 1024
        assert!(text.contains("eve_engine_view_sync_ns_bucket{le=\"0\"} 1\n"));
        assert!(text.contains("eve_engine_view_sync_ns_bucket{le=\"7\"} 2\n"));
        assert!(text.contains("eve_engine_view_sync_ns_bucket{le=\"+Inf\"} 3\n"));
        assert!(text.contains("eve_engine_view_sync_ns_sum 1029\n"));
        assert!(text.contains("eve_engine_view_sync_ns_count 3\n"));
        assert!(text.contains("# TYPE eve_engine_view_sync_ns_p50 gauge\n"));

        // every non-comment line is `name{labels}? value`
        for line in text.lines() {
            if line.starts_with('#') {
                continue;
            }
            let (name, value) = line.split_once(' ').unwrap_or_else(|| panic!("{line}"));
            assert!(!name.is_empty() && value.parse::<f64>().is_ok(), "{line}");
        }
    }

    #[test]
    fn snapshot_json_is_valid_and_complete() {
        let _serial = crate::serial_guard();
        crate::install(vec![]).unwrap();
        crate::counter_add("sync.changes", 1);
        crate::gauge_set("sync.views_active", 2);
        crate::record_duration_ns("h", 9);
        let snap = crate::uninstall().unwrap();
        let doc = snapshot_json(&snap);
        json::validate(&doc).unwrap_or_else(|e| panic!("bad snapshot json: {e}\n{doc}"));
        assert!(doc.contains("\"counters\":{\"sync.changes\":1}"));
        assert!(doc.contains("\"gauges\":{\"sync.views_active\":2}"));
        assert!(doc.contains("\"histograms\":{\"h\":{\"count\":1"));
    }

    #[test]
    fn empty_snapshot_renders_empty_objects() {
        let doc = snapshot_json(&MetricsSnapshot::default());
        assert_eq!(doc, "{\"counters\":{},\"gauges\":{},\"histograms\":{}}");
        json::validate(&doc).unwrap();
    }
}
