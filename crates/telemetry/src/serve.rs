//! Minimal std-only HTTP/1.1 server exposing the metrics registry —
//! the first externally visible surface on the road to `eve-serve`.
//!
//! Three read-only routes:
//!
//! * `GET /metrics`  — Prometheus text exposition ([`crate::expo::prometheus_text`]);
//! * `GET /snapshot` — JSON registry dump ([`crate::expo::snapshot_json`]);
//! * `GET /health`   — liveness probe, always `200 ok`.
//!
//! One connection is served at a time (`Connection: close`, explicit
//! `Content-Length`); a scrape endpoint for one process needs nothing
//! more, and a blocking accept loop keeps the server free of threads
//! and dependencies. Malformed or oversized requests get `400`; when
//! no telemetry pipeline is installed the data routes answer `503` so
//! a scraper can tell "no data yet" from "empty registry".

use std::io::{Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::time::Duration;

use crate::expo;

/// Largest request head we accept before answering `400`.
const MAX_REQUEST_BYTES: usize = 8 * 1024;

/// A bound metrics endpoint; serve requests with [`handle_one`]
/// (`MetricsServer::handle_one`) or loop forever with `serve`.
pub struct MetricsServer {
    listener: TcpListener,
}

impl MetricsServer {
    /// Bind `addr` (e.g. `127.0.0.1:9187`; port `0` picks a free one).
    pub fn bind(addr: impl ToSocketAddrs) -> std::io::Result<MetricsServer> {
        Ok(MetricsServer {
            listener: TcpListener::bind(addr)?,
        })
    }

    /// The address actually bound (resolves port `0`).
    pub fn local_addr(&self) -> std::io::Result<SocketAddr> {
        self.listener.local_addr()
    }

    /// Accept one connection, answer one request, close.
    pub fn handle_one(&self) -> std::io::Result<()> {
        let (stream, _) = self.listener.accept()?;
        handle(stream)
    }

    /// Serve requests until accepting or answering fails fatally.
    /// Per-connection I/O errors are reported and survived.
    pub fn serve(&self) -> std::io::Result<()> {
        loop {
            if let Err(e) = self.handle_one() {
                eprintln!("eve-telemetry: metrics connection error: {e}");
            }
        }
    }
}

fn handle(mut stream: TcpStream) -> std::io::Result<()> {
    stream.set_read_timeout(Some(Duration::from_secs(5)))?;
    stream.set_write_timeout(Some(Duration::from_secs(5)))?;
    let mut head = Vec::with_capacity(512);
    let mut buf = [0u8; 512];
    // read until the end of the request head (we ignore any body)
    while !head.windows(4).any(|w| w == b"\r\n\r\n") {
        if head.len() > MAX_REQUEST_BYTES {
            return respond(&mut stream, 400, "text/plain", "request too large\n");
        }
        match stream.read(&mut buf) {
            Ok(0) => break,
            Ok(n) => head.extend_from_slice(&buf[..n]),
            Err(e) => {
                let _ = respond(&mut stream, 400, "text/plain", "read error\n");
                return Err(e);
            }
        }
    }
    let request_line = String::from_utf8_lossy(&head);
    let request_line = request_line.lines().next().unwrap_or("");
    let mut parts = request_line.split_whitespace();
    let (method, path) = match (parts.next(), parts.next()) {
        (Some(m), Some(p)) => (m, p),
        _ => return respond(&mut stream, 400, "text/plain", "malformed request\n"),
    };
    if method != "GET" {
        return respond(&mut stream, 405, "text/plain", "only GET is supported\n");
    }
    let path = path.split('?').next().unwrap_or(path);
    match path {
        "/health" => respond(&mut stream, 200, "text/plain; charset=utf-8", "ok\n"),
        "/metrics" => match expo::prometheus_text() {
            Some(body) => respond(
                &mut stream,
                200,
                "text/plain; version=0.0.4; charset=utf-8",
                &body,
            ),
            None => respond(
                &mut stream,
                503,
                "text/plain",
                "no telemetry pipeline installed\n",
            ),
        },
        "/snapshot" => match crate::metrics_snapshot() {
            Some(snap) => respond(
                &mut stream,
                200,
                "application/json",
                &expo::snapshot_json(&snap),
            ),
            None => respond(
                &mut stream,
                503,
                "text/plain",
                "no telemetry pipeline installed\n",
            ),
        },
        _ => respond(&mut stream, 404, "text/plain", "not found\n"),
    }
}

fn respond(
    stream: &mut TcpStream,
    status: u16,
    content_type: &str,
    body: &str,
) -> std::io::Result<()> {
    let reason = match status {
        200 => "OK",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        503 => "Service Unavailable",
        _ => "Error",
    };
    write!(
        stream,
        "HTTP/1.1 {status} {reason}\r\nContent-Type: {content_type}\r\n\
         Content-Length: {}\r\nConnection: close\r\n\r\n{body}",
        body.len()
    )?;
    stream.flush()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn request(addr: SocketAddr, raw: &str) -> String {
        let mut stream = TcpStream::connect(addr).unwrap();
        stream.write_all(raw.as_bytes()).unwrap();
        let mut response = String::new();
        stream.read_to_string(&mut response).unwrap();
        response
    }

    fn get(addr: SocketAddr, path: &str) -> String {
        request(
            addr,
            &format!("GET {path} HTTP/1.1\r\nHost: localhost\r\n\r\n"),
        )
    }

    #[test]
    fn serves_health_metrics_and_snapshot() {
        let _serial = crate::serial_guard();
        crate::install(vec![]).unwrap();
        crate::counter_add("sync.changes", 2);
        crate::gauge_set("sync.views_active", 4);
        crate::record_duration_ns("h", 10);

        let server = MetricsServer::bind("127.0.0.1:0").unwrap();
        let addr = server.local_addr().unwrap();
        let handle = std::thread::spawn(move || {
            for _ in 0..5 {
                server.handle_one().unwrap();
            }
        });

        let health = get(addr, "/health");
        assert!(health.starts_with("HTTP/1.1 200 OK\r\n"), "{health}");
        assert!(health.ends_with("ok\n"));

        let metrics = get(addr, "/metrics");
        assert!(metrics.starts_with("HTTP/1.1 200 OK\r\n"));
        assert!(metrics.contains("version=0.0.4"));
        assert!(metrics.contains("eve_sync_changes_total 2\n"));
        assert!(metrics.contains("eve_sync_views_active 4\n"));
        let body_len = metrics.split("\r\n\r\n").nth(1).unwrap().len();
        let declared: usize = metrics
            .lines()
            .find(|l| l.starts_with("Content-Length: "))
            .and_then(|l| l.trim_start_matches("Content-Length: ").parse().ok())
            .unwrap();
        assert_eq!(body_len, declared);

        let snapshot = get(addr, "/snapshot");
        assert!(snapshot.starts_with("HTTP/1.1 200 OK\r\n"));
        assert!(snapshot.contains("application/json"));
        let body = snapshot.split("\r\n\r\n").nth(1).unwrap();
        crate::json::validate(body).unwrap();

        assert!(get(addr, "/nope").starts_with("HTTP/1.1 404"));
        assert!(request(addr, "POST /metrics HTTP/1.1\r\n\r\n").starts_with("HTTP/1.1 405"));

        handle.join().unwrap();
        crate::uninstall().unwrap();
    }

    #[test]
    fn data_routes_answer_503_without_a_pipeline() {
        let _serial = crate::serial_guard();
        let server = MetricsServer::bind("127.0.0.1:0").unwrap();
        let addr = server.local_addr().unwrap();
        let handle = std::thread::spawn(move || {
            for _ in 0..2 {
                server.handle_one().unwrap();
            }
        });
        assert!(get(addr, "/metrics").starts_with("HTTP/1.1 503"));
        assert!(get(addr, "/snapshot").starts_with("HTTP/1.1 503"));
        handle.join().unwrap();
    }
}
