//! Errors for MKB construction, validation and evolution.

use eve_relational::{AttrRef, RelName};
use std::fmt;

/// Errors raised by MKB operations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MisdError {
    /// A relation with the same name already exists.
    DuplicateRelation(RelName),
    /// A constraint id is already in use.
    DuplicateConstraintId(String),
    /// A constraint or change referenced an unknown relation.
    UnknownRelation(RelName),
    /// A constraint or change referenced an unknown attribute.
    UnknownAttribute(AttrRef),
    /// A join constraint's predicate mentions a relation other than its
    /// two endpoints.
    ForeignAttrInJoin {
        /// The join constraint id.
        id: String,
        /// The offending attribute.
        attr: AttrRef,
    },
    /// A function-of expression draws from more than one source relation.
    MultiSourceFunctionOf(String),
    /// The two sides of a PC constraint project different numbers of
    /// attributes.
    PcArityMismatch(String),
    /// A rename's new name collides with an existing one.
    NameCollision(String),
    /// Textual-format parse error.
    Parse(eve_esql::ParseError),
}

impl fmt::Display for MisdError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MisdError::DuplicateRelation(r) => write!(f, "relation {r} already described"),
            MisdError::DuplicateConstraintId(id) => {
                write!(f, "constraint id {id} already in use")
            }
            MisdError::UnknownRelation(r) => write!(f, "unknown relation {r}"),
            MisdError::UnknownAttribute(a) => write!(f, "unknown attribute {a}"),
            MisdError::ForeignAttrInJoin { id, attr } => write!(
                f,
                "join constraint {id} references {attr}, which belongs to neither endpoint"
            ),
            MisdError::MultiSourceFunctionOf(id) => write!(
                f,
                "function-of constraint {id} draws from more than one source relation"
            ),
            MisdError::PcArityMismatch(id) => {
                write!(
                    f,
                    "PC constraint {id} projects different arities on its sides"
                )
            }
            MisdError::NameCollision(n) => write!(f, "name {n} already in use"),
            MisdError::Parse(e) => write!(f, "MISD parse error: {e}"),
        }
    }
}

impl std::error::Error for MisdError {}

impl From<eve_esql::ParseError> for MisdError {
    fn from(e: eve_esql::ParseError) -> Self {
        MisdError::Parse(e)
    }
}
