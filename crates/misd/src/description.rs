//! Relation descriptions exported by information sources.

use eve_relational::{AttrName, AttrRef, AttributeDef, DataType, RelName, Schema};
use std::fmt;

/// Query capabilities an IS advertises for a relation (§2 mentions
/// capability descriptions; the paper's algorithms only require knowing
/// the relation is queryable, so these default to fully capable).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Capabilities {
    /// Can the IS apply selection predicates?
    pub selection: bool,
    /// Can the IS project a subset of attributes?
    pub projection: bool,
    /// Can the IS join this relation with others it exports?
    pub join: bool,
}

impl Default for Capabilities {
    fn default() -> Self {
        Capabilities {
            selection: true,
            projection: true,
            join: true,
        }
    }
}

/// The description of one exported relation `IS.R(A_1, …, A_n)`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RelationDescription {
    /// The exporting information source (e.g. `IS1`).
    pub source: String,
    /// Relation name (globally unique across the information space).
    pub name: RelName,
    /// Attributes with their types (the `TC` constraints of Fig. 1).
    pub attrs: Vec<AttributeDef>,
    /// Advertised query capabilities.
    pub capabilities: Capabilities,
}

impl RelationDescription {
    /// Create a description.
    pub fn new(
        source: impl Into<String>,
        name: impl Into<RelName>,
        attrs: Vec<AttributeDef>,
    ) -> Self {
        RelationDescription {
            source: source.into(),
            name: name.into(),
            attrs,
            capabilities: Capabilities::default(),
        }
    }

    /// Does the relation export attribute `attr`?
    pub fn has_attr(&self, attr: &AttrName) -> bool {
        self.attrs.iter().any(|a| &a.name == attr)
    }

    /// Declared type of an attribute.
    pub fn type_of(&self, attr: &AttrName) -> Option<DataType> {
        self.attrs.iter().find(|a| &a.name == attr).map(|a| a.ty)
    }

    /// Qualified references to all attributes.
    pub fn attr_refs(&self) -> Vec<AttrRef> {
        self.attrs
            .iter()
            .map(|a| AttrRef::new(self.name.clone(), a.name.clone()))
            .collect()
    }

    /// The relation's schema (qualified, typed columns).
    pub fn schema(&self) -> Schema {
        Schema::of_relation(&self.name, &self.attrs)
    }

    /// Remove an attribute; returns whether it existed.
    pub fn remove_attr(&mut self, attr: &AttrName) -> bool {
        let before = self.attrs.len();
        self.attrs.retain(|a| &a.name != attr);
        self.attrs.len() != before
    }

    /// Rename an attribute; returns whether it existed.
    pub fn rename_attr(&mut self, from: &AttrName, to: AttrName) -> bool {
        for a in &mut self.attrs {
            if &a.name == from {
                a.name = to;
                return true;
            }
        }
        false
    }
}

impl fmt::Display for RelationDescription {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "RELATION {} {}(", self.source, self.name)?;
        for (i, a) in self.attrs.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{}: {}", a.name, a.ty)?;
        }
        write!(f, ")")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn desc() -> RelationDescription {
        RelationDescription::new(
            "IS1",
            "Customer",
            vec![
                AttributeDef::new("Name", DataType::Str),
                AttributeDef::new("Age", DataType::Int),
            ],
        )
    }

    #[test]
    fn lookups() {
        let d = desc();
        assert!(d.has_attr(&AttrName::new("Name")));
        assert_eq!(d.type_of(&AttrName::new("Age")), Some(DataType::Int));
        assert_eq!(d.type_of(&AttrName::new("Nope")), None);
        assert_eq!(d.attr_refs().len(), 2);
        assert_eq!(d.schema().arity(), 2);
    }

    #[test]
    fn remove_and_rename() {
        let mut d = desc();
        assert!(d.rename_attr(&AttrName::new("Name"), AttrName::new("FullName")));
        assert!(d.has_attr(&AttrName::new("FullName")));
        assert!(!d.rename_attr(&AttrName::new("Gone"), AttrName::new("X")));
        assert!(d.remove_attr(&AttrName::new("Age")));
        assert!(!d.remove_attr(&AttrName::new("Age")));
        assert_eq!(d.attrs.len(), 1);
    }

    #[test]
    fn display() {
        assert_eq!(
            desc().to_string(),
            "RELATION IS1 Customer(Name: str, Age: int)"
        );
    }
}
