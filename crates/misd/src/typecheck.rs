//! Semantic (type-level) checking of MKB constraints and of views
//! against an MKB.
//!
//! Structural validity (referenced relations/attributes exist, arities
//! match) is enforced at insertion by [`crate::mkb::MetaKnowledgeBase`];
//! this module adds the *type* dimension of the `TC` constraints:
//!
//! * join-constraint predicates compare compatible types;
//! * function-of constraints define an attribute by an expression of a
//!   compatible type (the paper's "if two attributes are exported with
//!   the same name, they are assumed to have the same type" generalises
//!   to explicit compatibility here);
//! * partial/complete constraints project position-wise compatible
//!   attribute lists;
//! * an E-SQL view's expressions and conditions type-check against the
//!   MKB's declared domains.

use crate::mkb::MetaKnowledgeBase;
use eve_esql::ViewDefinition;
use eve_relational::typecheck::{check_clause, comparable, infer_type, TypeError};
use eve_relational::{AttrRef, DataType};

fn resolver(mkb: &MetaKnowledgeBase) -> impl Fn(&AttrRef) -> Option<DataType> + '_ {
    move |attr: &AttrRef| {
        mkb.relation(&attr.relation)
            .and_then(|r| r.type_of(&attr.attr))
    }
}

/// Type-check every constraint of the MKB, returning all violations.
pub fn check_mkb(mkb: &MetaKnowledgeBase) -> Vec<TypeError> {
    let resolve = resolver(mkb);
    let mut errors = Vec::new();

    for jc in mkb.joins() {
        for clause in jc.predicate.clauses() {
            if let Err(e) = check_clause(clause, &resolve) {
                errors.push(e);
            }
        }
    }

    for f in mkb.function_ofs() {
        let target_ty = resolve(&f.target);
        match infer_type(&f.expr, &resolve) {
            Err(e) => errors.push(e),
            Ok(Some(expr_ty)) => {
                if let Some(t) = target_ty {
                    if !comparable(t, expr_ty) {
                        errors.push(TypeError::Incomparable {
                            clause: format!("{} = {}", f.target, f.expr),
                            lhs: t,
                            rhs: expr_ty,
                        });
                    }
                }
            }
            Ok(None) => {}
        }
    }

    for pc in mkb.pcs() {
        for (l, r) in pc.left.attr_refs().iter().zip(pc.right.attr_refs()) {
            if let (Some(a), Some(b)) = (resolve(l), resolve(&r)) {
                if !comparable(a, b) {
                    errors.push(TypeError::Incomparable {
                        clause: format!("{}: {l} vs {r}", pc.id),
                        lhs: a,
                        rhs: b,
                    });
                }
            }
        }
        for side in [&pc.left, &pc.right] {
            for clause in side.cond.clauses() {
                if let Err(e) = check_clause(clause, &resolve) {
                    errors.push(e);
                }
            }
        }
    }

    errors
}

/// Type-check a view against the MKB: every referenced attribute must
/// resolve, every SELECT expression must type, every condition must
/// compare compatible types.
pub fn check_view(view: &ViewDefinition, mkb: &MetaKnowledgeBase) -> Vec<TypeError> {
    let resolve = resolver(mkb);
    let mut errors = Vec::new();
    for item in &view.select {
        if let Err(e) = infer_type(&item.expr, &resolve) {
            errors.push(e);
        }
    }
    for cond in &view.conditions {
        if let Err(e) = check_clause(&cond.clause, &resolve) {
            errors.push(e);
        }
    }
    errors
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::text::parse_misd;
    use eve_esql::parse_view;

    fn mkb() -> MetaKnowledgeBase {
        parse_misd(
            "RELATION IS1 Customer(Name str, Age int)
             RELATION IS5 Accident-Ins(Holder str, Birthday date)
             JOIN JC2: Customer, Accident-Ins ON
                Customer.Name = Accident-Ins.Holder AND Customer.Age > 1
             FUNCOF F3: Customer.Age = (today() - Accident-Ins.Birthday) / 365",
        )
        .unwrap()
    }

    #[test]
    fn fig2_constraints_typecheck() {
        assert!(check_mkb(&mkb()).is_empty());
    }

    #[test]
    fn ill_typed_join_detected() {
        let bad = parse_misd(
            "RELATION IS1 A(name str)
             RELATION IS2 B(num int)
             JOIN J1: A, B ON A.name = B.num",
        )
        .unwrap();
        let errs = check_mkb(&bad);
        assert_eq!(errs.len(), 1);
        assert!(matches!(errs[0], TypeError::Incomparable { .. }));
    }

    #[test]
    fn ill_typed_funcof_detected() {
        let bad = parse_misd(
            "RELATION IS1 A(name str)
             RELATION IS2 B(num int)
             FUNCOF F1: A.name = B.num + 1",
        )
        .unwrap();
        let errs = check_mkb(&bad);
        assert!(errs
            .iter()
            .any(|e| matches!(e, TypeError::Incomparable { .. })));
    }

    #[test]
    fn ill_typed_pc_detected() {
        let bad = parse_misd(
            "RELATION IS1 A(name str)
             RELATION IS2 B(num int)
             PC P1: A(name) subset B(num)",
        )
        .unwrap();
        assert_eq!(check_mkb(&bad).len(), 1);
    }

    #[test]
    fn view_against_mkb() {
        let m = mkb();
        let ok = parse_view(
            "CREATE VIEW V AS SELECT C.Name, C.Age FROM Customer C
             WHERE (C.Age > 18) AND (C.Name = 'ann')",
        )
        .unwrap();
        assert!(check_view(&ok, &m).is_empty());

        let bad =
            parse_view("CREATE VIEW V AS SELECT C.Name + 1 FROM Customer C WHERE C.Age = 'old'")
                .unwrap();
        let errs = check_view(&bad, &m);
        assert_eq!(errs.len(), 2, "{errs:?}");
    }

    #[test]
    fn unknown_attr_in_view_detected() {
        let m = mkb();
        let v = parse_view("CREATE VIEW V AS SELECT C.Ghost FROM Customer C").unwrap();
        let errs = check_view(&v, &m);
        assert!(matches!(errs[0], TypeError::UnknownAttribute(_)));
    }
}
