//! The meta knowledge base (MKB).
//!
//! "Descriptions of ISs expressed in this language are maintained in a
//! meta-knowledge base (MKB), thus making a wide range of resources
//! available to the view synchronizer during the view evolution process."
//! (§1 of the paper.)
//!
//! Constraints are validated eagerly at insertion: endpoints must be
//! described, predicates may only mention endpoint attributes, function-of
//! expressions must draw from a single source relation, PC sides must
//! project equal arities. An MKB accepted by these checks is internally
//! consistent, which the CVS algorithm relies on.

use crate::constraint::{FunctionOf, JoinConstraint, OrderIntegrity, PartialComplete};
use crate::description::RelationDescription;
use crate::error::MisdError;
use eve_relational::{AttrRef, RelName};
use std::collections::BTreeMap;
use std::fmt;

/// The meta knowledge base: relation descriptions plus semantic
/// constraints.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct MetaKnowledgeBase {
    relations: BTreeMap<RelName, RelationDescription>,
    joins: Vec<JoinConstraint>,
    funcofs: Vec<FunctionOf>,
    pcs: Vec<PartialComplete>,
    orders: Vec<OrderIntegrity>,
}

impl MetaKnowledgeBase {
    /// Empty MKB.
    pub fn new() -> Self {
        Self::default()
    }

    // ------------------------------------------------------------------
    // insertion (validated)
    // ------------------------------------------------------------------

    /// Describe a new relation. Errors when a relation with the same name
    /// is already described.
    pub fn add_relation(&mut self, desc: RelationDescription) -> Result<(), MisdError> {
        if self.relations.contains_key(&desc.name) {
            return Err(MisdError::DuplicateRelation(desc.name));
        }
        self.relations.insert(desc.name.clone(), desc);
        Ok(())
    }

    /// Check an attribute reference resolves against the described
    /// relations.
    pub fn check_attr(&self, attr: &AttrRef) -> Result<(), MisdError> {
        let rel = self
            .relations
            .get(&attr.relation)
            .ok_or_else(|| MisdError::UnknownRelation(attr.relation.clone()))?;
        if !rel.has_attr(&attr.attr) {
            return Err(MisdError::UnknownAttribute(attr.clone()));
        }
        Ok(())
    }

    fn check_constraint_id(&self, id: &str) -> Result<(), MisdError> {
        let used = self.joins.iter().any(|j| j.id == id)
            || self.funcofs.iter().any(|f| f.id == id)
            || self.pcs.iter().any(|p| p.id == id);
        if used {
            Err(MisdError::DuplicateConstraintId(id.to_string()))
        } else {
            Ok(())
        }
    }

    /// Add a join constraint. Endpoints must be described and the
    /// predicate may only reference endpoint attributes.
    pub fn add_join(&mut self, jc: JoinConstraint) -> Result<(), MisdError> {
        self.check_constraint_id(&jc.id)?;
        for r in [&jc.left, &jc.right] {
            if !self.relations.contains_key(r) {
                return Err(MisdError::UnknownRelation(r.clone()));
            }
        }
        for attr in jc.attrs() {
            if attr.relation != jc.left && attr.relation != jc.right {
                return Err(MisdError::ForeignAttrInJoin {
                    id: jc.id.clone(),
                    attr,
                });
            }
            self.check_attr(&attr)?;
        }
        self.joins.push(jc);
        Ok(())
    }

    /// Add a function-of constraint. The target and all source attributes
    /// must exist, and the expression must draw from exactly one source
    /// relation (or be constant).
    pub fn add_function_of(&mut self, f: FunctionOf) -> Result<(), MisdError> {
        self.check_constraint_id(&f.id)?;
        self.check_attr(&f.target)?;
        let sources = f.expr.relations();
        if sources.len() > 1 {
            return Err(MisdError::MultiSourceFunctionOf(f.id.clone()));
        }
        for attr in f.source_attrs() {
            self.check_attr(&attr)?;
        }
        self.funcofs.push(f);
        Ok(())
    }

    /// Add a partial/complete constraint. Both sides must resolve and
    /// project the same arity.
    pub fn add_pc(&mut self, pc: PartialComplete) -> Result<(), MisdError> {
        self.check_constraint_id(&pc.id)?;
        if pc.left.attrs.len() != pc.right.attrs.len() {
            return Err(MisdError::PcArityMismatch(pc.id.clone()));
        }
        for side in [&pc.left, &pc.right] {
            if !self.relations.contains_key(&side.relation) {
                return Err(MisdError::UnknownRelation(side.relation.clone()));
            }
            for attr in side.attr_refs() {
                self.check_attr(&attr)?;
            }
            for attr in side.cond.attrs() {
                self.check_attr(&attr)?;
            }
        }
        self.pcs.push(pc);
        Ok(())
    }

    /// Add an order-integrity constraint.
    pub fn add_order(&mut self, oc: OrderIntegrity) -> Result<(), MisdError> {
        if !self.relations.contains_key(&oc.relation) {
            return Err(MisdError::UnknownRelation(oc.relation.clone()));
        }
        for a in &oc.attrs {
            self.check_attr(&AttrRef::new(oc.relation.clone(), a.clone()))?;
        }
        self.orders.push(oc);
        Ok(())
    }

    // ------------------------------------------------------------------
    // lookup
    // ------------------------------------------------------------------

    /// The description of a relation, if present.
    pub fn relation(&self, name: &RelName) -> Option<&RelationDescription> {
        self.relations.get(name)
    }

    /// Is the relation described?
    pub fn contains_relation(&self, name: &RelName) -> bool {
        self.relations.contains_key(name)
    }

    /// Does the attribute exist?
    pub fn has_attr(&self, attr: &AttrRef) -> bool {
        self.check_attr(attr).is_ok()
    }

    /// All relation descriptions, ordered by name.
    pub fn relations(&self) -> impl Iterator<Item = &RelationDescription> {
        self.relations.values()
    }

    /// All relation names, ordered.
    pub fn relation_names(&self) -> impl Iterator<Item = &RelName> {
        self.relations.keys()
    }

    /// All join constraints, in insertion order.
    pub fn joins(&self) -> &[JoinConstraint] {
        &self.joins
    }

    /// Join constraints touching `rel`.
    pub fn joins_of<'a>(&'a self, rel: &'a RelName) -> impl Iterator<Item = &'a JoinConstraint> {
        self.joins.iter().filter(move |j| j.touches(rel))
    }

    /// Join constraints connecting the unordered pair `{r1, r2}`.
    pub fn joins_between<'a>(
        &'a self,
        r1: &'a RelName,
        r2: &'a RelName,
    ) -> impl Iterator<Item = &'a JoinConstraint> {
        self.joins.iter().filter(move |j| j.connects(r1, r2))
    }

    /// A join constraint by id.
    pub fn join_by_id(&self, id: &str) -> Option<&JoinConstraint> {
        self.joins.iter().find(|j| j.id == id)
    }

    /// All function-of constraints.
    pub fn function_ofs(&self) -> &[FunctionOf] {
        &self.funcofs
    }

    /// Function-of constraints *defining* the given attribute — the
    /// constraints CVS uses to find covers for `attr` (Def. 3 (IV)).
    pub fn covers_of<'a>(&'a self, attr: &'a AttrRef) -> impl Iterator<Item = &'a FunctionOf> {
        self.funcofs.iter().filter(move |f| &f.target == attr)
    }

    /// A function-of constraint by id.
    pub fn funcof_by_id(&self, id: &str) -> Option<&FunctionOf> {
        self.funcofs.iter().find(|f| f.id == id)
    }

    /// All partial/complete constraints.
    pub fn pcs(&self) -> &[PartialComplete] {
        &self.pcs
    }

    /// Partial/complete constraints touching `rel`.
    pub fn pcs_of<'a>(&'a self, rel: &'a RelName) -> impl Iterator<Item = &'a PartialComplete> {
        self.pcs.iter().filter(move |p| p.touches(rel))
    }

    /// All order-integrity constraints.
    pub fn orders(&self) -> &[OrderIntegrity] {
        &self.orders
    }

    /// Number of described relations.
    pub fn relation_count(&self) -> usize {
        self.relations.len()
    }

    // ------------------------------------------------------------------
    // mutation primitives used by MKB evolution (crate::evolution)
    // ------------------------------------------------------------------

    pub(crate) fn remove_relation_entry(&mut self, name: &RelName) -> Option<RelationDescription> {
        self.relations.remove(name)
    }

    pub(crate) fn relation_mut(&mut self, name: &RelName) -> Option<&mut RelationDescription> {
        self.relations.get_mut(name)
    }

    pub(crate) fn retain_joins(&mut self, f: impl FnMut(&JoinConstraint) -> bool) {
        self.joins.retain(f);
    }

    pub(crate) fn retain_funcofs(&mut self, f: impl FnMut(&FunctionOf) -> bool) {
        self.funcofs.retain(f);
    }

    pub(crate) fn retain_pcs(&mut self, f: impl FnMut(&PartialComplete) -> bool) {
        self.pcs.retain(f);
    }

    pub(crate) fn retain_orders(&mut self, f: impl FnMut(&OrderIntegrity) -> bool) {
        self.orders.retain(f);
    }

    pub(crate) fn joins_mut(&mut self) -> &mut Vec<JoinConstraint> {
        &mut self.joins
    }

    pub(crate) fn funcofs_mut(&mut self) -> &mut Vec<FunctionOf> {
        &mut self.funcofs
    }

    pub(crate) fn pcs_mut(&mut self) -> &mut Vec<PartialComplete> {
        &mut self.pcs
    }

    pub(crate) fn orders_mut(&mut self) -> &mut Vec<OrderIntegrity> {
        &mut self.orders
    }

    pub(crate) fn reinsert_relation(&mut self, desc: RelationDescription) {
        self.relations.insert(desc.name.clone(), desc);
    }
}

impl fmt::Display for MetaKnowledgeBase {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for r in self.relations.values() {
            writeln!(f, "{r}")?;
        }
        for j in &self.joins {
            writeln!(f, "{j}")?;
        }
        for x in &self.funcofs {
            writeln!(f, "{x}")?;
        }
        for p in &self.pcs {
            writeln!(f, "{p}")?;
        }
        for o in &self.orders {
            writeln!(f, "{o}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::constraint::{ExtentOp, ProjSel};
    use eve_relational::{AttrName, AttributeDef, Clause, Conjunction, DataType, ScalarExpr};

    fn base() -> MetaKnowledgeBase {
        let mut mkb = MetaKnowledgeBase::new();
        mkb.add_relation(RelationDescription::new(
            "IS1",
            "Customer",
            vec![
                AttributeDef::new("Name", DataType::Str),
                AttributeDef::new("Age", DataType::Int),
            ],
        ))
        .unwrap();
        mkb.add_relation(RelationDescription::new(
            "IS4",
            "FlightRes",
            vec![
                AttributeDef::new("PName", DataType::Str),
                AttributeDef::new("Dest", DataType::Str),
            ],
        ))
        .unwrap();
        mkb
    }

    fn jc1() -> JoinConstraint {
        JoinConstraint::new(
            "JC1",
            "Customer",
            "FlightRes",
            Conjunction::new(vec![Clause::eq_attrs(
                AttrRef::new("Customer", "Name"),
                AttrRef::new("FlightRes", "PName"),
            )]),
        )
    }

    #[test]
    fn duplicate_relation_rejected() {
        let mut mkb = base();
        let err = mkb
            .add_relation(RelationDescription::new("IS9", "Customer", vec![]))
            .unwrap_err();
        assert!(matches!(err, MisdError::DuplicateRelation(_)));
    }

    #[test]
    fn join_validation() {
        let mut mkb = base();
        mkb.add_join(jc1()).unwrap();
        // Duplicate id.
        assert!(matches!(
            mkb.add_join(jc1()),
            Err(MisdError::DuplicateConstraintId(_))
        ));
        // Unknown endpoint.
        assert!(matches!(
            mkb.add_join(JoinConstraint::new(
                "JC9",
                "Customer",
                "Nope",
                Conjunction::empty()
            )),
            Err(MisdError::UnknownRelation(_))
        ));
        // Foreign attribute.
        assert!(matches!(
            mkb.add_join(JoinConstraint::new(
                "JC8",
                "Customer",
                "FlightRes",
                Conjunction::new(vec![Clause::eq_attrs(
                    AttrRef::new("Customer", "Name"),
                    AttrRef::new("Tour", "TourID"),
                )])
            )),
            Err(MisdError::ForeignAttrInJoin { .. })
        ));
        // Unknown attribute of a valid endpoint.
        assert!(matches!(
            mkb.add_join(JoinConstraint::new(
                "JC7",
                "Customer",
                "FlightRes",
                Conjunction::new(vec![Clause::eq_attrs(
                    AttrRef::new("Customer", "Ghost"),
                    AttrRef::new("FlightRes", "PName"),
                )])
            )),
            Err(MisdError::UnknownAttribute(_))
        ));
    }

    #[test]
    fn funcof_validation_and_covers() {
        let mut mkb = base();
        mkb.add_function_of(FunctionOf::new(
            "F1",
            AttrRef::new("Customer", "Name"),
            ScalarExpr::attr("FlightRes", "PName"),
        ))
        .unwrap();
        let target = AttrRef::new("Customer", "Name");
        let covers: Vec<_> = mkb.covers_of(&target).collect();
        assert_eq!(covers.len(), 1);
        assert_eq!(covers[0].id, "F1");

        // Multi-source expression rejected.
        let bad = FunctionOf::new(
            "F9",
            AttrRef::new("Customer", "Age"),
            ScalarExpr::binary(
                eve_relational::expr::ArithOp::Add,
                ScalarExpr::attr("FlightRes", "PName"),
                ScalarExpr::attr("Customer", "Name"),
            ),
        );
        assert!(matches!(
            mkb.add_function_of(bad),
            Err(MisdError::MultiSourceFunctionOf(_))
        ));
    }

    #[test]
    fn pc_validation() {
        let mut mkb = base();
        mkb.add_pc(PartialComplete::new(
            "PC1",
            ProjSel::new("FlightRes", vec![AttrName::new("PName")]),
            ExtentOp::Superset,
            ProjSel::new("Customer", vec![AttrName::new("Name")]),
        ))
        .unwrap();
        assert!(matches!(
            mkb.add_pc(PartialComplete::new(
                "PC2",
                ProjSel::new("FlightRes", vec![AttrName::new("PName")]),
                ExtentOp::Superset,
                ProjSel::new(
                    "Customer",
                    vec![AttrName::new("Name"), AttrName::new("Age")]
                ),
            )),
            Err(MisdError::PcArityMismatch(_))
        ));
    }

    #[test]
    fn queries() {
        let mut mkb = base();
        mkb.add_join(jc1()).unwrap();
        let c = RelName::new("Customer");
        let f = RelName::new("FlightRes");
        assert_eq!(mkb.joins_of(&c).count(), 1);
        assert_eq!(mkb.joins_between(&f, &c).count(), 1);
        assert!(mkb.join_by_id("JC1").is_some());
        assert!(mkb.join_by_id("JCX").is_none());
        assert!(mkb.has_attr(&AttrRef::new("Customer", "Age")));
        assert!(!mkb.has_attr(&AttrRef::new("Customer", "Ghost")));
        assert_eq!(mkb.relation_count(), 2);
    }

    #[test]
    fn order_constraint() {
        let mut mkb = base();
        mkb.add_order(OrderIntegrity {
            relation: RelName::new("Customer"),
            attrs: vec![AttrName::new("Name")],
        })
        .unwrap();
        assert_eq!(mkb.orders().len(), 1);
        assert!(mkb
            .add_order(OrderIntegrity {
                relation: RelName::new("Customer"),
                attrs: vec![AttrName::new("Ghost")],
            })
            .is_err());
    }
}

#[cfg(test)]
mod display_tests {
    use crate::text::parse_misd;

    #[test]
    fn mkb_display_lists_all_sections() {
        let mkb = parse_misd(
            "RELATION IS1 A(x int)
             RELATION IS2 B(x int)
             JOIN J1: A, B ON A.x = B.x
             FUNCOF F1: A.x = B.x
             PC P1: B(x) superset A(x)
             ORDER A BY x",
        )
        .unwrap();
        let s = mkb.to_string();
        assert!(s.contains("RELATION IS1 A(x: int)"), "{s}");
        assert!(s.contains("JOIN J1:"), "{s}");
        assert!(s.contains("FUNCOF F1:"), "{s}");
        assert!(s.contains("PC P1:"), "{s}");
        assert!(s.contains("ORDER A BY x"), "{s}");
    }
}
