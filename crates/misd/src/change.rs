//! The six capability-change operators (§5 of the paper).
//!
//! "Four of the six capability change operations we consider can be
//! handled in a straightforward manner. Namely, add-relation,
//! add-attribute, rename-relation and rename-attribute capability changes
//! do not cause any changes to existing (and hence valid) views. However,
//! the two remaining capability change operators, i.e., delete-attribute
//! and delete-relation, cause existing views to become invalid."

use crate::description::RelationDescription;
use crate::error::MisdError;
use eve_esql::lexer::Tok;
use eve_esql::parser::Cursor;
use eve_relational::{AttrName, AttrRef, AttributeDef, DataType, RelName};
use std::fmt;

/// A capability change announced by an information source.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CapabilityChange {
    /// The IS starts exporting a new relation.
    AddRelation(RelationDescription),
    /// The IS stops exporting a relation — the hardest operator, handled
    /// by the CVS algorithm.
    DeleteRelation(RelName),
    /// The IS renames an exported relation.
    RenameRelation {
        /// Old name.
        from: RelName,
        /// New name.
        to: RelName,
    },
    /// The IS adds an attribute to an exported relation.
    AddAttribute {
        /// The relation gaining the attribute.
        relation: RelName,
        /// The new attribute.
        attr: AttributeDef,
    },
    /// The IS stops exporting an attribute.
    DeleteAttribute(AttrRef),
    /// The IS renames an attribute.
    RenameAttribute {
        /// Old (qualified) attribute.
        from: AttrRef,
        /// New attribute name.
        to: AttrName,
    },
}

impl CapabilityChange {
    /// Is this one of the two *destructive* operators
    /// (delete-relation / delete-attribute) that can invalidate views?
    pub fn is_destructive(&self) -> bool {
        matches!(
            self,
            CapabilityChange::DeleteRelation(_) | CapabilityChange::DeleteAttribute(_)
        )
    }

    /// Short operator name as used in the paper.
    pub fn operator_name(&self) -> &'static str {
        match self {
            CapabilityChange::AddRelation(_) => "add-relation",
            CapabilityChange::DeleteRelation(_) => "delete-relation",
            CapabilityChange::RenameRelation { .. } => "rename-relation",
            CapabilityChange::AddAttribute { .. } => "add-attribute",
            CapabilityChange::DeleteAttribute(_) => "delete-attribute",
            CapabilityChange::RenameAttribute { .. } => "rename-attribute",
        }
    }
}

impl CapabilityChange {
    /// Parse a change from its textual form — the same notation
    /// [`CapabilityChange`]'s `Display` produces and the paper uses:
    ///
    /// ```text
    /// delete-relation Customer
    /// delete-attribute Customer.Addr
    /// rename-relation Tour -> Excursion
    /// rename-attribute Tour.TourName -> Title
    /// add-attribute Customer.Fax str
    /// add-relation IS8 Person(Name str, SSN int, PAddr str)
    /// ```
    ///
    /// `->` and the keyword `to` are interchangeable in renames; the
    /// attribute/type colon of the MISD format is optional.
    pub fn parse(input: &str) -> Result<CapabilityChange, MisdError> {
        let mut cur = Cursor::new(input)?;
        let change = Self::parse_at(&mut cur)?;
        if !cur.at_end() {
            return Err(cur.err("trailing input after change").into());
        }
        Ok(change)
    }

    fn parse_at(cur: &mut Cursor) -> Result<CapabilityChange, MisdError> {
        let eat_arrow = |cur: &mut Cursor| {
            // accept `->`, `to`, or nothing
            if cur.eat(&Tok::Minus) {
                let _ = cur.eat(&Tok::Gt);
            } else {
                let _ = cur.eat_kw("to");
            }
        };
        if cur.eat_kw("delete-relation") {
            Ok(CapabilityChange::DeleteRelation(RelName::new(
                cur.expect_ident()?,
            )))
        } else if cur.eat_kw("delete-attribute") {
            let rel = cur.expect_ident()?;
            cur.expect(&Tok::Dot)?;
            let attr = cur.expect_ident()?;
            Ok(CapabilityChange::DeleteAttribute(AttrRef::new(rel, attr)))
        } else if cur.eat_kw("rename-relation") {
            let from = cur.expect_ident()?;
            eat_arrow(cur);
            let to = cur.expect_ident()?;
            Ok(CapabilityChange::RenameRelation {
                from: from.into(),
                to: to.into(),
            })
        } else if cur.eat_kw("rename-attribute") {
            let rel = cur.expect_ident()?;
            cur.expect(&Tok::Dot)?;
            let attr = cur.expect_ident()?;
            eat_arrow(cur);
            let to = cur.expect_ident()?;
            Ok(CapabilityChange::RenameAttribute {
                from: AttrRef::new(rel, attr),
                to: AttrName::new(to),
            })
        } else if cur.eat_kw("add-attribute") {
            let rel = cur.expect_ident()?;
            cur.expect(&Tok::Dot)?;
            let attr = cur.expect_ident()?;
            cur.eat(&Tok::Colon);
            let ty_word = cur.expect_ident()?;
            let ty = DataType::parse(&ty_word)
                .ok_or_else(|| cur.err(format!("unknown type `{ty_word}`")))?;
            Ok(CapabilityChange::AddAttribute {
                relation: rel.into(),
                attr: AttributeDef::new(attr, ty),
            })
        } else if cur.eat_kw("add-relation") {
            let source = cur.expect_ident()?;
            let name = cur.expect_ident()?;
            cur.expect(&Tok::LParen)?;
            let mut attrs = Vec::new();
            loop {
                let attr = cur.expect_ident()?;
                cur.eat(&Tok::Colon);
                let ty_word = cur.expect_ident()?;
                let ty = DataType::parse(&ty_word)
                    .ok_or_else(|| cur.err(format!("unknown type `{ty_word}`")))?;
                attrs.push(AttributeDef::new(attr, ty));
                if !cur.eat(&Tok::Comma) {
                    break;
                }
            }
            cur.expect(&Tok::RParen)?;
            Ok(CapabilityChange::AddRelation(RelationDescription::new(
                source, name, attrs,
            )))
        } else {
            Err(cur
                .err(
                    "expected one of delete-relation, delete-attribute, rename-relation, \
                     rename-attribute, add-attribute, add-relation",
                )
                .into())
        }
    }
}

impl fmt::Display for CapabilityChange {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CapabilityChange::AddRelation(d) => write!(f, "add-relation {}", d.name),
            CapabilityChange::DeleteRelation(r) => write!(f, "delete-relation {r}"),
            CapabilityChange::RenameRelation { from, to } => {
                write!(f, "rename-relation {from} -> {to}")
            }
            CapabilityChange::AddAttribute { relation, attr } => {
                write!(f, "add-attribute {relation}.{} : {}", attr.name, attr.ty)
            }
            CapabilityChange::DeleteAttribute(a) => write!(f, "delete-attribute {a}"),
            CapabilityChange::RenameAttribute { from, to } => {
                write!(f, "rename-attribute {from} -> {to}")
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use eve_relational::DataType;

    #[test]
    fn destructive_classification() {
        assert!(CapabilityChange::DeleteRelation(RelName::new("R")).is_destructive());
        assert!(CapabilityChange::DeleteAttribute(AttrRef::new("R", "a")).is_destructive());
        assert!(!CapabilityChange::AddAttribute {
            relation: RelName::new("R"),
            attr: AttributeDef::new("a", DataType::Int),
        }
        .is_destructive());
        assert!(!CapabilityChange::RenameRelation {
            from: RelName::new("R"),
            to: RelName::new("S"),
        }
        .is_destructive());
    }

    #[test]
    fn operator_names_match_paper() {
        assert_eq!(
            CapabilityChange::DeleteRelation(RelName::new("R")).operator_name(),
            "delete-relation"
        );
        assert_eq!(
            CapabilityChange::DeleteAttribute(AttrRef::new("R", "a")).operator_name(),
            "delete-attribute"
        );
    }

    #[test]
    fn display() {
        assert_eq!(
            CapabilityChange::DeleteRelation(RelName::new("Customer")).to_string(),
            "delete-relation Customer"
        );
    }

    #[test]
    fn parse_all_operators() {
        assert_eq!(
            CapabilityChange::parse("delete-relation Customer").unwrap(),
            CapabilityChange::DeleteRelation(RelName::new("Customer"))
        );
        assert_eq!(
            CapabilityChange::parse("delete-attribute Customer.Addr").unwrap(),
            CapabilityChange::DeleteAttribute(AttrRef::new("Customer", "Addr"))
        );
        assert_eq!(
            CapabilityChange::parse("rename-relation Tour -> Excursion").unwrap(),
            CapabilityChange::RenameRelation {
                from: RelName::new("Tour"),
                to: RelName::new("Excursion"),
            }
        );
        assert_eq!(
            CapabilityChange::parse("rename-attribute Tour.TourName to Title").unwrap(),
            CapabilityChange::RenameAttribute {
                from: AttrRef::new("Tour", "TourName"),
                to: "Title".into(),
            }
        );
        assert_eq!(
            CapabilityChange::parse("add-attribute Customer.Fax str").unwrap(),
            CapabilityChange::AddAttribute {
                relation: RelName::new("Customer"),
                attr: AttributeDef::new("Fax", DataType::Str),
            }
        );
        let add = CapabilityChange::parse("add-relation IS8 Person(Name str, SSN int, PAddr str)")
            .unwrap();
        match add {
            CapabilityChange::AddRelation(d) => {
                assert_eq!(d.source, "IS8");
                assert_eq!(d.attrs.len(), 3);
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn display_parse_roundtrip() {
        for ch in [
            CapabilityChange::DeleteRelation(RelName::new("Accident-Ins")),
            CapabilityChange::DeleteAttribute(AttrRef::new("Customer", "Age")),
            CapabilityChange::RenameRelation {
                from: RelName::new("A"),
                to: RelName::new("B"),
            },
            CapabilityChange::RenameAttribute {
                from: AttrRef::new("A", "x"),
                to: "y".into(),
            },
            CapabilityChange::AddAttribute {
                relation: RelName::new("A"),
                attr: AttributeDef::new("z", DataType::Date),
            },
        ] {
            let text = ch.to_string();
            assert_eq!(
                CapabilityChange::parse(&text).unwrap(),
                ch,
                "failed on {text}"
            );
        }
    }

    #[test]
    fn parse_rejects_garbage() {
        assert!(CapabilityChange::parse("explode-everything X").is_err());
        assert!(CapabilityChange::parse("delete-relation A B").is_err());
        assert!(CapabilityChange::parse("add-attribute A.b blob").is_err());
    }
}
