//! A textual MISD format, so meta knowledge bases can be written as
//! fixtures and printed for inspection (the paper's Fig. 2 is exactly such
//! a listing).
//!
//! ```text
//! RELATION IS1 Customer(Name str, Addr str, Phone str, Age int)
//! RELATION IS4 FlightRes(PName str, Airline str, Dest str)
//! JOIN JC1: Customer, FlightRes ON Customer.Name = FlightRes.PName
//! JOIN JC2: Customer, Accident-Ins ON
//!      Customer.Name = Accident-Ins.Holder AND Customer.Age > 1
//! FUNCOF F3: Customer.Age = (today() - Accident-Ins.Birthday) / 365
//! PC PC1: Person(Name, PAddr) superset Customer(Name, Addr)
//! ORDER Customer BY Name, Age
//! ```
//!
//! A relation declaration may carry capability flags (`NOJOIN`,
//! `NOSELECT`, `NOPROJECT`) restricting the advertised query
//! capabilities (§2 of the paper mentions capability descriptions):
//!
//! ```text
//! RELATION IS9 Snapshot(k int, v int) NOJOIN
//! ```
//!
//! Keywords are case-insensitive; `--` starts a line comment; statements
//! may optionally be terminated with `;`. [`render_misd`] produces
//! canonical text that [`parse_misd`] reads back to an equal MKB.

use crate::constraint::{
    ExtentOp, FunctionOf, JoinConstraint, OrderIntegrity, PartialComplete, ProjSel,
};
use crate::description::RelationDescription;
use crate::error::MisdError;
use crate::mkb::MetaKnowledgeBase;
use eve_esql::lexer::Tok;
use eve_esql::parser::{parse_conjunction_at, parse_expr_at, Cursor};
use eve_relational::{AttrName, AttrRef, AttributeDef, Conjunction, DataType};

/// Parse a textual MISD document into a validated MKB.
pub fn parse_misd(input: &str) -> Result<MetaKnowledgeBase, MisdError> {
    let mut cur = Cursor::new(input)?;
    let mut mkb = MetaKnowledgeBase::new();
    while !cur.at_end() {
        if cur.eat(&Tok::Semi) {
            continue;
        }
        if cur.eat_kw("relation") {
            mkb.add_relation(parse_relation(&mut cur)?)?;
        } else if cur.eat_kw("join") {
            mkb.add_join(parse_join(&mut cur)?)?;
        } else if cur.eat_kw("funcof") {
            mkb.add_function_of(parse_funcof(&mut cur)?)?;
        } else if cur.eat_kw("pc") {
            mkb.add_pc(parse_pc(&mut cur)?)?;
        } else if cur.eat_kw("order") {
            mkb.add_order(parse_order(&mut cur)?)?;
        } else {
            return Err(cur
                .err("expected RELATION, JOIN, FUNCOF, PC or ORDER statement")
                .into());
        }
    }
    Ok(mkb)
}

fn parse_relation(cur: &mut Cursor) -> Result<RelationDescription, MisdError> {
    let source = cur.expect_ident()?;
    let name = cur.expect_ident()?;
    cur.expect(&Tok::LParen)?;
    let mut attrs = Vec::new();
    loop {
        let attr = cur.expect_ident()?;
        cur.eat(&Tok::Colon);
        let ty_word = cur.expect_ident()?;
        let ty = DataType::parse(&ty_word)
            .ok_or_else(|| cur.err(format!("unknown type `{ty_word}`")))?;
        attrs.push(AttributeDef::new(attr, ty));
        if !cur.eat(&Tok::Comma) {
            break;
        }
    }
    cur.expect(&Tok::RParen)?;
    let mut desc = RelationDescription::new(source, name, attrs);
    loop {
        if cur.eat_kw("nojoin") {
            desc.capabilities.join = false;
        } else if cur.eat_kw("noselect") {
            desc.capabilities.selection = false;
        } else if cur.eat_kw("noproject") {
            desc.capabilities.projection = false;
        } else {
            break;
        }
    }
    Ok(desc)
}

fn parse_join(cur: &mut Cursor) -> Result<JoinConstraint, MisdError> {
    let id = cur.expect_ident()?;
    cur.eat(&Tok::Colon);
    let left = cur.expect_ident()?;
    cur.expect(&Tok::Comma)?;
    let right = cur.expect_ident()?;
    cur.expect_kw("on")?;
    let predicate = parse_conjunction_at(cur)?;
    Ok(JoinConstraint::new(id, left, right, predicate))
}

fn parse_funcof(cur: &mut Cursor) -> Result<FunctionOf, MisdError> {
    let id = cur.expect_ident()?;
    cur.eat(&Tok::Colon);
    let rel = cur.expect_ident()?;
    cur.expect(&Tok::Dot)?;
    let attr = cur.expect_ident()?;
    cur.expect(&Tok::Eq)?;
    let expr = parse_expr_at(cur)?;
    Ok(FunctionOf::new(id, AttrRef::new(rel, attr), expr))
}

fn parse_projsel(cur: &mut Cursor) -> Result<ProjSel, MisdError> {
    let rel = cur.expect_ident()?;
    cur.expect(&Tok::LParen)?;
    let mut attrs = Vec::new();
    loop {
        attrs.push(AttrName::new(cur.expect_ident()?));
        if !cur.eat(&Tok::Comma) {
            break;
        }
    }
    cur.expect(&Tok::RParen)?;
    let cond = if cur.eat_kw("where") {
        parse_conjunction_at(cur)?
    } else {
        Conjunction::empty()
    };
    Ok(ProjSel {
        relation: rel.into(),
        attrs,
        cond,
    })
}

fn parse_pc(cur: &mut Cursor) -> Result<PartialComplete, MisdError> {
    let id = cur.expect_ident()?;
    cur.eat(&Tok::Colon);
    let left = parse_projsel(cur)?;
    let op_word = cur.expect_ident()?;
    let op = ExtentOp::parse(&op_word)
        .ok_or_else(|| cur.err(format!("unknown containment operator `{op_word}`")))?;
    let right = parse_projsel(cur)?;
    Ok(PartialComplete::new(id, left, op, right))
}

fn parse_order(cur: &mut Cursor) -> Result<OrderIntegrity, MisdError> {
    let rel = cur.expect_ident()?;
    cur.expect_kw("by")?;
    let mut attrs = Vec::new();
    loop {
        attrs.push(AttrName::new(cur.expect_ident()?));
        if !cur.eat(&Tok::Comma) {
            break;
        }
    }
    Ok(OrderIntegrity {
        relation: rel.into(),
        attrs,
    })
}

/// Render an MKB in the canonical textual format (inverse of
/// [`parse_misd`]).
pub fn render_misd(mkb: &MetaKnowledgeBase) -> String {
    let mut out = String::new();
    for r in mkb.relations() {
        out.push_str("RELATION ");
        out.push_str(&r.source);
        out.push(' ');
        out.push_str(r.name.as_str());
        out.push('(');
        for (i, a) in r.attrs.iter().enumerate() {
            if i > 0 {
                out.push_str(", ");
            }
            out.push_str(&format!("{} {}", a.name, a.ty));
        }
        out.push(')');
        if !r.capabilities.join {
            out.push_str(" NOJOIN");
        }
        if !r.capabilities.selection {
            out.push_str(" NOSELECT");
        }
        if !r.capabilities.projection {
            out.push_str(" NOPROJECT");
        }
        out.push('\n');
    }
    for j in mkb.joins() {
        out.push_str(&format!(
            "JOIN {}: {}, {} ON {}\n",
            j.id, j.left, j.right, j.predicate
        ));
    }
    for f in mkb.function_ofs() {
        out.push_str(&format!("FUNCOF {}: {} = {}\n", f.id, f.target, f.expr));
    }
    for p in mkb.pcs() {
        out.push_str(&format!(
            "PC {}: {} {} {}\n",
            p.id,
            p.left,
            p.op.keyword(),
            p.right
        ));
    }
    for o in mkb.orders() {
        out.push_str(&format!("ORDER {} BY ", o.relation));
        for (i, a) in o.attrs.iter().enumerate() {
            if i > 0 {
                out.push_str(", ");
            }
            out.push_str(a.as_str());
        }
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use eve_relational::RelName;

    const SAMPLE: &str = "
        -- a small slice of the travel-agency MKB
        RELATION IS1 Customer(Name str, Addr str, Phone str, Age int)
        RELATION IS4 FlightRes(PName str, Airline str, Dest str)
        RELATION IS5 Accident-Ins(Holder str, Type str, Amount int, Birthday date)
        JOIN JC1: Customer, FlightRes ON Customer.Name = FlightRes.PName
        JOIN JC2: Customer, Accident-Ins ON
            Customer.Name = Accident-Ins.Holder AND Customer.Age > 1
        FUNCOF F2: Customer.Name = Accident-Ins.Holder
        FUNCOF F3: Customer.Age = (today() - Accident-Ins.Birthday) / 365
        PC PC1: Accident-Ins(Holder) superset Customer(Name)
        ORDER Customer BY Name, Age
    ";

    #[test]
    fn parses_sample() {
        let mkb = parse_misd(SAMPLE).unwrap();
        assert_eq!(mkb.relation_count(), 3);
        assert_eq!(mkb.joins().len(), 2);
        assert_eq!(mkb.function_ofs().len(), 2);
        assert_eq!(mkb.pcs().len(), 1);
        assert_eq!(mkb.orders().len(), 1);
        let jc2 = mkb.join_by_id("JC2").unwrap();
        assert_eq!(jc2.predicate.len(), 2);
        assert_eq!(
            mkb.funcof_by_id("F3").unwrap().source_relation(),
            Some(RelName::new("Accident-Ins"))
        );
    }

    #[test]
    fn roundtrip() {
        let mkb = parse_misd(SAMPLE).unwrap();
        let rendered = render_misd(&mkb);
        let back = parse_misd(&rendered)
            .unwrap_or_else(|e| panic!("rendered MISD failed to parse: {e}\n{rendered}"));
        assert_eq!(mkb, back, "\nrendered:\n{rendered}");
    }

    #[test]
    fn pc_with_where_clause() {
        let mkb = parse_misd(
            "RELATION IS1 A(x int)
             RELATION IS2 B(y int)
             PC P1: A(x) WHERE A.x > 0 subset B(y) WHERE B.y > 0",
        )
        .unwrap();
        assert_eq!(mkb.pcs()[0].left.cond.len(), 1);
        assert_eq!(mkb.pcs()[0].right.cond.len(), 1);
    }

    #[test]
    fn unknown_statement_rejected() {
        assert!(parse_misd("BOGUS stuff").is_err());
    }

    #[test]
    fn constraint_validation_applies() {
        // Join over an undescribed relation is rejected by the MKB.
        let err = parse_misd(
            "RELATION IS1 A(x int)
             JOIN J1: A, B ON A.x = B.y",
        )
        .unwrap_err();
        assert!(matches!(err, MisdError::UnknownRelation(_)));
    }

    #[test]
    fn unknown_type_rejected() {
        assert!(parse_misd("RELATION IS1 A(x blob)").is_err());
    }

    #[test]
    fn capability_flags_roundtrip() {
        let mkb = parse_misd(
            "RELATION IS1 A(x int) NOJOIN NOSELECT
             RELATION IS2 B(y int)",
        )
        .unwrap();
        let a = mkb.relation(&RelName::new("A")).unwrap();
        assert!(!a.capabilities.join);
        assert!(!a.capabilities.selection);
        assert!(a.capabilities.projection);
        let rendered = render_misd(&mkb);
        assert!(rendered.contains("NOJOIN"));
        assert_eq!(parse_misd(&rendered).unwrap(), mkb);
    }

    #[test]
    fn semicolons_and_comments_tolerated() {
        let mkb = parse_misd(
            "RELATION IS1 A(x int); -- trailing comment
             RELATION IS2 B(y int);",
        )
        .unwrap();
        assert_eq!(mkb.relation_count(), 2);
    }
}
