//! The MISD semantic constraints of Fig. 1.
//!
//! | Constraint | Paper syntax |
//! |------------|--------------|
//! | Type integrity | `TC_{R,A_i} = (R(A_i) ⊆ Type_i(A_i))` — folded into [`crate::description::RelationDescription`] attribute types |
//! | Order integrity | `OC_R = (R(A_1,…,A_n) ⊆ C(A_{i1},…,A_{ik}))` — [`OrderIntegrity`] |
//! | Join constraint | `JC_{R1,R2} = (C_1 AND … AND C_l)` — [`JoinConstraint`] |
//! | Function-of | `F_{R1.A, R2.B} = (R1.A = f(R2.B))` — [`FunctionOf`] |
//! | Partial/complete | `PC_{R1,R2} = (π_{A1}(σ_{C(B̄1)} R1) θ π_{A2}(σ_{C(B̄2)} R2))`, `θ ∈ {⊂,⊆,≡,⊇,⊃}` — [`PartialComplete`] |

use eve_relational::{AttrName, AttrRef, Conjunction, ExtentRelation, RelName, ScalarExpr};
use std::collections::BTreeSet;
use std::fmt;

/// Order-integrity constraint `OC_R`: the tuples of `R` are ordered by the
/// listed attributes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct OrderIntegrity {
    /// The constrained relation.
    pub relation: RelName,
    /// The ordering attributes `A_{i1}, …, A_{ik}` (significant order).
    pub attrs: Vec<AttrName>,
}

impl fmt::Display for OrderIntegrity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "ORDER {} BY ", self.relation)?;
        for (i, a) in self.attrs.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{a}")?;
        }
        Ok(())
    }
}

/// A join constraint `JC_{R1,R2}`: a *default*, semantically meaningful
/// join condition between two relations — the hyperedges along which CVS
/// chains rewritings.
///
/// The predicate is a conjunction of primitive clauses over the attributes
/// of `left` and `right` only (not necessarily equijoin clauses — JC2 of
/// the running example includes `Customer.Age > 1`).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JoinConstraint {
    /// Identifier (e.g. `JC1`), unique within the MKB.
    pub id: String,
    /// First relation.
    pub left: RelName,
    /// Second relation.
    pub right: RelName,
    /// `C_1 AND … AND C_l`.
    pub predicate: Conjunction,
}

impl JoinConstraint {
    /// Create a join constraint.
    pub fn new(
        id: impl Into<String>,
        left: impl Into<RelName>,
        right: impl Into<RelName>,
        predicate: Conjunction,
    ) -> Self {
        JoinConstraint {
            id: id.into(),
            left: left.into(),
            right: right.into(),
            predicate,
        }
    }

    /// Does this constraint connect `rel` (on either side)?
    pub fn touches(&self, rel: &RelName) -> bool {
        &self.left == rel || &self.right == rel
    }

    /// Given one endpoint, the other one — `None` when `rel` is not an
    /// endpoint.
    pub fn other(&self, rel: &RelName) -> Option<&RelName> {
        if &self.left == rel {
            Some(&self.right)
        } else if &self.right == rel {
            Some(&self.left)
        } else {
            None
        }
    }

    /// Does this constraint connect exactly the unordered pair
    /// `{r1, r2}`?
    pub fn connects(&self, r1: &RelName, r2: &RelName) -> bool {
        (&self.left == r1 && &self.right == r2) || (&self.left == r2 && &self.right == r1)
    }

    /// All attributes mentioned by the predicate.
    pub fn attrs(&self) -> BTreeSet<AttrRef> {
        self.predicate.attrs()
    }

    /// Does the join predicate reference `target`? Equivalent to
    /// `self.attrs().contains(target)` without materialising the set.
    pub fn contains_attr(&self, target: &AttrRef) -> bool {
        self.predicate.contains_attr(target)
    }
}

impl fmt::Display for JoinConstraint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "JOIN {}: {}, {} ON {}",
            self.id, self.left, self.right, self.predicate
        )
    }
}

/// A function-of constraint `F_{R1.A, R2.B} = (R1.A = f(R2.B))`.
///
/// Semantics (§2): *if* there exists a meaningful way of combining the two
/// relations (e.g. via join constraints), then for every tuple `t` of that
/// join relation, `t[R1.A] = f(t[R2.B])`. CVS Def. 3 (IV) uses these
/// constraints to find **covers**: relations whose attributes can replace
/// a dropped relation's attributes.
///
/// We generalise the right-hand side to an arbitrary scalar expression
/// over the attributes of a *single* source relation (F3 of the running
/// example is `(today() − Accident-Ins.Birthday)/365`).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FunctionOf {
    /// Identifier (e.g. `F3`), unique within the MKB.
    pub id: String,
    /// The defined attribute `R1.A`.
    pub target: AttrRef,
    /// The defining expression `f(R2.B…)`.
    pub expr: ScalarExpr,
}

impl FunctionOf {
    /// Create a function-of constraint.
    pub fn new(id: impl Into<String>, target: AttrRef, expr: ScalarExpr) -> Self {
        FunctionOf {
            id: id.into(),
            target,
            expr,
        }
    }

    /// The attributes of the source relation used by the expression.
    pub fn source_attrs(&self) -> BTreeSet<AttrRef> {
        self.expr.attrs()
    }

    /// The single source relation the expression draws from, or `None`
    /// when the expression is constant (or, invalidly, multi-relation —
    /// rejected by MKB validation).
    pub fn source_relation(&self) -> Option<RelName> {
        let rels: BTreeSet<RelName> = self.expr.relations();
        if rels.len() == 1 {
            rels.into_iter().next()
        } else {
            None
        }
    }

    /// Does this constraint mention `rel` (as target owner or source)?
    pub fn touches(&self, rel: &RelName) -> bool {
        &self.target.relation == rel || self.expr.relations().contains(rel)
    }
}

impl fmt::Display for FunctionOf {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "FUNCOF {}: {} = {}", self.id, self.target, self.expr)
    }
}

/// The containment operator `θ` of a partial/complete constraint.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ExtentOp {
    /// `⊂`
    ProperSubset,
    /// `⊆`
    Subset,
    /// `≡`
    Equivalent,
    /// `⊇`
    Superset,
    /// `⊃`
    ProperSuperset,
}

impl ExtentOp {
    /// Mathematical symbol.
    pub fn symbol(self) -> &'static str {
        match self {
            ExtentOp::ProperSubset => "⊂",
            ExtentOp::Subset => "⊆",
            ExtentOp::Equivalent => "≡",
            ExtentOp::Superset => "⊇",
            ExtentOp::ProperSuperset => "⊃",
        }
    }

    /// ASCII keyword used by the MISD textual format.
    pub fn keyword(self) -> &'static str {
        match self {
            ExtentOp::ProperSubset => "proper-subset",
            ExtentOp::Subset => "subset",
            ExtentOp::Equivalent => "equivalent",
            ExtentOp::Superset => "superset",
            ExtentOp::ProperSuperset => "proper-superset",
        }
    }

    /// Parse from keyword or symbol.
    pub fn parse(s: &str) -> Option<ExtentOp> {
        match s.to_ascii_lowercase().as_str() {
            "proper-subset" | "⊂" => Some(ExtentOp::ProperSubset),
            "subset" | "⊆" => Some(ExtentOp::Subset),
            "equivalent" | "equiv" | "≡" => Some(ExtentOp::Equivalent),
            "superset" | "⊇" => Some(ExtentOp::Superset),
            "proper-superset" | "⊃" => Some(ExtentOp::ProperSuperset),
            _ => None,
        }
    }

    /// The operator with sides swapped (`⊆` ↔ `⊇`).
    pub fn flipped(self) -> ExtentOp {
        match self {
            ExtentOp::ProperSubset => ExtentOp::ProperSuperset,
            ExtentOp::Subset => ExtentOp::Superset,
            ExtentOp::Equivalent => ExtentOp::Equivalent,
            ExtentOp::Superset => ExtentOp::Subset,
            ExtentOp::ProperSuperset => ExtentOp::ProperSubset,
        }
    }

    /// Is an observed [`ExtentRelation`] compatible with this declared
    /// operator (reading `left θ right`)?
    pub fn admits(self, observed: ExtentRelation) -> bool {
        match self {
            ExtentOp::ProperSubset => observed == ExtentRelation::ProperSubset,
            ExtentOp::Subset => observed.is_subset(),
            ExtentOp::Equivalent => observed.is_equivalent(),
            ExtentOp::Superset => observed.is_superset(),
            ExtentOp::ProperSuperset => observed == ExtentRelation::ProperSuperset,
        }
    }
}

impl fmt::Display for ExtentOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.symbol())
    }
}

/// One side of a partial/complete constraint: `π_attrs(σ_cond(relation))`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ProjSel {
    /// The relation.
    pub relation: RelName,
    /// Projected attributes (order is significant — sides are compared
    /// positionally).
    pub attrs: Vec<AttrName>,
    /// Selection condition (empty = no selection).
    pub cond: Conjunction,
}

impl ProjSel {
    /// Projection without selection.
    pub fn new(relation: impl Into<RelName>, attrs: Vec<AttrName>) -> Self {
        ProjSel {
            relation: relation.into(),
            attrs,
            cond: Conjunction::empty(),
        }
    }

    /// Add a selection condition (builder style).
    pub fn with_cond(mut self, cond: Conjunction) -> Self {
        self.cond = cond;
        self
    }

    /// Qualified projected attributes.
    pub fn attr_refs(&self) -> Vec<AttrRef> {
        self.attrs
            .iter()
            .map(|a| AttrRef::new(self.relation.clone(), a.clone()))
            .collect()
    }
}

impl fmt::Display for ProjSel {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}(", self.relation)?;
        for (i, a) in self.attrs.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{a}")?;
        }
        write!(f, ")")?;
        if !self.cond.is_empty() {
            write!(f, " WHERE {}", self.cond)?;
        }
        Ok(())
    }
}

/// A partial/complete-information constraint
/// `PC_{R1,R2} = (π_{A1}(σ_{C1} R1) θ π_{A2}(σ_{C2} R2))`.
///
/// These constraints are what Step 6 of CVS uses to decide whether a
/// rewriting satisfies the view-extent parameter (property P3 of Def. 1):
/// e.g. constraint (iv) of Example 4 —
/// `π_{Name,PAddr}(Person) ⊇ π_{Name,Addr}(Customer)` — certifies that
/// rerouting the address through `Person` can only *add* tuples.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PartialComplete {
    /// Identifier (e.g. `PC1`), unique within the MKB.
    pub id: String,
    /// Left side.
    pub left: ProjSel,
    /// Containment operator.
    pub op: ExtentOp,
    /// Right side.
    pub right: ProjSel,
}

impl PartialComplete {
    /// Create a partial/complete constraint.
    pub fn new(id: impl Into<String>, left: ProjSel, op: ExtentOp, right: ProjSel) -> Self {
        PartialComplete {
            id: id.into(),
            left,
            op,
            right,
        }
    }

    /// Does this constraint mention `rel` on either side?
    pub fn touches(&self, rel: &RelName) -> bool {
        &self.left.relation == rel
            || &self.right.relation == rel
            || self.left.cond.relations().contains(rel)
            || self.right.cond.relations().contains(rel)
    }
}

impl fmt::Display for PartialComplete {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "PC {}: {} {} {}",
            self.id,
            self.left,
            self.op.keyword(),
            self.right
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use eve_relational::{Clause, CompareOp};

    #[test]
    fn join_constraint_endpoints() {
        let jc = JoinConstraint::new(
            "JC1",
            "Customer",
            "FlightRes",
            Conjunction::new(vec![Clause::eq_attrs(
                AttrRef::new("Customer", "Name"),
                AttrRef::new("FlightRes", "PName"),
            )]),
        );
        let c = RelName::new("Customer");
        let f = RelName::new("FlightRes");
        let t = RelName::new("Tour");
        assert!(jc.touches(&c));
        assert!(jc.connects(&f, &c));
        assert_eq!(jc.other(&c), Some(&f));
        assert_eq!(jc.other(&t), None);
    }

    #[test]
    fn function_of_source_relation() {
        let f = FunctionOf::new(
            "F3",
            AttrRef::new("Customer", "Age"),
            ScalarExpr::binary(
                eve_relational::expr::ArithOp::Div,
                ScalarExpr::binary(
                    eve_relational::expr::ArithOp::Sub,
                    ScalarExpr::call("today", vec![]),
                    ScalarExpr::attr("Accident-Ins", "Birthday"),
                ),
                ScalarExpr::lit(365i64),
            ),
        );
        assert_eq!(f.source_relation(), Some(RelName::new("Accident-Ins")));
        assert!(f.touches(&RelName::new("Customer")));
        assert!(f.touches(&RelName::new("Accident-Ins")));
        assert!(!f.touches(&RelName::new("Tour")));
    }

    #[test]
    fn extent_op_admits() {
        use ExtentRelation::*;
        assert!(ExtentOp::Superset.admits(Equivalent));
        assert!(ExtentOp::Superset.admits(ProperSuperset));
        assert!(!ExtentOp::Superset.admits(ProperSubset));
        assert!(ExtentOp::Subset.admits(ProperSubset));
        assert!(!ExtentOp::ProperSubset.admits(Equivalent));
        assert!(ExtentOp::Equivalent.admits(Equivalent));
        assert!(!ExtentOp::Equivalent.admits(Incomparable));
    }

    #[test]
    fn extent_op_roundtrip_and_flip() {
        for op in [
            ExtentOp::ProperSubset,
            ExtentOp::Subset,
            ExtentOp::Equivalent,
            ExtentOp::Superset,
            ExtentOp::ProperSuperset,
        ] {
            assert_eq!(ExtentOp::parse(op.keyword()), Some(op));
            assert_eq!(ExtentOp::parse(op.symbol()), Some(op));
            assert_eq!(op.flipped().flipped(), op);
        }
    }

    #[test]
    fn projsel_display() {
        let ps = ProjSel::new(
            "Person",
            vec![AttrName::new("Name"), AttrName::new("PAddr")],
        );
        assert_eq!(ps.to_string(), "Person(Name, PAddr)");
        let with_cond = ps.with_cond(Conjunction::new(vec![Clause::new(
            ScalarExpr::attr("Person", "Name"),
            CompareOp::Ne,
            ScalarExpr::Const(eve_relational::Value::Null),
        )]));
        assert!(with_cond.to_string().contains("WHERE"));
    }

    #[test]
    fn pc_touches() {
        let pc = PartialComplete::new(
            "PC1",
            ProjSel::new("Person", vec![AttrName::new("Name")]),
            ExtentOp::Superset,
            ProjSel::new("Customer", vec![AttrName::new("Name")]),
        );
        assert!(pc.touches(&RelName::new("Person")));
        assert!(pc.touches(&RelName::new("Customer")));
        assert!(!pc.touches(&RelName::new("Tour")));
    }
}
