//! MKB evolution — Step 1 of the three-step view-synchronization strategy
//! (§4 of the paper):
//!
//! > "Given a capability change ch, EVE system will first evolve the meta
//! > knowledge base MKB into MKB' by detecting and modifying the affected
//! > MISD descriptions found in the MKB."
//!
//! [`evolve`] is pure: it consumes the current MKB state by reference and
//! returns the evolved `MKB'`. CVS deliberately keeps *both* states: the
//! replacement search (Def. 3) looks up function-of constraints in the old
//! MKB (they encode semantic knowledge that outlives the deleted
//! relation) while candidate expressions must be built from `MKB'` only.
//!
//! Evolution rules per operator:
//!
//! * **add-relation / add-attribute** — insert, checking for collisions;
//! * **delete-relation R** — drop R's description and every constraint
//!   touching R (join constraints with endpoint R, function-of constraints
//!   whose target or source mentions R, PC and order constraints over R);
//! * **delete-attribute R.A** — drop A from R's description; drop every
//!   join/function-of/PC constraint referencing R.A; truncate order
//!   constraints at R.A (the prefix ordering remains valid);
//! * **rename-relation / rename-attribute** — rewrite the description and
//!   every constraint in place; views are *not* rewritten here (the paper
//!   treats renames as non-invalidating; the synchronizer in `eve-core`
//!   transparently rewrites view references).

use crate::change::CapabilityChange;
use crate::error::MisdError;
use crate::mkb::MetaKnowledgeBase;
use eve_relational::{AttrName, AttrRef, RelName, ScalarExpr};

/// Apply a capability change, producing the evolved `MKB'`.
pub fn evolve(
    mkb: &MetaKnowledgeBase,
    change: &CapabilityChange,
) -> Result<MetaKnowledgeBase, MisdError> {
    let mut out = mkb.clone();
    match change {
        CapabilityChange::AddRelation(desc) => {
            out.add_relation(desc.clone())?;
        }
        CapabilityChange::DeleteRelation(rel) => {
            if out.remove_relation_entry(rel).is_none() {
                return Err(MisdError::UnknownRelation(rel.clone()));
            }
            out.retain_joins(|j| !j.touches(rel));
            out.retain_funcofs(|f| !f.touches(rel));
            out.retain_pcs(|p| !p.touches(rel));
            out.retain_orders(|o| &o.relation != rel);
        }
        CapabilityChange::RenameRelation { from, to } => {
            rename_relation(&mut out, from, to)?;
        }
        CapabilityChange::AddAttribute { relation, attr } => {
            let desc = out
                .relation_mut(relation)
                .ok_or_else(|| MisdError::UnknownRelation(relation.clone()))?;
            if desc.has_attr(&attr.name) {
                return Err(MisdError::NameCollision(format!(
                    "{relation}.{}",
                    attr.name
                )));
            }
            desc.attrs.push(attr.clone());
        }
        CapabilityChange::DeleteAttribute(attr) => {
            delete_attribute(&mut out, attr)?;
        }
        CapabilityChange::RenameAttribute { from, to } => {
            rename_attribute(&mut out, from, to)?;
        }
    }
    Ok(out)
}

fn rename_relation(
    out: &mut MetaKnowledgeBase,
    from: &RelName,
    to: &RelName,
) -> Result<(), MisdError> {
    if out.contains_relation(to) {
        return Err(MisdError::NameCollision(to.to_string()));
    }
    let mut desc = out
        .remove_relation_entry(from)
        .ok_or_else(|| MisdError::UnknownRelation(from.clone()))?;
    desc.name = to.clone();
    out.reinsert_relation(desc);

    for j in out.joins_mut() {
        if &j.left == from {
            j.left = to.clone();
        }
        if &j.right == from {
            j.right = to.clone();
        }
        j.predicate = j.predicate.rename_relation(from, to);
    }
    for f in out.funcofs_mut() {
        if &f.target.relation == from {
            f.target = AttrRef::new(to.clone(), f.target.attr.clone());
        }
        f.expr = f.expr.rename_relation(from, to);
    }
    for p in out.pcs_mut() {
        for side in [&mut p.left, &mut p.right] {
            if &side.relation == from {
                side.relation = to.clone();
            }
            side.cond = side.cond.rename_relation(from, to);
        }
    }
    for o in out.orders_mut() {
        if &o.relation == from {
            o.relation = to.clone();
        }
    }
    Ok(())
}

fn delete_attribute(out: &mut MetaKnowledgeBase, attr: &AttrRef) -> Result<(), MisdError> {
    let desc = out
        .relation_mut(&attr.relation)
        .ok_or_else(|| MisdError::UnknownRelation(attr.relation.clone()))?;
    if !desc.remove_attr(&attr.attr) {
        return Err(MisdError::UnknownAttribute(attr.clone()));
    }
    out.retain_joins(|j| !j.attrs().contains(attr));
    out.retain_funcofs(|f| &f.target != attr && !f.source_attrs().contains(attr));
    out.retain_pcs(|p| {
        let mentions = |side: &crate::constraint::ProjSel| {
            side.attr_refs().contains(attr) || side.cond.attrs().contains(attr)
        };
        !mentions(&p.left) && !mentions(&p.right)
    });
    // Order constraints: ordering by a prefix of the original attribute
    // list still holds, so truncate at the deleted attribute.
    for o in out.orders_mut() {
        if o.relation == attr.relation {
            if let Some(pos) = o.attrs.iter().position(|a| a == &attr.attr) {
                o.attrs.truncate(pos);
            }
        }
    }
    out.retain_orders(|o| !o.attrs.is_empty());
    Ok(())
}

fn rename_attribute(
    out: &mut MetaKnowledgeBase,
    from: &AttrRef,
    to: &AttrName,
) -> Result<(), MisdError> {
    let desc = out
        .relation_mut(&from.relation)
        .ok_or_else(|| MisdError::UnknownRelation(from.relation.clone()))?;
    if desc.has_attr(to) {
        return Err(MisdError::NameCollision(format!("{}.{to}", from.relation)));
    }
    if !desc.rename_attr(&from.attr, to.clone()) {
        return Err(MisdError::UnknownAttribute(from.clone()));
    }
    let new_ref = ScalarExpr::Attr(AttrRef::new(from.relation.clone(), to.clone()));
    for j in out.joins_mut() {
        j.predicate = j.predicate.substitute(from, &new_ref);
    }
    for f in out.funcofs_mut() {
        if &f.target == from {
            f.target = AttrRef::new(from.relation.clone(), to.clone());
        }
        f.expr = f.expr.substitute(from, &new_ref);
    }
    for p in out.pcs_mut() {
        for side in [&mut p.left, &mut p.right] {
            if side.relation == from.relation {
                for a in &mut side.attrs {
                    if a == &from.attr {
                        *a = to.clone();
                    }
                }
            }
            side.cond = side.cond.substitute(from, &new_ref);
        }
    }
    for o in out.orders_mut() {
        if o.relation == from.relation {
            for a in &mut o.attrs {
                if a == &from.attr {
                    *a = to.clone();
                }
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::constraint::{
        ExtentOp, FunctionOf, JoinConstraint, OrderIntegrity, PartialComplete, ProjSel,
    };
    use crate::description::RelationDescription;
    use eve_relational::{AttributeDef, Clause, Conjunction, DataType};

    /// A three-relation MKB with one constraint of every kind.
    fn mkb() -> MetaKnowledgeBase {
        let mut m = MetaKnowledgeBase::new();
        m.add_relation(RelationDescription::new(
            "IS1",
            "Customer",
            vec![
                AttributeDef::new("Name", DataType::Str),
                AttributeDef::new("Age", DataType::Int),
            ],
        ))
        .unwrap();
        m.add_relation(RelationDescription::new(
            "IS4",
            "FlightRes",
            vec![
                AttributeDef::new("PName", DataType::Str),
                AttributeDef::new("Dest", DataType::Str),
            ],
        ))
        .unwrap();
        m.add_relation(RelationDescription::new(
            "IS5",
            "Accident-Ins",
            vec![
                AttributeDef::new("Holder", DataType::Str),
                AttributeDef::new("Birthday", DataType::Date),
            ],
        ))
        .unwrap();
        m.add_join(JoinConstraint::new(
            "JC1",
            "Customer",
            "FlightRes",
            Conjunction::new(vec![Clause::eq_attrs(
                AttrRef::new("Customer", "Name"),
                AttrRef::new("FlightRes", "PName"),
            )]),
        ))
        .unwrap();
        m.add_join(JoinConstraint::new(
            "JC6",
            "FlightRes",
            "Accident-Ins",
            Conjunction::new(vec![Clause::eq_attrs(
                AttrRef::new("FlightRes", "PName"),
                AttrRef::new("Accident-Ins", "Holder"),
            )]),
        ))
        .unwrap();
        m.add_function_of(FunctionOf::new(
            "F2",
            AttrRef::new("Customer", "Name"),
            ScalarExpr::attr("Accident-Ins", "Holder"),
        ))
        .unwrap();
        m.add_pc(PartialComplete::new(
            "PC1",
            ProjSel::new("Accident-Ins", vec![AttrName::new("Holder")]),
            ExtentOp::Superset,
            ProjSel::new("Customer", vec![AttrName::new("Name")]),
        ))
        .unwrap();
        m.add_order(OrderIntegrity {
            relation: RelName::new("Customer"),
            attrs: vec![AttrName::new("Name"), AttrName::new("Age")],
        })
        .unwrap();
        m
    }

    #[test]
    fn delete_relation_cascades() {
        let m = mkb();
        let m2 = evolve(
            &m,
            &CapabilityChange::DeleteRelation(RelName::new("Customer")),
        )
        .unwrap();
        assert!(!m2.contains_relation(&RelName::new("Customer")));
        // JC1 (endpoint Customer), F2 (target Customer.Name), PC1 and the
        // order constraint all vanish; JC6 survives.
        assert_eq!(m2.joins().len(), 1);
        assert_eq!(m2.joins()[0].id, "JC6");
        assert!(m2.function_ofs().is_empty());
        assert!(m2.pcs().is_empty());
        assert!(m2.orders().is_empty());
        // Original untouched.
        assert_eq!(m.joins().len(), 2);
    }

    #[test]
    fn delete_unknown_relation_errors() {
        assert!(matches!(
            evolve(&mkb(), &CapabilityChange::DeleteRelation(RelName::new("X"))),
            Err(MisdError::UnknownRelation(_))
        ));
    }

    #[test]
    fn delete_attribute_cascades() {
        let m = mkb();
        let m2 = evolve(
            &m,
            &CapabilityChange::DeleteAttribute(AttrRef::new("Customer", "Name")),
        )
        .unwrap();
        let c = m2.relation(&RelName::new("Customer")).unwrap();
        assert!(!c.has_attr(&AttrName::new("Name")));
        // JC1 references Customer.Name → dropped; JC6 survives.
        assert_eq!(m2.joins().len(), 1);
        // F2 targets Customer.Name → dropped.
        assert!(m2.function_ofs().is_empty());
        // PC1 projects Customer.Name → dropped.
        assert!(m2.pcs().is_empty());
        // Order (Name, Age) truncated at Name → empty → dropped.
        assert!(m2.orders().is_empty());
    }

    #[test]
    fn delete_attribute_truncates_order_suffix() {
        let m = mkb();
        let m2 = evolve(
            &m,
            &CapabilityChange::DeleteAttribute(AttrRef::new("Customer", "Age")),
        )
        .unwrap();
        assert_eq!(m2.orders().len(), 1);
        assert_eq!(m2.orders()[0].attrs.len(), 1); // (Name) prefix kept
    }

    #[test]
    fn rename_relation_rewrites_constraints() {
        let m = mkb();
        let m2 = evolve(
            &m,
            &CapabilityChange::RenameRelation {
                from: RelName::new("Customer"),
                to: RelName::new("Client"),
            },
        )
        .unwrap();
        assert!(m2.contains_relation(&RelName::new("Client")));
        assert!(!m2.contains_relation(&RelName::new("Customer")));
        let jc1 = m2.join_by_id("JC1").unwrap();
        assert_eq!(jc1.left, RelName::new("Client"));
        assert!(jc1.attrs().contains(&AttrRef::new("Client", "Name")));
        assert_eq!(
            m2.funcof_by_id("F2").unwrap().target,
            AttrRef::new("Client", "Name")
        );
        assert_eq!(m2.pcs()[0].right.relation, RelName::new("Client"));
        assert_eq!(m2.orders()[0].relation, RelName::new("Client"));
    }

    #[test]
    fn rename_relation_collision_errors() {
        assert!(matches!(
            evolve(
                &mkb(),
                &CapabilityChange::RenameRelation {
                    from: RelName::new("Customer"),
                    to: RelName::new("FlightRes"),
                }
            ),
            Err(MisdError::NameCollision(_))
        ));
    }

    #[test]
    fn rename_attribute_rewrites_constraints() {
        let m = mkb();
        let m2 = evolve(
            &m,
            &CapabilityChange::RenameAttribute {
                from: AttrRef::new("Customer", "Name"),
                to: AttrName::new("FullName"),
            },
        )
        .unwrap();
        let jc1 = m2.join_by_id("JC1").unwrap();
        assert!(jc1.attrs().contains(&AttrRef::new("Customer", "FullName")));
        assert_eq!(
            m2.funcof_by_id("F2").unwrap().target,
            AttrRef::new("Customer", "FullName")
        );
        assert_eq!(m2.pcs()[0].right.attrs[0], AttrName::new("FullName"));
        assert_eq!(m2.orders()[0].attrs[0], AttrName::new("FullName"));
    }

    #[test]
    fn add_attribute_and_collision() {
        let m = mkb();
        let m2 = evolve(
            &m,
            &CapabilityChange::AddAttribute {
                relation: RelName::new("Customer"),
                attr: AttributeDef::new("Phone", DataType::Str),
            },
        )
        .unwrap();
        assert!(m2
            .relation(&RelName::new("Customer"))
            .unwrap()
            .has_attr(&AttrName::new("Phone")));
        assert!(matches!(
            evolve(
                &m2,
                &CapabilityChange::AddAttribute {
                    relation: RelName::new("Customer"),
                    attr: AttributeDef::new("Phone", DataType::Str),
                }
            ),
            Err(MisdError::NameCollision(_))
        ));
    }

    #[test]
    fn add_relation() {
        let m = mkb();
        let m2 = evolve(
            &m,
            &CapabilityChange::AddRelation(RelationDescription::new(
                "IS9",
                "Person",
                vec![AttributeDef::new("Name", DataType::Str)],
            )),
        )
        .unwrap();
        assert_eq!(m2.relation_count(), 4);
    }
}
