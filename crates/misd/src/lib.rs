//! # eve-misd
//!
//! **MISD** — the *Model for Information Source Description* of the EVE
//! framework (§2 of the CVS paper) — and the **meta knowledge base (MKB)**
//! that stores IS descriptions.
//!
//! An information source exports a set of relations. A relation
//! description carries three kinds of information:
//!
//! 1. **data structure and content** — the relation's attributes with
//!    their types (type-integrity constraints `TC`, Fig. 1) and optional
//!    order-integrity constraints `OC`;
//! 2. **query capabilities** — which operations the IS can answer;
//! 3. **semantic inter-relationships** with relations of *other* ISs:
//!    * **join constraints** `JC_{R1,R2}` — a default, semantically
//!      meaningful way to combine two relations,
//!    * **function-of constraints** `F_{R1.A, R2.B} = (R1.A = f(R2.B))` —
//!      how to compute one attribute from another,
//!    * **partial/complete constraints** `PC_{R1,R2}` — containment
//!      relationships between projections of selections of two relations.
//!
//! The MKB is the sole knowledge the CVS algorithm consults when evolving
//! a view. This crate also implements **Step 1** of the three-step view
//! synchronization strategy (§4): evolving the MKB itself under the six
//! capability-change operators ([`evolve`]), and a textual MISD format
//! ([`parse_misd`]) so meta knowledge bases can be written as fixtures.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod change;
pub mod constraint;
pub mod description;
pub mod diff;
pub mod error;
pub mod evolution;
pub mod mkb;
pub mod text;
pub mod typecheck;

pub use change::CapabilityChange;
pub use constraint::{
    ExtentOp, FunctionOf, JoinConstraint, OrderIntegrity, PartialComplete, ProjSel,
};
pub use description::{Capabilities, RelationDescription};
pub use diff::{infer_changes, MkbDiff};
pub use error::MisdError;
pub use evolution::evolve;
pub use mkb::MetaKnowledgeBase;
pub use text::{parse_misd, render_misd};
pub use typecheck::{check_mkb, check_view};
