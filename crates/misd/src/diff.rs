//! Inferring a capability-change log from two MKB states.
//!
//! The paper assumes ISs *announce* their capability changes (§4 Step 1
//! reacts to a given `ch`). In a large-scale information space, an
//! autonomous IS more realistically just publishes a fresh schema
//! snapshot; [`infer_changes`] reconstructs an equivalent change
//! sequence by diffing the described relations:
//!
//! * relations present only in `old` → `delete-relation`;
//! * relations present only in `new` → `add-relation`;
//! * within a common relation, attributes present only in `old` →
//!   `delete-attribute`; only in `new` → `add-attribute`.
//!
//! Renames are *not* inferred (a rename is observationally a
//! delete + add; reconstructing intent would require lineage the
//! snapshot does not carry — callers that know better can pre-process).
//! Deletions are emitted before additions so that a rename-as-delete+add
//! never collides with itself.
//!
//! Constraint differences are not part of the change vocabulary: the
//! paper's six operators only describe exported schema. Constraints of
//! the new snapshot that the evolved MKB lacks are reported separately
//! by [`MkbDiff::missing_constraints`] so the administrator can merge
//! them.

use crate::change::CapabilityChange;
use crate::mkb::MetaKnowledgeBase;

/// The result of diffing two MKB states.
#[derive(Debug, Clone, Default)]
pub struct MkbDiff {
    /// A change sequence that evolves the old schema into the new one
    /// (deletions first, then additions).
    pub changes: Vec<CapabilityChange>,
    /// Ids of constraints present in the new snapshot but not derivable
    /// by evolving the old MKB (constraint vocabulary is outside the six
    /// change operators).
    pub missing_constraints: Vec<String>,
}

impl MkbDiff {
    /// No schema difference at all?
    pub fn is_empty(&self) -> bool {
        self.changes.is_empty() && self.missing_constraints.is_empty()
    }
}

/// Diff two MKB states into a change log (see module docs).
pub fn infer_changes(old: &MetaKnowledgeBase, new: &MetaKnowledgeBase) -> MkbDiff {
    let mut deletions = Vec::new();
    let mut additions = Vec::new();

    for desc in old.relations() {
        match new.relation(&desc.name) {
            None => deletions.push(CapabilityChange::DeleteRelation(desc.name.clone())),
            Some(new_desc) => {
                for attr in &desc.attrs {
                    if !new_desc.has_attr(&attr.name) {
                        deletions.push(CapabilityChange::DeleteAttribute(
                            eve_relational::AttrRef::new(desc.name.clone(), attr.name.clone()),
                        ));
                    }
                }
                for attr in &new_desc.attrs {
                    if !desc.has_attr(&attr.name) {
                        additions.push(CapabilityChange::AddAttribute {
                            relation: desc.name.clone(),
                            attr: attr.clone(),
                        });
                    }
                }
            }
        }
    }
    for desc in new.relations() {
        if old.relation(&desc.name).is_none() {
            additions.push(CapabilityChange::AddRelation(desc.clone()));
        }
    }

    let mut changes = deletions;
    changes.extend(additions);

    // Constraints of the new snapshot whose ids the old MKB does not
    // carry at all (ids surviving evolution keep their identity).
    let mut missing_constraints = Vec::new();
    for j in new.joins() {
        if old.join_by_id(&j.id).is_none() {
            missing_constraints.push(j.id.clone());
        }
    }
    for f in new.function_ofs() {
        if old.funcof_by_id(&f.id).is_none() {
            missing_constraints.push(f.id.clone());
        }
    }
    for p in new.pcs() {
        if !old.pcs().iter().any(|q| q.id == p.id) {
            missing_constraints.push(p.id.clone());
        }
    }

    MkbDiff {
        changes,
        missing_constraints,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::evolution::evolve;
    use crate::text::parse_misd;
    use eve_relational::RelName;

    fn old_mkb() -> MetaKnowledgeBase {
        parse_misd(
            "RELATION IS1 A(x int, y int)
             RELATION IS2 B(k int)
             RELATION IS3 C(k int)
             JOIN J1: A, B ON A.x = B.k",
        )
        .unwrap()
    }

    #[test]
    fn empty_diff_for_identical() {
        let m = old_mkb();
        assert!(infer_changes(&m, &m).is_empty());
    }

    #[test]
    fn detects_all_schema_changes() {
        let new = parse_misd(
            // C gone, D appeared, A lost y and gained z.
            "RELATION IS1 A(x int, z str)
             RELATION IS2 B(k int)
             RELATION IS9 D(q int)",
        )
        .unwrap();
        let diff = infer_changes(&old_mkb(), &new);
        let rendered: Vec<String> = diff.changes.iter().map(|c| c.to_string()).collect();
        assert!(
            rendered.contains(&"delete-relation C".to_string()),
            "{rendered:?}"
        );
        assert!(rendered.contains(&"delete-attribute A.y".to_string()));
        assert!(rendered.iter().any(|s| s.starts_with("add-attribute A.z")));
        assert!(rendered.contains(&"add-relation D".to_string()));
        // Deletions come before additions.
        let first_add = diff
            .changes
            .iter()
            .position(|c| !c.is_destructive())
            .unwrap();
        assert!(diff.changes[..first_add]
            .iter()
            .all(CapabilityChange::is_destructive));
    }

    #[test]
    fn applying_inferred_changes_converges_schemas() {
        let new = parse_misd(
            "RELATION IS1 A(x int, z str)
             RELATION IS2 B(k int)
             RELATION IS9 D(q int)",
        )
        .unwrap();
        let old = old_mkb();
        let diff = infer_changes(&old, &new);
        let mut evolved = old;
        for ch in &diff.changes {
            evolved = evolve(&evolved, ch).unwrap_or_else(|e| panic!("{ch}: {e}"));
        }
        // Schemas converge (constraints aside).
        for desc in new.relations() {
            let got = evolved.relation(&desc.name).expect("relation exists");
            assert_eq!(got.attrs, desc.attrs, "{}", desc.name);
        }
        assert_eq!(evolved.relation_count(), new.relation_count());
        // Re-diffing the schemas is change-free.
        assert!(infer_changes(&evolved, &new).changes.is_empty());
    }

    #[test]
    fn missing_constraints_reported() {
        let new = parse_misd(
            "RELATION IS1 A(x int, y int)
             RELATION IS2 B(k int)
             RELATION IS3 C(k int)
             JOIN J1: A, B ON A.x = B.k
             JOIN J2: B, C ON B.k = C.k
             FUNCOF F1: A.x = B.k",
        )
        .unwrap();
        let diff = infer_changes(&old_mkb(), &new);
        assert!(diff.changes.is_empty());
        assert_eq!(
            diff.missing_constraints,
            vec!["J2".to_string(), "F1".to_string()]
        );
    }

    #[test]
    fn rename_appears_as_delete_plus_add() {
        let new = parse_misd(
            "RELATION IS1 Renamed(x int, y int)
             RELATION IS2 B(k int)
             RELATION IS3 C(k int)",
        )
        .unwrap();
        let diff = infer_changes(&old_mkb(), &new);
        let rendered: Vec<String> = diff.changes.iter().map(|c| c.to_string()).collect();
        assert!(rendered.contains(&"delete-relation A".to_string()));
        assert!(rendered.contains(&"add-relation Renamed".to_string()));
        let _ = RelName::new("A");
    }
}
