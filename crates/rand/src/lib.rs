//! Workspace-local shim for the subset of the `rand` 0.8 API used by EVE.
//!
//! The build environment has no access to crates.io, so the workspace
//! vendors this tiny deterministic PRNG instead of the real `rand`
//! crate. It provides exactly what the repository uses:
//!
//! * [`rngs::StdRng`] / [`rngs::SmallRng`] — a xoshiro256++ generator
//!   seeded via SplitMix64;
//! * [`SeedableRng::seed_from_u64`];
//! * [`Rng::gen_range`] over half-open integer ranges;
//! * [`Rng::gen_bool`];
//! * [`Rng::gen`] for a few primitive types.
//!
//! All streams are deterministic in the seed, which is exactly what the
//! workload generators and soak tests rely on. The statistical quality of
//! xoshiro256++ is more than sufficient for test-data generation; this is
//! NOT a cryptographic generator.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

/// Construct a generator from a seed.
pub trait SeedableRng: Sized {
    /// Create a generator whose stream is a pure function of `state`.
    fn seed_from_u64(state: u64) -> Self;
}

/// The user-facing generator interface (subset of `rand::Rng`).
pub trait Rng: RngCore {
    /// Uniform sample from a range (half-open `a..b` or inclusive
    /// `a..=b`). The output type parameter drives literal inference,
    /// mirroring upstream `Rng::gen_range`.
    fn gen_range<T, R: SampleRange<T>>(&mut self, range: R) -> T
    where
        Self: Sized,
    {
        range.sample(self)
    }

    /// Bernoulli trial with success probability `p` (`0.0 ≤ p ≤ 1.0`).
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!((0.0..=1.0).contains(&p), "gen_bool: p out of range: {p}");
        // 53 uniform mantissa bits, compared against p.
        let unit = (self.next_u64() >> 11) as f64 * (1.0 / ((1u64 << 53) as f64));
        unit < p
    }

    /// Sample a value of a primitive type over its full domain.
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }
}

/// The raw 64-bit generator core (subset of `rand::RngCore`).
pub trait RngCore {
    /// Next 64 uniformly distributed bits.
    fn next_u64(&mut self) -> u64;
}

impl<T: RngCore> Rng for T {}

/// Types samplable over their full domain via [`Rng::gen`].
pub trait Standard: Sized {
    /// Sample one value.
    fn sample<R: RngCore>(rng: &mut R) -> Self;
}

impl Standard for bool {
    fn sample<R: RngCore>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for u64 {
    fn sample<R: RngCore>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn sample<R: RngCore>(rng: &mut R) -> Self {
        (rng.next_u64() >> 32) as u32
    }
}

impl Standard for f64 {
    fn sample<R: RngCore>(rng: &mut R) -> Self {
        (rng.next_u64() >> 11) as f64 * (1.0 / ((1u64 << 53) as f64))
    }
}

/// Ranges usable with [`Rng::gen_range`] to produce a `T`.
pub trait SampleRange<T> {
    /// Uniform sample from the range.
    fn sample<R: RngCore>(self, rng: &mut R) -> T;
}

/// Uniform `[0, bound)` via Lemire's multiply-shift reduction (unbiased
/// enough for test-data generation; the tiny modulo bias of the plain
/// fallback would also have been acceptable).
fn bounded(rng: &mut impl RngCore, bound: u64) -> u64 {
    debug_assert!(bound > 0);
    ((rng.next_u64() as u128 * bound as u128) >> 64) as u64
}

macro_rules! impl_int_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample<R: RngCore>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + bounded(rng, span) as i128) as $t
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample<R: RngCore>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "gen_range: empty range");
                let span = (end as i128 - start as i128) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                (start as i128 + bounded(rng, span + 1) as i128) as $t
            }
        }
    )*};
}

impl_int_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleRange<f64> for core::ops::Range<f64> {
    fn sample<R: RngCore>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "gen_range: empty range");
        let unit = (rng.next_u64() >> 11) as f64 * (1.0 / ((1u64 << 53) as f64));
        self.start + unit * (self.end - self.start)
    }
}

impl SampleRange<f64> for core::ops::RangeInclusive<f64> {
    fn sample<R: RngCore>(self, rng: &mut R) -> f64 {
        let (start, end) = (*self.start(), *self.end());
        assert!(start <= end, "gen_range: empty range");
        // The closed upper bound is hit with probability ~2^-53; treating
        // the interval as half-open is indistinguishable in practice.
        let unit = (rng.next_u64() >> 11) as f64 * (1.0 / ((1u64 << 53) as f64));
        start + unit * (end - start)
    }
}

/// Generator implementations.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// xoshiro256++ seeded through SplitMix64 — stands in for
    /// `rand::rngs::StdRng` (deterministic in the seed, like
    /// `StdRng::seed_from_u64`, though the stream differs from upstream).
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    /// Alias kept for API compatibility: upstream `SmallRng` is also a
    /// xoshiro variant.
    pub type SmallRng = StdRng;

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            let s = [
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
            ];
            StdRng { s }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_in_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        let xs: Vec<u64> = (0..16).map(|_| a.gen_range(0u64..1_000_000)).collect();
        let ys: Vec<u64> = (0..16).map(|_| b.gen_range(0u64..1_000_000)).collect();
        assert_eq!(xs, ys);
        let mut c = StdRng::seed_from_u64(43);
        let zs: Vec<u64> = (0..16).map(|_| c.gen_range(0u64..1_000_000)).collect();
        assert_ne!(xs, zs);
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let v = rng.gen_range(-5i64..5);
            assert!((-5..5).contains(&v));
            let u = rng.gen_range(0usize..3);
            assert!(u < 3);
            let f = rng.gen_range(0.0f64..1.0);
            assert!((0.0..1.0).contains(&f));
            let i = rng.gen_range(2i32..=4);
            assert!((2..=4).contains(&i));
        }
    }

    #[test]
    fn gen_bool_edges_and_distribution() {
        let mut rng = StdRng::seed_from_u64(1);
        assert!(!(0..100).any(|_| rng.gen_bool(0.0)));
        assert!((0..100).all(|_| rng.gen_bool(1.0)));
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.25)).count();
        assert!((2000..3000).contains(&hits), "{hits}");
    }
}
