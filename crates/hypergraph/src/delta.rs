//! Incremental hypergraph maintenance: apply one capability change as a
//! typed [`GraphDelta`] instead of rebuilding the graph from scratch.
//!
//! Every derived structure of [`Hypergraph`] — interner, CSR adjacency,
//! SoA endpoints, join-id ranks, connected components — is patched with
//! integer work proportional to the touched region; no relation name is
//! re-hashed and no join-id string is re-sorted. The correctness
//! contract is *rebuild equivalence*: `h.apply_delta(d)` must be
//! indistinguishable from `Hypergraph::from_parts` over the mutated
//! `(relations, joins)` — the property tests below compare every
//! internal array.
//!
//! Two structural facts keep the patch logic small:
//!
//! * **No capability change ever adds a join edge.** Evolution only
//!   inserts descriptions (`add-*`), drops constraints (`delete-*`) or
//!   rewrites them in place (`rename-*`), so components can only split,
//!   never merge — a removed vertex/edge triggers a split-recheck BFS
//!   *inside the affected component only*, every other component carries
//!   its label.
//! * **Join-id ranks only need to be order-preserving, not dense.** A
//!   subset of the old ranks compares exactly like the corresponding
//!   subset of id strings, so deletions carry ranks verbatim.

use crate::graph::{build_csr, renumber_components, Hypergraph};
use crate::intern::RelId;
use eve_misd::JoinConstraint;
use eve_relational::{AttrName, AttrRef, RelName, ScalarExpr};
use std::collections::{BTreeSet, VecDeque};
use std::sync::Arc;

/// One capability change projected onto a single hypergraph, in terms of
/// the graph's own vocabulary (vertices and join edges).
///
/// The six MKB capability changes map onto these as: `add-relation` →
/// [`GraphDelta::AddVertex`], `delete-relation` →
/// [`GraphDelta::RemoveVertex`], `rename-relation` →
/// [`GraphDelta::RenameVertex`], `delete-attribute` →
/// [`GraphDelta::RemoveAttrEdges`], `rename-attribute` →
/// [`GraphDelta::RenameAttr`], and `add-attribute` →
/// [`GraphDelta::None`] (a new attribute can appear in no existing join
/// constraint).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum GraphDelta {
    /// The change does not touch this graph.
    None,
    /// A new (isolated) relation vertex.
    AddVertex(RelName),
    /// Erase a relation vertex and every incident join edge. A no-op
    /// when the vertex is absent (e.g. a non-join-capable relation in
    /// the capability-filtered graph).
    RemoveVertex(RelName),
    /// Rename a relation vertex; join predicates are rewritten to match
    /// (mirroring `eve_misd::evolve`). When `from` is not a vertex the
    /// topology is untouched and only predicates are rewritten.
    RenameVertex {
        /// Old vertex name.
        from: RelName,
        /// New vertex name.
        to: RelName,
    },
    /// Drop every join edge whose predicate mentions the attribute
    /// (`delete-attribute` semantics).
    RemoveAttrEdges(AttrRef),
    /// Rewrite every join predicate substituting the attribute's new
    /// name (`rename-attribute` semantics). Topology is unchanged.
    RenameAttr {
        /// Old attribute reference.
        from: AttrRef,
        /// New attribute name (same relation).
        to: AttrName,
    },
}

/// Recompute component labels after a vertex/edge removal: vertices with
/// `carry[v] = Some(label)` keep their old component, `None` vertices
/// (the split-recheck region) are re-labelled by a BFS seeded in
/// ascending id order with fresh labels `>= old_count`. The raw labels
/// are then renumbered canonically (ascending by smallest member id),
/// reproducing exactly what a from-scratch BFS would assign.
fn scoped_components(
    n: usize,
    adj_offsets: &[u32],
    adj_targets: &[RelId],
    carry: &[Option<u32>],
    old_count: u32,
) -> (Vec<u32>, u32) {
    let mut raw = vec![u32::MAX; n];
    for (v, c) in carry.iter().enumerate() {
        if let Some(label) = c {
            raw[v] = *label;
        }
    }
    let mut next = old_count;
    let mut queue: VecDeque<RelId> = VecDeque::new();
    for v in 0..n {
        if raw[v] != u32::MAX {
            continue;
        }
        raw[v] = next;
        queue.push_back(v as RelId);
        while let Some(r) = queue.pop_front() {
            let (lo, hi) = (
                adj_offsets[r as usize] as usize,
                adj_offsets[r as usize + 1] as usize,
            );
            for &t in &adj_targets[lo..hi] {
                if raw[t as usize] == u32::MAX {
                    raw[t as usize] = next;
                    queue.push_back(t);
                }
            }
        }
        next += 1;
    }
    renumber_components(&raw, next as usize)
}

impl Hypergraph {
    /// Apply one [`GraphDelta`], producing the post-change graph. The
    /// result is equivalent (every derived array included) to rebuilding
    /// via [`Hypergraph::from_parts`] over the mutated parts, but the
    /// work is scoped: only the touched component is re-examined and no
    /// string is hashed or rank-sorted.
    pub fn apply_delta(&self, delta: &GraphDelta) -> Hypergraph {
        match delta {
            GraphDelta::None => self.clone(),
            GraphDelta::AddVertex(name) => self.with_vertex_added(name),
            GraphDelta::RemoveVertex(name) => self.with_vertex_removed(name),
            GraphDelta::RenameVertex { from, to } => self.with_vertex_renamed(from, to),
            GraphDelta::RemoveAttrEdges(attr) => self.with_attr_edges_removed(attr),
            GraphDelta::RenameAttr { from, to } => self.with_attr_renamed(from, to),
        }
    }

    /// Add an isolated vertex: splice an empty CSR row, shift ids `>=`
    /// the insertion point, and renumber component labels around the new
    /// singleton.
    fn with_vertex_added(&self, name: &RelName) -> Hypergraph {
        let Some((interner, new_id)) = self.interner.with_inserted(name) else {
            // Already a vertex (evolve would have rejected the change).
            return self.clone();
        };
        let n = interner.len();
        let bump = |v: RelId| if v >= new_id { v + 1 } else { v };
        let join_left: Vec<RelId> = self.join_left.iter().map(|&v| bump(v)).collect();
        let join_right: Vec<RelId> = self.join_right.iter().map(|&v| bump(v)).collect();

        let at = new_id as usize;
        let mut adj_offsets = Vec::with_capacity(n + 1);
        adj_offsets.extend_from_slice(&self.adj_offsets[..=at]);
        adj_offsets.push(self.adj_offsets[at]); // the new row is empty
        adj_offsets.extend_from_slice(&self.adj_offsets[at + 1..]);
        let adj_targets: Vec<RelId> = self.adj_targets.iter().map(|&v| bump(v)).collect();

        let mut raw = Vec::with_capacity(n);
        raw.extend_from_slice(&self.comp_of[..at]);
        raw.push(self.comp_count); // fresh singleton component
        raw.extend_from_slice(&self.comp_of[at..]);
        let (comp_of, comp_count) = renumber_components(&raw, self.comp_count as usize + 1);

        let mut relations = (*self.relations).clone();
        relations.insert(name.clone());
        Hypergraph {
            relations: Arc::new(relations),
            joins: Arc::clone(&self.joins),
            interner,
            adj_offsets,
            adj_targets,
            adj_edges: self.adj_edges.clone(),
            join_left,
            join_right,
            join_rank: self.join_rank.clone(),
            comp_of,
            comp_count,
        }
    }

    /// Erase a vertex and its incident edges; split-recheck only the
    /// component it belonged to.
    fn with_vertex_removed(&self, name: &RelName) -> Hypergraph {
        let Some((interner, rid)) = self.interner.with_removed(name) else {
            // Not a vertex here (filtered graph): nothing to erase.
            return self.clone();
        };
        let n = interner.len();
        let drop = |v: RelId| if v > rid { v - 1 } else { v };
        let mut joins = Vec::with_capacity(self.joins.len());
        let mut join_left = Vec::with_capacity(self.join_left.len());
        let mut join_right = Vec::with_capacity(self.join_right.len());
        let mut join_rank = Vec::with_capacity(self.join_rank.len());
        for e in 0..self.joins.len() {
            if self.join_left[e] == rid || self.join_right[e] == rid {
                continue;
            }
            joins.push(self.joins[e].clone());
            join_left.push(drop(self.join_left[e]));
            join_right.push(drop(self.join_right[e]));
            // Carried ranks are a subset of the old ranks: not dense, but
            // order-preserving, which is all comparisons need.
            join_rank.push(self.join_rank[e]);
        }
        let (adj_offsets, adj_targets, adj_edges) = build_csr(n, &join_left, &join_right);

        let affected = self.comp_of[rid as usize];
        let mut carry = Vec::with_capacity(n);
        for old_v in 0..self.interner.len() {
            if old_v == rid as usize {
                continue;
            }
            let label = self.comp_of[old_v];
            carry.push((label != affected).then_some(label));
        }
        let (comp_of, comp_count) =
            scoped_components(n, &adj_offsets, &adj_targets, &carry, self.comp_count);

        let mut relations = (*self.relations).clone();
        relations.remove(name);
        Hypergraph {
            relations: Arc::new(relations),
            joins: Arc::new(joins),
            interner,
            adj_offsets,
            adj_targets,
            adj_edges,
            join_left,
            join_right,
            join_rank,
            comp_of,
            comp_count,
        }
    }

    /// Rename a vertex: permute ids, carry component membership through
    /// the permutation, and rewrite join endpoints/predicates the way
    /// `eve_misd::evolve` does.
    fn with_vertex_renamed(&self, from: &RelName, to: &RelName) -> Hypergraph {
        // Predicates are rewritten on every edge regardless of vertex
        // membership, mirroring evolve (which rewrites all joins).
        let joins: Vec<JoinConstraint> = self
            .joins
            .iter()
            .map(|j| {
                let mut j2 = j.clone();
                if &j2.left == from {
                    j2.left = to.clone();
                }
                if &j2.right == from {
                    j2.right = to.clone();
                }
                j2.predicate = j2.predicate.rename_relation(from, to);
                j2
            })
            .collect();
        let Some((interner, old_id, new_id)) = self.interner.with_renamed(from, to) else {
            // `from` is not a vertex here (capability-filtered graph):
            // topology untouched, only predicates rewritten.
            let mut out = self.clone();
            out.joins = Arc::new(joins);
            return out;
        };
        let n = interner.len();
        // remove-at-old then insert-at-new: ids permute in two shifts.
        let perm = |v: RelId| -> RelId {
            if v == old_id {
                return new_id;
            }
            let mid = if v > old_id { v - 1 } else { v };
            if mid >= new_id {
                mid + 1
            } else {
                mid
            }
        };
        let join_left: Vec<RelId> = self.join_left.iter().map(|&v| perm(v)).collect();
        let join_right: Vec<RelId> = self.join_right.iter().map(|&v| perm(v)).collect();
        let (adj_offsets, adj_targets, adj_edges) = build_csr(n, &join_left, &join_right);

        // Membership is invariant under renaming; only the numbering
        // moves with the ids.
        let mut raw = vec![0u32; n];
        for (v, &label) in self.comp_of.iter().enumerate() {
            raw[perm(v as RelId) as usize] = label;
        }
        let (comp_of, comp_count) = renumber_components(&raw, self.comp_count as usize);

        let mut relations = (*self.relations).clone();
        relations.remove(from);
        relations.insert(to.clone());
        Hypergraph {
            relations: Arc::new(relations),
            joins: Arc::new(joins),
            interner,
            adj_offsets,
            adj_targets,
            adj_edges,
            join_left,
            join_right,
            join_rank: self.join_rank.clone(),
            comp_of,
            comp_count,
        }
    }

    /// Drop every edge mentioning `attr`; split-recheck only the
    /// components those edges lived in.
    fn with_attr_edges_removed(&self, attr: &AttrRef) -> Hypergraph {
        let keep: Vec<bool> = self.joins.iter().map(|j| !j.contains_attr(attr)).collect();
        if keep.iter().all(|&k| k) {
            return self.clone();
        }
        let n = self.interner.len();
        let mut joins = Vec::with_capacity(self.joins.len());
        let mut join_left = Vec::with_capacity(self.join_left.len());
        let mut join_right = Vec::with_capacity(self.join_right.len());
        let mut join_rank = Vec::with_capacity(self.join_rank.len());
        let mut affected: BTreeSet<u32> = BTreeSet::new();
        for (e, &kept) in keep.iter().enumerate() {
            if kept {
                joins.push(self.joins[e].clone());
                join_left.push(self.join_left[e]);
                join_right.push(self.join_right[e]);
                join_rank.push(self.join_rank[e]);
            } else {
                affected.insert(self.comp_of[self.join_left[e] as usize]);
            }
        }
        let (adj_offsets, adj_targets, adj_edges) = build_csr(n, &join_left, &join_right);
        let carry: Vec<Option<u32>> = self
            .comp_of
            .iter()
            .map(|label| (!affected.contains(label)).then_some(*label))
            .collect();
        let (comp_of, comp_count) =
            scoped_components(n, &adj_offsets, &adj_targets, &carry, self.comp_count);
        Hypergraph {
            relations: Arc::clone(&self.relations),
            joins: Arc::new(joins),
            interner: self.interner.clone(),
            adj_offsets,
            adj_targets,
            adj_edges,
            join_left,
            join_right,
            join_rank,
            comp_of,
            comp_count,
        }
    }

    /// Rewrite predicates for a renamed attribute. Topology, ids, ranks
    /// and components are all invariant — only the join constraint
    /// values change.
    fn with_attr_renamed(&self, from: &AttrRef, to: &AttrName) -> Hypergraph {
        let new_ref = ScalarExpr::Attr(AttrRef::new(from.relation.clone(), to.clone()));
        let joins = self
            .joins
            .iter()
            .map(|j| {
                let mut j2 = j.clone();
                j2.predicate = j2.predicate.substitute(from, &new_ref);
                j2
            })
            .collect();
        let mut out = self.clone();
        out.joins = Arc::new(joins);
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use eve_relational::{Clause, Conjunction};

    fn rel(n: &str) -> RelName {
        RelName::new(n)
    }

    fn jc(id: &str, l: &str, r: &str, la: &str, ra: &str) -> JoinConstraint {
        JoinConstraint::new(
            id,
            l,
            r,
            Conjunction::new(vec![Clause::eq_attrs(
                AttrRef::new(l, la),
                AttrRef::new(r, ra),
            )]),
        )
    }

    /// xorshift64* — deterministic, no external crates.
    struct Rng(u64);
    impl Rng {
        fn next(&mut self) -> u64 {
            let mut x = self.0;
            x ^= x >> 12;
            x ^= x << 25;
            x ^= x >> 27;
            self.0 = x;
            x.wrapping_mul(0x2545F4914F6CDD1D)
        }
        fn below(&mut self, n: usize) -> usize {
            (self.next() % n as u64) as usize
        }
    }

    /// The rebuild-equivalence oracle: every derived array of the
    /// delta-maintained graph must match the from-scratch build, except
    /// ranks, which only have to be order-isomorphic to the id strings.
    fn assert_equivalent(patched: &Hypergraph, rebuilt: &Hypergraph) {
        assert_eq!(patched.relations, rebuilt.relations);
        assert_eq!(patched.joins, rebuilt.joins);
        assert_eq!(patched.interner.names(), rebuilt.interner.names());
        assert_eq!(patched.join_left, rebuilt.join_left);
        assert_eq!(patched.join_right, rebuilt.join_right);
        assert_eq!(patched.adj_offsets, rebuilt.adj_offsets);
        assert_eq!(patched.adj_targets, rebuilt.adj_targets);
        assert_eq!(patched.adj_edges, rebuilt.adj_edges);
        assert_eq!(patched.comp_of, rebuilt.comp_of);
        assert_eq!(patched.comp_count, rebuilt.comp_count);
        for a in 0..patched.joins.len() {
            for b in 0..patched.joins.len() {
                assert_eq!(
                    patched.join_rank[a].cmp(&patched.join_rank[b]),
                    patched.joins[a].id.cmp(&patched.joins[b].id),
                    "rank order diverged from id order at ({a}, {b})"
                );
            }
        }
    }

    fn random_graph(rng: &mut Rng, rels: usize, joins: usize) -> Hypergraph {
        let names: Vec<RelName> = (0..rels).map(|i| rel(&format!("R{i:02}"))).collect();
        let mut edges = Vec::new();
        for e in 0..joins {
            let a = rng.below(rels);
            let b = rng.below(rels);
            if a == b {
                continue;
            }
            edges.push(jc(
                &format!("J{:02}", rng.below(joins)), // duplicate ids on purpose
                names[a].as_str(),
                names[b].as_str(),
                &format!("k{}", e % 3),
                &format!("k{}", e % 3),
            ));
        }
        Hypergraph::from_parts(names.into_iter().collect(), edges)
    }

    fn rebuild(h: &Hypergraph, delta: &GraphDelta) -> Hypergraph {
        // The oracle: mutate (relations, joins) by hand, then from_parts.
        let mut relations = (*h.relations).clone();
        let mut joins = (*h.joins).clone();
        match delta {
            GraphDelta::None => {}
            GraphDelta::AddVertex(n) => {
                relations.insert(n.clone());
            }
            GraphDelta::RemoveVertex(n) => {
                relations.remove(n);
                joins.retain(|j| !j.touches(n));
            }
            GraphDelta::RenameVertex { from, to } => {
                if relations.remove(from) {
                    relations.insert(to.clone());
                }
                for j in &mut joins {
                    if &j.left == from {
                        j.left = to.clone();
                    }
                    if &j.right == from {
                        j.right = to.clone();
                    }
                    j.predicate = j.predicate.rename_relation(from, to);
                }
            }
            GraphDelta::RemoveAttrEdges(attr) => {
                joins.retain(|j| !j.attrs().contains(attr));
            }
            GraphDelta::RenameAttr { from, to } => {
                let new_ref = ScalarExpr::Attr(AttrRef::new(from.relation.clone(), to.clone()));
                for j in &mut joins {
                    j.predicate = j.predicate.substitute(from, &new_ref);
                }
            }
        }
        Hypergraph::from_parts(relations, joins)
    }

    #[test]
    fn random_deltas_match_rebuild() {
        let mut rng = Rng(0x5EED_CAFE_F00D_0001);
        for round in 0..40 {
            let (rels, joins) = (3 + rng.below(10), rng.below(16));
            let mut h = random_graph(&mut rng, rels, joins);
            // Chain several deltas so later ones exercise carried state
            // (non-dense ranks, renumbered components).
            for step in 0..6 {
                let names: Vec<RelName> = h.relations.iter().cloned().collect();
                let delta = if names.is_empty() {
                    GraphDelta::AddVertex(rel(&format!("N{round}_{step}")))
                } else {
                    let pick = names[rng.below(names.len())].clone();
                    match rng.below(6) {
                        0 => GraphDelta::AddVertex(rel(&format!("N{round}_{step}"))),
                        1 => GraphDelta::RemoveVertex(pick),
                        2 => GraphDelta::RenameVertex {
                            from: pick,
                            to: rel(&format!("M{round}_{step}")),
                        },
                        3 => GraphDelta::RemoveAttrEdges(AttrRef::new(
                            pick.as_str(),
                            format!("k{}", rng.below(3)),
                        )),
                        4 => GraphDelta::RenameAttr {
                            from: AttrRef::new(pick.as_str(), format!("k{}", rng.below(3))),
                            to: AttrName::new(format!("x{round}_{step}")),
                        },
                        _ => GraphDelta::None,
                    }
                };
                let patched = h.apply_delta(&delta);
                let rebuilt = rebuild(&h, &delta);
                assert_equivalent(&patched, &rebuilt);
                h = patched;
            }
        }
    }

    #[test]
    fn remove_vertex_splits_component() {
        let rels: BTreeSet<RelName> = ["A", "B", "C", "D"].iter().map(|s| rel(s)).collect();
        let joins = vec![
            jc("J1", "A", "B", "k", "k"),
            jc("J2", "B", "C", "k", "k"),
            jc("J3", "C", "D", "k", "k"),
        ];
        let h = Hypergraph::from_parts(rels, joins);
        assert_eq!(h.component_count(), 1);
        let split = h.apply_delta(&GraphDelta::RemoveVertex(rel("B")));
        assert_equivalent(&split, &rebuild(&h, &GraphDelta::RemoveVertex(rel("B"))));
        // A is isolated; C—D survive as one component.
        assert_eq!(split.component_count(), 2);
        assert!(!split.is_connected_set(&[rel("A"), rel("C")].into_iter().collect()));
        assert!(split.is_connected_set(&[rel("C"), rel("D")].into_iter().collect()));
    }

    #[test]
    fn absent_vertex_ops_are_noops() {
        let rels: BTreeSet<RelName> = ["A", "B"].iter().map(|s| rel(s)).collect();
        let h = Hypergraph::from_parts(rels, vec![jc("J1", "A", "B", "k", "k")]);
        let removed = h.apply_delta(&GraphDelta::RemoveVertex(rel("Z")));
        assert_equivalent(&removed, &h);
        let renamed = h.apply_delta(&GraphDelta::RenameVertex {
            from: rel("Z"),
            to: rel("Y"),
        });
        assert_equivalent(&renamed, &h);
    }
}
