//! Fixed-width bitsets over interned relation ids.
//!
//! [`RelSet`] replaces `BTreeSet<RelName>` everywhere the enumeration
//! hot path tracks relation membership: visited sets of the best-first
//! path search, the growing greedy Steiner tree, component membership
//! tests and memo keys. Small universes (the overwhelmingly common
//! case — an MKB component with ≤ [`INLINE_BITS`] relations) live in a
//! fixed `[u64; 4]` inline array, so cloning a set is a 32-byte copy
//! and membership is one shift+mask; larger universes fall back to a
//! heap-backed word vector instead of panicking, with
//! [`RelSet::try_inline`] exposing the capacity check as a typed
//! [`RelSetCapacityError`] for callers that must stay allocation-free.
//!
//! Ordering is defined to mirror `BTreeSet<RelName>`: sets compare as
//! their **ascending element sequences** (ids ascend exactly as the
//! interned names do), so replacing a `BTreeSet` tie-break field with a
//! `RelSet` preserves every legacy comparison result bit for bit.

use std::cmp::Ordering;
use std::fmt;
use std::hash::{Hash, Hasher};

/// Words in the inline representation.
const INLINE_WORDS: usize = 4;

/// Capacity (in relation ids) of the inline representation.
pub const INLINE_BITS: usize = INLINE_WORDS * 64;

/// Typed error for [`RelSet::try_inline`]: the requested universe does
/// not fit the fixed-width inline budget.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RelSetCapacityError {
    /// Universe size that was requested.
    pub requested: usize,
    /// The inline capacity that was exceeded ([`INLINE_BITS`]).
    pub capacity: usize,
}

impl fmt::Display for RelSetCapacityError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "relation universe of {} exceeds the inline bitset capacity of {} \
             (use RelSet::with_universe for the heap-backed fallback)",
            self.requested, self.capacity
        )
    }
}

impl std::error::Error for RelSetCapacityError {}

#[derive(Debug, Clone)]
enum Repr {
    /// Up to [`INLINE_BITS`] ids, no heap.
    Inline([u64; INLINE_WORDS]),
    /// Arbitrarily many ids; grows on demand.
    Heap(Vec<u64>),
}

/// A set of interned relation ids ([`crate::intern::RelId`]).
#[derive(Debug, Clone)]
pub struct RelSet {
    repr: Repr,
}

impl RelSet {
    /// An empty set sized for ids `0..universe`. Inline when the
    /// universe fits [`INLINE_BITS`], heap-backed otherwise — never
    /// fails, never panics on insert.
    pub fn with_universe(universe: usize) -> Self {
        if universe <= INLINE_BITS {
            RelSet {
                repr: Repr::Inline([0; INLINE_WORDS]),
            }
        } else {
            RelSet {
                repr: Repr::Heap(vec![0; universe.div_ceil(64)]),
            }
        }
    }

    /// An empty **inline** set, or a typed error when `universe` exceeds
    /// the fixed-width budget. For callers that require the
    /// zero-allocation representation (e.g. the steady-state enumeration
    /// scratch) and want to degrade explicitly rather than silently.
    pub fn try_inline(universe: usize) -> Result<Self, RelSetCapacityError> {
        if universe <= INLINE_BITS {
            Ok(RelSet {
                repr: Repr::Inline([0; INLINE_WORDS]),
            })
        } else {
            Err(RelSetCapacityError {
                requested: universe,
                capacity: INLINE_BITS,
            })
        }
    }

    /// Is this set using the inline (allocation-free) representation?
    pub fn is_inline(&self) -> bool {
        matches!(self.repr, Repr::Inline(_))
    }

    /// Build from an id iterator, sized for `universe`.
    pub fn from_ids(universe: usize, ids: impl IntoIterator<Item = u32>) -> Self {
        let mut s = Self::with_universe(universe);
        for id in ids {
            s.insert(id);
        }
        s
    }

    fn words(&self) -> &[u64] {
        match &self.repr {
            Repr::Inline(w) => w,
            Repr::Heap(w) => w,
        }
    }

    fn words_mut(&mut self) -> &mut [u64] {
        match &mut self.repr {
            Repr::Inline(w) => w,
            Repr::Heap(w) => w,
        }
    }

    /// Words with trailing zeros trimmed — the canonical form used for
    /// equality and hashing so inline and heap sets with equal contents
    /// compare and hash equal.
    fn trimmed(&self) -> &[u64] {
        let w = self.words();
        let n = w.iter().rposition(|&x| x != 0).map_or(0, |i| i + 1);
        &w[..n]
    }

    /// Ensure the backing store covers bit `id`, growing heap variants
    /// (and promoting inline ones) as needed.
    fn reserve_bit(&mut self, id: u32) {
        let need = (id as usize) / 64 + 1;
        if need <= self.words().len() {
            return;
        }
        match &mut self.repr {
            Repr::Heap(w) => w.resize(need, 0),
            Repr::Inline(w) => {
                let mut v = w.to_vec();
                v.resize(need, 0);
                self.repr = Repr::Heap(v);
            }
        }
    }

    /// Insert `id`; returns `true` when it was not already present.
    pub fn insert(&mut self, id: u32) -> bool {
        self.reserve_bit(id);
        let (w, b) = ((id as usize) / 64, id % 64);
        let word = &mut self.words_mut()[w];
        let mask = 1u64 << b;
        let fresh = *word & mask == 0;
        *word |= mask;
        fresh
    }

    /// Remove `id`; returns `true` when it was present.
    pub fn remove(&mut self, id: u32) -> bool {
        let (w, b) = ((id as usize) / 64, id % 64);
        match self.words_mut().get_mut(w) {
            Some(word) => {
                let mask = 1u64 << b;
                let had = *word & mask != 0;
                *word &= !mask;
                had
            }
            None => false,
        }
    }

    /// Is `id` in the set?
    pub fn contains(&self, id: u32) -> bool {
        let (w, b) = ((id as usize) / 64, id % 64);
        self.words().get(w).is_some_and(|word| word & (1 << b) != 0)
    }

    /// Number of ids in the set.
    pub fn len(&self) -> usize {
        self.words().iter().map(|w| w.count_ones() as usize).sum()
    }

    /// Is the set empty?
    pub fn is_empty(&self) -> bool {
        self.words().iter().all(|&w| w == 0)
    }

    /// Remove all ids, keeping the representation and its capacity.
    pub fn clear(&mut self) {
        for w in self.words_mut() {
            *w = 0;
        }
    }

    /// Smallest id in the set.
    pub fn first(&self) -> Option<u32> {
        for (i, &w) in self.words().iter().enumerate() {
            if w != 0 {
                return Some((i * 64) as u32 + w.trailing_zeros());
            }
        }
        None
    }

    /// Ids in ascending order (ascending interned-name order).
    pub fn iter(&self) -> impl Iterator<Item = u32> + '_ {
        self.words().iter().enumerate().flat_map(|(i, &w)| {
            let base = (i * 64) as u32;
            BitIter { word: w, base }
        })
    }

    /// Overwrite `self` with the contents of `other`, reusing the
    /// existing storage when it is large enough (no allocation in the
    /// steady state of equal-universe sets).
    pub fn copy_from(&mut self, other: &RelSet) {
        let src = other.trimmed();
        if self.words().len() < src.len() {
            // Source genuinely larger than our capacity: grow.
            self.reserve_bit((src.len() * 64 - 1) as u32);
        }
        let dst = self.words_mut();
        dst[..src.len()].copy_from_slice(src);
        for w in &mut dst[src.len()..] {
            *w = 0;
        }
    }

    /// Add every id of `other` to `self`.
    pub fn union_with(&mut self, other: &RelSet) {
        let src = other.trimmed();
        if self.words().len() < src.len() {
            self.reserve_bit((src.len() * 64 - 1) as u32);
        }
        let dst = self.words_mut();
        for (d, s) in dst.iter_mut().zip(src) {
            *d |= s;
        }
    }

    /// Is every id of `self` also in `other`?
    pub fn is_subset_of(&self, other: &RelSet) -> bool {
        let (a, b) = (self.trimmed(), other.words());
        a.len() <= b.len() && a.iter().zip(b).all(|(x, y)| x & !y == 0)
    }

    /// Do the sets share at least one id?
    pub fn intersects(&self, other: &RelSet) -> bool {
        self.words()
            .iter()
            .zip(other.words())
            .any(|(a, b)| a & b != 0)
    }
}

struct BitIter {
    word: u64,
    base: u32,
}

impl Iterator for BitIter {
    type Item = u32;

    fn next(&mut self) -> Option<u32> {
        if self.word == 0 {
            return None;
        }
        let bit = self.word.trailing_zeros();
        self.word &= self.word - 1;
        Some(self.base + bit)
    }
}

impl PartialEq for RelSet {
    fn eq(&self, other: &Self) -> bool {
        self.trimmed() == other.trimmed()
    }
}

impl Eq for RelSet {}

impl Hash for RelSet {
    fn hash<H: Hasher>(&self, state: &mut H) {
        self.trimmed().hash(state);
    }
}

impl PartialOrd for RelSet {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for RelSet {
    /// Lexicographic over the ascending element sequence — the exact
    /// ordering `BTreeSet<RelName>` induces once ids are assigned in
    /// name order.
    fn cmp(&self, other: &Self) -> Ordering {
        self.iter().cmp(other.iter())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_contains_remove_roundtrip() {
        let mut s = RelSet::with_universe(100);
        assert!(s.is_empty() && s.is_inline());
        assert!(s.insert(3));
        assert!(!s.insert(3));
        assert!(s.insert(77));
        assert!(s.contains(3) && s.contains(77) && !s.contains(4));
        assert_eq!(s.len(), 2);
        assert_eq!(s.first(), Some(3));
        assert_eq!(s.iter().collect::<Vec<_>>(), vec![3, 77]);
        assert!(s.remove(3));
        assert!(!s.remove(3));
        assert_eq!(s.len(), 1);
        s.clear();
        assert!(s.is_empty() && s.is_inline());
    }

    #[test]
    fn overflow_guard_is_typed_not_a_panic() {
        let err = RelSet::try_inline(INLINE_BITS + 1).unwrap_err();
        assert_eq!(
            err,
            RelSetCapacityError {
                requested: INLINE_BITS + 1,
                capacity: INLINE_BITS
            }
        );
        assert!(err.to_string().contains("exceeds the inline bitset"));
        assert!(RelSet::try_inline(INLINE_BITS).is_ok());
    }

    #[test]
    fn heap_fallback_behaves_like_inline() {
        let mut big = RelSet::with_universe(INLINE_BITS + 64);
        assert!(!big.is_inline());
        assert!(big.insert(300));
        assert!(big.insert(1));
        assert_eq!(big.iter().collect::<Vec<_>>(), vec![1, 300]);

        // Inline sets promote instead of panicking when pushed past the
        // fixed-width budget.
        let mut small = RelSet::with_universe(8);
        assert!(small.is_inline());
        assert!(small.insert(1));
        assert!(small.insert(300));
        assert!(!small.is_inline());
        assert_eq!(small, big);

        // Equal contents across representations: ==, hash, and cmp agree.
        use std::collections::hash_map::DefaultHasher;
        let h = |s: &RelSet| {
            let mut hs = DefaultHasher::new();
            s.hash(&mut hs);
            hs.finish()
        };
        assert_eq!(h(&small), h(&big));
        assert_eq!(small.cmp(&big), Ordering::Equal);
    }

    #[test]
    fn ordering_mirrors_btreeset_of_elements() {
        use std::collections::BTreeSet;
        let universes = [
            vec![0u32, 1, 2],
            vec![1, 2],
            vec![0, 200],
            vec![],
            vec![2],
            vec![0, 1, 2, 3, 100],
            vec![63, 64, 65],
        ];
        for a in &universes {
            for b in &universes {
                let sa = RelSet::from_ids(256, a.iter().copied());
                let sb = RelSet::from_ids(256, b.iter().copied());
                let ba: BTreeSet<u32> = a.iter().copied().collect();
                let bb: BTreeSet<u32> = b.iter().copied().collect();
                assert_eq!(sa.cmp(&sb), ba.cmp(&bb), "{a:?} vs {b:?}");
            }
        }
    }

    #[test]
    fn set_algebra() {
        let a = RelSet::from_ids(128, [1, 5, 9]);
        let b = RelSet::from_ids(128, [5, 9, 11]);
        let mut u = a.clone();
        u.union_with(&b);
        assert_eq!(u.iter().collect::<Vec<_>>(), vec![1, 5, 9, 11]);
        assert!(a.intersects(&b));
        assert!(!a.is_subset_of(&b));
        assert!(a.is_subset_of(&u) && b.is_subset_of(&u));
        let mut c = RelSet::with_universe(128);
        c.copy_from(&u);
        assert_eq!(c, u);
        c.copy_from(&a);
        assert_eq!(c, a, "copy_from must clear stale high bits");
    }
}
