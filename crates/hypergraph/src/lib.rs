//! # eve-hypergraph
//!
//! The hypergraph representation of a meta knowledge base (§5 of the CVS
//! paper):
//!
//! ```text
//! H(MKB) = { (A(MKB)), (J(MKB), S(MKB), F(MKB)) }
//! ```
//!
//! whose hypernodes are the attributes `A(MKB)` and whose hyperedges are
//! the join constraints `J(MKB)`, the relations `S(MKB)` and the
//! function-of constraints `F(MKB)`.
//!
//! The paper observes that "JC-nodes are the only shared nodes between
//! relation-edges in `H(MKB)`": two relation hyperedges intersect exactly
//! when a join constraint connects them. Connectivity questions over the
//! hypergraph therefore reduce to connectivity of the **relation graph**
//! — the multigraph with relations as vertices and one edge per join
//! constraint — which is what [`Hypergraph`] materialises, alongside the
//! attribute-level structure for rendering (Fig. 4) and inspection.
//!
//! Key operations used by CVS:
//!
//! * [`Hypergraph::component_of`] — the connected sub-hypergraph
//!   `H_R(MKB)` containing a given relation (Step 1 of CVS);
//! * [`Hypergraph::without_relation`] — `H'_R(MKB')`, obtained by erasing
//!   a relation hyperedge (Def. 3);
//! * [`Hypergraph::join_path`] / [`Hypergraph::all_simple_paths`] — chains
//!   of join constraints between two relations (the "possibly complex view
//!   rewrites through multiple join constraints" of the abstract);
//! * [`ConnectionTree::connect`] — a minimal tree of join constraints
//!   connecting a *set* of required relations (used to assemble
//!   `Max(V_{j,R})` candidates from `Min(H'_R)` plus covers).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod delta;
pub mod dot;
pub(crate) mod faults;
pub mod graph;
pub mod intern;
pub mod paths;
pub mod relset;
pub(crate) mod telem;

pub use delta::GraphDelta;
pub use graph::Hypergraph;
pub use intern::{Interner, RelId};
pub use paths::{ConnectionTree, ConnectionTreeIter, TreeCursor};
pub use relset::{RelSet, RelSetCapacityError, INLINE_BITS};
