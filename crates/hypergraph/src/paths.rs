//! Connection trees: joining a *set* of relations through join
//! constraints.
//!
//! Def. 3 of the paper requires a candidate replacement `Max(V_{j,R})` to
//! contain (III) all relations of `Min(H_R)` that survive dropping `R`,
//! and (IV) one cover relation per replaceable attribute of `R` — all
//! woven into a single join expression built from join constraints of
//! `H'_R(MKB')`. Finding the smallest such expression is a Steiner-tree
//! problem; we use the classic greedy approximation (repeatedly attach the
//! nearest unconnected terminal by a shortest path), which is
//! deterministic and within 2× of optimal — more than adequate, since any
//! connected superset is a *valid* candidate under Def. 3 and smaller
//! candidates are simply better.
//!
//! [`ConnectionTree::enumerate`] additionally enumerates alternative
//! trees obtained by swapping parallel join constraints (distinct `JC`s
//! between the same relation pair give semantically different joins), so
//! CVS can propose more than one rewriting per cover combination.

use crate::graph::Hypergraph;
use eve_misd::JoinConstraint;
use eve_relational::RelName;
use std::collections::BTreeSet;

/// A tree of join constraints spanning a set of relations.
#[derive(Debug, Clone, PartialEq)]
pub struct ConnectionTree {
    /// The relations joined by the tree (terminals plus any Steiner
    /// relations picked up along connecting paths).
    pub relations: BTreeSet<RelName>,
    /// The join constraints forming the tree, in attachment order.
    pub joins: Vec<JoinConstraint>,
}

impl ConnectionTree {
    /// A tree containing a single relation and no joins.
    pub fn singleton(rel: RelName) -> Self {
        ConnectionTree {
            relations: [rel].into_iter().collect(),
            joins: Vec::new(),
        }
    }

    /// Greedily build a connection tree covering all `terminals` inside
    /// `graph`. Returns `None` when the terminals are not all in one
    /// component (Def. 3: "if relations left in `Min(H'_R)` are in
    /// disconnected components then the set R-replacement is empty") or
    /// when `terminals` is empty.
    pub fn connect(graph: &Hypergraph, terminals: &BTreeSet<RelName>) -> Option<ConnectionTree> {
        Self::connect_with_limit(graph, terminals, usize::MAX)
    }

    /// Like [`ConnectionTree::connect`], but each terminal must be
    /// attachable to the growing tree by a path of at most
    /// `max_path_edges` join constraints. With `max_path_edges = 1` this
    /// reproduces the *one-step-away* rewritings of the authors' earlier
    /// simple view synchronization (the SVS baseline of [4, 12]).
    pub fn connect_with_limit(
        graph: &Hypergraph,
        terminals: &BTreeSet<RelName>,
        max_path_edges: usize,
    ) -> Option<ConnectionTree> {
        let mut iter = terminals.iter();
        let first = iter.next()?;
        if !graph.contains(first) {
            return None;
        }
        let mut tree = ConnectionTree::singleton(first.clone());
        // Attach each remaining terminal by the shortest path from the
        // current tree. (Iterating in name order keeps this deterministic;
        // the greedy nearest-terminal refinement would need all-pairs
        // distances for marginal benefit.)
        for t in iter {
            if tree.relations.contains(t) {
                continue;
            }
            let path = shortest_path_from_set(graph, &tree.relations, t)?;
            if path.len() > max_path_edges {
                return None;
            }
            for jc in path {
                tree.relations.insert(jc.left.clone());
                tree.relations.insert(jc.right.clone());
                tree.joins.push(jc.clone());
            }
        }
        Some(tree)
    }

    /// Enumerate up to `limit` alternative connection trees for the same
    /// terminal set, produced by substituting parallel join constraints
    /// (other `JC`s connecting the same relation pair) into the base tree.
    /// The base tree is always first.
    pub fn enumerate(
        graph: &Hypergraph,
        terminals: &BTreeSet<RelName>,
        limit: usize,
    ) -> Vec<ConnectionTree> {
        Self::enumerate_with_limit(graph, terminals, limit, usize::MAX)
    }

    /// [`ConnectionTree::enumerate`] with the hop bound of
    /// [`ConnectionTree::connect_with_limit`].
    ///
    /// For exactly two terminals, *all* simple paths (up to a small
    /// length cap) are enumerated — a diamond-shaped MKB yields one
    /// candidate per route, not just the shortest. For three or more
    /// terminals the greedy tree plus parallel-constraint swaps are
    /// used (full Steiner-tree enumeration is exponential).
    pub fn enumerate_with_limit(
        graph: &Hypergraph,
        terminals: &BTreeSet<RelName>,
        limit: usize,
        max_path_edges: usize,
    ) -> Vec<ConnectionTree> {
        if terminals.len() == 2 {
            let mut it = terminals.iter();
            let (a, b) = (it.next().expect("two"), it.next().expect("two"));
            // Cap the exhaustive search in both path length and count;
            // fall back to the greedy (unbounded-length) tree when
            // nothing fits the caps.
            const PATH_CAP: usize = 8;
            let mut paths =
                graph.simple_paths_bounded(a, b, max_path_edges.min(PATH_CAP), limit * 4);
            // A truncated DFS may have missed the shortest path —
            // guarantee it is present.
            if let Some(shortest) = graph.join_path(a, b) {
                if shortest.len() <= max_path_edges {
                    let ids: Vec<&str> = shortest.iter().map(|j| j.id.as_str()).collect();
                    if !paths
                        .iter()
                        .any(|p| p.iter().map(|j| j.id.as_str()).eq(ids.iter().copied()))
                    {
                        paths.push(shortest);
                    }
                }
            }
            paths.sort_by_key(|p| (p.len(), p.iter().map(|j| j.id.clone()).collect::<Vec<_>>()));
            let trees: Vec<ConnectionTree> = paths
                .into_iter()
                .take(limit)
                .map(|path| {
                    let mut tree = ConnectionTree::singleton(a.clone());
                    for jc in path {
                        tree.relations.insert(jc.left.clone());
                        tree.relations.insert(jc.right.clone());
                        tree.joins.push(jc.clone());
                    }
                    tree
                })
                .collect();
            if !trees.is_empty() {
                return trees;
            }
            // fall through to the greedy construction
        }
        let base = match Self::connect_with_limit(graph, terminals, max_path_edges) {
            Some(t) => t,
            None => return Vec::new(),
        };
        let mut out = vec![base.clone()];
        // For each edge slot, collect the parallel alternatives.
        let alternatives: Vec<Vec<JoinConstraint>> = base
            .joins
            .iter()
            .map(|jc| {
                graph
                    .joins_between(&jc.left, &jc.right)
                    .filter(|other| other.id != jc.id)
                    .cloned()
                    .collect()
            })
            .collect();
        // Single-swap variants (cartesian products explode; one swap at a
        // time already surfaces every alternative constraint).
        'outer: for (slot, alts) in alternatives.iter().enumerate() {
            for alt in alts {
                if out.len() >= limit {
                    break 'outer;
                }
                let mut variant = base.clone();
                variant.joins[slot] = alt.clone();
                out.push(variant);
            }
        }
        out.truncate(limit);
        out
    }

    /// Is `rel` part of the tree?
    pub fn contains(&self, rel: &RelName) -> bool {
        self.relations.contains(rel)
    }
}

/// Cache-friendly enumeration entry points.
///
/// Both methods are pure, deterministic functions of
/// `(self, terminals, limit, max_path_edges)` — same inputs, same output,
/// every time — which is the contract that lets `MkbIndex` memoize their
/// results per change under a `(terminal set, hop bound, tree limit)` key
/// without risking any behavioural difference between a cache hit and a
/// recomputation.
impl Hypergraph {
    /// Enumerate up to `limit` connection trees spanning `terminals`,
    /// each hop bounded by `max_path_edges`. Method form of
    /// [`ConnectionTree::enumerate_with_limit`].
    pub fn enumerate_trees(
        &self,
        terminals: &BTreeSet<RelName>,
        limit: usize,
        max_path_edges: usize,
    ) -> Vec<ConnectionTree> {
        ConnectionTree::enumerate_with_limit(self, terminals, limit, max_path_edges)
    }

    /// The single greedy connection tree spanning `terminals` (hop bound
    /// `max_path_edges`), or `None` when they cannot be connected. Method
    /// form of [`ConnectionTree::connect_with_limit`].
    pub fn connect_tree(
        &self,
        terminals: &BTreeSet<RelName>,
        max_path_edges: usize,
    ) -> Option<ConnectionTree> {
        ConnectionTree::connect_with_limit(self, terminals, max_path_edges)
    }
}

/// Shortest path (in edges) from any relation in `sources` to `target`.
fn shortest_path_from_set<'a>(
    graph: &'a Hypergraph,
    sources: &BTreeSet<RelName>,
    target: &RelName,
) -> Option<Vec<&'a JoinConstraint>> {
    // BFS from the whole source set at once.
    use std::collections::{BTreeMap, VecDeque};
    if !graph.contains(target) {
        return None;
    }
    let mut prev: BTreeMap<RelName, (RelName, usize)> = BTreeMap::new();
    let mut seen: BTreeSet<RelName> = sources.clone();
    let mut queue: VecDeque<RelName> = sources.iter().cloned().collect();
    while let Some(r) = queue.pop_front() {
        for (i, jc) in graph.joins().iter().enumerate() {
            let next = match jc.other(&r) {
                Some(n) => n,
                None => continue,
            };
            if seen.insert(next.clone()) {
                prev.insert(next.clone(), (r.clone(), i));
                if next == target {
                    let mut path = Vec::new();
                    let mut cur = target.clone();
                    while let Some((p, e)) = prev.get(&cur) {
                        path.push(&graph.joins()[*e]);
                        cur = p.clone();
                    }
                    path.reverse();
                    return Some(path);
                }
                queue.push_back(next.clone());
            }
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use eve_relational::{AttrRef, Clause, Conjunction};

    fn rel(n: &str) -> RelName {
        RelName::new(n)
    }

    fn jc(id: &str, l: &str, r: &str) -> JoinConstraint {
        JoinConstraint::new(
            id,
            l,
            r,
            Conjunction::new(vec![Clause::eq_attrs(
                AttrRef::new(l, "k"),
                AttrRef::new(r, "k"),
            )]),
        )
    }

    /// Star: HUB connected to A, B, C; D isolated; parallel edge HUB—A.
    fn star() -> Hypergraph {
        let rels: BTreeSet<RelName> = ["HUB", "A", "B", "C", "D"].iter().map(|s| rel(s)).collect();
        Hypergraph::from_parts(
            rels,
            vec![
                jc("J1", "HUB", "A"),
                jc("J1b", "HUB", "A"),
                jc("J2", "HUB", "B"),
                jc("J3", "HUB", "C"),
            ],
        )
    }

    #[test]
    fn connect_terminals_through_hub() {
        let g = star();
        let t = ConnectionTree::connect(&g, &[rel("A"), rel("B"), rel("C")].into_iter().collect())
            .unwrap();
        assert!(t.contains(&rel("HUB"))); // Steiner vertex picked up
        assert_eq!(t.relations.len(), 4);
        assert_eq!(t.joins.len(), 3);
    }

    #[test]
    fn connect_single_terminal_is_trivial() {
        let g = star();
        let t = ConnectionTree::connect(&g, &[rel("B")].into_iter().collect()).unwrap();
        assert_eq!(t.relations.len(), 1);
        assert!(t.joins.is_empty());
    }

    #[test]
    fn disconnected_terminals_yield_none() {
        let g = star();
        assert!(ConnectionTree::connect(&g, &[rel("A"), rel("D")].into_iter().collect()).is_none());
        assert!(ConnectionTree::connect(&g, &BTreeSet::new()).is_none());
    }

    #[test]
    fn enumerate_surfaces_parallel_constraints() {
        let g = star();
        let trees = ConnectionTree::enumerate(&g, &[rel("A"), rel("B")].into_iter().collect(), 10);
        assert_eq!(trees.len(), 2); // J1 vs J1b for the HUB—A hop
        let ids: BTreeSet<String> = trees
            .iter()
            .flat_map(|t| t.joins.iter().map(|j| j.id.clone()))
            .collect();
        assert!(ids.contains("J1") && ids.contains("J1b"));
    }

    #[test]
    fn enumerate_respects_limit() {
        let g = star();
        let trees = ConnectionTree::enumerate(&g, &[rel("A"), rel("B")].into_iter().collect(), 1);
        assert_eq!(trees.len(), 1);
    }

    #[test]
    fn diamond_enumerates_both_routes() {
        // A—X—B and A—Y—B: two distinct two-hop routes.
        let rels: BTreeSet<RelName> = ["A", "X", "Y", "B"].iter().map(|s| rel(s)).collect();
        let g = Hypergraph::from_parts(
            rels,
            vec![
                jc("J1", "A", "X"),
                jc("J2", "X", "B"),
                jc("J3", "A", "Y"),
                jc("J4", "Y", "B"),
            ],
        );
        let trees = ConnectionTree::enumerate(&g, &[rel("A"), rel("B")].into_iter().collect(), 10);
        assert_eq!(trees.len(), 2, "{trees:?}");
        let routes: BTreeSet<BTreeSet<RelName>> =
            trees.iter().map(|t| t.relations.clone()).collect();
        assert!(routes.contains(&["A", "X", "B"].iter().map(|s| rel(s)).collect()));
        assert!(routes.contains(&["A", "Y", "B"].iter().map(|s| rel(s)).collect()));
        // Hop bound 1 prunes both.
        assert!(ConnectionTree::enumerate_with_limit(
            &g,
            &[rel("A"), rel("B")].into_iter().collect(),
            10,
            1
        )
        .is_empty());
    }

    #[test]
    fn long_chain_beyond_path_cap_falls_back_to_greedy() {
        // 10-hop chain: beyond the exhaustive PATH_CAP, but the greedy
        // fallback must still connect the endpoints.
        let names: Vec<String> = (0..11).map(|i| format!("N{i}")).collect();
        let rels: BTreeSet<RelName> = names.iter().map(|n| RelName::new(n.clone())).collect();
        let joins = names
            .windows(2)
            .enumerate()
            .map(|(i, w)| jc(&format!("J{i}"), &w[0], &w[1]))
            .collect();
        let g = Hypergraph::from_parts(rels, joins);
        let trees =
            ConnectionTree::enumerate(&g, &[rel("N0"), rel("N10")].into_iter().collect(), 4);
        assert_eq!(trees.len(), 1);
        assert_eq!(trees[0].joins.len(), 10);
    }

    #[test]
    fn method_entry_points_match_free_functions() {
        let g = star();
        let t: BTreeSet<RelName> = [rel("A"), rel("B")].into_iter().collect();
        assert_eq!(
            g.enumerate_trees(&t, 10, usize::MAX),
            ConnectionTree::enumerate(&g, &t, 10)
        );
        assert_eq!(
            g.connect_tree(&t, usize::MAX),
            ConnectionTree::connect(&g, &t)
        );
    }

    #[test]
    fn chain_connection() {
        // A—B—C—D chain; connect {A, D} should pull in B and C.
        let rels: BTreeSet<RelName> = ["A", "B", "C", "D"].iter().map(|s| rel(s)).collect();
        let g = Hypergraph::from_parts(
            rels,
            vec![jc("J1", "A", "B"), jc("J2", "B", "C"), jc("J3", "C", "D")],
        );
        let t = ConnectionTree::connect(&g, &[rel("A"), rel("D")].into_iter().collect()).unwrap();
        assert_eq!(t.joins.len(), 3);
        assert_eq!(t.relations.len(), 4);
    }
}
