//! Connection trees: joining a *set* of relations through join
//! constraints.
//!
//! Def. 3 of the paper requires a candidate replacement `Max(V_{j,R})` to
//! contain (III) all relations of `Min(H_R)` that survive dropping `R`,
//! and (IV) one cover relation per replaceable attribute of `R` — all
//! woven into a single join expression built from join constraints of
//! `H'_R(MKB')`. Finding the smallest such expression is a Steiner-tree
//! problem; we use the classic greedy approximation (repeatedly attach the
//! nearest unconnected terminal by a shortest path), which is
//! deterministic and within 2× of optimal — more than adequate, since any
//! connected superset is a *valid* candidate under Def. 3 and smaller
//! candidates are simply better.
//!
//! Enumeration is *lazy* and runs entirely on the interned-id core:
//! [`TreeCursor`] streams alternative trees one at a time, in
//! nondecreasing edge count, writing each tree into scratch buffers it
//! owns — [`TreeCursor::advance`] performs **zero heap allocations in
//! the steady state** (partial paths are fixed-width id arrays plus an
//! inline bitset; extending one is a stack copy, not a `BTreeSet`
//! clone). For exactly two terminals it runs a best-first expansion
//! over simple join-constraint paths (a diamond-shaped MKB yields one
//! candidate per route, not just the shortest); for other terminal
//! counts it yields the greedy Steiner tree followed by its single-swap
//! parallel-constraint variants (distinct `JC`s between the same
//! relation pair give semantically different joins), so CVS can propose
//! more than one rewriting per cover combination.
//!
//! [`ConnectionTreeIter`] is the string-keyed boundary: a thin wrapper
//! that advances the cursor and materialises each scratch tree into a
//! [`ConnectionTree`] (names + cloned constraints). The yield sequence
//! is byte-identical to the legacy string-keyed implementation — the
//! heap orders partials by `(len, join-id ranks, edge indices, current
//! vertex, visited set)`, each component an order-preserving image of
//! the legacy `(len, ids, edges, cur, visited)` key. The collect-all
//! [`ConnectionTree::enumerate`] / [`ConnectionTree::enumerate_with_limit`]
//! entry points are thin wrappers over the iterator.

use crate::graph::Hypergraph;
use crate::intern::RelId;
use crate::relset::RelSet;
use eve_misd::JoinConstraint;
use eve_relational::RelName;
use std::cmp::{Ordering, Reverse};
use std::collections::{BTreeSet, BinaryHeap, VecDeque};

/// Length cap (in edges) for the exhaustive two-terminal path search.
/// Paths longer than this are only reachable through the shortest-path
/// fallback, which keeps the best-first frontier from exploding on
/// dense graphs. Also bounds the inline arrays of [`IdPartial`]: a
/// partial path never exceeds `PATH_CAP` edges, so no spill is needed.
const PATH_CAP: usize = 8;

/// A tree of join constraints spanning a set of relations.
#[derive(Debug, Clone, PartialEq)]
pub struct ConnectionTree {
    /// The relations joined by the tree (terminals plus any Steiner
    /// relations picked up along connecting paths).
    pub relations: BTreeSet<RelName>,
    /// The join constraints forming the tree, in attachment order.
    pub joins: Vec<JoinConstraint>,
}

impl ConnectionTree {
    /// A tree containing a single relation and no joins.
    pub fn singleton(rel: RelName) -> Self {
        ConnectionTree {
            relations: [rel].into_iter().collect(),
            joins: Vec::new(),
        }
    }

    /// Greedily build a connection tree covering all `terminals` inside
    /// `graph`. Returns `None` when the terminals are not all in one
    /// component (Def. 3: "if relations left in `Min(H'_R)` are in
    /// disconnected components then the set R-replacement is empty") or
    /// when `terminals` is empty.
    pub fn connect(graph: &Hypergraph, terminals: &BTreeSet<RelName>) -> Option<ConnectionTree> {
        Self::connect_with_limit(graph, terminals, usize::MAX)
    }

    /// Like [`ConnectionTree::connect`], but each terminal must be
    /// attachable to the growing tree by a path of at most
    /// `max_path_edges` join constraints. With `max_path_edges = 1` this
    /// reproduces the *one-step-away* rewritings of the authors' earlier
    /// simple view synchronization (the SVS baseline of [4, 12]).
    pub fn connect_with_limit(
        graph: &Hypergraph,
        terminals: &BTreeSet<RelName>,
        max_path_edges: usize,
    ) -> Option<ConnectionTree> {
        let ids = intern_terminals(graph, terminals)?;
        let (rels, edges) = connect_ids(graph, &ids, max_path_edges)?;
        Some(materialize(graph, &rels, &edges))
    }

    /// Collect up to `limit` alternative connection trees for the same
    /// terminal set. Thin wrapper over [`ConnectionTreeIter`]; the base
    /// (fewest-edge) tree is always first.
    pub fn enumerate(
        graph: &Hypergraph,
        terminals: &BTreeSet<RelName>,
        limit: usize,
    ) -> Vec<ConnectionTree> {
        Self::enumerate_with_limit(graph, terminals, limit, usize::MAX)
    }

    /// [`ConnectionTree::enumerate`] with the hop bound of
    /// [`ConnectionTree::connect_with_limit`]. Thin wrapper:
    /// `ConnectionTreeIter::new(..).take(limit).collect()`.
    pub fn enumerate_with_limit(
        graph: &Hypergraph,
        terminals: &BTreeSet<RelName>,
        limit: usize,
        max_path_edges: usize,
    ) -> Vec<ConnectionTree> {
        ConnectionTreeIter::new(graph, terminals, max_path_edges)
            .take(limit)
            .collect()
    }

    /// Is `rel` part of the tree?
    pub fn contains(&self, rel: &RelName) -> bool {
        self.relations.contains(rel)
    }
}

/// Intern a terminal set. `None` when any terminal is not a vertex of
/// `graph` — in every such case the legacy search yields nothing (an
/// absent terminal can never be connected), so callers map `None` to
/// the empty enumeration.
fn intern_terminals(graph: &Hypergraph, terminals: &BTreeSet<RelName>) -> Option<Vec<RelId>> {
    terminals.iter().map(|t| graph.rel_id(t)).collect()
}

/// Resolve a scratch `(relation set, edge list)` pair into an owned
/// string-keyed [`ConnectionTree`]. Bitset iteration ascends by id =
/// ascending name order, reproducing the legacy `BTreeSet` contents.
fn materialize(graph: &Hypergraph, rels: &RelSet, edges: &[u32]) -> ConnectionTree {
    ConnectionTree {
        relations: rels.iter().map(|id| graph.rel_name(id).clone()).collect(),
        joins: edges
            .iter()
            .map(|&e| graph.joins()[e as usize].clone())
            .collect(),
    }
}

/// A partial simple path in the two-terminal best-first search, keyed by
/// the ordering of the legacy sort: `(length, join-id sequence)`. All
/// components are order-preserving images of the legacy string-keyed
/// fields — `ranks` are dedup-lexicographic ranks of the join id
/// strings, ids ascend with relation names, and [`RelSet`] compares as
/// its ascending element sequence — so a min-heap of these pops in
/// exactly the legacy order. Fixed-width: extending a partial copies
/// `4 + PATH_CAP` words and an inline bitset, no heap traffic.
#[derive(Debug, Clone, PartialEq, Eq)]
struct IdPartial {
    len: u8,
    ranks: [u32; PATH_CAP],
    edges: [u32; PATH_CAP],
    cur: RelId,
    visited: RelSet,
}

impl IdPartial {
    fn start(graph: &Hypergraph, at: RelId) -> Self {
        let mut visited = graph.relset();
        visited.insert(at);
        IdPartial {
            len: 0,
            ranks: [0; PATH_CAP],
            edges: [0; PATH_CAP],
            cur: at,
            visited,
        }
    }
}

impl Ord for IdPartial {
    fn cmp(&self, other: &Self) -> Ordering {
        let (n, m) = (self.len as usize, other.len as usize);
        n.cmp(&m)
            .then_with(|| self.ranks[..n].cmp(&other.ranks[..m]))
            .then_with(|| self.edges[..n].cmp(&other.edges[..m]))
            .then_with(|| self.cur.cmp(&other.cur))
            .then_with(|| self.visited.cmp(&other.visited))
    }
}

impl PartialOrd for IdPartial {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

enum CursorState {
    /// Best-first expansion over vertex-simple paths between exactly two
    /// terminals. Every extension strictly grows the `(len, ranks)` key,
    /// so completed paths pop from the heap in nondecreasing key order —
    /// exactly the order the legacy collect-then-sort produced.
    Paths {
        start: RelId,
        goal: RelId,
        max_path_edges: usize,
        heap: BinaryHeap<Reverse<IdPartial>>,
        yielded_any: bool,
        /// BFS distance (in edges) from every vertex to `goal`,
        /// `u32::MAX` when unreachable. A partial at `cur` with
        /// `len + dist[cur] > cap` can never complete into a yieldable
        /// path (the unconstrained shortest distance lower-bounds the
        /// remaining simple-path length), so it is pruned from the
        /// frontier without affecting the yield sequence.
        dist_to_goal: Vec<u32>,
    },
    /// Greedy Steiner tree plus single-swap parallel-constraint
    /// variants, emitted in slot-then-alternative order.
    Greedy {
        base_rels: RelSet,
        base_edges: Vec<u32>,
        /// Per edge slot: alternative edge indices (other JCs between
        /// the same relation pair, ascending declaration order).
        alternatives: Vec<Vec<u32>>,
        slot: usize,
        alt: usize,
        base_emitted: bool,
    },
    Done,
}

/// The id-level enumeration core: streams connection trees spanning a
/// terminal set in nondecreasing edge count, writing each tree into
/// reusable scratch buffers owned by the cursor.
///
/// [`TreeCursor::advance`] allocates nothing in the steady state: the
/// best-first frontier holds fixed-width [`IdPartial`]s (inline arrays
/// plus an inline bitset for graphs of ≤ 256 relations), the scratch
/// relation set and edge list are reused across yields, and the heap's
/// capacity is retained. Callers that need owned string-keyed trees
/// materialise at the boundary via [`TreeCursor::materialize`] (that
/// step allocates, by nature); callers that only inspect the current
/// tree use [`TreeCursor::relations`] / [`TreeCursor::edges`] for free.
pub struct TreeCursor<'g> {
    graph: &'g Hypergraph,
    state: CursorState,
    /// Scratch: relations of the current tree.
    rels: RelSet,
    /// Scratch: edge indices of the current tree, in attachment order.
    edges: Vec<u32>,
    /// Trees yielded so far; flushed to the `hypergraph.trees_yielded`
    /// telemetry counter when the cursor is dropped.
    yielded: u64,
}

impl<'g> TreeCursor<'g> {
    /// Start streaming trees for `terminals`, each connecting path
    /// bounded by `max_path_edges` join constraints.
    pub fn new(
        graph: &'g Hypergraph,
        terminals: &BTreeSet<RelName>,
        max_path_edges: usize,
    ) -> Self {
        let state = match intern_terminals(graph, terminals) {
            // An absent terminal can never be connected: the legacy
            // search (empty frontier → no shortest path → greedy with an
            // unknown terminal) yields nothing in every such case.
            None => CursorState::Done,
            Some(ids) if ids.len() == 2 => {
                let mut heap = BinaryHeap::new();
                heap.push(Reverse(IdPartial::start(graph, ids[0])));
                CursorState::Paths {
                    start: ids[0],
                    goal: ids[1],
                    max_path_edges,
                    heap,
                    yielded_any: false,
                    dist_to_goal: bfs_distances(graph, ids[1]),
                }
            }
            Some(ids) => greedy_state(graph, &ids, max_path_edges),
        };
        TreeCursor {
            graph,
            state,
            rels: graph.relset(),
            edges: Vec::new(),
            yielded: 0,
        }
    }

    /// Advance to the next tree. Returns `false` when the stream is
    /// exhausted; on `true` the tree is readable through
    /// [`TreeCursor::relations`] / [`TreeCursor::edges`].
    pub fn advance(&mut self) -> bool {
        let stepped = self.step();
        if stepped {
            self.yielded += 1;
        }
        stepped
    }

    /// Relations of the current tree (valid after an `advance` that
    /// returned `true`).
    pub fn relations(&self) -> &RelSet {
        &self.rels
    }

    /// Edge indices (into [`Hypergraph::joins`]) of the current tree,
    /// in attachment order.
    pub fn edges(&self) -> &[u32] {
        &self.edges
    }

    /// Resolve the current scratch tree into an owned string-keyed
    /// [`ConnectionTree`].
    pub fn materialize(&self) -> ConnectionTree {
        materialize(self.graph, &self.rels, &self.edges)
    }

    fn step(&mut self) -> bool {
        loop {
            match &mut self.state {
                CursorState::Paths {
                    start,
                    goal,
                    max_path_edges,
                    heap,
                    yielded_any,
                    dist_to_goal,
                } => {
                    let cap = (*max_path_edges).min(PATH_CAP);
                    while let Some(Reverse(p)) = heap.pop() {
                        if p.cur == *goal {
                            // Simple paths stop at the goal; no extension.
                            *yielded_any = true;
                            write_path_scratch(
                                self.graph,
                                &mut self.rels,
                                &mut self.edges,
                                *start,
                                &p.edges[..p.len as usize],
                            );
                            return true;
                        }
                        if (p.len as usize) >= cap {
                            continue;
                        }
                        for (next, edge) in self.graph.neighbors(p.cur) {
                            if p.visited.contains(next) {
                                continue;
                            }
                            // Reachability prune: discard extensions that
                            // provably cannot reach the goal within the
                            // cap. Such partials never yield, so skipping
                            // them leaves the yield sequence intact.
                            let d = dist_to_goal[next as usize] as usize;
                            if (p.len as usize) + 1 + d > cap {
                                continue;
                            }
                            let mut ext = p.clone();
                            let at = ext.len as usize;
                            ext.len += 1;
                            ext.ranks[at] = self.graph.join_rank(edge);
                            ext.edges[at] = edge;
                            ext.visited.insert(next);
                            ext.cur = next;
                            heap.push(Reverse(ext));
                        }
                    }
                    // Frontier exhausted. If nothing fit the exhaustive
                    // cap, the shortest path may still be legal when it
                    // is longer than PATH_CAP but within the hop bound.
                    if !*yielded_any {
                        let (s, g, hop) = (*start, *goal, *max_path_edges);
                        if let Some(shortest) = self.graph.join_path_ids(s, g) {
                            if shortest.len() <= hop {
                                self.state = CursorState::Done;
                                write_path_scratch(
                                    self.graph,
                                    &mut self.rels,
                                    &mut self.edges,
                                    s,
                                    &shortest,
                                );
                                return true;
                            }
                        }
                        // Mirror the legacy fall-through to the greedy
                        // construction (relevant only for degenerate
                        // graphs; usually yields nothing new).
                        let terminals = if s < g { [s, g] } else { [g, s] };
                        self.state = greedy_state(self.graph, &terminals, hop);
                        continue;
                    }
                    self.state = CursorState::Done;
                }
                CursorState::Greedy {
                    base_rels,
                    base_edges,
                    alternatives,
                    slot,
                    alt,
                    base_emitted,
                } => {
                    if !*base_emitted {
                        *base_emitted = true;
                        self.rels.copy_from(base_rels);
                        self.edges.clear();
                        self.edges.extend_from_slice(base_edges);
                        return true;
                    }
                    // Single-swap variants (cartesian products explode;
                    // one swap at a time already surfaces every
                    // alternative constraint).
                    while *slot < alternatives.len() {
                        if let Some(&a) = alternatives[*slot].get(*alt) {
                            *alt += 1;
                            self.rels.copy_from(base_rels);
                            self.edges.clear();
                            self.edges.extend_from_slice(base_edges);
                            self.edges[*slot] = a;
                            return true;
                        }
                        *slot += 1;
                        *alt = 0;
                    }
                    self.state = CursorState::Done;
                }
                CursorState::Done => return false,
            }
        }
    }
}

/// Unweighted BFS distances (in edges) from every vertex to `to`;
/// `u32::MAX` marks unreachable vertices. One pass at cursor
/// construction funds the frontier prune in the two-terminal search.
fn bfs_distances(graph: &Hypergraph, to: RelId) -> Vec<u32> {
    let mut dist = vec![u32::MAX; graph.rel_count()];
    dist[to as usize] = 0;
    let mut queue = VecDeque::new();
    queue.push_back(to);
    while let Some(r) = queue.pop_front() {
        let d = dist[r as usize] + 1;
        for (next, _) in graph.neighbors(r) {
            if dist[next as usize] == u32::MAX {
                dist[next as usize] = d;
                queue.push_back(next);
            }
        }
    }
    dist
}

/// Write `(start ∪ edge endpoints, edges)` into the cursor's scratch
/// buffers. Free function over the disjoint scratch fields so it can
/// run while the cursor state is mutably borrowed.
fn write_path_scratch(
    graph: &Hypergraph,
    rels: &mut RelSet,
    edges_out: &mut Vec<u32>,
    start: RelId,
    path: &[u32],
) {
    rels.clear();
    rels.insert(start);
    edges_out.clear();
    for &e in path {
        let (l, r) = graph.join_endpoints(e);
        rels.insert(l);
        rels.insert(r);
        edges_out.push(e);
    }
}

impl Drop for TreeCursor<'_> {
    fn drop(&mut self) {
        if crate::telem::enabled() {
            crate::telem::counter_add("hypergraph.tree_iters", 1);
            crate::telem::counter_add("hypergraph.trees_yielded", self.yielded);
        }
    }
}

/// Build the greedy cursor state for a (sorted) terminal id list.
fn greedy_state(graph: &Hypergraph, terminals: &[RelId], max_path_edges: usize) -> CursorState {
    match connect_ids(graph, terminals, max_path_edges) {
        Some((base_rels, base_edges)) => {
            // For each edge slot, the parallel alternatives (other JCs
            // connecting the same relation pair). Matching the legacy
            // filter, "other" means a *different id string* — i.e. a
            // different dedup rank — not merely a different edge index.
            let alternatives: Vec<Vec<u32>> = base_edges
                .iter()
                .map(|&slot_edge| {
                    let (l, r) = graph.join_endpoints(slot_edge);
                    let rank = graph.join_rank(slot_edge);
                    (0..graph.joins().len() as u32)
                        .filter(|&e| {
                            let (el, er) = graph.join_endpoints(e);
                            ((el, er) == (l, r) || (el, er) == (r, l)) && graph.join_rank(e) != rank
                        })
                        .collect()
                })
                .collect();
            CursorState::Greedy {
                base_rels,
                base_edges,
                alternatives,
                slot: 0,
                alt: 0,
                base_emitted: false,
            }
        }
        None => CursorState::Done,
    }
}

/// Greedy Steiner connection over ids: attach each terminal (ascending
/// id = ascending name order) to the growing tree by a shortest path.
/// Returns the tree's relation set and edge list, or `None` when some
/// terminal cannot be attached within `max_path_edges`.
fn connect_ids(
    graph: &Hypergraph,
    terminals: &[RelId],
    max_path_edges: usize,
) -> Option<(RelSet, Vec<u32>)> {
    let (&first, rest) = terminals.split_first()?;
    let mut rels = graph.relset();
    rels.insert(first);
    let mut edges = Vec::new();
    // Attach each remaining terminal by the shortest path from the
    // current tree. (Iterating in name order keeps this deterministic;
    // the greedy nearest-terminal refinement would need all-pairs
    // distances for marginal benefit.)
    for &t in rest {
        if rels.contains(t) {
            continue;
        }
        let path = shortest_path_from_set(graph, &rels, t)?;
        if path.len() > max_path_edges {
            return None;
        }
        for e in path {
            let (l, r) = graph.join_endpoints(e);
            rels.insert(l);
            rels.insert(r);
            edges.push(e);
        }
    }
    Some((rels, edges))
}

/// Shortest path (in edges) from any relation in `sources` to `target`,
/// BFS from the whole source set at once. Sources are dequeued in
/// ascending id order and neighbours visited in join-declaration order
/// — the same candidate sequence as the legacy all-joins scan, so the
/// chosen path is identical.
fn shortest_path_from_set(graph: &Hypergraph, sources: &RelSet, target: RelId) -> Option<Vec<u32>> {
    let mut prev: Vec<(RelId, u32)> = vec![(u32::MAX, u32::MAX); graph.rel_count()];
    let mut seen = sources.clone();
    let mut queue: VecDeque<RelId> = sources.iter().collect();
    while let Some(r) = queue.pop_front() {
        for (next, edge) in graph.neighbors(r) {
            if seen.insert(next) {
                prev[next as usize] = (r, edge);
                if next == target {
                    let mut path = Vec::new();
                    let mut cur = target;
                    while prev[cur as usize].0 != u32::MAX {
                        let (p, e) = prev[cur as usize];
                        path.push(e);
                        cur = p;
                    }
                    path.reverse();
                    return Some(path);
                }
                queue.push_back(next);
            }
        }
    }
    None
}

/// Lazy enumeration of connection trees spanning a terminal set, in
/// nondecreasing edge count — the string-keyed boundary over
/// [`TreeCursor`].
///
/// This is the single budgeted core behind
/// [`ConnectionTree::enumerate`] / [`ConnectionTree::enumerate_with_limit`]:
/// pulling `n` trees does only the work needed for `n` trees, so a
/// top-k or budget-bounded caller can abandon the stream early. The
/// yield sequence is a pure, deterministic function of
/// `(graph, terminals, max_path_edges)` — the contract that lets
/// `MkbIndex` memoize prefixes of it.
pub struct ConnectionTreeIter<'g> {
    cursor: TreeCursor<'g>,
}

impl<'g> ConnectionTreeIter<'g> {
    /// Start streaming trees for `terminals`, each connecting path
    /// bounded by `max_path_edges` join constraints.
    pub fn new(
        graph: &'g Hypergraph,
        terminals: &BTreeSet<RelName>,
        max_path_edges: usize,
    ) -> Self {
        ConnectionTreeIter {
            cursor: TreeCursor::new(graph, terminals, max_path_edges),
        }
    }
}

impl Iterator for ConnectionTreeIter<'_> {
    type Item = ConnectionTree;

    fn next(&mut self) -> Option<ConnectionTree> {
        if self.cursor.advance() {
            Some(self.cursor.materialize())
        } else {
            None
        }
    }
}

/// Cache-friendly enumeration entry points.
///
/// All three are pure, deterministic functions of
/// `(self, terminals, limit, max_path_edges)` — same inputs, same output,
/// every time — which is the contract that lets `MkbIndex` memoize their
/// results per change under a `(terminal set, hop bound)` key (serving
/// any requested prefix length) without risking any behavioural
/// difference between a cache hit and a recomputation.
impl Hypergraph {
    /// Stream connection trees spanning `terminals` in nondecreasing
    /// edge count, each hop bounded by `max_path_edges`. Method form of
    /// [`ConnectionTreeIter::new`].
    pub fn tree_iter<'g>(
        &'g self,
        terminals: &BTreeSet<RelName>,
        max_path_edges: usize,
    ) -> ConnectionTreeIter<'g> {
        crate::faults::hit("hypergraph.tree-iter");
        ConnectionTreeIter::new(self, terminals, max_path_edges)
    }

    /// Id-level form of [`Hypergraph::tree_iter`]: stream scratch trees
    /// without materialising names. Same fault site, same telemetry.
    pub fn tree_cursor<'g>(
        &'g self,
        terminals: &BTreeSet<RelName>,
        max_path_edges: usize,
    ) -> TreeCursor<'g> {
        crate::faults::hit("hypergraph.tree-iter");
        TreeCursor::new(self, terminals, max_path_edges)
    }

    /// Enumerate up to `limit` connection trees spanning `terminals`,
    /// each hop bounded by `max_path_edges`. Method form of
    /// [`ConnectionTree::enumerate_with_limit`].
    pub fn enumerate_trees(
        &self,
        terminals: &BTreeSet<RelName>,
        limit: usize,
        max_path_edges: usize,
    ) -> Vec<ConnectionTree> {
        ConnectionTree::enumerate_with_limit(self, terminals, limit, max_path_edges)
    }

    /// The single greedy connection tree spanning `terminals` (hop bound
    /// `max_path_edges`), or `None` when they cannot be connected. Method
    /// form of [`ConnectionTree::connect_with_limit`].
    pub fn connect_tree(
        &self,
        terminals: &BTreeSet<RelName>,
        max_path_edges: usize,
    ) -> Option<ConnectionTree> {
        ConnectionTree::connect_with_limit(self, terminals, max_path_edges)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use eve_relational::{AttrRef, Clause, Conjunction};

    fn rel(n: &str) -> RelName {
        RelName::new(n)
    }

    fn jc(id: &str, l: &str, r: &str) -> JoinConstraint {
        JoinConstraint::new(
            id,
            l,
            r,
            Conjunction::new(vec![Clause::eq_attrs(
                AttrRef::new(l, "k"),
                AttrRef::new(r, "k"),
            )]),
        )
    }

    /// Star: HUB connected to A, B, C; D isolated; parallel edge HUB—A.
    fn star() -> Hypergraph {
        let rels: BTreeSet<RelName> = ["HUB", "A", "B", "C", "D"].iter().map(|s| rel(s)).collect();
        Hypergraph::from_parts(
            rels,
            vec![
                jc("J1", "HUB", "A"),
                jc("J1b", "HUB", "A"),
                jc("J2", "HUB", "B"),
                jc("J3", "HUB", "C"),
            ],
        )
    }

    #[test]
    fn connect_terminals_through_hub() {
        let g = star();
        let t = ConnectionTree::connect(&g, &[rel("A"), rel("B"), rel("C")].into_iter().collect())
            .unwrap();
        assert!(t.contains(&rel("HUB"))); // Steiner vertex picked up
        assert_eq!(t.relations.len(), 4);
        assert_eq!(t.joins.len(), 3);
    }

    #[test]
    fn connect_single_terminal_is_trivial() {
        let g = star();
        let t = ConnectionTree::connect(&g, &[rel("B")].into_iter().collect()).unwrap();
        assert_eq!(t.relations.len(), 1);
        assert!(t.joins.is_empty());
    }

    #[test]
    fn disconnected_terminals_yield_none() {
        let g = star();
        assert!(ConnectionTree::connect(&g, &[rel("A"), rel("D")].into_iter().collect()).is_none());
        assert!(ConnectionTree::connect(&g, &BTreeSet::new()).is_none());
    }

    #[test]
    fn enumerate_surfaces_parallel_constraints() {
        let g = star();
        let trees = ConnectionTree::enumerate(&g, &[rel("A"), rel("B")].into_iter().collect(), 10);
        assert_eq!(trees.len(), 2); // J1 vs J1b for the HUB—A hop
        let ids: BTreeSet<String> = trees
            .iter()
            .flat_map(|t| t.joins.iter().map(|j| j.id.clone()))
            .collect();
        assert!(ids.contains("J1") && ids.contains("J1b"));
    }

    #[test]
    fn enumerate_respects_limit() {
        let g = star();
        let trees = ConnectionTree::enumerate(&g, &[rel("A"), rel("B")].into_iter().collect(), 1);
        assert_eq!(trees.len(), 1);
    }

    #[test]
    fn diamond_enumerates_both_routes() {
        // A—X—B and A—Y—B: two distinct two-hop routes.
        let rels: BTreeSet<RelName> = ["A", "X", "Y", "B"].iter().map(|s| rel(s)).collect();
        let g = Hypergraph::from_parts(
            rels,
            vec![
                jc("J1", "A", "X"),
                jc("J2", "X", "B"),
                jc("J3", "A", "Y"),
                jc("J4", "Y", "B"),
            ],
        );
        let trees = ConnectionTree::enumerate(&g, &[rel("A"), rel("B")].into_iter().collect(), 10);
        assert_eq!(trees.len(), 2, "{trees:?}");
        let routes: BTreeSet<BTreeSet<RelName>> =
            trees.iter().map(|t| t.relations.clone()).collect();
        assert!(routes.contains(&["A", "X", "B"].iter().map(|s| rel(s)).collect()));
        assert!(routes.contains(&["A", "Y", "B"].iter().map(|s| rel(s)).collect()));
        // Hop bound 1 prunes both.
        assert!(ConnectionTree::enumerate_with_limit(
            &g,
            &[rel("A"), rel("B")].into_iter().collect(),
            10,
            1
        )
        .is_empty());
    }

    #[test]
    fn long_chain_beyond_path_cap_falls_back_to_shortest() {
        // 10-hop chain: beyond the exhaustive PATH_CAP, but the
        // shortest-path fallback must still connect the endpoints.
        let names: Vec<String> = (0..11).map(|i| format!("N{i}")).collect();
        let rels: BTreeSet<RelName> = names.iter().map(|n| RelName::new(n.clone())).collect();
        let joins = names
            .windows(2)
            .enumerate()
            .map(|(i, w)| jc(&format!("J{i}"), &w[0], &w[1]))
            .collect();
        let g = Hypergraph::from_parts(rels, joins);
        let trees =
            ConnectionTree::enumerate(&g, &[rel("N0"), rel("N10")].into_iter().collect(), 4);
        assert_eq!(trees.len(), 1);
        assert_eq!(trees[0].joins.len(), 10);
    }

    #[test]
    fn method_entry_points_match_free_functions() {
        let g = star();
        let t: BTreeSet<RelName> = [rel("A"), rel("B")].into_iter().collect();
        assert_eq!(
            g.enumerate_trees(&t, 10, usize::MAX),
            ConnectionTree::enumerate(&g, &t, 10)
        );
        assert_eq!(
            g.connect_tree(&t, usize::MAX),
            ConnectionTree::connect(&g, &t)
        );
        assert_eq!(
            g.tree_iter(&t, usize::MAX).collect::<Vec<_>>(),
            ConnectionTree::enumerate(&g, &t, usize::MAX)
        );
    }

    #[test]
    fn chain_connection() {
        // A—B—C—D chain; connect {A, D} should pull in B and C.
        let rels: BTreeSet<RelName> = ["A", "B", "C", "D"].iter().map(|s| rel(s)).collect();
        let g = Hypergraph::from_parts(
            rels,
            vec![jc("J1", "A", "B"), jc("J2", "B", "C"), jc("J3", "C", "D")],
        );
        let t = ConnectionTree::connect(&g, &[rel("A"), rel("D")].into_iter().collect()).unwrap();
        assert_eq!(t.joins.len(), 3);
        assert_eq!(t.relations.len(), 4);
    }

    /// The streaming contract: trees come out in nondecreasing edge
    /// count, and every `take(k)` prefix equals the collect-all result
    /// truncated to `k` — the property the prefix-serving memo cache
    /// relies on.
    #[test]
    fn iter_yields_sorted_prefixes() {
        // A—B directly (1 hop), A—X—B (2 hops), A—Y—Z—B (3 hops).
        let rels: BTreeSet<RelName> = ["A", "B", "X", "Y", "Z"].iter().map(|s| rel(s)).collect();
        let g = Hypergraph::from_parts(
            rels,
            vec![
                jc("J5", "A", "B"),
                jc("J1", "A", "X"),
                jc("J2", "X", "B"),
                jc("J3", "A", "Y"),
                jc("J4", "Y", "Z"),
                jc("J6", "Z", "B"),
            ],
        );
        let t: BTreeSet<RelName> = [rel("A"), rel("B")].into_iter().collect();
        let all: Vec<ConnectionTree> = g.tree_iter(&t, usize::MAX).collect();
        assert_eq!(all.len(), 3);
        let lens: Vec<usize> = all.iter().map(|tr| tr.joins.len()).collect();
        assert_eq!(lens, vec![1, 2, 3]);
        for k in 0..=all.len() {
            let prefix: Vec<ConnectionTree> = g.tree_iter(&t, usize::MAX).take(k).collect();
            assert_eq!(prefix, all[..k].to_vec(), "prefix k={k}");
        }
    }

    /// Pulling one tree from a graph with many routes must not force
    /// enumeration of longer routes: the first yield of the best-first
    /// search is always a shortest route.
    #[test]
    fn iter_first_yield_is_shortest_route() {
        let rels: BTreeSet<RelName> = ["A", "B", "X", "Y"].iter().map(|s| rel(s)).collect();
        let g = Hypergraph::from_parts(
            rels,
            vec![
                jc("J1", "A", "X"),
                jc("J2", "X", "B"),
                jc("J3", "A", "Y"),
                jc("J4", "Y", "B"),
                jc("J0", "A", "B"),
            ],
        );
        let t: BTreeSet<RelName> = [rel("A"), rel("B")].into_iter().collect();
        let first = g.tree_iter(&t, usize::MAX).next().unwrap();
        assert_eq!(first.joins.len(), 1);
        assert_eq!(first.joins[0].id, "J0");
    }

    /// The cursor and the boundary iterator must agree tree for tree.
    #[test]
    fn cursor_matches_iterator() {
        let g = star();
        let t: BTreeSet<RelName> = [rel("A"), rel("B"), rel("C")].into_iter().collect();
        let via_iter: Vec<ConnectionTree> = g.tree_iter(&t, usize::MAX).collect();
        let mut via_cursor = Vec::new();
        let mut cur = g.tree_cursor(&t, usize::MAX);
        while cur.advance() {
            via_cursor.push(cur.materialize());
        }
        assert_eq!(via_iter, via_cursor);
    }

    /// Unknown terminals yield the empty stream (the legacy behaviour:
    /// an absent terminal can never be connected).
    #[test]
    fn unknown_terminals_yield_nothing() {
        let g = star();
        for terms in [
            vec![rel("A"), rel("NOPE")],
            vec![rel("NOPE")],
            vec![rel("A"), rel("B"), rel("NOPE")],
        ] {
            let t: BTreeSet<RelName> = terms.into_iter().collect();
            assert_eq!(g.tree_iter(&t, usize::MAX).count(), 0);
        }
    }
}
